// redund_lint — project-specific static checker for the redundancy
// simulator. Token/regex based on purpose: the rules below are shallow
// enough that a comment-and-string-aware line scan enforces them exactly,
// and a libclang dependency would cost far more than it buys.
//
// Rules (diagnostic form `path:line: [rule] message`, exit 1 on findings):
//
//   nondeterministic-rng     rand()/srand()/std::time()/time(nullptr) and
//                            unseeded std::random_device anywhere in src/.
//                            Campaign results must be functions of the
//                            config seed alone.
//   unordered-iteration      Iterating a std::unordered_* container in
//                            src/runtime/, src/sim/, or src/control/.
//                            Hash-table order is
//                            implementation-defined; it leaks into
//                            journals, reports, and merge folds.
//   hot-alloc                Allocation-prone calls inside a function
//                            annotated `// redund: hot` (supervisor/queue
//                            steady-state paths are contractually
//                            allocation-free).
//   hot-per-element-insert   push_back / emplace / insert grown one element
//                            at a time inside a loop in a `redund: hot`
//                            function. Even pre-sized (an allowed
//                            hot-alloc), per-element growth in a loop is
//                            the pattern the SoA refactor removed — batch
//                            with resize() + index writes or a bulk
//                            insert outside the loop.
//   blocking-io-in-hot       Blocking file I/O (fsync/fdatasync/fwrite/
//                            fflush, std::ofstream construction, .flush())
//                            inside a `redund: hot` function. Checkpoint
//                            and journal bytes leave the event loop
//                            through the async writer thread; an fsync on
//                            the hot path stalls every event behind a
//                            disk flush.
//   scalar-draw-in-wave      A fresh keyed stream (rng::make_stream) built
//                            inside a loop in src/sim/. Replica waves draw
//                            one value per key; the rng::bulk_* kernels
//                            evaluate those draws four streams per
//                            instruction, so a scalar make_stream-per-
//                            iteration loop is the pattern the bulk layer
//                            exists to replace. Sequential draws from one
//                            shared engine are fine — only per-iteration
//                            stream construction fires.
//   include-c-header         C headers (<stdio.h>, ...) instead of their
//                            <cstdio>-style C++ spellings.
//   include-iostream         <iostream> included from a header (drags in
//                            static iostream initializers translation-unit
//                            wide; headers use <ostream>/<iosfwd>).
//   using-namespace          `using namespace` at header scope.
//
// Suppression: `// redund-lint: allow(rule)` (comma-separated list or
// `all`) on the offending line or the line directly above it. Suppressions
// are the audit trail for intentional exceptions — e.g. a pre-sized
// vector's push_back inside a hot function.
//
// `--self-test` runs embedded fixtures proving each rule fires and that
// allow() suppresses it, so CI notices if a rule rots.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based.
  std::string rule;
  std::string message;
};

/// One source line after comment/string stripping: `code` has comments,
/// string literals, and char literals blanked with spaces (columns
/// preserved); `comment` holds the concatenated comment text of the line
/// (where `redund:` annotations and `redund-lint:` suppressions live).
struct ScrubbedLine {
  std::string code;
  std::string comment;
};

/// Comment/string scanner. Handles //, /* */, "..." with escapes, '...'
/// with escapes, and raw strings R"delim(...)delim". Operates on the whole
/// file so block comments and raw strings may span lines.
std::vector<ScrubbedLine> scrub_source(const std::string& text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  std::vector<ScrubbedLine> lines(1);
  State state = State::kCode;
  std::string raw_delimiter;  // For kRaw: the ")delim\"" terminator.
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary string/char at EOL: ill-formed anyway; reset
      // so one bad line cannot blank the rest of the file.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      lines.emplace_back();
      continue;
    }
    ScrubbedLine& line = lines.back();
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          state = State::kLineComment;
          ++i;
          break;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          state = State::kBlockComment;
          line.code += "  ";
          ++i;
          break;
        }
        if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
          // Raw string: R"delim( ... )delim". Collect the delimiter.
          std::size_t j = i + 2;
          std::string delimiter;
          while (j < n && text[j] != '(' && text[j] != '\n' &&
                 delimiter.size() <= 16) {
            delimiter += text[j++];
          }
          if (j < n && text[j] == '(') {
            raw_delimiter = ")" + delimiter + "\"";
            state = State::kRaw;
            line.code.append(j - i + 1, ' ');
            i = j;
            break;
          }
          line.code += c;  // Not actually a raw string; fall through.
          break;
        }
        if (c == '"') {
          state = State::kString;
          line.code += ' ';
          break;
        }
        if (c == '\'') {
          state = State::kChar;
          line.code += ' ';
          break;
        }
        line.code += c;
        break;
      }
      case State::kLineComment:
        line.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          line.comment += c;
        }
        break;
      case State::kString:
      case State::kChar: {
        if (c == '\\' && i + 1 < n) {
          ++i;
          line.code += "  ";
          break;
        }
        if ((state == State::kString && c == '"') ||
            (state == State::kChar && c == '\'')) {
          state = State::kCode;
        }
        line.code += ' ';
        break;
      }
      case State::kRaw: {
        if (c == ')' && text.compare(i, raw_delimiter.size(),
                                     raw_delimiter) == 0) {
          i += raw_delimiter.size() - 1;
          line.code.append(raw_delimiter.size(), ' ');
          state = State::kCode;
        } else {
          line.code += ' ';
        }
        break;
      }
    }
  }
  return lines;
}

/// Parses `redund-lint: allow(a, b)` out of a comment; returns the allowed
/// rule names (or {"all"}).
std::vector<std::string> allowed_rules(const std::string& comment) {
  std::vector<std::string> rules;
  static const std::regex kAllow(R"(redund-lint:\s*allow\(([^)]*)\))");
  auto begin = std::sregex_iterator(comment.begin(), comment.end(), kAllow);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::stringstream list((*it)[1].str());
    std::string rule;
    while (std::getline(list, rule, ',')) {
      const auto first = rule.find_first_not_of(" \t");
      const auto last = rule.find_last_not_of(" \t");
      if (first != std::string::npos) {
        rules.push_back(rule.substr(first, last - first + 1));
      }
    }
  }
  return rules;
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text` contains `token` as a whole identifier (not a substring
/// of a longer identifier). `token` may end in '(' to require a call.
bool contains_token(const std::string& text, const std::string& token) {
  const bool want_call = !token.empty() && token.back() == '(';
  const std::string word =
      want_call ? token.substr(0, token.size() - 1) : token;
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || !is_identifier_char(text[pos - 1]);
    std::size_t end = pos + word.size();
    const bool end_ok = end >= text.size() || !is_identifier_char(text[end]);
    if (start_ok && end_ok) {
      if (!want_call) return true;
      while (end < text.size() &&
             std::isspace(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      if (end < text.size() && text[end] == '(') return true;
    }
    pos += word.size();
  }
  return false;
}

struct LintOptions {
  bool runtime_rules = false;  // unordered-iteration (runtime/sim/control).
  bool header = false;         // Header-only rules.
  bool wave_rules = false;     // scalar-draw-in-wave (sim only).
};

class Linter {
 public:
  Linter(std::string path, const std::string& text, LintOptions options)
      : path_(std::move(path)),
        options_(options),
        lines_(scrub_source(text)) {
    allow_.reserve(lines_.size());
    for (const ScrubbedLine& line : lines_) {
      allow_.push_back(allowed_rules(line.comment));
    }
  }

  std::vector<Finding> run() {
    collect_unordered_names_();
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      check_rng_(i);
      check_includes_(i);
      check_using_namespace_(i);
      if (options_.runtime_rules) check_unordered_iteration_(i);
    }
    check_hot_functions_();
    if (options_.wave_rules) check_wave_draws_();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return a.line < b.line;
              });
    return std::move(findings_);
  }

 private:
  bool suppressed_(std::size_t i, const std::string& rule) const {
    for (std::size_t j = i == 0 ? i : i - 1; j <= i; ++j) {
      for (const std::string& allowed : allow_[j]) {
        if (allowed == rule || allowed == "all") return true;
      }
    }
    return false;
  }

  void report_(std::size_t i, const std::string& rule,
               const std::string& message) {
    if (suppressed_(i, rule)) return;
    findings_.push_back(Finding{path_, i + 1, rule, message});
  }

  // ------------------------------------------------------ nondeterministic
  void check_rng_(std::size_t i) {
    const std::string& code = lines_[i].code;
    static const char* kBanned[] = {"rand(", "srand(", "std::rand(",
                                    "std::srand("};
    for (const char* call : kBanned) {
      if (contains_token(code, call)) {
        report_(i, "nondeterministic-rng",
                std::string("call to ") + call +
                    ") — derive draws from the campaign seed via rng:: "
                    "streams");
        return;
      }
    }
    static const std::regex kTimeCall(
        R"((^|[^:\w])(std::)?time\s*\(\s*(nullptr|NULL|0)?\s*\))");
    if (std::regex_search(code, kTimeCall)) {
      report_(i, "nondeterministic-rng",
              "wall-clock time() call — campaign behaviour must depend on "
              "the config seed only");
      return;
    }
    const std::size_t pos = code.find("std::random_device");
    if (pos != std::string::npos) {
      // A token-seeded random_device("...") is explicitly configured;
      // anything else (default construction) draws entropy.
      std::size_t end = pos + std::string("std::random_device").size();
      while (end < code.size() &&
             std::isspace(static_cast<unsigned char>(code[end]))) {
        ++end;
      }
      bool seeded = false;
      if (end < code.size() && code[end] == '(') {
        std::size_t inside = end + 1;
        while (inside < code.size() &&
               std::isspace(static_cast<unsigned char>(code[inside]))) {
          ++inside;
        }
        seeded = inside < code.size() && code[inside] != ')';
      }
      if (!seeded) {
        report_(i, "nondeterministic-rng",
                "default-constructed std::random_device draws OS entropy — "
                "seed from the campaign config instead");
      }
    }
  }

  // -------------------------------------------------- unordered iteration
  void collect_unordered_names_() {
    if (!options_.runtime_rules) return;
    static const std::regex kDecl(
        R"(std::unordered_\w+\s*<[^;{]*?>\s*[&*]{0,2}\s*(\w+))");
    for (const ScrubbedLine& line : lines_) {
      auto begin =
          std::sregex_iterator(line.code.begin(), line.code.end(), kDecl);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        unordered_names_.push_back((*it)[1].str());
      }
    }
  }

  void check_unordered_iteration_(std::size_t i) {
    const std::string& code = lines_[i].code;
    static const std::regex kRangeFor(R"(for\s*\([^;)]*:\s*([^)]+)\))");
    std::smatch match;
    if (std::regex_search(code, match, kRangeFor)) {
      const std::string range = match[1].str();
      if (range.find("unordered") != std::string::npos) {
        report_(i, "unordered-iteration",
                "range-for over a std::unordered_* container — hash order "
                "leaks into journals/reports; use a sorted or indexed "
                "container");
        return;
      }
      for (const std::string& name : unordered_names_) {
        if (contains_token(range, name)) {
          report_(i, "unordered-iteration",
                  "range-for over unordered container '" + name +
                      "' — hash order leaks into journals/reports");
          return;
        }
      }
    }
    for (const std::string& name : unordered_names_) {
      for (const char* method : {".begin(", ".end(", ".cbegin(", ".cend("}) {
        if (code.find(name + method) != std::string::npos) {
          report_(i, "unordered-iteration",
                  "iterator over unordered container '" + name +
                      "' — hash order leaks into journals/reports");
          return;
        }
      }
    }
  }

  // ------------------------------------------------------------- includes
  void check_includes_(std::size_t i) {
    const std::string& code = lines_[i].code;
    static const std::regex kInclude(R"(^\s*#\s*include\s*<([^>]+)>)");
    std::smatch match;
    if (!std::regex_search(code, match, kInclude)) return;
    const std::string header = match[1].str();
    static const std::pair<const char*, const char*> kCHeaders[] = {
        {"assert.h", "cassert"}, {"ctype.h", "cctype"},
        {"errno.h", "cerrno"},   {"float.h", "cfloat"},
        {"limits.h", "climits"}, {"math.h", "cmath"},
        {"signal.h", "csignal"}, {"stddef.h", "cstddef"},
        {"stdint.h", "cstdint"}, {"stdio.h", "cstdio"},
        {"stdlib.h", "cstdlib"}, {"string.h", "cstring"},
        {"time.h", "ctime"},
    };
    for (const auto& [c_name, cpp_name] : kCHeaders) {
      if (header == c_name) {
        report_(i, "include-c-header",
                std::string("#include <") + c_name + "> — use <" + cpp_name +
                    "> (C++ spelling, std:: namespace)");
        return;
      }
    }
    if (options_.header && header == "iostream") {
      report_(i, "include-iostream",
              "<iostream> in a header drags static stream initializers into "
              "every includer — use <ostream>/<iosfwd> in headers");
    }
  }

  // ------------------------------------------------------ using namespace
  void check_using_namespace_(std::size_t i) {
    if (!options_.header) return;
    static const std::regex kUsing(R"(^\s*using\s+namespace\s+\w)");
    if (std::regex_search(lines_[i].code, kUsing)) {
      report_(i, "using-namespace",
              "'using namespace' at header scope pollutes every includer");
    }
  }

  // -------------------------------------------------- scalar draw in wave
  /// Walks the whole file tracking loop bodies by brace depth (same walk
  /// as scan_hot_body_) and flags rng::make_stream construction inside a
  /// loop — or on a brace-less loop line. One keyed engine per iteration
  /// is the scalar half of an independent-draw wave; the bulk kernels
  /// compute the identical draws four streams per instruction.
  void check_wave_draws_() {
    int depth = 0;
    int paren_depth = 0;
    bool pending_loop = false;
    std::vector<int> loop_depths;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string& code = lines_[i].code;
      const bool line_opens_loop = contains_token(code, "for") ||
                                   contains_token(code, "while") ||
                                   contains_token(code, "do");
      // pending_loop covers a brace-less body (or an open '{') on the line
      // after the loop header.
      if ((!loop_depths.empty() || line_opens_loop || pending_loop) &&
          contains_token(code, "make_stream(")) {
        report_(i, "scalar-draw-in-wave",
                "make_stream() per loop iteration — a wave of independent "
                "keyed draws belongs in an rng::bulk_* kernel (four streams "
                "per instruction), not a scalar loop");
      }
      if (line_opens_loop) pending_loop = true;
      for (const char c : code) {
        if (c == '(') {
          ++paren_depth;
        } else if (c == ')') {
          if (paren_depth > 0) --paren_depth;
        } else if (c == '{') {
          ++depth;
          if (pending_loop) {
            loop_depths.push_back(depth);
            pending_loop = false;
          }
        } else if (c == '}') {
          if (!loop_depths.empty() && loop_depths.back() == depth) {
            loop_depths.pop_back();
          }
          if (depth > 0) --depth;
        } else if (c == ';') {
          if (paren_depth == 0) pending_loop = false;
        }
      }
    }
  }

  // ------------------------------------------------------------ hot-alloc
  void check_hot_functions_() {
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      if (lines_[i].comment.find("redund: hot") == std::string::npos) {
        continue;
      }
      scan_hot_body_(i);
    }
  }

  /// From a `// redund: hot` annotation, finds the next function body
  /// (first '{' before any top-level ';') and scans it for
  /// allocation-prone calls until the matching '}'. Loop bodies inside the
  /// function are tracked by brace depth so per-element container growth
  /// in a loop gets the stricter hot-per-element-insert diagnostic.
  void scan_hot_body_(std::size_t annotation) {
    static const char* kAllocating[] = {
        "malloc(",       "calloc(",      "realloc(",  "free(",
        "push_back(",    "emplace_back(", "emplace(",  "insert(",
        "resize(",       "reserve(",     "make_unique(", "make_shared(",
        "to_string(",    "std::string(",
    };
    static const char* kPerElementGrowth[] = {
        "push_back(", "emplace_back(", "insert(", "emplace(", "try_emplace(",
    };
    static const char* kBlockingIo[] = {
        "fsync(", "fdatasync(", "fwrite(", "fflush(", "fopen(",
    };
    int depth = 0;
    int paren_depth = 0;
    bool in_body = false;
    bool pending_loop = false;       // Saw for/while; its '{' is next.
    std::vector<int> loop_depths;    // Brace depth of enclosing loop bodies.
    for (std::size_t i = annotation; i < lines_.size(); ++i) {
      const std::string& code = lines_[i].code;
      const bool line_opens_loop =
          in_body && (contains_token(code, "for") ||
                      contains_token(code, "while") ||
                      contains_token(code, "do"));
      if (in_body) {
        static const std::regex kNew(R"((^|[^:\w])new\s*[\w(<])");
        if (std::regex_search(code, kNew)) {
          report_(i, "hot-alloc",
                  "operator new inside a `redund: hot` function — hot paths "
                  "are contractually allocation-free");
        } else {
          for (const char* call : kAllocating) {
            if (contains_token(code, call)) {
              report_(i, "hot-alloc",
                      std::string("allocation-prone call ") + call +
                          ") inside a `redund: hot` function");
              break;
            }
          }
        }
        // Blocking file I/O: the event loop must hand bytes to the async
        // journal writer, never touch the disk itself.
        bool io_reported = false;
        for (const char* call : kBlockingIo) {
          if (contains_token(code, call)) {
            report_(i, "blocking-io-in-hot",
                    std::string("blocking I/O call ") + call +
                        ") inside a `redund: hot` function — hand bytes to "
                        "the async journal writer instead");
            io_reported = true;
            break;
          }
        }
        if (!io_reported && (code.find("std::ofstream") != std::string::npos ||
                             code.find(".flush(") != std::string::npos)) {
          report_(i, "blocking-io-in-hot",
                  "stream write/flush inside a `redund: hot` function — "
                  "hand bytes to the async journal writer instead");
        }
        // Per-element growth in a loop (or on a brace-less loop line): the
        // batch-processing hazard, reported separately from hot-alloc so a
        // pre-sized push_back allowed there is still visible here.
        if (!loop_depths.empty() || line_opens_loop) {
          for (const char* call : kPerElementGrowth) {
            if (contains_token(code, call)) {
              report_(i, "hot-per-element-insert",
                      std::string("per-element ") + call +
                          ") inside a loop in a `redund: hot` function — "
                          "batch the growth (resize + index writes or bulk "
                          "insert) outside the per-element loop");
              break;
            }
          }
        }
      }
      if (line_opens_loop) pending_loop = true;
      for (const char c : code) {
        if (c == '(') {
          ++paren_depth;
        } else if (c == ')') {
          if (paren_depth > 0) --paren_depth;
        } else if (c == '{') {
          ++depth;
          in_body = true;
          if (pending_loop) {
            loop_depths.push_back(depth);
            pending_loop = false;
          }
        } else if (c == '}') {
          if (!loop_depths.empty() && loop_depths.back() == depth) {
            loop_depths.pop_back();
          }
          if (--depth == 0 && in_body) return;
        } else if (c == ';') {
          if (!in_body && i > annotation) {
            return;  // Declaration without a body: nothing to scan.
          }
          // A ';' outside parentheses ends a brace-less loop body (or a
          // do-while tail) before any '{' arrives.
          if (paren_depth == 0) pending_loop = false;
        }
      }
    }
  }

  std::string path_;
  LintOptions options_;
  std::vector<ScrubbedLine> lines_;
  std::vector<std::vector<std::string>> allow_;
  std::vector<std::string> unordered_names_;
  std::vector<Finding> findings_;
};

bool is_header_path(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h";
}

bool is_source_path(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

LintOptions options_for(const std::filesystem::path& path) {
  LintOptions options;
  options.header = is_header_path(path);
  const std::string generic = path.generic_string();
  options.runtime_rules = generic.find("/runtime/") != std::string::npos ||
                          generic.find("/sim/") != std::string::npos ||
                          generic.find("/control/") != std::string::npos;
  options.wave_rules = generic.find("/sim/") != std::string::npos;
  return options;
}

std::vector<Finding> lint_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{path.string(), 0, "io-error", "cannot open file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Linter linter(path.string(), buffer.str(), options_for(path));
  return linter.run();
}

// --------------------------------------------------------------- self-test

struct Fixture {
  const char* name;
  const char* path;     // Decides path-scoped rules.
  const char* source;
  const char* expect_rule;  // nullptr: expect clean.
  std::size_t expect_line;  // 1-based; 0 with expect_rule: any line.
};

const Fixture kFixtures[] = {
    {"rng-fires", "src/math/x.cpp",
     "int f() {\n  return rand() % 6;\n}\n", "nondeterministic-rng", 2},
    {"rng-std-time-fires", "src/core/x.cpp",
     "long f() {\n  return std::time(nullptr);\n}\n",
     "nondeterministic-rng", 2},
    {"rng-random-device-fires", "src/rng/x.cpp",
     "unsigned f() {\n  std::random_device rd;\n  return rd();\n}\n",
     "nondeterministic-rng", 2},
    {"rng-allow-suppresses", "src/math/x.cpp",
     "int f() {\n"
     "  return rand() % 6;  // redund-lint: allow(nondeterministic-rng)\n"
     "}\n",
     nullptr, 0},
    {"rng-in-comment-ignored", "src/math/x.cpp",
     "// rand() is banned here\nint f() { return 4; }\n", nullptr, 0},
    {"rng-in-string-ignored", "src/math/x.cpp",
     "const char* k = \"rand()\";\n", nullptr, 0},
    {"unordered-range-for-fires", "src/runtime/x.cpp",
     "std::unordered_map<int, int> table_;\n"
     "void f() {\n"
     "  for (const auto& kv : table_) { use(kv); }\n"
     "}\n",
     "unordered-iteration", 3},
    {"unordered-begin-fires", "src/sim/x.cpp",
     "std::unordered_set<int> seen;\n"
     "auto f() { return seen.begin(); }\n",
     "unordered-iteration", 2},
    {"unordered-control-fires", "src/control/x.cpp",
     "std::unordered_map<int, int> table_;\n"
     "void f() {\n"
     "  for (const auto& kv : table_) { use(kv); }\n"
     "}\n",
     "unordered-iteration", 3},
    {"unordered-reference-param-fires", "src/runtime/x.cpp",
     "void f(const std::unordered_map<int, int>& table) {\n"
     "  for (const auto& kv : table) { use(kv); }\n"
     "}\n",
     "unordered-iteration", 2},
    {"unordered-allow-suppresses", "src/runtime/x.cpp",
     "std::unordered_map<int, int> table_;\n"
     "void f() {\n"
     "  // redund-lint: allow(unordered-iteration)\n"
     "  for (const auto& kv : table_) { use(kv); }\n"
     "}\n",
     nullptr, 0},
    {"unordered-outside-scope-clean", "src/core/x.cpp",
     "std::unordered_map<int, int> table_;\n"
     "void f() {\n"
     "  for (const auto& kv : table_) { use(kv); }\n"
     "}\n",
     nullptr, 0},
    {"unordered-lookup-clean", "src/runtime/x.cpp",
     "std::unordered_map<int, int> table_;\n"
     "int f(int k) { return table_.at(k); }\n",
     nullptr, 0},
    {"hot-alloc-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v) {\n"
     "  v.push_back(1);\n"
     "}\n",
     "hot-alloc", 3},
    {"hot-alloc-new-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "int* f() {\n"
     "  return new int(4);\n"
     "}\n",
     "hot-alloc", 3},
    {"hot-alloc-allow-suppresses", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v) {\n"
     "  v.push_back(1);  // redund-lint: allow(hot-alloc)\n"
     "}\n",
     nullptr, 0},
    {"hot-alloc-unannotated-clean", "src/runtime/x.cpp",
     "void f(std::vector<int>& v) {\n  v.push_back(1);\n}\n", nullptr, 0},
    {"hot-alloc-ends-at-brace", "src/runtime/x.cpp",
     "// redund: hot\n"
     "int f() {\n"
     "  return 4;\n"
     "}\n"
     "void g(std::vector<int>& v) {\n"
     "  v.push_back(1);\n"
     "}\n",
     nullptr, 0},
    {"hot-loop-push-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v, int n) {\n"
     "  for (int i = 0; i < n; ++i) {\n"
     "    v.push_back(i);  // redund-lint: allow(hot-alloc)\n"
     "  }\n"
     "}\n",
     "hot-per-element-insert", 4},
    {"hot-loop-map-insert-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::map<int, int>& m, int n) {\n"
     "  while (n-- > 0) {\n"
     "    m.insert({n, n});  // redund-lint: allow(hot-alloc)\n"
     "  }\n"
     "}\n",
     "hot-per-element-insert", 4},
    {"hot-loop-braceless-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v, int n) {\n"
     "  for (int i = 0; i < n; ++i) v.push_back(i);  "
     "// redund-lint: allow(hot-alloc)\n"
     "}\n",
     "hot-per-element-insert", 3},
    {"hot-loop-allow-suppresses", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v, int n) {\n"
     "  for (int i = 0; i < n; ++i) {\n"
     "    // redund-lint: allow(hot-alloc, hot-per-element-insert)\n"
     "    v.push_back(i);\n"
     "  }\n"
     "}\n",
     nullptr, 0},
    {"hot-push-outside-loop-only-hot-alloc", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v) {\n"
     "  v.push_back(1);  // redund-lint: allow(hot-alloc)\n"
     "}\n",
     nullptr, 0},
    {"hot-do-while-tail-not-a-loop-opener", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v, int n) {\n"
     "  do {\n"
     "    --n;\n"
     "  } while (n > 0);\n"
     "  v.push_back(n);  // redund-lint: allow(hot-alloc)\n"
     "}\n",
     nullptr, 0},
    {"blocking-io-fsync-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(int fd) {\n"
     "  fsync(fd);\n"
     "}\n",
     "blocking-io-in-hot", 3},
    {"blocking-io-flush-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::ostream& out) {\n"
     "  out.flush();\n"
     "}\n",
     "blocking-io-in-hot", 3},
    {"blocking-io-ofstream-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f() {\n"
     "  std::ofstream out(path_);\n"
     "}\n",
     "blocking-io-in-hot", 3},
    {"blocking-io-allow-suppresses", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(int fd) {\n"
     "  fsync(fd);  // redund-lint: allow(blocking-io-in-hot)\n"
     "}\n",
     nullptr, 0},
    {"blocking-io-unannotated-clean", "src/runtime/x.cpp",
     "void f(int fd) {\n  fsync(fd);\n}\n", nullptr, 0},
    {"blocking-io-outside-body-clean", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v);\n"
     "void g(int fd) {\n"
     "  fsync(fd);\n"
     "}\n",
     nullptr, 0},
    {"wave-draw-in-loop-fires", "src/sim/x.cpp",
     "double f(std::uint64_t seed, std::size_t n) {\n"
     "  double sum = 0.0;\n"
     "  for (std::size_t r = 0; r < n; ++r) {\n"
     "    auto engine = rng::make_stream(seed, r);\n"
     "    sum += rng::uniform01(engine);\n"
     "  }\n"
     "  return sum;\n"
     "}\n",
     "scalar-draw-in-wave", 4},
    {"wave-draw-braceless-fires", "src/sim/x.cpp",
     "void f(std::uint64_t seed, std::size_t n, double* out) {\n"
     "  for (std::size_t r = 0; r < n; ++r)\n"
     "    out[r] = rng::uniform01(rng::make_stream(seed, r));\n"
     "}\n",
     "scalar-draw-in-wave", 3},
    {"wave-draw-allow-suppresses", "src/sim/x.cpp",
     "double f(std::uint64_t seed, std::size_t n) {\n"
     "  double sum = 0.0;\n"
     "  for (std::size_t r = 0; r < n; ++r) {\n"
     "    // Draw count varies per replica: not wave-able.\n"
     "    // redund-lint: allow(scalar-draw-in-wave)\n"
     "    auto engine = rng::make_stream(seed, r);\n"
     "    sum += rng::uniform01(engine);\n"
     "  }\n"
     "  return sum;\n"
     "}\n",
     nullptr, 0},
    {"wave-draw-outside-loop-clean", "src/sim/x.cpp",
     "double f(std::uint64_t seed) {\n"
     "  auto engine = rng::make_stream(seed, 0);\n"
     "  double sum = 0.0;\n"
     "  for (int i = 0; i < 4; ++i) sum += rng::uniform01(engine);\n"
     "  return sum;\n"
     "}\n",
     nullptr, 0},
    {"wave-draw-outside-sim-clean", "src/runtime/x.cpp",
     "void f(std::uint64_t seed, std::size_t n, double* out) {\n"
     "  for (std::size_t r = 0; r < n; ++r)\n"
     "    out[r] = rng::uniform01(rng::make_stream(seed, r));\n"
     "}\n",
     nullptr, 0},
    {"c-header-fires", "src/core/x.cpp",
     "#include <stdio.h>\n", "include-c-header", 1},
    {"c-header-allow-suppresses", "src/core/x.cpp",
     "#include <stdio.h>  // redund-lint: allow(include-c-header)\n",
     nullptr, 0},
    {"iostream-header-fires", "src/core/x.hpp",
     "#include <iostream>\n", "include-iostream", 1},
    {"iostream-in-cpp-clean", "src/core/x.cpp",
     "#include <iostream>\n", nullptr, 0},
    {"using-namespace-header-fires", "src/core/x.hpp",
     "using namespace std;\n", "using-namespace", 1},
    {"using-namespace-cpp-clean", "src/core/x.cpp",
     "using namespace std::chrono_literals;\n", nullptr, 0},
};

int run_self_test() {
  int failures = 0;
  for (const Fixture& fixture : kFixtures) {
    Linter linter(fixture.path, fixture.source, options_for(fixture.path));
    const std::vector<Finding> findings = linter.run();
    bool ok;
    if (fixture.expect_rule == nullptr) {
      ok = findings.empty();
    } else {
      ok = std::any_of(findings.begin(), findings.end(),
                       [&](const Finding& f) {
                         return f.rule == fixture.expect_rule &&
                                (fixture.expect_line == 0 ||
                                 f.line == fixture.expect_line);
                       });
    }
    if (!ok) {
      ++failures;
      std::cerr << "self-test FAIL: " << fixture.name << " (expected ";
      if (fixture.expect_rule == nullptr) {
        std::cerr << "clean";
      } else {
        std::cerr << fixture.expect_rule << " at line " << fixture.expect_line;
      }
      std::cerr << ", got " << findings.size() << " finding(s)";
      for (const Finding& f : findings) {
        std::cerr << " [" << f.rule << "@" << f.line << "]";
      }
      std::cerr << ")\n";
    }
  }
  const std::size_t total = std::size(kFixtures);
  if (failures == 0) {
    std::cout << "redund_lint self-test: " << total << "/" << total
              << " fixtures passed\n";
    return 0;
  }
  std::cerr << "redund_lint self-test: " << failures << "/" << total
            << " fixtures FAILED\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: redund_lint [--self-test] <file-or-dir>...\n"
             "Scans C++ sources for redundancy-project rule violations\n"
             "(see docs/correctness.md). Exit 0 clean, 1 findings, 2 usage.\n";
      return 0;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (self_test) return run_self_test();
  if (inputs.empty()) {
    std::cerr << "redund_lint: no inputs (try --help)\n";
    return 2;
  }

  std::vector<std::filesystem::path> files;
  for (const std::filesystem::path& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(input)) {
        if (entry.is_regular_file() && is_source_path(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (std::filesystem::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      std::cerr << "redund_lint: no such file or directory: "
                << input.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t finding_count = 0;
  for (const std::filesystem::path& file : files) {
    for (const Finding& finding : lint_file(file)) {
      ++finding_count;
      std::cout << finding.path << ":" << finding.line << ": ["
                << finding.rule << "] " << finding.message << "\n";
    }
  }
  if (finding_count != 0) {
    std::cerr << "redund_lint: " << finding_count << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "redund_lint: " << files.size() << " file(s) clean\n";
  return 0;
}
