// redund_lint v2 — project-specific static checker for the redundancy
// simulator, now a thin CLI over the src/analysis library (tokenizer,
// function extractor, project-wide call graph, attribute fixpoint).
//
// File rules (v1, unchanged semantics — see docs/correctness.md):
//   nondeterministic-rng, unordered-iteration, hot-alloc,
//   hot-per-element-insert, blocking-io-in-hot, scalar-draw-in-wave,
//   include-c-header, include-iostream, using-namespace.
//
// Interprocedural rules (v2 — see docs/analysis.md):
//   transitive-hot-alloc            `redund: hot` function calls a helper
//                                   that (transitively) allocates. The v1
//                                   same-body scan cannot see through the
//                                   call; the diagnostic prints the whole
//                                   chain down to the allocating line.
//   transitive-blocking-io-in-hot   Same, for blocking file I/O.
//   determinism-taint               A nondeterminism source (clock read,
//                                   unordered-container iteration,
//                                   pointer-as-integer, std::random_device)
//                                   reaches a `redund: deterministic`
//                                   serialization function through any
//                                   call path.
//   guarded-by / lock-requires /    REDUND_GUARDED_BY / REDUND_REQUIRES /
//   lock-excludes                   REDUND_EXCLUDES annotations
//                                   (src/core/thread_annotations.hpp)
//                                   checked against RAII guard regions
//                                   and the call graph.
//
// Suppression: `// redund-lint: allow(rule)` (comma list or `all`) on the
// reported line or the line directly above — for interprocedural rules
// the reported line is the call/access site in the caller.
//
// `--self-test` runs embedded fixtures (single- and multi-file) proving
// each rule fires and that allow() suppresses it. `--dump-callgraph`
// emits the resolved call graph as GraphViz DOT.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/project.hpp"

namespace {

using redund::analysis::Finding;
using redund::analysis::Project;

bool is_source_path(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

// --------------------------------------------------------------- self-test

struct Fixture {
  const char* name;
  const char* path;          // Decides path-scoped rules.
  const char* source;
  const char* expect_rule;   // nullptr: expect clean.
  std::size_t expect_line;   // 1-based in `path`; 0 with expect_rule: any.
  const char* path2 = nullptr;   // Optional second file (cross-file rules).
  const char* source2 = nullptr;
};

const Fixture kFixtures[] = {
    // ------------------------------------------------- v1 file rules.
    {"rng-fires", "src/math/x.cpp",
     "int f() {\n  return rand() % 6;\n}\n", "nondeterministic-rng", 2},
    {"rng-std-time-fires", "src/core/x.cpp",
     "long f() {\n  return std::time(nullptr);\n}\n",
     "nondeterministic-rng", 2},
    {"rng-random-device-fires", "src/rng/x.cpp",
     "unsigned f() {\n  std::random_device rd;\n  return rd();\n}\n",
     "nondeterministic-rng", 2},
    {"rng-allow-suppresses", "src/math/x.cpp",
     "int f() {\n"
     "  return rand() % 6;  // redund-lint: allow(nondeterministic-rng)\n"
     "}\n",
     nullptr, 0},
    {"rng-in-comment-ignored", "src/math/x.cpp",
     "// rand() is banned here\nint f() { return 4; }\n", nullptr, 0},
    {"rng-in-string-ignored", "src/math/x.cpp",
     "const char* k = \"rand()\";\n", nullptr, 0},
    {"unordered-range-for-fires", "src/runtime/x.cpp",
     "std::unordered_map<int, int> table_;\n"
     "void f() {\n"
     "  for (const auto& kv : table_) { use(kv); }\n"
     "}\n",
     "unordered-iteration", 3},
    {"unordered-begin-fires", "src/sim/x.cpp",
     "std::unordered_set<int> seen;\n"
     "auto f() { return seen.begin(); }\n",
     "unordered-iteration", 2},
    {"unordered-control-fires", "src/control/x.cpp",
     "std::unordered_map<int, int> table_;\n"
     "void f() {\n"
     "  for (const auto& kv : table_) { use(kv); }\n"
     "}\n",
     "unordered-iteration", 3},
    {"unordered-reference-param-fires", "src/runtime/x.cpp",
     "void f(const std::unordered_map<int, int>& table) {\n"
     "  for (const auto& kv : table) { use(kv); }\n"
     "}\n",
     "unordered-iteration", 2},
    {"unordered-allow-suppresses", "src/runtime/x.cpp",
     "std::unordered_map<int, int> table_;\n"
     "void f() {\n"
     "  // redund-lint: allow(unordered-iteration)\n"
     "  for (const auto& kv : table_) { use(kv); }\n"
     "}\n",
     nullptr, 0},
    {"unordered-outside-scope-clean", "src/core/x.cpp",
     "std::unordered_map<int, int> table_;\n"
     "void f() {\n"
     "  for (const auto& kv : table_) { use(kv); }\n"
     "}\n",
     nullptr, 0},
    {"unordered-lookup-clean", "src/runtime/x.cpp",
     "std::unordered_map<int, int> table_;\n"
     "int f(int k) { return table_.at(k); }\n",
     nullptr, 0},
    {"hot-alloc-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v) {\n"
     "  v.push_back(1);\n"
     "}\n",
     "hot-alloc", 3},
    {"hot-alloc-new-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "int* f() {\n"
     "  return new int(4);\n"
     "}\n",
     "hot-alloc", 3},
    {"hot-alloc-allow-suppresses", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v) {\n"
     "  v.push_back(1);  // redund-lint: allow(hot-alloc)\n"
     "}\n",
     nullptr, 0},
    {"hot-alloc-unannotated-clean", "src/runtime/x.cpp",
     "void f(std::vector<int>& v) {\n  v.push_back(1);\n}\n", nullptr, 0},
    {"hot-alloc-ends-at-brace", "src/runtime/x.cpp",
     "// redund: hot\n"
     "int f() {\n"
     "  return 4;\n"
     "}\n"
     "void g(std::vector<int>& v) {\n"
     "  v.push_back(1);\n"
     "}\n",
     nullptr, 0},
    {"hot-loop-push-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v, int n) {\n"
     "  for (int i = 0; i < n; ++i) {\n"
     "    v.push_back(i);  // redund-lint: allow(hot-alloc)\n"
     "  }\n"
     "}\n",
     "hot-per-element-insert", 4},
    {"hot-loop-map-insert-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::map<int, int>& m, int n) {\n"
     "  while (n-- > 0) {\n"
     "    m.insert({n, n});  // redund-lint: allow(hot-alloc)\n"
     "  }\n"
     "}\n",
     "hot-per-element-insert", 4},
    {"hot-loop-braceless-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v, int n) {\n"
     "  for (int i = 0; i < n; ++i) v.push_back(i);  "
     "// redund-lint: allow(hot-alloc)\n"
     "}\n",
     "hot-per-element-insert", 3},
    {"hot-loop-allow-suppresses", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v, int n) {\n"
     "  for (int i = 0; i < n; ++i) {\n"
     "    // redund-lint: allow(hot-alloc, hot-per-element-insert)\n"
     "    v.push_back(i);\n"
     "  }\n"
     "}\n",
     nullptr, 0},
    {"hot-push-outside-loop-only-hot-alloc", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v) {\n"
     "  v.push_back(1);  // redund-lint: allow(hot-alloc)\n"
     "}\n",
     nullptr, 0},
    {"hot-do-while-tail-not-a-loop-opener", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v, int n) {\n"
     "  do {\n"
     "    --n;\n"
     "  } while (n > 0);\n"
     "  v.push_back(n);  // redund-lint: allow(hot-alloc)\n"
     "}\n",
     nullptr, 0},
    {"blocking-io-fsync-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(int fd) {\n"
     "  fsync(fd);\n"
     "}\n",
     "blocking-io-in-hot", 3},
    {"blocking-io-flush-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::ostream& out) {\n"
     "  out.flush();\n"
     "}\n",
     "blocking-io-in-hot", 3},
    {"blocking-io-ofstream-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f() {\n"
     "  std::ofstream out(path_);\n"
     "}\n",
     "blocking-io-in-hot", 3},
    {"blocking-io-allow-suppresses", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(int fd) {\n"
     "  fsync(fd);  // redund-lint: allow(blocking-io-in-hot)\n"
     "}\n",
     nullptr, 0},
    {"blocking-io-unannotated-clean", "src/runtime/x.cpp",
     "void f(int fd) {\n  fsync(fd);\n}\n", nullptr, 0},
    {"blocking-io-outside-body-clean", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void f(std::vector<int>& v);\n"
     "void g(int fd) {\n"
     "  fsync(fd);\n"
     "}\n",
     nullptr, 0},
    {"wave-draw-in-loop-fires", "src/sim/x.cpp",
     "double f(std::uint64_t seed, std::size_t n) {\n"
     "  double sum = 0.0;\n"
     "  for (std::size_t r = 0; r < n; ++r) {\n"
     "    auto engine = rng::make_stream(seed, r);\n"
     "    sum += rng::uniform01(engine);\n"
     "  }\n"
     "  return sum;\n"
     "}\n",
     "scalar-draw-in-wave", 4},
    {"wave-draw-braceless-fires", "src/sim/x.cpp",
     "void f(std::uint64_t seed, std::size_t n, double* out) {\n"
     "  for (std::size_t r = 0; r < n; ++r)\n"
     "    out[r] = rng::uniform01(rng::make_stream(seed, r));\n"
     "}\n",
     "scalar-draw-in-wave", 3},
    {"wave-draw-allow-suppresses", "src/sim/x.cpp",
     "double f(std::uint64_t seed, std::size_t n) {\n"
     "  double sum = 0.0;\n"
     "  for (std::size_t r = 0; r < n; ++r) {\n"
     "    // Draw count varies per replica: not wave-able.\n"
     "    // redund-lint: allow(scalar-draw-in-wave)\n"
     "    auto engine = rng::make_stream(seed, r);\n"
     "    sum += rng::uniform01(engine);\n"
     "  }\n"
     "  return sum;\n"
     "}\n",
     nullptr, 0},
    {"wave-draw-outside-loop-clean", "src/sim/x.cpp",
     "double f(std::uint64_t seed) {\n"
     "  auto engine = rng::make_stream(seed, 0);\n"
     "  double sum = 0.0;\n"
     "  for (int i = 0; i < 4; ++i) sum += rng::uniform01(engine);\n"
     "  return sum;\n"
     "}\n",
     nullptr, 0},
    {"wave-draw-outside-sim-clean", "src/runtime/x.cpp",
     "void f(std::uint64_t seed, std::size_t n, double* out) {\n"
     "  for (std::size_t r = 0; r < n; ++r)\n"
     "    out[r] = rng::uniform01(rng::make_stream(seed, r));\n"
     "}\n",
     nullptr, 0},
    {"c-header-fires", "src/core/x.cpp",
     "#include <stdio.h>\n", "include-c-header", 1},
    {"c-header-allow-suppresses", "src/core/x.cpp",
     "#include <stdio.h>  // redund-lint: allow(include-c-header)\n",
     nullptr, 0},
    {"iostream-header-fires", "src/core/x.hpp",
     "#include <iostream>\n", "include-iostream", 1},
    {"iostream-in-cpp-clean", "src/core/x.cpp",
     "#include <iostream>\n", nullptr, 0},
    {"using-namespace-header-fires", "src/core/x.hpp",
     "using namespace std;\n", "using-namespace", 1},
    {"using-namespace-cpp-clean", "src/core/x.cpp",
     "using namespace std::chrono_literals;\n", nullptr, 0},

    // ---------------------------------- v2: transitive hot-path rules.
    //
    // The planted v1 blind spot: the hot function's own body is clean —
    // the allocation hides one call away, where the same-body scan of
    // v1 provably cannot see it.
    {"transitive-alloc-one-hop-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void tick(std::vector<int>& v) {\n"
     "  record(v);\n"
     "}\n"
     "void record(std::vector<int>& v) {\n"
     "  v.push_back(1);\n"
     "}\n",
     "transitive-hot-alloc", 3},
    {"transitive-alloc-two-hops-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void tick(std::vector<int>& v) {\n"
     "  stage(v);\n"
     "}\n"
     "void stage(std::vector<int>& v) {\n"
     "  record(v);\n"
     "}\n"
     "void record(std::vector<int>& v) {\n"
     "  v.push_back(1);\n"
     "}\n",
     "transitive-hot-alloc", 3},
    {"transitive-alloc-cross-file-fires", "src/runtime/a.cpp",
     "// redund: hot\n"
     "void tick(std::vector<int>& v) {\n"
     "  record(v);\n"
     "}\n",
     "transitive-hot-alloc", 3, "src/runtime/b.cpp",
     "void record(std::vector<int>& v) {\n"
     "  v.push_back(1);\n"
     "}\n"},
    {"transitive-alloc-allow-suppresses", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void tick(std::vector<int>& v) {\n"
     "  record(v);  // redund-lint: allow(transitive-hot-alloc)\n"
     "}\n"
     "void record(std::vector<int>& v) {\n"
     "  v.push_back(1);\n"
     "}\n",
     nullptr, 0},
    {"transitive-alloc-clean-helper-clean", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void tick(int* slots, int n) {\n"
     "  record(slots, n);\n"
     "}\n"
     "void record(int* slots, int n) {\n"
     "  slots[n] = n;\n"
     "}\n",
     nullptr, 0},
    // An audited, allow()-annotated allocation in the helper does not
    // resurface transitively in its callers.
    {"transitive-alloc-audited-helper-clean", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void tick(std::vector<int>& v) {\n"
     "  record(v);\n"
     "}\n"
     "void record(std::vector<int>& v) {\n"
     "  v.push_back(1);  // redund-lint: allow(hot-alloc, transitive-hot-alloc)\n"
     "}\n",
     nullptr, 0},
    {"transitive-blocking-io-fires", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void tick(int fd) {\n"
     "  persist(fd);\n"
     "}\n"
     "void persist(int fd) {\n"
     "  fsync(fd);\n"
     "}\n",
     "transitive-blocking-io-in-hot", 3},
    {"transitive-blocking-io-allow-suppresses", "src/runtime/x.cpp",
     "// redund: hot\n"
     "void tick(int fd) {\n"
     "  persist(fd);  // redund-lint: allow(transitive-blocking-io-in-hot)\n"
     "}\n"
     "void persist(int fd) {\n"
     "  fsync(fd);\n"
     "}\n",
     nullptr, 0},

    // ------------------------------------ v2: determinism taint.
    {"det-taint-clock-via-helper-fires", "src/report/x.cpp",
     "// redund: deterministic\n"
     "void write_report(std::ostream& out) {\n"
     "  out << stamp();\n"
     "}\n"
     "long stamp() {\n"
     "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
     "}\n",
     "determinism-taint", 3},
    {"det-taint-unordered-via-helper-fires", "src/report/x.cpp",
     "std::unordered_map<int, int> table_;\n"
     "// redund: deterministic\n"
     "void write_report(std::ostream& out) {\n"
     "  emit_rows(out);\n"
     "}\n"
     "void emit_rows(std::ostream& out) {\n"
     "  for (const auto& kv : table_) { out << kv.second; }\n"
     "}\n",
     "determinism-taint", 4},
    {"det-taint-address-direct-fires", "src/report/x.cpp",
     "// redund: deterministic\n"
     "void write_report(std::ostream& out, const void* p) {\n"
     "  out << reinterpret_cast<std::uintptr_t>(p);\n"
     "}\n",
     "determinism-taint", 3},
    {"det-taint-random-device-fires", "src/report/x.cpp",
     "// redund: deterministic\n"
     "void write_report(std::ostream& out) {\n"
     "  out << salt();\n"
     "}\n"
     "unsigned salt() {\n"
     "  std::random_device rd;\n"
     "  return rd();\n"
     "}\n",
     "determinism-taint", 3},
    {"det-taint-allow-suppresses", "src/report/x.cpp",
     "// redund: deterministic\n"
     "void write_report(std::ostream& out) {\n"
     "  out << stamp();  // redund-lint: allow(determinism-taint)\n"
     "}\n"
     "long stamp() {\n"
     "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
     "}\n",
     nullptr, 0},
    {"det-taint-unannotated-clean", "src/report/x.cpp",
     "void write_report(std::ostream& out) {\n"
     "  out << stamp();\n"
     "}\n"
     "long stamp() {\n"
     "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
     "}\n",
     nullptr, 0},

    // -------------------------- v2: thread-safety annotations.
    {"guarded-by-fires", "src/parallel/x.cpp",
     "struct Q {\n"
     "  std::mutex mutex_;\n"
     "  int depth REDUND_GUARDED_BY(mutex_);\n"
     "};\n"
     "int peek(Q& q) {\n"
     "  return q.depth;\n"
     "}\n",
     "guarded-by", 6},
    {"guarded-by-lock-clean", "src/parallel/x.cpp",
     "struct Q {\n"
     "  std::mutex mutex_;\n"
     "  int depth REDUND_GUARDED_BY(mutex_);\n"
     "};\n"
     "int peek(Q& q) {\n"
     "  std::lock_guard<std::mutex> lock(q.mutex_);\n"
     "  return q.depth;\n"
     "}\n",
     nullptr, 0},
    {"guarded-by-requires-clean", "src/parallel/x.cpp",
     "struct Q {\n"
     "  std::mutex mutex_;\n"
     "  int depth REDUND_GUARDED_BY(mutex_);\n"
     "  int peek() REDUND_REQUIRES(mutex_) { return depth; }\n"
     "};\n",
     nullptr, 0},
    {"guarded-by-ctor-clean", "src/parallel/x.cpp",
     "struct Q {\n"
     "  std::mutex mutex_;\n"
     "  int depth REDUND_GUARDED_BY(mutex_);\n"
     "  Q() { depth = 0; }\n"
     "};\n",
     nullptr, 0},
    {"guarded-by-allow-suppresses", "src/parallel/x.cpp",
     "struct Q {\n"
     "  std::mutex mutex_;\n"
     "  int depth REDUND_GUARDED_BY(mutex_);\n"
     "};\n"
     "int peek(Q& q) {\n"
     "  return q.depth;  // redund-lint: allow(guarded-by)\n"
     "}\n",
     nullptr, 0},
    {"lock-requires-fires", "src/parallel/x.cpp",
     "struct W {\n"
     "  std::mutex mutex_;\n"
     "  void drain_locked() REDUND_REQUIRES(mutex_);\n"
     "  void poke();\n"
     "};\n"
     "void W::drain_locked() {}\n"
     "void W::poke() {\n"
     "  drain_locked();\n"
     "}\n",
     "lock-requires", 8},
    {"lock-requires-held-clean", "src/parallel/x.cpp",
     "struct W {\n"
     "  std::mutex mutex_;\n"
     "  void drain_locked() REDUND_REQUIRES(mutex_);\n"
     "  void poke();\n"
     "};\n"
     "void W::drain_locked() {}\n"
     "void W::poke() {\n"
     "  std::lock_guard<std::mutex> lock(mutex_);\n"
     "  drain_locked();\n"
     "}\n",
     nullptr, 0},
    {"lock-requires-allow-suppresses", "src/parallel/x.cpp",
     "struct W {\n"
     "  std::mutex mutex_;\n"
     "  void drain_locked() REDUND_REQUIRES(mutex_);\n"
     "  void poke();\n"
     "};\n"
     "void W::drain_locked() {}\n"
     "void W::poke() {\n"
     "  drain_locked();  // redund-lint: allow(lock-requires)\n"
     "}\n",
     nullptr, 0},
    {"lock-excludes-one-hop-fires", "src/parallel/x.cpp",
     "struct W {\n"
     "  std::mutex mutex_;\n"
     "  void enqueue();\n"
     "  void poke();\n"
     "};\n"
     "void W::enqueue() {\n"
     "  std::lock_guard<std::mutex> lock(mutex_);\n"
     "}\n"
     "void W::poke() {\n"
     "  std::lock_guard<std::mutex> lock(mutex_);\n"
     "  enqueue();\n"
     "}\n",
     "lock-excludes", 11},
    {"lock-excludes-transitive-fires", "src/parallel/x.cpp",
     "struct W {\n"
     "  std::mutex mutex_;\n"
     "  void enqueue();\n"
     "  void stage();\n"
     "  void poke();\n"
     "};\n"
     "void W::enqueue() {\n"
     "  std::lock_guard<std::mutex> lock(mutex_);\n"
     "}\n"
     "void W::stage() {\n"
     "  enqueue();\n"
     "}\n"
     "void W::poke() {\n"
     "  std::lock_guard<std::mutex> lock(mutex_);\n"
     "  stage();\n"
     "}\n",
     "lock-excludes", 15},
    // The CheckpointWriter::append_wal pattern: the guard lives in an
    // inner scope and is released before the call — no deadlock, and
    // the scope-precise hold regions know it.
    {"lock-excludes-scope-release-clean", "src/parallel/x.cpp",
     "struct W {\n"
     "  std::mutex mutex_;\n"
     "  int depth;\n"
     "  void enqueue();\n"
     "  void poke();\n"
     "};\n"
     "void W::enqueue() {\n"
     "  std::lock_guard<std::mutex> lock(mutex_);\n"
     "}\n"
     "void W::poke() {\n"
     "  {\n"
     "    std::lock_guard<std::mutex> lock(mutex_);\n"
     "    depth = 1;\n"
     "  }\n"
     "  enqueue();\n"
     "}\n",
     nullptr, 0},
    {"lock-excludes-annotated-fires", "src/parallel/x.cpp",
     "struct W {\n"
     "  std::mutex mutex_;\n"
     "  void wait_idle() REDUND_EXCLUDES(mutex_);\n"
     "  void poke();\n"
     "};\n"
     "void W::wait_idle() {}\n"
     "void W::poke() {\n"
     "  std::lock_guard<std::mutex> lock(mutex_);\n"
     "  wait_idle();\n"
     "}\n",
     "lock-excludes", 9},
    {"lock-excludes-allow-suppresses", "src/parallel/x.cpp",
     "struct W {\n"
     "  std::mutex mutex_;\n"
     "  void enqueue();\n"
     "  void poke();\n"
     "};\n"
     "void W::enqueue() {\n"
     "  std::lock_guard<std::mutex> lock(mutex_);\n"
     "}\n"
     "void W::poke() {\n"
     "  std::lock_guard<std::mutex> lock(mutex_);\n"
     "  enqueue();  // redund-lint: allow(lock-excludes)\n"
     "}\n",
     nullptr, 0},
};

int run_self_test() {
  int failures = 0;
  for (const Fixture& fixture : kFixtures) {
    Project project;
    project.add_file(fixture.path, fixture.source);
    if (fixture.path2 != nullptr) {
      project.add_file(fixture.path2, fixture.source2);
    }
    project.analyze();
    const std::vector<Finding>& findings = project.findings();
    bool ok;
    if (fixture.expect_rule == nullptr) {
      ok = findings.empty();
    } else {
      ok = std::any_of(findings.begin(), findings.end(),
                       [&](const Finding& f) {
                         return f.rule == fixture.expect_rule &&
                                f.path == fixture.path &&
                                (fixture.expect_line == 0 ||
                                 f.line == fixture.expect_line);
                       });
    }
    if (!ok) {
      ++failures;
      std::cerr << "self-test FAIL: " << fixture.name << " (expected ";
      if (fixture.expect_rule == nullptr) {
        std::cerr << "clean";
      } else {
        std::cerr << fixture.expect_rule << " at line " << fixture.expect_line;
      }
      std::cerr << ", got " << findings.size() << " finding(s)";
      for (const Finding& f : findings) {
        std::cerr << " [" << f.rule << "@" << f.line << "]";
      }
      std::cerr << ")\n";
    }
  }

  // --dump-callgraph smoke: the one-hop fixture must produce an edge.
  {
    Project project;
    project.add_file(kFixtures[0].path, kFixtures[0].source);
    project.add_file("src/runtime/x.cpp",
                     "// redund: hot\n"
                     "void tick(std::vector<int>& v) {\n"
                     "  record(v);\n"
                     "}\n"
                     "void record(std::vector<int>& v) {\n"
                     "  v.push_back(1);\n"
                     "}\n");
    project.analyze();
    std::ostringstream dot;
    project.dump_callgraph(dot);
    const std::string text = dot.str();
    if (text.find("digraph") == std::string::npos ||
        text.find("->") == std::string::npos ||
        text.find("[hot]") == std::string::npos) {
      ++failures;
      std::cerr << "self-test FAIL: dump-callgraph (missing digraph/edge/"
                   "hot label)\n";
    }
  }

  const std::size_t total = std::size(kFixtures) + 1;
  if (failures == 0) {
    std::cout << "redund_lint self-test: " << total << "/" << total
              << " fixtures passed\n";
    return 0;
  }
  std::cerr << "redund_lint self-test: " << failures << "/" << total
            << " fixtures FAILED\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  bool self_test = false;
  bool dump_callgraph = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--dump-callgraph") {
      dump_callgraph = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: redund_lint [--self-test] [--dump-callgraph] "
             "<file-or-dir>...\n"
             "Scans C++ sources for redundancy-project rule violations\n"
             "(see docs/correctness.md and docs/analysis.md).\n"
             "  --self-test       run the embedded rule fixtures\n"
             "  --dump-callgraph  emit the resolved call graph as DOT\n"
             "Exit 0 clean, 1 findings, 2 usage.\n";
      return 0;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (self_test) return run_self_test();
  if (inputs.empty()) {
    std::cerr << "redund_lint: no inputs (try --help)\n";
    return 2;
  }

  std::vector<std::filesystem::path> files;
  for (const std::filesystem::path& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(input)) {
        if (entry.is_regular_file() && is_source_path(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (std::filesystem::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      std::cerr << "redund_lint: no such file or directory: "
                << input.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  Project project;
  std::size_t loaded = 0;
  std::size_t io_errors = 0;
  for (const std::filesystem::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cout << file.string() << ":0: [io-error] cannot open file\n";
      ++io_errors;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    project.add_file(file.generic_string(), buffer.str());
    ++loaded;
  }
  project.analyze();

  if (dump_callgraph) {
    project.dump_callgraph(std::cout);
    return 0;
  }

  std::size_t finding_count = io_errors;
  for (const Finding& finding : project.findings()) {
    ++finding_count;
    std::cout << finding.path << ":" << finding.line << ": ["
              << finding.rule << "] " << finding.message << "\n";
  }
  if (finding_count != 0) {
    std::cerr << "redund_lint: " << finding_count << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "redund_lint: " << loaded << " file(s) clean\n";
  return 0;
}
