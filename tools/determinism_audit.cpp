// determinism_audit — CLI front end for runtime::run_determinism_audit.
//
// Runs the campaign-equivalence matrix (queue kinds x shard counts x
// thread-pool sizes x journal kill/resume points) and exits nonzero when
// any must-agree group diverges. See src/runtime/audit.hpp for what the
// matrix proves and docs/correctness.md for how to read a failure.
//
//   determinism_audit [--quick] [--seed <hex-or-dec>] [--tasks <n>]
//                     [--scratch <dir>]

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "runtime/audit.hpp"

int main(int argc, char** argv) {
  namespace runtime = redund::runtime;
  runtime::AuditOptions options;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "determinism_audit: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--seed") {
      options.seed = std::stoull(value(), nullptr, 0);
    } else if (arg == "--tasks") {
      options.target_tasks = std::stoll(value());
    } else if (arg == "--scratch") {
      options.scratch_dir = value();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: determinism_audit [--quick] [--seed <n>] "
                   "[--tasks <n>] [--scratch <dir>]\n"
                   "Runs the determinism audit matrix; exit 0 when every "
                   "equivalent execution\nproduces a bit-identical report, "
                   "1 on divergence.\n";
      return 0;
    } else {
      std::cerr << "determinism_audit: unknown option " << arg
                << " (try --help)\n";
      return 2;
    }
  }
  if (quick) {
    const std::uint64_t seed = options.seed;
    const std::string scratch = options.scratch_dir;
    options = runtime::quick_audit_options();
    options.seed = seed;
    options.scratch_dir = scratch;
  }

  const runtime::AuditResult result =
      runtime::run_determinism_audit(options, std::cout);
  return result.passed ? 0 : 1;
}
