// Diffs two perf reports (BENCH_*.json written by bench/perf_report or
// `redundctl bench`) and fails when any benchmark's throughput regressed
// beyond the tolerance.
//
//   bench_compare BASELINE.json CURRENT.json [--tolerance 0.15]
//                 [--only PREFIX]...
//   bench_compare --trend REPORT.json... [--only PREFIX]...
//
// `--only PREFIX` (repeatable) restricts both the table and the regression
// verdict to benchmarks whose name starts with PREFIX — how CI gates the
// `event_loop*` headline family hard while the noisier rows stay
// informational.
//
// `--trend` takes any number of report files (typically BENCH_PR*.json),
// orders them by the number embedded in the filename, and prints one
// throughput trajectory table: a row per (bench, n, threads), a column per
// report, and a final last/first ratio. Purely informational — trend mode
// never fails on a regression; docs/performance.md embeds its output.
//
// Exit codes: 0 no regression, 1 regression detected, 2 usage/parse error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <tuple>
#include <vector>

#include "perf/json.hpp"

namespace {

bool matches_only(const std::string& bench,
                  const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&bench](const std::string& prefix) {
                       return bench.rfind(prefix, 0) == 0;
                     });
}

/// "path/to/BENCH_PR7.json" -> "PR7"; falls back to the basename sans
/// extension when the BENCH_ prefix is absent.
std::string column_label(const std::string& path) {
  std::string name = path;
  const auto slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name.erase(0, slash + 1);
  const auto dot = name.rfind('.');
  if (dot != std::string::npos) name.erase(dot);
  if (name.rfind("BENCH_", 0) == 0) name.erase(0, 6);
  return name;
}

/// Last integer embedded in the label, or -1 — orders PR2 before PR10
/// where a lexicographic sort would not.
long label_number(const std::string& label) {
  long value = -1;
  for (std::size_t i = 0; i < label.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(label[i]))) {
      value = std::strtol(label.c_str() + i, nullptr, 10);
      while (i < label.size() &&
             std::isdigit(static_cast<unsigned char>(label[i]))) {
        ++i;
      }
    }
  }
  return value;
}

int run_trend(std::vector<std::string> paths,
              const std::vector<std::string>& only) {
  if (paths.size() < 2) {
    std::fprintf(stderr,
                 "bench_compare: --trend needs at least two report files\n");
    return 2;
  }
  std::stable_sort(paths.begin(), paths.end(),
                   [](const std::string& a, const std::string& b) {
                     return label_number(column_label(a)) <
                            label_number(column_label(b));
                   });

  std::vector<std::vector<redund::perf::BenchRecord>> reports;
  for (const std::string& path : paths) {
    reports.push_back(redund::perf::read_report(path));
  }

  // Row keys in first-appearance order across the report sequence, so a
  // benchmark added in PR4 sorts after the ones the suite started with.
  using Key = std::tuple<std::string, std::int64_t, int>;
  std::vector<Key> keys;
  for (const auto& report : reports) {
    for (const auto& record : report) {
      if (!matches_only(record.bench, only)) continue;
      const Key key{record.bench, record.n, record.threads};
      if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
        keys.push_back(key);
      }
    }
  }

  std::printf("%-28s %10s %8s", "bench", "n", "threads");
  for (const std::string& path : paths) {
    std::printf(" %10s", column_label(path).c_str());
  }
  std::printf(" %8s\n", "overall");
  for (const Key& key : keys) {
    std::printf("%-28s %10lld %8d", std::get<0>(key).c_str(),
                static_cast<long long>(std::get<1>(key)), std::get<2>(key));
    double first = 0.0;
    double last = 0.0;
    for (const auto& report : reports) {
      const auto hit = std::find_if(
          report.begin(), report.end(),
          [&key](const redund::perf::BenchRecord& record) {
            return Key{record.bench, record.n, record.threads} == key;
          });
      if (hit == report.end()) {
        std::printf(" %10s", "-");
        continue;
      }
      std::printf(" %10.3e", hit->items_per_sec);
      if (first == 0.0) first = hit->items_per_sec;
      last = hit->items_per_sec;
    }
    if (first > 0.0) {
      std::printf(" %7.2fx\n", last / first);
    } else {
      std::printf(" %8s\n", "-");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::vector<std::string> only;
  std::vector<std::string> trend_paths;
  bool trend = false;
  double tolerance = 0.15;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (arg == "--only" && i + 1 < argc) {
      only.emplace_back(argv[++i]);
    } else if (arg == "--trend") {
      trend = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_compare BASELINE.json CURRENT.json "
          "[--tolerance 0.15] [--only PREFIX]...\n"
          "       bench_compare --trend REPORT.json... [--only PREFIX]...\n");
      return 0;
    } else if (trend) {
      trend_paths.push_back(arg);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "bench_compare: unexpected argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (trend) {
    trend_paths.insert(trend_paths.end(),
                       {baseline_path, current_path});
    trend_paths.erase(std::remove(trend_paths.begin(), trend_paths.end(),
                                  std::string{}),
                      trend_paths.end());
    try {
      return run_trend(std::move(trend_paths), only);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "bench_compare: %s\n", error.what());
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CURRENT.json "
                 "[--tolerance 0.15]\n");
    return 2;
  }

  try {
    const auto baseline = redund::perf::read_report(baseline_path);
    const auto current = redund::perf::read_report(current_path);
    auto result =
        redund::perf::compare_reports(baseline, current, tolerance);
    if (!only.empty()) {
      result.rows.erase(
          std::remove_if(result.rows.begin(), result.rows.end(),
                         [&only](const redund::perf::Comparison& row) {
                           return !matches_only(row.bench, only);
                         }),
          result.rows.end());
      result.unmatched.erase(
          std::remove_if(result.unmatched.begin(), result.unmatched.end(),
                         [&only](const std::string& name) {
                           return !matches_only(name, only);
                         }),
          result.unmatched.end());
      result.any_regression =
          std::any_of(result.rows.begin(), result.rows.end(),
                      [](const redund::perf::Comparison& row) {
                        return row.regressed;
                      });
    }

    std::printf("%-28s %10s %8s %14s %14s %8s\n", "bench", "n", "threads",
                "baseline", "current", "ratio");
    for (const auto& row : result.rows) {
      std::printf("%-28s %10lld %8d %14.3e %14.3e %7.2fx%s\n",
                  row.bench.c_str(), static_cast<long long>(row.n),
                  row.threads, row.baseline_items_per_sec,
                  row.current_items_per_sec, row.ratio,
                  row.regressed ? "  REGRESSED" : "");
    }
    for (const auto& name : result.unmatched) {
      std::printf("unmatched: %s\n", name.c_str());
    }
    if (result.any_regression) {
      std::fprintf(stderr,
                   "bench_compare: regression beyond %.0f%% tolerance\n",
                   tolerance * 100.0);
      return 1;
    }
    std::printf("no regression (tolerance %.0f%%)\n", tolerance * 100.0);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench_compare: %s\n", error.what());
    return 2;
  }
  return 0;
}
