// Diffs two perf reports (BENCH_*.json written by bench/perf_report or
// `redundctl bench`) and fails when any benchmark's throughput regressed
// beyond the tolerance.
//
//   bench_compare BASELINE.json CURRENT.json [--tolerance 0.15]
//                 [--only PREFIX]...
//
// `--only PREFIX` (repeatable) restricts both the table and the regression
// verdict to benchmarks whose name starts with PREFIX — how CI gates the
// `event_loop*` headline family hard while the noisier rows stay
// informational.
//
// Exit codes: 0 no regression, 1 regression detected, 2 usage/parse error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "perf/json.hpp"

namespace {

bool matches_only(const std::string& bench,
                  const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&bench](const std::string& prefix) {
                       return bench.rfind(prefix, 0) == 0;
                     });
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::vector<std::string> only;
  double tolerance = 0.15;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (arg == "--only" && i + 1 < argc) {
      only.emplace_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_compare BASELINE.json CURRENT.json "
          "[--tolerance 0.15] [--only PREFIX]...\n");
      return 0;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "bench_compare: unexpected argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CURRENT.json "
                 "[--tolerance 0.15]\n");
    return 2;
  }

  try {
    const auto baseline = redund::perf::read_report(baseline_path);
    const auto current = redund::perf::read_report(current_path);
    auto result =
        redund::perf::compare_reports(baseline, current, tolerance);
    if (!only.empty()) {
      result.rows.erase(
          std::remove_if(result.rows.begin(), result.rows.end(),
                         [&only](const redund::perf::Comparison& row) {
                           return !matches_only(row.bench, only);
                         }),
          result.rows.end());
      result.unmatched.erase(
          std::remove_if(result.unmatched.begin(), result.unmatched.end(),
                         [&only](const std::string& name) {
                           return !matches_only(name, only);
                         }),
          result.unmatched.end());
      result.any_regression =
          std::any_of(result.rows.begin(), result.rows.end(),
                      [](const redund::perf::Comparison& row) {
                        return row.regressed;
                      });
    }

    std::printf("%-28s %10s %8s %14s %14s %8s\n", "bench", "n", "threads",
                "baseline", "current", "ratio");
    for (const auto& row : result.rows) {
      std::printf("%-28s %10lld %8d %14.3e %14.3e %7.2fx%s\n",
                  row.bench.c_str(), static_cast<long long>(row.n),
                  row.threads, row.baseline_items_per_sec,
                  row.current_items_per_sec, row.ratio,
                  row.regressed ? "  REGRESSED" : "");
    }
    for (const auto& name : result.unmatched) {
      std::printf("unmatched: %s\n", name.c_str());
    }
    if (result.any_regression) {
      std::fprintf(stderr,
                   "bench_compare: regression beyond %.0f%% tolerance\n",
                   tolerance * 100.0);
      return 1;
    }
    std::printf("no regression (tolerance %.0f%%)\n", tolerance * 100.0);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench_compare: %s\n", error.what());
    return 2;
  }
  return 0;
}
