// redundctl — command-line front-end to the redundancy library.
//
//   redundctl plan     --tasks N --epsilon E [--scheme NAME] [--min-mult M]
//                      [--lp-dim D] [--no-ringers] [--out FILE]
//   redundctl analyze  --plan FILE --epsilon E
//   redundctl simulate --plan FILE --adversary P [--replicas R] [--seed S]
//                      [--strategy NAME] [--threads T]
//   redundctl run-async [--plan FILE | --tasks N --epsilon E [--scheme NAME]]
//                      [--participants P] [--sybils K] [--strategy NAME]
//                      [--stragglers F] [--slowdown X] [--dropout D]
//                      [--deadline T] [--retries R] [--benign-rate B]
//                      [--sample-interval T] [--no-adaptive] [--no-reactive]
//                      [--adaptive [--replan-interval N]]
//                      [--seed S] [--queue heap|calendar]
//                      [--fault-plan FILE] [--max-sim-time T]
//                      [--recompute-budget N]
//                      [--journal FILE [--checkpoint-interval N]
//                       [--full-snapshot-every N] [--no-wal] [--resume]]
//                      [--shards S [--threads T]]
//   redundctl budget   --tasks N --budget B [--adversary P]
//   redundctl bench    [--quick] [--out FILE]
//   redundctl help
//
// plan      builds and realizes a distribution and (optionally) writes the
//           portable plan file consumed by the other subcommands.
// analyze   loads a plan file and reports its detection profile/validity.
// simulate  runs the Monte Carlo adversary simulation against a plan file.
// run-async executes a campaign on the asynchronous supervisor runtime
//           (event-driven: stragglers, dropouts, deadlines, retries, quorum
//           validation, adaptive replication) and prints a RuntimeReport.
//           --fault-plan injects a redund-faults-v1 chaos schedule;
//           --journal multi-level-checkpoints the run (crash safety;
//           --full-snapshot-every sets the L1-delta-to-L2-full cadence)
//           and --resume restores/replays it after a kill — with
//           --shards, the fleet survives losing one shard's journal
//           via partner (L3) copies.
// budget    answers "what level can I afford", including a robustness margin
//           against an adversary share p (inverts Prop. 3).
// bench     runs the headline perf suite and writes a BENCH_*.json report
//           (diff two reports with the bench_compare tool).
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/constraints.hpp"
#include "perf/json.hpp"
#include "perf/suite.hpp"
#include "core/detection.hpp"
#include "core/plan_io.hpp"
#include "core/planner.hpp"
#include "core/schemes/balanced.hpp"
#include "parallel/thread_pool.hpp"
#include "report/table.hpp"
#include "runtime/audit.hpp"
#include "runtime/sharded.hpp"
#include "runtime/supervisor.hpp"
#include "sim/monte_carlo.hpp"

namespace core = redund::core;
namespace sim = redund::sim;
namespace rep = redund::report;

namespace {

/// Minimal --key value argument parser; flags take "true".
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --option, got '" + key + "'");
      }
      key.erase(0, 2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto value = get(key);
    if (!value) throw std::invalid_argument("missing required --" + key);
    return *value;
  }
  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto value = get(key);
    return value ? std::stod(*value) : fallback;
  }
  [[nodiscard]] std::int64_t integer(const std::string& key,
                                     std::int64_t fallback) const {
    const auto value = get(key);
    return value ? std::stoll(*value) : fallback;
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return get(key).has_value();
  }

 private:
  std::map<std::string, std::string> values_;
};

core::Scheme parse_scheme(const std::string& name) {
  if (name == "simple") return core::Scheme::kSimple;
  if (name == "gs" || name == "golle-stubblebine") {
    return core::Scheme::kGolleStubblebine;
  }
  if (name == "balanced") return core::Scheme::kBalanced;
  if (name == "min-assign") return core::Scheme::kMinAssignment;
  if (name == "min-mult") return core::Scheme::kMinMultiplicity;
  throw std::invalid_argument("unknown scheme '" + name + "'");
}

sim::CheatStrategy parse_strategy(const std::string& name) {
  if (name == "honest") return sim::CheatStrategy::kHonest;
  if (name == "always") return sim::CheatStrategy::kAlwaysCheat;
  if (name == "singletons") return sim::CheatStrategy::kSingletons;
  if (name == "pairs") return sim::CheatStrategy::kExactTuple;
  throw std::invalid_argument("unknown strategy '" + name + "'");
}

core::RealizedPlan load_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open plan file '" + path + "'");
  return core::read_plan(in);
}

int cmd_plan(const Args& args) {
  core::PlanRequest request;
  request.task_count = static_cast<std::int64_t>(std::stoll(args.require("tasks")));
  request.epsilon = std::stod(args.require("epsilon"));
  request.scheme = parse_scheme(args.get("scheme").value_or("balanced"));
  request.minimum_multiplicity = args.integer("min-mult", 2);
  request.lp_dimension = args.integer("lp-dim", 12);
  request.add_ringers = !args.flag("no-ringers");

  const core::Plan plan = core::make_plan(request);
  std::cout << "scheme:            " << plan.theoretical.label() << "\n"
            << "tasks:             " << rep::with_commas(plan.realized.task_count) << "\n"
            << "total assignments: "
            << rep::with_commas(plan.realized.total_assignments()) << "\n"
            << "redundancy factor: "
            << rep::fixed(plan.realized.redundancy_factor(), 4) << "\n"
            << "tail:              " << plan.realized.tail_tasks
            << " task(s) at multiplicity " << plan.realized.tail_multiplicity
            << "\n"
            << "ringers:           " << plan.realized.ringer_count
            << " at multiplicity " << plan.realized.ringer_multiplicity << "\n"
            << "guaranteed level:  " << rep::fixed(plan.achieved_level, 4)
            << "   (at p=0.10: " << rep::fixed(plan.achieved_level_p10, 4)
            << ")\n";
  if (const auto out = args.get("out")) {
    std::ofstream file(*out);
    if (!file) throw std::invalid_argument("cannot write '" + *out + "'");
    core::write_plan(file, plan.realized);
    std::cout << "plan written to:   " << *out << "\n";
  }
  return 0;
}

int cmd_analyze(const Args& args) {
  const core::RealizedPlan plan = load_plan(args.require("plan"));
  const double epsilon = std::stod(args.require("epsilon"));
  const bool has_ringers = plan.ringer_count > 0;
  const core::Distribution deployed = plan.as_distribution(has_ringers);

  std::cout << "tasks " << rep::with_commas(plan.task_count) << ", assignments "
            << rep::with_commas(plan.total_assignments()) << ", RF "
            << rep::fixed(plan.redundancy_factor(), 4) << "\n\n";

  rep::Table table({"k", "P_k (p->0)", "P_k (p=0.05)", "P_k (p=0.15)"});
  const std::int64_t top = deployed.dimension() - (has_ringers ? 1 : 0);
  for (std::int64_t k = 1; k <= top; ++k) {
    table.add_row({std::to_string(k),
                   rep::fixed(core::detection_probability(deployed, k, 0.0), 4),
                   rep::fixed(core::detection_probability(deployed, k, 0.05), 4),
                   rep::fixed(core::detection_probability(deployed, k, 0.15), 4)});
  }
  table.print(std::cout);

  const auto report = core::check_validity(
      deployed, static_cast<double>(plan.task_count), epsilon, 5e-3);
  std::cout << "\nvalidity at eps=" << epsilon << ": "
            << (report.valid ? "OK" : "VIOLATED") << "\n";
  for (const auto& violation : report.violations) {
    std::cout << "  " << violation.description << "\n";
  }
  return report.valid ? 0 : 2;
}

int cmd_simulate(const Args& args) {
  const core::RealizedPlan plan = load_plan(args.require("plan"));
  sim::AdversaryConfig adversary;
  adversary.proportion = std::stod(args.require("adversary"));
  adversary.strategy = parse_strategy(args.get("strategy").value_or("always"));
  if (adversary.strategy == sim::CheatStrategy::kExactTuple) {
    adversary.tuple_size = 2;
  }
  sim::MonteCarloConfig config;
  config.replicas = args.integer("replicas", 100);
  config.master_seed = static_cast<std::uint64_t>(args.integer("seed", 1));

  redund::parallel::ThreadPool pool(
      static_cast<std::size_t>(args.integer("threads", 0)));
  const sim::Workload workload(plan);
  const auto result = sim::run_monte_carlo(pool, workload, adversary, config);

  std::cout << "replicas:            " << result.replicas << "\n"
            << "adversary share:     " << adversary.proportion << " ("
            << to_string(adversary.strategy) << ")\n"
            << "cheat attempts/run:  "
            << result.cheat_attempts / std::max<std::int64_t>(1, result.replicas)
            << "\n"
            << "detection rate:      "
            << rep::fixed(result.detection_rate(), 4) << "\n"
            << "alarm probability:   "
            << rep::fixed(result.alarm_probability(), 4) << "\n"
            << "corruption prob.:    "
            << rep::fixed(result.corruption_probability(), 4) << "\n";
  return 0;
}

int cmd_run_async(const Args& args) {
  namespace runtime = redund::runtime;
  runtime::RuntimeConfig config;
  if (const auto plan_path = args.get("plan")) {
    config.plan = load_plan(*plan_path);
  } else {
    core::PlanRequest request;
    request.task_count = args.integer("tasks", 2000);
    request.epsilon = args.number("epsilon", 0.5);
    request.scheme = parse_scheme(args.get("scheme").value_or("balanced"));
    config.plan = core::make_plan(request).realized;
  }
  config.honest_participants = args.integer("participants", 120);
  config.sybil_identities = args.integer("sybils", 30);
  config.strategy = parse_strategy(args.get("strategy").value_or("always"));
  if (config.strategy == sim::CheatStrategy::kExactTuple) {
    config.tuple_size = 2;
  }
  config.benign_error_rate = args.number("benign-rate", 0.0);
  config.reactive = !args.flag("no-reactive");
  config.latency.straggler_fraction = args.number("stragglers", 0.15);
  config.latency.straggler_slowdown = args.number("slowdown", 8.0);
  config.latency.dropout_probability = args.number("dropout", 0.02);
  config.latency.speed_sigma = args.number("speed-sigma", 0.25);
  config.retry.deadline = args.number("deadline", 0.0);
  config.retry.max_retries = args.integer("retries", 3);
  config.adaptive.enabled = !args.flag("no-adaptive");
  if (args.flag("adaptive")) {
    // Online adaptive control: the controller's detection target defaults
    // to the plan's own epsilon so "keep the configured level" needs no
    // extra flag.
    config.control.enabled = true;
    config.control.epsilon = args.number("epsilon", 0.5);
    config.control.replan_interval =
        args.integer("replan-interval", config.control.replan_interval);
  }
  config.sample_interval = args.number("sample-interval", 0.0);
  config.seed = static_cast<std::uint64_t>(args.integer("seed", 1));
  if (const auto fault_plan = args.get("fault-plan")) {
    config.faults = runtime::FaultSchedule::load(*fault_plan);
  }
  config.health.max_sim_time = args.number("max-sim-time", 0.0);
  config.health.recompute_budget = args.integer("recompute-budget", -1);
  if (const auto journal = args.get("journal")) {
    config.journal.path = *journal;
    config.journal.checkpoint_interval =
        args.integer("checkpoint-interval", 4096);
    config.journal.full_snapshot_every =
        args.integer("full-snapshot-every", 8);
    config.journal.wal = !args.flag("no-wal");
  }
  const std::string queue_name = args.get("queue").value_or("calendar");
  if (queue_name == "heap") {
    config.queue = runtime::QueueKind::kBinaryHeap;
  } else if (queue_name == "calendar") {
    config.queue = runtime::QueueKind::kCalendar;
  } else {
    throw std::invalid_argument("unknown --queue '" + queue_name +
                                "' (heap|calendar)");
  }

  const std::int64_t shards = args.integer("shards", 1);
  const bool resume = args.flag("resume");
  if (resume) {
    if (config.journal.path.empty()) {
      throw std::invalid_argument("run-async: --resume requires --journal");
    }
    if (shards > 1) {
      // Fleet resume: each shard restores from its own journal, falls
      // back to the partner copy (L3) in the next shard's journal, and
      // re-runs from scratch as a last resort — bit-identical either way.
      redund::parallel::ThreadPool pool(
          static_cast<std::size_t>(args.integer("threads", 0)));
      const runtime::RuntimeReport report =
          runtime::resume_sharded_campaign(config, shards, pool);
      runtime::print(std::cout, report);
      return 0;
    }
    const runtime::RuntimeReport report =
        runtime::resume_async_campaign(config);
    runtime::print(std::cout, report);
    return 0;
  }
  if (shards > 1) {
    redund::parallel::ThreadPool pool(
        static_cast<std::size_t>(args.integer("threads", 0)));
    const runtime::RuntimeReport report =
        runtime::run_sharded_campaign(config, shards, pool);
    runtime::print(std::cout, report);
    return 0;
  }
  const runtime::RuntimeReport report = runtime::run_async_campaign(config);
  runtime::print(std::cout, report);
  return 0;
}

int cmd_budget(const Args& args) {
  const auto tasks = std::stod(args.require("tasks"));
  const auto budget = std::stod(args.require("budget"));
  const double p = args.number("adversary", 0.0);

  const double affordable = core::balanced_level_for_budget(tasks, budget);
  std::cout << "affordable asymptotic level: " << rep::fixed(affordable, 4)
            << "\n";
  if (affordable <= 0.0) {
    std::cout << "budget is below one assignment per task — unworkable\n";
    return 2;
  }
  if (p > 0.0) {
    const double effective = core::balanced_detection(affordable, p);
    std::cout << "effective level at p=" << p << ": "
              << rep::fixed(effective, 4) << "\n";
    const double design = core::balanced_level_for_robustness(affordable, p);
    std::cout << "to guarantee " << rep::fixed(affordable, 4) << " at p=" << p
              << ", design for eps=" << rep::fixed(design, 4) << " costing "
              << rep::with_commas(tasks *
                                  core::balanced_redundancy_factor(design))
              << " assignments\n";
  }
  return 0;
}

int cmd_bench(const Args& args) {
  redund::perf::SuiteOptions options;
  options.quick = args.flag("quick");
  const std::string out = args.get("out").value_or("BENCH_PR8.json");

  const auto records = redund::perf::run_suite(options);
  rep::Table table({"bench", "n", "threads", "items/sec", "wall_ms"});
  for (const auto& r : records) {
    table.add_row({r.bench, rep::with_commas(static_cast<double>(r.n)),
                   std::to_string(r.threads), rep::scientific(r.items_per_sec, 3),
                   rep::fixed(r.wall_ms, 1)});
  }
  table.print(std::cout);
  redund::perf::write_report(out, records);
  std::cout << "wrote " << out << " (" << records.size() << " records)\n";
  return 0;
}

int cmd_audit(const Args& args) {
  namespace runtime = redund::runtime;
  runtime::AuditOptions options;
  if (args.flag("quick")) options = runtime::quick_audit_options();
  if (const auto seed = args.get("seed")) {
    options.seed = std::stoull(*seed, nullptr, 0);
  }
  if (const auto tasks = args.get("tasks")) {
    options.target_tasks = std::stoll(*tasks);
  }
  if (const auto scratch = args.get("scratch")) {
    options.scratch_dir = *scratch;
  }
  const runtime::AuditResult result =
      runtime::run_determinism_audit(options, std::cout);
  return result.passed ? 0 : 1;
}

int cmd_help() {
  std::cout <<
      R"(redundctl — collusion-resistant redundancy planning (CLUSTER 2005)

subcommands:
  plan     --tasks N --epsilon E [--scheme simple|gs|balanced|min-assign|min-mult]
           [--min-mult M] [--lp-dim D] [--no-ringers] [--out FILE]
  analyze  --plan FILE --epsilon E
  simulate --plan FILE --adversary P [--replicas R] [--seed S]
           [--strategy honest|always|singletons|pairs] [--threads T]
  run-async [--plan FILE | --tasks N --epsilon E [--scheme NAME]]
           [--participants P] [--sybils K] [--strategy NAME]
           [--stragglers F] [--slowdown X] [--dropout D] [--speed-sigma S]
           [--deadline T] [--retries R] [--benign-rate B]
           [--sample-interval T] [--no-adaptive] [--no-reactive] [--seed S]
           [--adaptive [--replan-interval N]]
           [--queue heap|calendar] [--fault-plan FILE] [--max-sim-time T]
           [--recompute-budget N]
           [--journal FILE [--checkpoint-interval N]
            [--full-snapshot-every N] [--no-wal] [--resume]]
           [--shards S [--threads T]]
  budget   --tasks N --budget B [--adversary P]
  bench    [--quick] [--out FILE]
  audit    [--quick] [--seed S] [--tasks N] [--scratch DIR]
  help
)";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string command = argc > 1 ? argv[1] : "help";
    if (command == "help" || command == "--help" || command == "-h") {
      return cmd_help();
    }
    const Args args(argc, argv);
    if (command == "plan") return cmd_plan(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "run-async") return cmd_run_async(args);
    if (command == "budget") return cmd_budget(args);
    if (command == "bench") return cmd_bench(args);
    if (command == "audit") return cmd_audit(args);
    std::cerr << "unknown subcommand '" << command << "' (try: help)\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "redundctl: " << error.what() << "\n";
    return 1;
  }
}
