// Exact rational arithmetic over checked 64-bit integers.
//
// The paper's theorems are algebraic identities (Fact 1's optimal vertex,
// Proposition 1's relaxed optimum, the C_k constraint boundary). The rest of
// the library evaluates them in double precision; this type lets the test
// suite re-verify the load-bearing identities *exactly*, eliminating any
// doubt that a pass is a rounding accident. Throws std::overflow_error
// rather than silently wrapping — these checks run on small numerators, and
// an overflow means the check was misapplied, not that it should degrade.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace redund::math {

/// Exact rational p/q with q > 0, always stored in lowest terms.
class Rational {
 public:
  constexpr Rational() noexcept = default;

  /// From an integer.
  constexpr Rational(std::int64_t value) noexcept  // NOLINT(google-explicit-constructor)
      : numerator_(value) {}

  /// From numerator/denominator; denominator must be non-zero.
  constexpr Rational(std::int64_t numerator, std::int64_t denominator)
      : numerator_(numerator), denominator_(denominator) {
    if (denominator_ == 0) {
      throw std::invalid_argument("Rational: zero denominator");
    }
    normalize_();
  }

  [[nodiscard]] constexpr std::int64_t numerator() const noexcept {
    return numerator_;
  }
  [[nodiscard]] constexpr std::int64_t denominator() const noexcept {
    return denominator_;
  }

  [[nodiscard]] constexpr bool is_integer() const noexcept {
    return denominator_ == 1;
  }

  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(numerator_) /
           static_cast<double>(denominator_);
  }

  [[nodiscard]] std::string to_string() const {
    return denominator_ == 1
               ? std::to_string(numerator_)
               : std::to_string(numerator_) + "/" + std::to_string(denominator_);
  }

  friend constexpr Rational operator+(const Rational& a, const Rational& b) {
    // a/b + c/d = (ad + cb) / bd, with gcd pre-reduction to delay overflow.
    const std::int64_t g = std::gcd(a.denominator_, b.denominator_);
    const std::int64_t bd = checked_mul_(a.denominator_ / g, b.denominator_);
    const std::int64_t lhs = checked_mul_(a.numerator_, b.denominator_ / g);
    const std::int64_t rhs = checked_mul_(b.numerator_, a.denominator_ / g);
    return Rational(checked_add_(lhs, rhs), bd);
  }

  friend constexpr Rational operator-(const Rational& a, const Rational& b) {
    return a + Rational(checked_negate_(b.numerator_), b.denominator_);
  }

  friend constexpr Rational operator*(const Rational& a, const Rational& b) {
    // Cross-reduce before multiplying.
    const std::int64_t g1 = std::gcd(abs_(a.numerator_), b.denominator_);
    const std::int64_t g2 = std::gcd(abs_(b.numerator_), a.denominator_);
    return Rational(
        checked_mul_(a.numerator_ / g1, b.numerator_ / g2),
        checked_mul_(a.denominator_ / g2, b.denominator_ / g1));
  }

  friend constexpr Rational operator/(const Rational& a, const Rational& b) {
    if (b.numerator_ == 0) {
      throw std::invalid_argument("Rational: division by zero");
    }
    return a * Rational(b.denominator_, b.numerator_);
  }

  constexpr Rational& operator+=(const Rational& other) {
    *this = *this + other;
    return *this;
  }
  constexpr Rational& operator-=(const Rational& other) {
    *this = *this - other;
    return *this;
  }
  constexpr Rational& operator*=(const Rational& other) {
    *this = *this * other;
    return *this;
  }
  constexpr Rational& operator/=(const Rational& other) {
    *this = *this / other;
    return *this;
  }

  friend constexpr bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.numerator_ == b.numerator_ && a.denominator_ == b.denominator_;
  }

  friend constexpr std::strong_ordering operator<=>(const Rational& a,
                                                    const Rational& b) {
    // a/b <=> c/d  ~  ad <=> cb (denominators positive).
    const std::int64_t lhs = checked_mul_(a.numerator_, b.denominator_);
    const std::int64_t rhs = checked_mul_(b.numerator_, a.denominator_);
    return lhs <=> rhs;
  }

 private:
  static constexpr std::int64_t abs_(std::int64_t x) noexcept {
    return x < 0 ? -x : x;
  }

  static constexpr std::int64_t checked_add_(std::int64_t a, std::int64_t b) {
    std::int64_t out = 0;
    if (__builtin_add_overflow(a, b, &out)) {
      throw std::overflow_error("Rational: addition overflow");
    }
    return out;
  }

  static constexpr std::int64_t checked_mul_(std::int64_t a, std::int64_t b) {
    std::int64_t out = 0;
    if (__builtin_mul_overflow(a, b, &out)) {
      throw std::overflow_error("Rational: multiplication overflow");
    }
    return out;
  }

  static constexpr std::int64_t checked_negate_(std::int64_t a) {
    if (a == std::numeric_limits<std::int64_t>::min()) {
      throw std::overflow_error("Rational: negation overflow");
    }
    return -a;
  }

  constexpr void normalize_() {
    if (denominator_ < 0) {
      numerator_ = checked_negate_(numerator_);
      denominator_ = checked_negate_(denominator_);
    }
    const std::int64_t g = std::gcd(abs_(numerator_), denominator_);
    if (g > 1) {
      numerator_ /= g;
      denominator_ /= g;
    }
    if (numerator_ == 0) denominator_ = 1;
  }

  std::int64_t numerator_ = 0;
  std::int64_t denominator_ = 1;
};

/// Exact binomial coefficient as a Rational (integer-valued); throws
/// std::overflow_error when it does not fit. n, k small (tests only).
[[nodiscard]] constexpr Rational rational_binomial(std::int64_t n,
                                                   std::int64_t k) {
  if (k < 0 || n < 0 || k > n) return Rational(0);
  Rational result(1);
  if (k > n - k) k = n - k;
  for (std::int64_t i = 1; i <= k; ++i) {
    result *= Rational(n - k + i, i);
  }
  return result;
}

}  // namespace redund::math
