// Binomial coefficients and related combinatorics, in both the linear and the
// log domain.
//
// The detection-probability engine evaluates sums of the form
//   sum_{i > k} C(i, k) * x_i
// (paper, Section 2.2) where i can reach a few hundred for extreme parameter
// values (N = 1e7, epsilon = 0.99). C(i, k) overflows double for i beyond
// ~1030 and loses precision well before that when computed by naive repeated
// multiplication, so the library computes log C(i, k) via lgamma and
// exponentiates only ratios that are known to be representable.
#pragma once

#include <cstdint>
#include <optional>

namespace redund::math {

/// Natural log of the binomial coefficient C(n, k).
///
/// Preconditions: n >= 0, k >= 0. Returns -infinity when k > n (the
/// coefficient is zero), 0.0 when k == 0 or k == n.
[[nodiscard]] double log_binomial(std::int64_t n, std::int64_t k) noexcept;

/// Binomial coefficient C(n, k) as a double.
///
/// Exact for results below 2^53 (computed by the multiplicative formula with
/// division interleaved to stay integral); falls back to exp(log_binomial)
/// for larger values, accurate to ~1e-12 relative error. Returns 0 when
/// k > n or either argument is negative.
[[nodiscard]] double binomial(std::int64_t n, std::int64_t k) noexcept;

/// Exact binomial coefficient in unsigned 64-bit arithmetic.
///
/// Returns std::nullopt if the true value would overflow uint64_t, or when
/// k > n / arguments are negative. Used by tests as an oracle for binomial().
[[nodiscard]] std::optional<std::uint64_t> binomial_exact(std::int64_t n,
                                                          std::int64_t k) noexcept;

/// Natural log of n! (n >= 0).
[[nodiscard]] double log_factorial(std::int64_t n) noexcept;

/// n! as a double; exact through n = 22, lgamma-based beyond.
[[nodiscard]] double factorial(std::int64_t n) noexcept;

}  // namespace redund::math
