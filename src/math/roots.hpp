// Scalar root finding (bisection and Brent's method).
//
// Used by the planner facade to invert monotone relationships the paper
// states in closed form only one way — e.g. finding the detection level
// epsilon achievable with a given assignment budget (inverting the Balanced
// redundancy factor ln(1/(1-eps))/eps), or the Golle-Stubblebine parameter c
// from a non-asymptotic constraint.
#pragma once

#include <functional>
#include <optional>

namespace redund::math {

/// Options controlling the termination of a root search.
struct RootOptions {
  double x_tolerance = 1e-12;    ///< Stop when the bracket is this narrow.
  double f_tolerance = 0.0;      ///< Also stop when |f(x)| <= f_tolerance.
  int max_iterations = 200;      ///< Hard cap on function evaluations.
};

/// Result of a root search.
struct RootResult {
  double x = 0.0;          ///< Best estimate of the root.
  double f_of_x = 0.0;     ///< Residual at x.
  int iterations = 0;      ///< Iterations consumed.
  bool converged = false;  ///< True when a tolerance was met within budget.
};

/// Bisection on [lo, hi]. Requires f(lo) and f(hi) to have opposite signs
/// (a zero endpoint counts); returns std::nullopt when the bracket is invalid.
/// Converges unconditionally at one bit per iteration.
[[nodiscard]] std::optional<RootResult> bisect(
    const std::function<double(double)>& f, double lo, double hi,
    const RootOptions& options = {});

/// Brent's method on [lo, hi]: inverse-quadratic / secant steps with a
/// bisection safety net; superlinear on smooth functions, never worse than
/// bisection. Same bracketing contract as bisect().
[[nodiscard]] std::optional<RootResult> brent(
    const std::function<double(double)>& f, double lo, double hi,
    const RootOptions& options = {});

}  // namespace redund::math
