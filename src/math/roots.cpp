#include "math/roots.hpp"

#include <cmath>
#include <utility>

namespace redund::math {

namespace {

bool brackets_root(double f_lo, double f_hi) noexcept {
  return (f_lo <= 0.0 && f_hi >= 0.0) || (f_lo >= 0.0 && f_hi <= 0.0);
}

}  // namespace

std::optional<RootResult> bisect(const std::function<double(double)>& f,
                                 double lo, double hi,
                                 const RootOptions& options) {
  if (!(lo <= hi)) return std::nullopt;
  double f_lo = f(lo);
  double f_hi = f(hi);
  if (!brackets_root(f_lo, f_hi)) return std::nullopt;

  RootResult result;
  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    const double mid = lo + 0.5 * (hi - lo);
    const double f_mid = f(mid);
    result.x = mid;
    result.f_of_x = f_mid;
    if (std::abs(f_mid) <= options.f_tolerance ||
        (hi - lo) * 0.5 <= options.x_tolerance) {
      result.converged = true;
      return result;
    }
    if (brackets_root(f_lo, f_mid)) {
      hi = mid;
      f_hi = f_mid;
    } else {
      lo = mid;
      f_lo = f_mid;
    }
  }
  return result;
}

std::optional<RootResult> brent(const std::function<double(double)>& f,
                                double lo, double hi,
                                const RootOptions& options) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  if (!brackets_root(fa, fb)) return std::nullopt;
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;          // Previous iterate.
  double fc = fa;
  double d = b - a;      // Step taken two iterations ago (for safeguards).
  bool used_bisection = true;

  RootResult result;
  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    result.x = b;
    result.f_of_x = fb;
    if (fb == 0.0 || std::abs(fb) <= options.f_tolerance ||
        std::abs(b - a) <= options.x_tolerance) {
      result.converged = true;
      return result;
    }

    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant step.
      s = b - fb * (b - a) / (fb - fa);
    }

    const double mid = 0.5 * (a + b);
    const bool s_outside = (s < std::min(mid, b) || s > std::max(mid, b));
    const bool step_too_small =
        (used_bisection && std::abs(s - b) >= 0.5 * std::abs(b - c)) ||
        (!used_bisection && std::abs(s - b) >= 0.5 * std::abs(d));
    if (s_outside || step_too_small) {
      s = mid;
      used_bisection = true;
    } else {
      used_bisection = false;
    }

    const double fs = f(s);
    d = c - b;
    c = b;
    fc = fb;
    if (brackets_root(fa, fs)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return result;
}

}  // namespace redund::math
