#include "math/binomial.hpp"

#include <array>
#include <cmath>
#include <limits>

namespace redund::math {

namespace {

// Factorials exact in double (and uint64) through 20!; 21! and 22! are exact
// in double but not uint64.
constexpr std::array<double, 23> kFactorialTable = {
    1.0,
    1.0,
    2.0,
    6.0,
    24.0,
    120.0,
    720.0,
    5040.0,
    40320.0,
    362880.0,
    3628800.0,
    39916800.0,
    479001600.0,
    6227020800.0,
    87178291200.0,
    1307674368000.0,
    20922789888000.0,
    355687428096000.0,
    6402373705728000.0,
    121645100408832000.0,
    2432902008176640000.0,
    51090942171709440000.0,
    1124000727777607680000.0,
};

}  // namespace

double log_factorial(std::int64_t n) noexcept {
  if (n < 0) return -std::numeric_limits<double>::infinity();
  if (n < static_cast<std::int64_t>(kFactorialTable.size())) {
    return std::log(kFactorialTable[static_cast<std::size_t>(n)]);
  }
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double factorial(std::int64_t n) noexcept {
  if (n < 0) return 0.0;
  if (n < static_cast<std::int64_t>(kFactorialTable.size())) {
    return kFactorialTable[static_cast<std::size_t>(n)];
  }
  return std::exp(std::lgamma(static_cast<double>(n) + 1.0));
}

double log_binomial(std::int64_t n, std::int64_t k) noexcept {
  if (n < 0 || k < 0 || k > n) {
    return -std::numeric_limits<double>::infinity();
  }
  if (k == 0 || k == n) return 0.0;
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

std::optional<std::uint64_t> binomial_exact(std::int64_t n, std::int64_t k) noexcept {
  if (n < 0 || k < 0 || k > n) return std::nullopt;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  // Multiplicative formula: result stays integral after each division because
  // C(n - k + i, i) is integral for every prefix.
  for (std::int64_t i = 1; i <= k; ++i) {
    const auto numerator = static_cast<std::uint64_t>(n - k + i);
    // Overflow check for result * numerator.
    if (result > std::numeric_limits<std::uint64_t>::max() / numerator) {
      return std::nullopt;
    }
    result = result * numerator / static_cast<std::uint64_t>(i);
  }
  return result;
}

double binomial(std::int64_t n, std::int64_t k) noexcept {
  if (n < 0 || k < 0 || k > n) return 0.0;
  if (const auto exact = binomial_exact(n, k); exact.has_value()) {
    return static_cast<double>(*exact);
  }
  return std::exp(log_binomial(n, k));
}

}  // namespace redund::math
