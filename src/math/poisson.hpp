// Zero-truncated and m-truncated Poisson distributions.
//
// Theorem 1 of the paper observes that the Balanced distribution is N times
// the zero-truncated Poisson distribution with parameter
//   gamma = ln(1 / (1 - epsilon)),
// and the Section 7 extension (minimum multiplicity m) is N times the Poisson
// distribution truncated below m. This header provides the probability masses,
// normalising constants, means, and tail sums those schemes need, all
// evaluated with compensated summation so the tiny tail masses survive.
#pragma once

#include <cstdint>

namespace redund::math {

/// Poisson pmf p(i) = e^{-gamma} gamma^i / i!, evaluated in the log domain.
/// gamma must be > 0 and i >= 0; returns 0 otherwise.
[[nodiscard]] double poisson_pmf(double gamma, std::int64_t i) noexcept;

/// Zero-truncated Poisson pmf: p(i) / (1 - e^{-gamma}) for i >= 1, 0 for i < 1.
[[nodiscard]] double zero_truncated_poisson_pmf(double gamma, std::int64_t i) noexcept;

/// Pmf of the Poisson distribution truncated below m (support i >= m >= 0):
///   p(i) / P[X >= m].
/// Truncation at m = 1 reduces to the zero-truncated pmf. Returns 0 for i < m.
[[nodiscard]] double truncated_poisson_pmf(double gamma, std::int64_t m,
                                           std::int64_t i) noexcept;

/// Upper tail P[X >= m] of Poisson(gamma). Exact complement-style evaluation:
/// sums the head with compensated summation and subtracts from 1 when m is
/// small; sums the tail directly when the head would dominate.
[[nodiscard]] double poisson_upper_tail(double gamma, std::int64_t m) noexcept;

/// Mean of the Poisson truncated below m:
///   E[X | X >= m] = (gamma * P[X >= m - 1]) / P[X >= m]   for m >= 1,
/// and plain gamma for m <= 0. (Identity: sum_{i>=m} i p(i) = gamma P[X>=m-1].)
[[nodiscard]] double truncated_poisson_mean(double gamma, std::int64_t m) noexcept;

/// Partial weighted tail sum_{i >= m} i * p(i) of Poisson(gamma)
/// (the unnormalised numerator of truncated_poisson_mean).
[[nodiscard]] double poisson_weighted_tail(double gamma, std::int64_t m) noexcept;

}  // namespace redund::math
