// Compensated floating-point summation utilities.
//
// The redundancy distributions in this library are infinite series whose terms
// span many orders of magnitude (e.g. the zero-truncated Poisson masses of the
// Balanced distribution, Eq. (2) of the paper). Naive left-to-right summation
// loses the small tail terms that determine detection probabilities for high
// multiplicities, so all series evaluation in redund_math goes through the
// Neumaier accumulator defined here.
#pragma once

#include <cstddef>
#include <cmath>
#include <span>

namespace redund::math {

/// Neumaier (improved Kahan–Babuska) compensated accumulator.
///
/// Maintains a running sum plus a correction term so that the result is
/// accurate to within a few ULPs even when terms of wildly different
/// magnitudes are mixed, or when large terms cancel.
///
/// Usage:
/// ```
/// NeumaierSum acc;
/// for (double t : terms) acc.add(t);
/// double total = acc.value();
/// ```
class NeumaierSum {
 public:
  constexpr NeumaierSum() noexcept = default;

  /// Starts the accumulator at `initial`.
  constexpr explicit NeumaierSum(double initial) noexcept : sum_(initial) {}

  /// Adds one term, updating the compensation.
  constexpr void add(double term) noexcept {
    const double t = sum_ + term;
    if (abs_(sum_) >= abs_(term)) {
      compensation_ += (sum_ - t) + term;
    } else {
      compensation_ += (term - t) + sum_;
    }
    sum_ = t;
  }

  /// Adds every element of `terms`.
  constexpr void add(std::span<const double> terms) noexcept {
    for (const double t : terms) add(t);
  }

  /// The compensated sum of everything added so far.
  [[nodiscard]] constexpr double value() const noexcept {
    return sum_ + compensation_;
  }

  /// Resets the accumulator to zero.
  constexpr void reset() noexcept {
    sum_ = 0.0;
    compensation_ = 0.0;
  }

  constexpr NeumaierSum& operator+=(double term) noexcept {
    add(term);
    return *this;
  }

 private:
  // std::abs is not constexpr until C++23; this is, and is branch-predictable.
  static constexpr double abs_(double x) noexcept { return x < 0.0 ? -x : x; }

  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Compensated sum of a contiguous range in one call.
[[nodiscard]] constexpr double neumaier_sum(std::span<const double> terms) noexcept {
  NeumaierSum acc;
  acc.add(terms);
  return acc.value();
}

/// Compensated dot product sum(i * w[i-1]) style weighted sums used for
/// assignment totals: returns sum over idx of weight(idx) * values[idx].
///
/// `WeightFn` is invoked with the zero-based index and must return double.
template <typename WeightFn>
[[nodiscard]] constexpr double weighted_sum(std::span<const double> values,
                                            WeightFn&& weight) noexcept {
  NeumaierSum acc;
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc.add(static_cast<double>(weight(i)) * values[i]);
  }
  return acc.value();
}

}  // namespace redund::math
