#include "math/poisson.hpp"

#include <cmath>

#include "math/binomial.hpp"
#include "math/summation.hpp"

namespace redund::math {

namespace {

// Terms below this relative threshold are negligible in double precision;
// used to cut off convergent series whose terms decay at least geometrically.
constexpr double kSeriesEpsilon = 1e-18;
constexpr int kMaxSeriesTerms = 4096;

}  // namespace

double poisson_pmf(double gamma, std::int64_t i) noexcept {
  if (!(gamma > 0.0) || i < 0) return 0.0;
  const double log_p =
      -gamma + static_cast<double>(i) * std::log(gamma) - log_factorial(i);
  return std::exp(log_p);
}

double poisson_upper_tail(double gamma, std::int64_t m) noexcept {
  if (!(gamma > 0.0)) return 0.0;
  if (m <= 0) return 1.0;
  if (static_cast<double>(m) <= gamma + 6.0 * std::sqrt(gamma) + 8.0) {
    // Head is short relative to the mass location: 1 - sum of head is stable.
    NeumaierSum head;
    for (std::int64_t i = 0; i < m; ++i) head.add(poisson_pmf(gamma, i));
    const double tail = 1.0 - head.value();
    return tail > 0.0 ? tail : 0.0;
  }
  // Deep in the upper tail: direct summation avoids catastrophic cancellation.
  NeumaierSum tail;
  double term = poisson_pmf(gamma, m);
  for (int j = 0; j < kMaxSeriesTerms; ++j) {
    tail.add(term);
    const auto i = static_cast<double>(m + j + 1);
    term *= gamma / i;
    if (term < kSeriesEpsilon * tail.value()) break;
  }
  return tail.value();
}

double zero_truncated_poisson_pmf(double gamma, std::int64_t i) noexcept {
  if (!(gamma > 0.0) || i < 1) return 0.0;
  return poisson_pmf(gamma, i) / (-std::expm1(-gamma));
}

double truncated_poisson_pmf(double gamma, std::int64_t m, std::int64_t i) noexcept {
  if (!(gamma > 0.0) || i < m || i < 0) return 0.0;
  if (m <= 0) return poisson_pmf(gamma, i);
  if (m == 1) return zero_truncated_poisson_pmf(gamma, i);
  const double tail = poisson_upper_tail(gamma, m);
  if (tail <= 0.0) return 0.0;
  return poisson_pmf(gamma, i) / tail;
}

double poisson_weighted_tail(double gamma, std::int64_t m) noexcept {
  if (!(gamma > 0.0)) return 0.0;
  // Identity: sum_{i >= m} i e^{-g} g^i / i! = g * P[X >= m - 1].
  return gamma * poisson_upper_tail(gamma, m - 1);
}

double truncated_poisson_mean(double gamma, std::int64_t m) noexcept {
  if (!(gamma > 0.0)) return 0.0;
  if (m <= 0) return gamma;
  const double tail = poisson_upper_tail(gamma, m);
  if (tail <= 0.0) return 0.0;
  return poisson_weighted_tail(gamma, m) / tail;
}

}  // namespace redund::math
