#include "runtime/journal.hpp"

#include <bit>
#include <cctype>
#include <charconv>
#include <fstream>
#include <iterator>
#include <stdexcept>

namespace redund::runtime {

namespace detail {

constexpr char kHexDigits[] = "0123456789abcdef";

/// Appends `value` as minimal-width lowercase hex. The WAL writes one
/// record per processed event, so these appenders are the hot path —
/// hand-rolled instead of snprintf (which costs a format-string parse
/// per call) and allocation-free.
void append_hex(std::string& out, std::uint64_t value) {
  char buffer[16];
  int i = 16;
  do {
    buffer[--i] = kHexDigits[value & 0xF];
    value >>= 4;
  } while (value != 0);
  out.append(buffer + i, static_cast<std::size_t>(16 - i));
}

/// Appends `value` as exactly 16 hex digits (IEEE-754 bit patterns).
void append_hex16(std::string& out, std::uint64_t value) {
  char buffer[16];
  for (int i = 15; i >= 0; --i) {
    buffer[i] = kHexDigits[value & 0xF];
    value >>= 4;
  }
  out.append(buffer, 16);
}

void append_dec(std::string& out, std::int64_t value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, static_cast<std::size_t>(result.ptr - buffer));
}

void append_udec(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, static_cast<std::size_t>(result.ptr - buffer));
}

}  // namespace detail

namespace {

constexpr const char* kMagic = "redund-journal-v2";

[[nodiscard]] bool parse_u64_hex(const std::string& token,
                                 std::uint64_t& out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : token) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    else return false;
    value = value * 16 + digit;
  }
  out = value;
  return true;
}

[[nodiscard]] bool parse_u64_dec(const std::string& token,
                                 std::uint64_t& out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

[[nodiscard]] bool parse_i64_dec(const std::string& token,
                                 std::int64_t& out) {
  if (token.empty()) return false;
  std::size_t i = 0;
  bool negative = false;
  if (token[0] == '-') {
    negative = true;
    i = 1;
    if (token.size() == 1) return false;
  }
  std::uint64_t magnitude = 0;
  for (; i < token.size(); ++i) {
    const char c = token[i];
    if (c < '0' || c > '9') return false;
    magnitude = magnitude * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = negative ? -static_cast<std::int64_t>(magnitude)
                 : static_cast<std::int64_t>(magnitude);
  return true;
}

/// Splits `line` into whitespace-separated tokens.
[[nodiscard]] std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Finds the offsets of the first `count` spaces in `line`, for records
/// ("C", "D") whose last field is a blob that keeps its internal
/// spacing and therefore cannot go through tokenize().
[[nodiscard]] bool find_spaces(const std::string& line, std::size_t* spaces,
                               int count) {
  std::size_t from = 0;
  for (int i = 0; i < count; ++i) {
    const std::size_t at = line.find(' ', from);
    if (at == std::string::npos) return false;
    spaces[i] = at;
    from = at + 1;
  }
  return true;
}

}  // namespace

std::uint64_t fnv1a_hash(const std::string& bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void StateWriter::u64(std::uint64_t value) {
  if (!text_.empty()) text_ += ' ';
  detail::append_hex(text_, value);
}

void StateWriter::i64(std::int64_t value) {
  if (!text_.empty()) text_ += ' ';
  detail::append_dec(text_, value);
}

void StateWriter::f64(double value) {
  if (!text_.empty()) text_ += ' ';
  detail::append_hex16(text_, std::bit_cast<std::uint64_t>(value));
}

std::string StateReader::next_token_() {
  while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  if (p_ == end_) {
    throw std::runtime_error("journal state blob: unexpected end of data");
  }
  const char* start = p_;
  while (p_ != end_ && !std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  return std::string(start, p_);
}

std::uint64_t StateReader::u64() {
  std::uint64_t value = 0;
  if (!parse_u64_hex(next_token_(), value)) {
    throw std::runtime_error("journal state blob: bad u64 token");
  }
  return value;
}

std::int64_t StateReader::i64() {
  std::int64_t value = 0;
  if (!parse_i64_dec(next_token_(), value)) {
    throw std::runtime_error("journal state blob: bad i64 token");
  }
  return value;
}

double StateReader::f64() {
  const std::string token = next_token_();
  std::uint64_t bits = 0;
  if (token.size() != 16 || !parse_u64_hex(token, bits)) {
    throw std::runtime_error("journal state blob: bad f64 token");
  }
  return std::bit_cast<double>(bits);
}

bool StateReader::at_end() {
  while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  return p_ == end_;
}

JournalContents read_journal(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("journal: cannot read " + path);
  }
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  if (file.bad()) {
    throw std::runtime_error("journal: read of " + path + " failed");
  }

  JournalContents contents;
  // A crash mid-append leaves an unterminated final line. That partial
  // record carries no information the complete prefix lacks (the writer
  // is append-only), so drop it and recover from the prefix. Anything
  // malformed *before* a newline is corruption, handled below.
  if (!data.empty() && data.back() != '\n') {
    const std::size_t last_newline = data.rfind('\n');
    data.erase(last_newline == std::string::npos ? 0 : last_newline + 1);
    contents.torn_tail = true;
  }
  if (data.empty()) {
    throw std::runtime_error("journal: " + path + " is empty");
  }

  std::size_t pos = 0;
  const auto next_line = [&](std::string& line) {
    if (pos >= data.size()) return false;
    const std::size_t end = data.find('\n', pos);  // Always found: data
    line.assign(data, pos, end - pos);             // ends with '\n'.
    pos = end + 1;
    return true;
  };

  std::string line;
  (void)next_line(line);
  {
    const std::vector<std::string> header = tokenize(line);
    if (header.size() != 3 || header[0] != kMagic) {
      throw std::runtime_error("journal: " + path +
                               " has no redund-journal-v2 header");
    }
    if (!parse_u64_hex(header[1], contents.config_hash) ||
        !parse_u64_hex(header[2], contents.seed)) {
      throw std::runtime_error("journal: " + path + " header is malformed");
    }
  }
  // A malformed *terminated* line means corruption past repair at that
  // point; everything after it is unreachable by the append-only writer,
  // so parsing stops there as a backstop.
  while (next_line(line)) {
    if (line.empty()) continue;
    if (line[0] == 'E') {
      const std::vector<std::string> t = tokenize(line);
      JournalEntry entry;
      std::uint64_t time_bits = 0;
      std::uint64_t kind = 0;
      if (t.size() != 7 || !parse_u64_dec(t[1], entry.index) ||
          t[2].size() != 16 || !parse_u64_hex(t[2], time_bits) ||
          !parse_u64_dec(t[3], kind) || kind > 255 ||
          !parse_i64_dec(t[4], entry.subject) ||
          !parse_u64_dec(t[5], entry.epoch) ||
          !parse_u64_dec(t[6], entry.seq)) {
        break;
      }
      entry.time = std::bit_cast<double>(time_bits);
      entry.kind = static_cast<std::uint8_t>(kind);
      contents.tail.push_back(entry);
    } else if (line[0] == 'C') {
      // "C <index> <blob...>": split off the leading tokens by hand so
      // the blob keeps its internal spacing.
      std::size_t spaces[2];
      std::int64_t index = 0;
      if (!find_spaces(line, spaces, 2) ||
          !parse_i64_dec(line.substr(spaces[0] + 1, spaces[1] - spaces[0] - 1),
                         index) ||
          index < 0) {
        break;
      }
      contents.has_checkpoint = true;
      contents.checkpoint_index = static_cast<std::uint64_t>(index);
      contents.checkpoint_blob = line.substr(spaces[1] + 1);
      // Every WAL record and delta so far precedes the full snapshot;
      // the verification suffix and the delta chain restart here.
      contents.tail.clear();
      contents.deltas.clear();
    } else if (line[0] == 'D') {
      // "D <index> <base_index> <delta blob...>".
      std::size_t spaces[3];
      JournalDelta delta;
      std::int64_t index = 0;
      std::int64_t base = 0;
      if (!find_spaces(line, spaces, 3) ||
          !parse_i64_dec(line.substr(spaces[0] + 1, spaces[1] - spaces[0] - 1),
                         index) ||
          !parse_i64_dec(line.substr(spaces[1] + 1, spaces[2] - spaces[1] - 1),
                         base) ||
          index < 0 || base < 0) {
        break;
      }
      delta.index = static_cast<std::uint64_t>(index);
      delta.base_index = static_cast<std::uint64_t>(base);
      delta.blob = line.substr(spaces[2] + 1);
      contents.deltas.push_back(std::move(delta));
      // WAL records stay: composition needs the window's pops, and the
      // post-delta suffix still verifies the resumed replay.
    } else if (line[0] == 'P') {
      const std::vector<std::string> t = tokenize(line);
      if (t.size() != 6 || !parse_u64_hex(t[1], contents.partner_config_hash) ||
          !parse_u64_hex(t[2], contents.partner_seed) ||
          !parse_u64_dec(t[3], contents.partner_index) ||
          !parse_u64_dec(t[4], contents.partner_raw_size)) {
        break;
      }
      contents.has_partner = true;  // Latest replicated copy wins.
      contents.partner_payload = t[5];
    } else if (line[0] == 'F') {
      const std::vector<std::string> t = tokenize(line);
      std::int64_t index = 0;
      std::int64_t outcome = 0;
      if (t.size() != 3 || !parse_i64_dec(t[1], index) ||
          !parse_i64_dec(t[2], outcome)) {
        break;
      }
      contents.completed = true;
      contents.outcome = outcome;
    } else {
      break;
    }
  }
  return contents;
}

}  // namespace redund::runtime
