#include "runtime/journal.hpp"

#include <bit>
#include <cctype>
#include <charconv>
#include <stdexcept>

namespace redund::runtime {

namespace {

constexpr const char* kMagic = "redund-journal-v1";

constexpr char kHexDigits[] = "0123456789abcdef";

/// Appends `value` as minimal-width lowercase hex. The WAL writes one
/// record per processed event, so these appenders are the hot path —
/// hand-rolled instead of snprintf (which costs a format-string parse
/// per call) and allocation-free.
void append_hex(std::string& out, std::uint64_t value) {
  char buffer[16];
  int i = 16;
  do {
    buffer[--i] = kHexDigits[value & 0xF];
    value >>= 4;
  } while (value != 0);
  out.append(buffer + i, static_cast<std::size_t>(16 - i));
}

/// Appends `value` as exactly 16 hex digits (IEEE-754 bit patterns).
void append_hex16(std::string& out, std::uint64_t value) {
  char buffer[16];
  for (int i = 15; i >= 0; --i) {
    buffer[i] = kHexDigits[value & 0xF];
    value >>= 4;
  }
  out.append(buffer, 16);
}

void append_dec(std::string& out, std::int64_t value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, static_cast<std::size_t>(result.ptr - buffer));
}

void append_udec(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, static_cast<std::size_t>(result.ptr - buffer));
}

[[nodiscard]] bool parse_u64_hex(const std::string& token,
                                 std::uint64_t& out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : token) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    else return false;
    value = value * 16 + digit;
  }
  out = value;
  return true;
}

[[nodiscard]] bool parse_i64_dec(const std::string& token,
                                 std::int64_t& out) {
  if (token.empty()) return false;
  std::size_t i = 0;
  bool negative = false;
  if (token[0] == '-') {
    negative = true;
    i = 1;
    if (token.size() == 1) return false;
  }
  std::uint64_t magnitude = 0;
  for (; i < token.size(); ++i) {
    const char c = token[i];
    if (c < '0' || c > '9') return false;
    magnitude = magnitude * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = negative ? -static_cast<std::int64_t>(magnitude)
                 : static_cast<std::int64_t>(magnitude);
  return true;
}

/// Splits `line` into whitespace-separated tokens.
[[nodiscard]] std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

}  // namespace

std::uint64_t fnv1a_hash(const std::string& bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void StateWriter::u64(std::uint64_t value) {
  if (!text_.empty()) text_ += ' ';
  append_hex(text_, value);
}

void StateWriter::i64(std::int64_t value) {
  if (!text_.empty()) text_ += ' ';
  append_dec(text_, value);
}

void StateWriter::f64(double value) {
  if (!text_.empty()) text_ += ' ';
  append_hex16(text_, std::bit_cast<std::uint64_t>(value));
}

std::string StateReader::next_token_() {
  while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  if (p_ == end_) {
    throw std::runtime_error("journal state blob: unexpected end of data");
  }
  const char* start = p_;
  while (p_ != end_ && !std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  return std::string(start, p_);
}

std::uint64_t StateReader::u64() {
  std::uint64_t value = 0;
  if (!parse_u64_hex(next_token_(), value)) {
    throw std::runtime_error("journal state blob: bad u64 token");
  }
  return value;
}

std::int64_t StateReader::i64() {
  std::int64_t value = 0;
  if (!parse_i64_dec(next_token_(), value)) {
    throw std::runtime_error("journal state blob: bad i64 token");
  }
  return value;
}

double StateReader::f64() {
  const std::string token = next_token_();
  std::uint64_t bits = 0;
  if (token.size() != 16 || !parse_u64_hex(token, bits)) {
    throw std::runtime_error("journal state blob: bad f64 token");
  }
  return std::bit_cast<double>(bits);
}

bool StateReader::at_end() {
  while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  return p_ == end_;
}

JournalWriter::JournalWriter(const std::string& path,
                             std::uint64_t config_hash, std::uint64_t seed)
    : file_(path, std::ios::trunc), path_(path) {
  if (!file_) {
    throw std::runtime_error("journal: cannot open " + path +
                             " for writing");
  }
  buffer_ += kMagic;
  buffer_ += ' ';
  append_hex(buffer_, config_hash);
  buffer_ += ' ';
  append_hex(buffer_, seed);
  buffer_ += '\n';
}

void JournalWriter::append_event(std::uint64_t index, double time,
                                 std::uint8_t kind, std::int64_t subject,
                                 std::uint64_t epoch) {
#if REDUND_ENABLE_INVARIANTS
  // WAL indices are contiguous within one writer's lifetime (a resumed
  // campaign starts at the checkpoint index, so only the step is pinned,
  // not the origin). A gap or repeat here would desynchronize replay.
  REDUND_INVARIANT(!has_last_index_ || index == last_index_ + 1,
                   "journal WAL indices are contiguous and monotone");
  last_index_ = index;
  has_last_index_ = true;
#endif
  buffer_ += "E ";
  append_udec(buffer_, index);
  buffer_ += ' ';
  append_hex16(buffer_, std::bit_cast<std::uint64_t>(time));
  buffer_ += ' ';
  append_udec(buffer_, kind);
  buffer_ += ' ';
  append_dec(buffer_, subject);
  buffer_ += ' ';
  append_udec(buffer_, epoch);
  buffer_ += '\n';
}

void JournalWriter::checkpoint(std::uint64_t index, const std::string& blob) {
  // Stream the blob directly instead of staging it in buffer_: checkpoint
  // blobs of large campaigns run to tens of megabytes, and the extra
  // append would copy all of it once more.
  flush_();
  file_ << "C ";
  file_ << index;
  file_ << ' ';
  file_ << blob;
  file_ << '\n';
  if (!file_.flush()) {
    throw std::runtime_error("journal: write to " + path_ + " failed");
  }
}

void JournalWriter::finish(std::uint64_t index, std::int64_t outcome) {
  buffer_ += "F ";
  buffer_ += std::to_string(index);
  buffer_ += ' ';
  buffer_ += std::to_string(outcome);
  buffer_ += '\n';
  flush_();
}

void JournalWriter::flush_() {
  if (buffer_.empty()) return;
  file_ << buffer_;
  buffer_.clear();
  if (!file_.flush()) {
    throw std::runtime_error("journal: write to " + path_ + " failed");
  }
}

JournalContents read_journal(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("journal: cannot read " + path);
  }
  JournalContents contents;
  std::string line;
  if (!std::getline(file, line)) {
    throw std::runtime_error("journal: " + path + " is empty");
  }
  {
    const std::vector<std::string> header = tokenize(line);
    if (header.size() != 3 || header[0] != kMagic) {
      throw std::runtime_error("journal: " + path +
                               " has no redund-journal-v1 header");
    }
    if (!parse_u64_hex(header[1], contents.config_hash) ||
        !parse_u64_hex(header[2], contents.seed)) {
      throw std::runtime_error("journal: " + path + " header is malformed");
    }
  }
  // Records after a torn (partially written) line are unreachable by the
  // append-only writer, so parsing stops at the first malformed line.
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    if (line[0] == 'E') {
      const std::vector<std::string> t = tokenize(line);
      JournalEntry entry;
      std::int64_t index = 0;
      std::uint64_t time_bits = 0;
      std::int64_t kind = 0;
      if (t.size() != 6 || !parse_i64_dec(t[1], index) ||
          t[2].size() != 16 || !parse_u64_hex(t[2], time_bits) ||
          !parse_i64_dec(t[3], kind) || !parse_i64_dec(t[4], entry.subject) ||
          !parse_u64_hex(t[5], entry.epoch) || index < 0 || kind < 0 ||
          kind > 255) {
        break;
      }
      entry.index = static_cast<std::uint64_t>(index);
      entry.time = std::bit_cast<double>(time_bits);
      entry.kind = static_cast<std::uint8_t>(kind);
      contents.tail.push_back(entry);
    } else if (line[0] == 'C') {
      // "C <index> <blob...>": split off the first two tokens by hand so
      // the blob keeps its internal spacing.
      std::size_t sp1 = line.find(' ');
      if (sp1 == std::string::npos) break;
      std::size_t sp2 = line.find(' ', sp1 + 1);
      if (sp2 == std::string::npos) break;
      std::int64_t index = 0;
      if (!parse_i64_dec(line.substr(sp1 + 1, sp2 - sp1 - 1), index) ||
          index < 0) {
        break;
      }
      contents.has_checkpoint = true;
      contents.checkpoint_index = static_cast<std::uint64_t>(index);
      contents.checkpoint_blob = line.substr(sp2 + 1);
      // Every WAL record so far precedes the snapshot; the verification
      // suffix restarts here.
      contents.tail.clear();
    } else if (line[0] == 'F') {
      const std::vector<std::string> t = tokenize(line);
      std::int64_t index = 0;
      std::int64_t outcome = 0;
      if (t.size() != 3 || !parse_i64_dec(t[1], index) ||
          !parse_i64_dec(t[2], outcome)) {
        break;
      }
      contents.completed = true;
      contents.outcome = outcome;
    } else {
      break;
    }
  }
  return contents;
}

}  // namespace redund::runtime
