#include "runtime/fault.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/jsonio.hpp"

namespace redund::runtime {

namespace {

using core::JsonCursor;
using core::json_format_double;

constexpr const char* kSchema = "redund-faults-v1";

[[nodiscard]] FaultKind fault_kind_from_name(const std::string& name) {
  if (name == "leave") return FaultKind::kLeave;
  if (name == "rejoin") return FaultKind::kRejoin;
  if (name == "blackout") return FaultKind::kBlackout;
  if (name == "dropout_burst") return FaultKind::kDropoutBurst;
  if (name == "message_loss") return FaultKind::kMessageLoss;
  if (name == "duplication") return FaultKind::kDuplication;
  if (name == "corruption") return FaultKind::kCorruption;
  if (name == "p_drift") return FaultKind::kPDrift;
  throw std::runtime_error("fault plan JSON: unknown fault kind \"" + name +
                           "\"");
}

[[nodiscard]] bool is_windowed(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kBlackout:
    case FaultKind::kDropoutBurst:
    case FaultKind::kMessageLoss:
    case FaultKind::kDuplication:
    case FaultKind::kCorruption:
      return true;
    case FaultKind::kLeave:
    case FaultKind::kRejoin:
    case FaultKind::kPDrift:  // Takes effect at `time`; no end event.
      return false;
  }
  return false;
}

[[nodiscard]] bool uses_probability(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kDropoutBurst:
    case FaultKind::kMessageLoss:
    case FaultKind::kDuplication:
    case FaultKind::kCorruption:
      return true;
    default:
      return false;
  }
}

/// Shard s's share of `total` — must match ShardedSupervisor's rule.
[[nodiscard]] std::int64_t share(std::int64_t total, std::int64_t shards,
                                 std::int64_t s) noexcept {
  return total / shards + (s < total % shards ? 1 : 0);
}

/// First global index owned by shard s under the floor-plus-remainder
/// split of `total` (the prefix sum of share()).
[[nodiscard]] std::int64_t share_begin(std::int64_t total,
                                       std::int64_t shards,
                                       std::int64_t s) noexcept {
  const std::int64_t rem = total % shards;
  return s * (total / shards) + (s < rem ? s : rem);
}

/// Shard owning global index g under the split of `total`.
[[nodiscard]] std::int64_t owner_shard(std::int64_t g, std::int64_t total,
                                       std::int64_t shards) noexcept {
  const std::int64_t base = total / shards;
  const std::int64_t rem = total % shards;
  // The first `rem` shards own base+1 indices each.
  const std::int64_t fat = rem * (base + 1);
  if (g < fat) return base + 1 > 0 ? g / (base + 1) : 0;
  return base > 0 ? rem + (g - fat) / base : shards - 1;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLeave: return "leave";
    case FaultKind::kRejoin: return "rejoin";
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kDropoutBurst: return "dropout_burst";
    case FaultKind::kMessageLoss: return "message_loss";
    case FaultKind::kDuplication: return "duplication";
    case FaultKind::kCorruption: return "corruption";
    case FaultKind::kPDrift: return "p_drift";
  }
  return "unknown";
}

void FaultSchedule::validate(std::int64_t participant_count) const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const std::string at = "FaultSchedule event " + std::to_string(i) + ": ";
    if (!std::isfinite(e.time) || e.time < 0.0) {
      throw std::invalid_argument(at + "time must be finite and >= 0");
    }
    if (e.kind == FaultKind::kLeave || e.kind == FaultKind::kRejoin) {
      if (e.participant < 0 ||
          (participant_count >= 0 && e.participant >= participant_count)) {
        throw std::invalid_argument(at + "participant " +
                                    std::to_string(e.participant) +
                                    " out of range");
      }
    }
    if ((e.kind == FaultKind::kBlackout || e.kind == FaultKind::kPDrift) &&
        (!std::isfinite(e.fraction) || e.fraction < 0.0 ||
         e.fraction > 1.0)) {
      throw std::invalid_argument(at + "fraction must be in [0, 1]");
    }
    if (e.kind == FaultKind::kPDrift &&
        (!std::isfinite(e.duration) || e.duration < 0.0)) {
      throw std::invalid_argument(at + "ramp duration must be >= 0");
    }
    if (is_windowed(e.kind) &&
        (!std::isfinite(e.duration) || e.duration <= 0.0)) {
      throw std::invalid_argument(at + "duration must be > 0");
    }
    if (uses_probability(e.kind) &&
        (!std::isfinite(e.probability) || e.probability < 0.0 ||
         e.probability > 1.0)) {
      throw std::invalid_argument(at + "probability must be in [0, 1]");
    }
  }
}

FaultSchedule FaultSchedule::slice(std::int64_t honest, std::int64_t sybils,
                                   std::int64_t shards,
                                   std::int64_t shard) const {
  if (shards < 1 || shard < 0 || shard >= shards) {
    throw std::invalid_argument("FaultSchedule::slice: bad shard index");
  }
  FaultSchedule out;
  for (const FaultEvent& e : events) {
    if (e.kind != FaultKind::kLeave && e.kind != FaultKind::kRejoin) {
      out.events.push_back(e);  // Fleet-wide: every shard sees it.
      continue;
    }
    // Identity-targeted: enrollment is honest first (global 0..H-1), then
    // sybil (H..H+Y-1); each shard enrolls its honest slice first, then
    // its sybil slice.
    FaultEvent local = e;
    if (e.participant < honest) {
      const std::int64_t s = owner_shard(e.participant, honest, shards);
      if (s != shard) continue;
      local.participant = e.participant - share_begin(honest, shards, s);
    } else {
      const std::int64_t y = e.participant - honest;
      const std::int64_t s = owner_shard(y, sybils, shards);
      if (s != shard) continue;
      local.participant =
          share(honest, shards, s) + (y - share_begin(sybils, shards, s));
    }
    out.events.push_back(local);
  }
  return out;
}

std::string FaultSchedule::to_json() const {
  std::string out;
  out += "{\n  \"schema\": \"";
  out += kSchema;
  out += "\",\n  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"time\": " + json_format_double(e.time);
    out += ", \"kind\": \"";
    out += fault_kind_name(e.kind);
    out += "\"";
    if (e.kind == FaultKind::kLeave || e.kind == FaultKind::kRejoin) {
      out += ", \"participant\": " + std::to_string(e.participant);
    }
    if (e.kind == FaultKind::kBlackout || e.kind == FaultKind::kPDrift) {
      out += ", \"fraction\": " + json_format_double(e.fraction);
    }
    if (is_windowed(e.kind) || e.kind == FaultKind::kPDrift) {
      out += ", \"duration\": " + json_format_double(e.duration);
    }
    if (uses_probability(e.kind)) {
      out += ", \"probability\": " + json_format_double(e.probability);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

FaultSchedule FaultSchedule::from_json(const std::string& text) {
  JsonCursor cursor(text, "fault plan JSON");
  FaultSchedule schedule;
  bool saw_events = false;
  cursor.expect('{');
  if (!cursor.consume_if('}')) {
    do {
      const std::string key = cursor.parse_string();
      cursor.expect(':');
      if (key == "events") {
        saw_events = true;
        cursor.expect('[');
        if (!cursor.consume_if(']')) {
          do {
            FaultEvent e;
            bool saw_kind = false;
            std::set<std::string> seen_fields;
            cursor.expect('{');
            if (!cursor.consume_if('}')) {
              do {
                const std::string field = cursor.parse_string();
                cursor.expect(':');
                // A duplicated key means last-one-wins would silently
                // discard half the author's intent — reject instead.
                if (!seen_fields.insert(field).second) {
                  cursor.fail("duplicate event key \"" + field + "\"");
                }
                if (field == "time") {
                  e.time = cursor.parse_number();
                } else if (field == "kind") {
                  e.kind = fault_kind_from_name(cursor.parse_string());
                  saw_kind = true;
                } else if (field == "participant") {
                  e.participant =
                      static_cast<std::int64_t>(cursor.parse_number());
                } else if (field == "fraction") {
                  e.fraction = cursor.parse_number();
                } else if (field == "duration") {
                  e.duration = cursor.parse_number();
                } else if (field == "probability") {
                  e.probability = cursor.parse_number();
                } else {
                  cursor.skip_value();
                }
              } while (cursor.consume_if(','));
              cursor.expect('}');
            }
            if (!saw_kind) {
              cursor.fail("event is missing required key \"kind\"");
            }
            schedule.events.push_back(e);
          } while (cursor.consume_if(','));
          cursor.expect(']');
        }
      } else {
        cursor.skip_value();
      }
    } while (cursor.consume_if(','));
    cursor.expect('}');
  }
  if (!cursor.at_end()) cursor.fail("trailing garbage after document");
  if (!saw_events) cursor.fail("missing \"events\" array");
  return schedule;
}

void FaultSchedule::save(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    throw std::runtime_error("fault plan: cannot open " + path +
                             " for writing");
  }
  file << to_json();
  if (!file.flush()) {
    throw std::runtime_error("fault plan: write to " + path + " failed");
  }
}

FaultSchedule FaultSchedule::load(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("fault plan: cannot read " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return from_json(text.str());
}

}  // namespace redund::runtime
