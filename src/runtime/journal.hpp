// Journal format and recovery-side parsing for crash-safe campaigns.
//
// The supervisor's event loop is a deterministic state machine: given
// (RuntimeConfig, FaultSchedule) the i-th event popped, every draw, and
// every counter are fixed. Crash safety therefore needs only a
// write-ahead log of processed events plus periodic checkpoints, and
// recovery simply restores the latest checkpoint and *re-runs* the
// loop; determinism regenerates the exact post-crash suffix. The WAL's
// tail (records after the checkpoint) is not replayed *into* the state
// — it is used to verify that the re-executed event stream matches the
// pre-crash one record-for-record, turning any config/seed/code
// mismatch into an immediate "journal replay divergence" error instead
// of a silently different report. The recovery invariant tested in
// tests/test_recovery.cpp: kill at any event index, resume, and the
// final RuntimeReport is byte-identical to the uninterrupted run.
//
// Since PR 9 the journal is multi-level (see docs/checkpointing.md):
//
//   * L2 (`C`) — a full serialization of the supervisor's mutable state;
//   * L1 (`D`) — a delta on top of the previous checkpoint record
//     (C or D): only the SoA lanes dirtied since that record, plus the
//     events pushed since it. Resume composes the latest L2 with the
//     chain of subsequent deltas; the popped events each delta window
//     must subtract are recovered from the WAL records in the window,
//     which is why `E` records carry the event's queue sequence number.
//   * L3 (`P`) — a compressed copy of a *partner shard's* latest L2,
//     appended by ShardedSupervisor so a fleet survives the loss of any
//     single shard's journal file.
//
// File format (text, line-oriented; doubles as 64-bit hex of their IEEE
// bits so round-trips are exact):
//
//   redund-journal-v2 <config_hash hex> <seed hex>
//   E <index> <time bits hex> <kind> <subject> <epoch> <seq>
//   C <index> <state blob tokens...>
//   D <index> <base_index> <delta blob tokens...>
//   P <partner config_hash hex> <partner seed hex> <index> <raw size> <payload>
//   F <index> <outcome>
//
// Records are written by the asynchronous CheckpointWriter (see
// runtime/checkpoint.hpp) in enqueue order, so the on-disk structure is
// exactly what a synchronous writer would have produced. A crash can
// tear at most the final line; read_journal() drops an unterminated
// trailing line (valid prefix, incomplete record) and recovery proceeds
// from the last complete record. Tampering with a *terminated* record
// still surfaces as a replay divergence during resume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace redund::runtime {

/// FNV-1a over a byte string; used to fingerprint the RuntimeConfig a
/// journal belongs to (resuming under a different config is an error).
[[nodiscard]] std::uint64_t fnv1a_hash(const std::string& bytes) noexcept;

namespace detail {
/// Token appenders shared by StateWriter and the asynchronous record
/// formatter in checkpoint.cpp: minimal-width lowercase hex, fixed
/// 16-digit hex (IEEE-754 bit patterns), and decimal.
void append_hex(std::string& out, std::uint64_t value);
void append_hex16(std::string& out, std::uint64_t value);
void append_dec(std::string& out, std::int64_t value);
void append_udec(std::string& out, std::uint64_t value);
}  // namespace detail

/// Appends space-separated tokens to a single-line state blob. Doubles
/// are written as the 16-hex-digit IEEE-754 bit pattern, so every value
/// round-trips bit-exactly.
class StateWriter {
 public:
  /// Pre-sizes the blob. Checkpoints of large campaigns serialize
  /// millions of tokens; reserving once avoids the reallocation copies.
  void reserve(std::size_t bytes) { text_.reserve(bytes); }

  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f64(double value);
  void boolean(bool value) { u64(value ? 1 : 0); }

  [[nodiscard]] const std::string& text() const noexcept { return text_; }

 private:
  std::string text_;
};

/// Reads back a StateWriter token stream in the same order it was
/// written. Throws std::runtime_error on malformed input or premature
/// end — a truncated checkpoint must fail loudly, not zero-fill.
class StateReader {
 public:
  explicit StateReader(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean() { return u64() != 0; }
  [[nodiscard]] bool at_end();

 private:
  [[nodiscard]] std::string next_token_();
  const char* p_;
  const char* end_;
};

/// One WAL record: the event at ordinal `index` (events processed
/// before it) that the supervisor committed to executing. `seq` is the
/// queue sequence number the event carried — delta composition uses it
/// to subtract the window's popped events from the pending set.
struct JournalEntry {
  std::uint64_t index = 0;
  double time = 0.0;
  std::uint8_t kind = 0;
  std::int64_t subject = 0;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};

/// One L1 delta record: lanes dirtied in the window (base_index, index]
/// plus the events pushed in it. `base_index` names the checkpoint
/// record (C or D) the delta builds on.
struct JournalDelta {
  std::uint64_t index = 0;
  std::uint64_t base_index = 0;
  std::string blob;  ///< StateReader token stream (delta layout).
};

/// Parsed journal: the latest full checkpoint (if any), the delta chain
/// after it, the WAL tail since the full checkpoint, the terminal
/// marker, and the latest partner (L3) copy if one was replicated in.
struct JournalContents {
  std::uint64_t config_hash = 0;
  std::uint64_t seed = 0;
  bool has_checkpoint = false;
  std::uint64_t checkpoint_index = 0;  ///< Events processed at the snapshot.
  std::string checkpoint_blob;         ///< StateReader token stream (full).
  std::vector<JournalDelta> deltas;    ///< D records after the latest C,
                                       ///< in file (= ascending) order.
  std::vector<JournalEntry> tail;      ///< WAL records with index >= the
                                       ///< latest C (delta composition and
                                       ///< verification suffix).
  bool completed = false;              ///< F record present.
  std::int64_t outcome = 0;            ///< CampaignOutcome as integer.
  bool torn_tail = false;              ///< File ended mid-record (the
                                       ///< unterminated line was dropped).

  // Latest L3 partner record, kept compressed; checkpoint.hpp's
  // extract_partner_blob() inflates it.
  bool has_partner = false;
  std::uint64_t partner_config_hash = 0;
  std::uint64_t partner_seed = 0;
  std::uint64_t partner_index = 0;     ///< Events processed at the copy.
  std::uint64_t partner_raw_size = 0;  ///< Inflated blob size (bytes).
  std::string partner_payload;         ///< base64(LZSS(full state blob)).
};

/// Reads a journal file back. Throws std::runtime_error on I/O failure
/// or a malformed/foreign header. A missing trailing newline marks a
/// torn final record: the partial line is dropped and `torn_tail` set.
/// Parsing also stops at the first malformed *terminated* line as a
/// backstop (records after it are unreachable by the append-only
/// writer).
[[nodiscard]] JournalContents read_journal(const std::string& path);

}  // namespace redund::runtime
