// Write-ahead journal + checkpoints for crash-safe campaigns.
//
// The supervisor's event loop is a deterministic state machine: given
// (RuntimeConfig, FaultSchedule) the i-th event popped, every draw, and
// every counter are fixed. Crash safety therefore needs only two
// artifacts, both captured here:
//
//   * a write-ahead log (WAL) of processed events — each record is
//     appended *before* its event executes, so the journal always runs
//     at or ahead of the in-memory state;
//   * periodic checkpoints — a full serialization of the supervisor's
//     mutable state (unit/task tables, reliability scores, RNG-bearing
//     clocks, pending events) taken every `checkpoint_interval`
//     processed events.
//
// Recovery restores the latest checkpoint and simply *re-runs* the
// loop; determinism regenerates the exact post-crash suffix. The WAL's
// tail (records after the checkpoint) is not replayed *into* the state
// — it is used to verify that the re-executed event stream matches the
// pre-crash one record-for-record, turning any config/seed/code
// mismatch into an immediate "journal replay divergence" error instead
// of a silently different report. The recovery invariant tested in
// tests/test_recovery.cpp: kill at any event index, resume, and the
// final RuntimeReport is byte-identical to the uninterrupted run.
//
// File format (text, line-oriented; doubles as 64-bit hex of their IEEE
// bits so round-trips are exact):
//
//   redund-journal-v1 <config_hash hex> <seed hex>
//   E <index> <time bits hex> <kind> <subject> <epoch>
//   C <index> <state blob tokens...>
//   F <index> <outcome>
//
// `E` records are buffered and flushed at every checkpoint and at
// close, so the durability boundary is the checkpoint — a crash may
// lose buffered WAL tail records, which only shrinks the verified
// suffix, never corrupts recovery.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/contracts.hpp"

namespace redund::runtime {

/// FNV-1a over a byte string; used to fingerprint the RuntimeConfig a
/// journal belongs to (resuming under a different config is an error).
[[nodiscard]] std::uint64_t fnv1a_hash(const std::string& bytes) noexcept;

/// Appends space-separated tokens to a single-line state blob. Doubles
/// are written as the 16-hex-digit IEEE-754 bit pattern, so every value
/// round-trips bit-exactly.
class StateWriter {
 public:
  /// Pre-sizes the blob. Checkpoints of large campaigns serialize
  /// millions of tokens; reserving once avoids the reallocation copies.
  void reserve(std::size_t bytes) { text_.reserve(bytes); }

  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f64(double value);
  void boolean(bool value) { u64(value ? 1 : 0); }

  [[nodiscard]] const std::string& text() const noexcept { return text_; }

 private:
  std::string text_;
};

/// Reads back a StateWriter token stream in the same order it was
/// written. Throws std::runtime_error on malformed input or premature
/// end — a truncated checkpoint must fail loudly, not zero-fill.
class StateReader {
 public:
  explicit StateReader(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean() { return u64() != 0; }
  [[nodiscard]] bool at_end();

 private:
  [[nodiscard]] std::string next_token_();
  const char* p_;
  const char* end_;
};

/// One WAL record: the event at ordinal `index` (events processed
/// before it) that the supervisor committed to executing.
struct JournalEntry {
  std::uint64_t index = 0;
  double time = 0.0;
  std::uint8_t kind = 0;
  std::int64_t subject = 0;
  std::uint64_t epoch = 0;
};

/// Parsed journal: the latest checkpoint (if any), the WAL tail at or
/// after it, and the terminal marker.
struct JournalContents {
  std::uint64_t config_hash = 0;
  std::uint64_t seed = 0;
  bool has_checkpoint = false;
  std::uint64_t checkpoint_index = 0;  ///< Events processed at the snapshot.
  std::string checkpoint_blob;         ///< StateReader token stream.
  std::vector<JournalEntry> tail;      ///< WAL records with index >= the
                                       ///< checkpoint (verification suffix).
  bool completed = false;              ///< F record present.
  std::int64_t outcome = 0;            ///< CampaignOutcome as integer.
};

/// Appends journal records for one campaign run. WAL records buffer in
/// memory; checkpoint() and finish() flush (the durability boundary).
class JournalWriter {
 public:
  /// Truncates `path` and writes the header. Throws std::runtime_error
  /// when the file cannot be opened.
  JournalWriter(const std::string& path, std::uint64_t config_hash,
                std::uint64_t seed);

  /// Appends (buffered) one WAL record.
  void append_event(std::uint64_t index, double time, std::uint8_t kind,
                    std::int64_t subject, std::uint64_t epoch);

  /// Writes a checkpoint taken after `index` processed events and
  /// flushes everything buffered so far.
  void checkpoint(std::uint64_t index, const std::string& blob);

  /// Writes the terminal record and flushes, marking the journal as the
  /// trace of a finished campaign.
  void finish(std::uint64_t index, std::int64_t outcome);

  /// Flushes buffered WAL records without writing a checkpoint — the
  /// graceful-shutdown path (run_async_campaign_capped), which preserves
  /// the full verification suffix for resume.
  void flush() { flush_(); }

 private:
  void flush_();
  std::ofstream file_;
  std::string path_;
  std::string buffer_;
#if REDUND_ENABLE_INVARIANTS
  std::uint64_t last_index_ = 0;  ///< Last WAL index appended.
  bool has_last_index_ = false;
#endif
};

/// Reads a journal file back. Throws std::runtime_error on I/O failure
/// or a malformed/foreign header. Partial trailing lines (torn write at
/// crash) are ignored.
[[nodiscard]] JournalContents read_journal(const std::string& path);

}  // namespace redund::runtime
