// Outcome record of one asynchronous campaign: totals, time-domain metrics,
// and an optional time series of the supervisor's counters.
//
// Everything here is a pure function of the RuntimeConfig (including its
// seed): print() renders with fixed formatting so two runs with the same
// seed produce byte-identical output — the reproducibility contract the
// tests and `redundctl run-async` rely on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "report/table.hpp"

namespace redund::runtime {

/// How a campaign ended. Ordered by severity — ShardedSupervisor::merge
/// takes the maximum across shards.
enum class CampaignOutcome : std::uint8_t {
  kCompleted = 0,  ///< Every task reached VALID.
  kStalled = 1,    ///< Progress ceased with nothing in flight (e.g. fleet
                   ///< collapse + recompute budget spent); partial report.
  kAborted = 2,    ///< The max_sim_time bound elapsed; partial report.
};

/// Stable display name ("completed", "stalled", "aborted").
[[nodiscard]] const char* to_string(CampaignOutcome outcome) noexcept;

/// One sampled point of the supervisor's counters (cumulative values).
struct RuntimeSample {
  double time = 0.0;
  std::int64_t units_issued = 0;
  std::int64_t units_completed = 0;
  std::int64_t units_timed_out = 0;
  std::int64_t units_reissued = 0;
  std::int64_t tasks_valid = 0;
  std::int64_t control_boosts = 0;    ///< Cumulative controller escalations.
  std::int64_t control_releases = 0;  ///< Cumulative controller releases.
};

/// What happened, from the supervisor's books and from ground truth.
struct RuntimeReport {
  // Shape of the campaign.
  std::int64_t tasks = 0;
  std::int64_t units_planned = 0;    ///< Copies in the realized plan.
  std::int64_t participants = 0;
  std::int64_t stragglers = 0;       ///< Ground truth (model injection).

  // Work-issue loop.
  std::int64_t units_issued = 0;     ///< Issues incl. retries and replicas.
  std::int64_t units_completed = 0;  ///< Results arriving before deadline.
  std::int64_t units_timed_out = 0;  ///< Deadline fired first.
  std::int64_t units_reissued = 0;   ///< Successful re-deals after timeout.
  std::int64_t units_dropped = 0;    ///< No-reply faults (ground truth).
  std::int64_t late_results = 0;     ///< Arrived after their timeout; ignored.

  // Replication and validation.
  std::int64_t adaptive_replicas = 0;   ///< Reliability-gated extra copies.
  std::int64_t quorum_replicas = 0;     ///< INCONCLUSIVE-path extra copies.
  std::int64_t supervisor_recomputes = 0;
  std::int64_t tasks_valid = 0;
  std::int64_t tasks_inconclusive = 0;  ///< Ever entered INCONCLUSIVE.
  std::int64_t mismatches_detected = 0;
  std::int64_t ringer_catches = 0;
  std::int64_t blacklisted_identities = 0;

  // Online adaptive control (all zero when the controller is disabled).
  std::int64_t replan_rounds = 0;     ///< kReplan reviews that re-planned.
  std::int64_t control_boosts = 0;    ///< Controller-escalated extra copies.
  std::int64_t control_releases = 0;  ///< Escalated copies given back.
  std::int64_t control_observations = 0;  ///< Verdicts fed to the posterior.
  double p_hat_mean = 0.0;   ///< Posterior mean of the adversary fraction
                             ///< at campaign end.
  double p_hat_upper = 0.0;  ///< Upper credible limit at campaign end.

  // Ground truth.
  std::int64_t adversary_cheat_attempts = 0;
  std::int64_t false_accusations = 0;
  std::int64_t final_correct_tasks = 0;  ///< Among validated tasks only.
  std::int64_t final_corrupt_tasks = 0;  ///< Among validated tasks only.

  // Fault injection and degradation (all zero without a FaultSchedule).
  CampaignOutcome outcome = CampaignOutcome::kCompleted;
  std::int64_t tasks_unfinished = 0;   ///< Non-VALID at end (partial runs).
  std::int64_t fault_events = 0;       ///< Fault start/end events processed.
  std::int64_t churn_leaves = 0;       ///< Participant leave transitions.
  std::int64_t churn_rejoins = 0;      ///< Participant rejoin transitions.
  std::int64_t results_lost = 0;       ///< In-flight results lost to churn
                                       ///< or message-loss windows.
  std::int64_t results_corrupted = 0;  ///< Results bit-flipped in transit.
  std::int64_t duplicate_results = 0;  ///< Extra deliveries scheduled.
  std::int64_t min_live_fleet = 0;     ///< Low-water mark of active
                                       ///< (non-blacklisted) identities.
  double progress_rate = 0.0;          ///< EWMA of work progress per unit
                                       ///< time, from the health monitor.

  // Time domain.
  double makespan = 0.0;               ///< Last task validation time.
  double end_time = 0.0;               ///< Simulated time the loop ended
                                       ///< (>= makespan on partial runs).
  double first_detection_time = 0.0;   ///< 0 when nothing was detected.
  double mean_detection_latency = 0.0; ///< Mean detection-event time.
  std::int64_t detections = 0;         ///< Detection events (tasks+ringers).
  std::int64_t events_processed = 0;   ///< Event-loop throughput accounting.

  std::vector<RuntimeSample> series;   ///< Empty when sampling disabled.

  [[nodiscard]] bool alarm_fired() const noexcept { return detections > 0; }
  [[nodiscard]] double corruption_rate() const noexcept {
    return tasks > 0 ? static_cast<double>(final_corrupt_tasks) /
                           static_cast<double>(tasks)
                     : 0.0;
  }
};

/// Two-column (metric, value) summary table.
[[nodiscard]] report::Table to_table(const RuntimeReport& report);

/// Time-series table (one row per sample); empty-bodied when disabled.
[[nodiscard]] report::Table series_table(const RuntimeReport& report);

/// Renders the full report with fixed formatting (byte-identical for
/// identical reports).
void print(std::ostream& out, const RuntimeReport& report);

}  // namespace redund::runtime
