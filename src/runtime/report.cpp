#include "runtime/report.hpp"

#include <ostream>
#include <string>

namespace redund::runtime {

namespace rep = redund::report;

const char* to_string(CampaignOutcome outcome) noexcept {
  switch (outcome) {
    case CampaignOutcome::kCompleted: return "completed";
    case CampaignOutcome::kStalled: return "stalled";
    case CampaignOutcome::kAborted: return "aborted";
  }
  return "?";
}

rep::Table to_table(const RuntimeReport& report) {
  rep::Table table({"metric", "value"});
  const auto add_count = [&](const char* name, std::int64_t value) {
    table.add_row({name, rep::with_commas(value)});
  };
  const auto add_time = [&](const char* name, double value) {
    table.add_row({name, rep::fixed(value, 4)});
  };
  add_count("tasks", report.tasks);
  add_count("units_planned", report.units_planned);
  add_count("participants", report.participants);
  add_count("stragglers", report.stragglers);
  table.add_separator();
  add_count("units_issued", report.units_issued);
  add_count("units_completed", report.units_completed);
  add_count("units_timed_out", report.units_timed_out);
  add_count("units_reissued", report.units_reissued);
  add_count("units_dropped", report.units_dropped);
  add_count("late_results", report.late_results);
  table.add_separator();
  add_count("adaptive_replicas", report.adaptive_replicas);
  add_count("quorum_replicas", report.quorum_replicas);
  add_count("supervisor_recomputes", report.supervisor_recomputes);
  add_count("tasks_valid", report.tasks_valid);
  add_count("tasks_inconclusive", report.tasks_inconclusive);
  add_count("mismatches_detected", report.mismatches_detected);
  add_count("ringer_catches", report.ringer_catches);
  add_count("blacklisted_identities", report.blacklisted_identities);
  table.add_separator();
  add_count("replan_rounds", report.replan_rounds);
  add_count("control_boosts", report.control_boosts);
  add_count("control_releases", report.control_releases);
  add_count("control_observations", report.control_observations);
  add_time("p_hat_mean", report.p_hat_mean);
  add_time("p_hat_upper", report.p_hat_upper);
  table.add_separator();
  add_count("adversary_cheat_attempts", report.adversary_cheat_attempts);
  add_count("false_accusations", report.false_accusations);
  add_count("final_correct_tasks", report.final_correct_tasks);
  add_count("final_corrupt_tasks", report.final_corrupt_tasks);
  table.add_separator();
  table.add_row({"outcome", to_string(report.outcome)});
  add_count("tasks_unfinished", report.tasks_unfinished);
  add_count("fault_events", report.fault_events);
  add_count("churn_leaves", report.churn_leaves);
  add_count("churn_rejoins", report.churn_rejoins);
  add_count("results_lost", report.results_lost);
  add_count("results_corrupted", report.results_corrupted);
  add_count("duplicate_results", report.duplicate_results);
  add_count("min_live_fleet", report.min_live_fleet);
  add_time("progress_rate", report.progress_rate);
  table.add_separator();
  add_time("makespan", report.makespan);
  add_time("end_time", report.end_time);
  add_time("first_detection_time", report.first_detection_time);
  add_time("mean_detection_latency", report.mean_detection_latency);
  add_count("detections", report.detections);
  add_count("events_processed", report.events_processed);
  return table;
}

rep::Table series_table(const RuntimeReport& report) {
  rep::Table table({"time", "issued", "completed", "timed_out", "reissued",
                    "valid", "boosts", "releases"});
  for (const RuntimeSample& sample : report.series) {
    table.add_row({rep::fixed(sample.time, 4),
                   std::to_string(sample.units_issued),
                   std::to_string(sample.units_completed),
                   std::to_string(sample.units_timed_out),
                   std::to_string(sample.units_reissued),
                   std::to_string(sample.tasks_valid),
                   std::to_string(sample.control_boosts),
                   std::to_string(sample.control_releases)});
  }
  return table;
}

void print(std::ostream& out, const RuntimeReport& report) {
  out << "asynchronous campaign report\n";
  to_table(report).print(out);
  if (!report.series.empty()) {
    out << "\ntime series (" << report.series.size() << " samples)\n";
    series_table(report).print(out);
  }
}

}  // namespace redund::runtime
