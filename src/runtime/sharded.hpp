// Sharded parallel campaigns: one large asynchronous campaign split into S
// independent sub-campaigns that run concurrently on a work-stealing
// ThreadPool and merge into one RuntimeReport.
//
// The split is by *fleet*, not by lock: each shard gets a slice of the
// realized plan's multiplicity classes, of the ringers, and of the honest /
// sybil identity counts, plus its own derived seed — so the S event loops
// share no mutable state at all and scale without synchronization. This
// models a federation of supervisors, each responsible for a partition of
// the computation (the natural deployment once one supervisor's event loop
// saturates a core; cf. ROADMAP "heavy traffic" north star).
//
// Determinism contract: the merged report is a pure function of
// (base config, shard count). Shard configs are derived by shard index,
// results land in a slot array indexed by shard, and the merge folds in
// ascending shard order — the thread pool's size and scheduling order can
// not influence any byte of the output. The same holds for the time
// series: rows merge by sampled time, summing each shard's counters with
// carry-forward once a shard's campaign has ended.
//
// What sharding changes (and what it doesn't): per-shard collusion
// decisions see only the shard's own copy counts, and blacklists do not
// propagate across shards until the merge — a strictly weaker supervisor
// than the single-shard one, which is the price of lock-free scaling. The
// *plan-level* detection guarantees are unaffected: every shard still
// realizes the epsilon-level redundancy distribution over its slice.
#pragma once

#include <cstdint>
#include <vector>

#include "core/thread_annotations.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/report.hpp"
#include "runtime/supervisor.hpp"

namespace redund::runtime {

/// Splits one campaign into independent per-shard sub-campaigns and runs
/// them in parallel. Construction derives the shard configs; run() executes
/// them on a pool and merges.
class ShardedSupervisor {
 public:
  /// Derives `shards` sub-campaign configs from `base`. The effective shard
  /// count is clamped to the task count and the honest participant count
  /// (every shard needs at least one task's worth of plan and one honest
  /// identity), so any shards >= 1 is valid.
  ShardedSupervisor(const RuntimeConfig& base, std::int64_t shards);

  /// Shards actually used after clamping.
  [[nodiscard]] std::int64_t shard_count() const noexcept {
    return static_cast<std::int64_t>(configs_.size());
  }

  /// The derived per-shard configurations, in shard order.
  [[nodiscard]] const std::vector<RuntimeConfig>& shard_configs()
      const noexcept {
    return configs_;
  }

  /// Runs every shard's event loop across `pool` (the calling thread
  /// participates) and returns the merged report. Bit-identical output for
  /// any pool size. With journaling configured and more than one shard,
  /// finishes by cross-replicating partner checkpoints (L3) so the
  /// completed fleet's journals tolerate the loss of any one file.
  /// Blocks inside parallel_for until every shard completes, so it must
  /// not be called while holding the pool's sleep mutex (i.e. never from
  /// inside a pool task that owns pool synchronization state).
  [[nodiscard]] RuntimeReport run(parallel::ThreadPool& pool) const
      REDUND_EXCLUDES(sleep_mutex_);

  /// L3 partner redundancy: reads each shard's journal and appends a
  /// compressed copy of its latest full (L2) checkpoint to the *next*
  /// shard's journal (ring order, shard s -> shard (s+1) mod S). After
  /// this, losing any single shard's journal file still leaves its
  /// latest L2 recoverable from the partner; resume() uses it. Shards
  /// whose journal is missing or holds no checkpoint yet are skipped.
  /// No-op with fewer than two shards or journaling disabled.
  void replicate_partner_checkpoints() const;

  /// Resumes every shard from its journal and merges, surviving the loss
  /// of any single shard's journal file. Per shard, in order of
  /// preference: resume from the shard's own journal; if that fails,
  /// reconstruct a rescue journal from the partner copy (L3) held by the
  /// next shard and resume from it; if that fails too, re-run the shard
  /// from scratch. Every path re-runs the same deterministic event loop,
  /// so the merged report is bit-identical to run()'s regardless of
  /// which path each shard took. Throws std::invalid_argument when
  /// journaling is not configured. Same sleep-mutex exclusion as run().
  [[nodiscard]] RuntimeReport resume(parallel::ThreadPool& pool) const
      REDUND_EXCLUDES(sleep_mutex_);

  /// Folds per-shard reports (in the given order) into one campaign-level
  /// report: counters sum, makespan/end_time are the max, first detection
  /// the min, detection latency the detection-weighted mean, the outcome
  /// the maximum severity across shards (one stalled shard stalls the
  /// campaign), and the series merge by sampled time with per-shard
  /// carry-forward.
  [[nodiscard]] static RuntimeReport merge(
      const std::vector<RuntimeReport>& reports);

 private:
  [[nodiscard]] RuntimeReport resume_shard_(std::size_t s) const;

  std::vector<RuntimeConfig> configs_;
};

/// One-call convenience: shard `base` `shards` ways and run on `pool`.
[[nodiscard]] RuntimeReport run_sharded_campaign(const RuntimeConfig& base,
                                                 std::int64_t shards,
                                                 parallel::ThreadPool& pool);

/// One-call convenience: shard `base` `shards` ways and resume every
/// shard from its (or its partner's) journal. `base.journal.path` must
/// be the same path the original run was configured with.
[[nodiscard]] RuntimeReport resume_sharded_campaign(const RuntimeConfig& base,
                                                    std::int64_t shards,
                                                    parallel::ThreadPool& pool);

}  // namespace redund::runtime
