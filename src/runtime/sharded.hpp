// Sharded parallel campaigns: one large asynchronous campaign split into S
// independent sub-campaigns that run concurrently on a work-stealing
// ThreadPool and merge into one RuntimeReport.
//
// The split is by *fleet*, not by lock: each shard gets a slice of the
// realized plan's multiplicity classes, of the ringers, and of the honest /
// sybil identity counts, plus its own derived seed — so the S event loops
// share no mutable state at all and scale without synchronization. This
// models a federation of supervisors, each responsible for a partition of
// the computation (the natural deployment once one supervisor's event loop
// saturates a core; cf. ROADMAP "heavy traffic" north star).
//
// Determinism contract: the merged report is a pure function of
// (base config, shard count). Shard configs are derived by shard index,
// results land in a slot array indexed by shard, and the merge folds in
// ascending shard order — the thread pool's size and scheduling order can
// not influence any byte of the output. The same holds for the time
// series: rows merge by sampled time, summing each shard's counters with
// carry-forward once a shard's campaign has ended.
//
// What sharding changes (and what it doesn't): per-shard collusion
// decisions see only the shard's own copy counts, and blacklists do not
// propagate across shards until the merge — a strictly weaker supervisor
// than the single-shard one, which is the price of lock-free scaling. The
// *plan-level* detection guarantees are unaffected: every shard still
// realizes the epsilon-level redundancy distribution over its slice.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "runtime/report.hpp"
#include "runtime/supervisor.hpp"

namespace redund::runtime {

/// Splits one campaign into independent per-shard sub-campaigns and runs
/// them in parallel. Construction derives the shard configs; run() executes
/// them on a pool and merges.
class ShardedSupervisor {
 public:
  /// Derives `shards` sub-campaign configs from `base`. The effective shard
  /// count is clamped to the task count and the honest participant count
  /// (every shard needs at least one task's worth of plan and one honest
  /// identity), so any shards >= 1 is valid.
  ShardedSupervisor(const RuntimeConfig& base, std::int64_t shards);

  /// Shards actually used after clamping.
  [[nodiscard]] std::int64_t shard_count() const noexcept {
    return static_cast<std::int64_t>(configs_.size());
  }

  /// The derived per-shard configurations, in shard order.
  [[nodiscard]] const std::vector<RuntimeConfig>& shard_configs()
      const noexcept {
    return configs_;
  }

  /// Runs every shard's event loop across `pool` (the calling thread
  /// participates) and returns the merged report. Bit-identical output for
  /// any pool size.
  [[nodiscard]] RuntimeReport run(parallel::ThreadPool& pool) const;

  /// Folds per-shard reports (in the given order) into one campaign-level
  /// report: counters sum, makespan/end_time are the max, first detection
  /// the min, detection latency the detection-weighted mean, the outcome
  /// the maximum severity across shards (one stalled shard stalls the
  /// campaign), and the series merge by sampled time with per-shard
  /// carry-forward.
  [[nodiscard]] static RuntimeReport merge(
      const std::vector<RuntimeReport>& reports);

 private:
  std::vector<RuntimeConfig> configs_;
};

/// One-call convenience: shard `base` `shards` ways and run on `pool`.
[[nodiscard]] RuntimeReport run_sharded_campaign(const RuntimeConfig& base,
                                                 std::int64_t shards,
                                                 parallel::ThreadPool& pool);

}  // namespace redund::runtime
