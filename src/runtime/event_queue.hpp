// Deterministic pending-event heap for the asynchronous supervisor runtime.
//
// Generalizes the completion min-heap inside sim/des.cpp into a reusable
// queue carrying typed events. Two properties matter for reproducibility:
//
//   * Ties in simulated time are broken by schedule order (a monotonically
//     increasing sequence number), so the processing order is a pure
//     function of the event schedule — never of heap internals.
//   * Events are never cancelled. A timer that became irrelevant (its unit
//     completed, or was re-issued under a new epoch) drains as a stale
//     no-op; producers stamp events with the subject's epoch and consumers
//     drop mismatches. This keeps the queue allocation-free on the cancel
//     path and makes replay trivially deterministic.
//
// The heap is a plain std::vector driven by std::push_heap/pop_heap (rather
// than std::priority_queue) so callers that know the campaign size can
// reserve() the backing storage up front and run the whole event loop
// without heap reallocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace redund::runtime {

/// What a pending event means when it fires.
enum class EventKind : std::uint8_t {
  kCompletion,     ///< A participant returns the result of a unit.
  kDeadline,       ///< A unit's report deadline elapses.
  kReissue,        ///< A timed-out unit's backoff elapses; re-deal it.
  kAdaptiveCheck,  ///< Periodic reliability review of a straggling task.
};

/// One scheduled event. `subject` is a unit index (task index for
/// kAdaptiveCheck); `epoch` invalidates stale unit timers.
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kCompletion;
  std::int64_t subject = 0;
  std::uint64_t epoch = 0;
};

/// Min-heap over (time, seq).
class EventQueue {
 public:
  /// Pre-sizes the backing storage for `capacity` simultaneously pending
  /// events; the event loop then never reallocates while its high-water
  /// mark stays below this.
  void reserve(std::size_t capacity) { heap_.reserve(capacity); }

  void schedule(double time, EventKind kind, std::int64_t subject,
                std::uint64_t epoch = 0) {
    heap_.push_back(Event{time, next_seq_++, kind, subject, epoch});
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }

  /// Removes and returns the earliest event (schedule order on time ties).
  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    Event event = heap_.back();
    heap_.pop_back();
    return event;
  }

 private:
  // "a fires after b" — makes the max-heap algorithms yield a min-heap.
  struct After {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace redund::runtime
