// Deterministic pending-event queues for the asynchronous supervisor
// runtime.
//
// Generalizes the completion min-heap inside sim/des.cpp into reusable
// queues carrying typed events. Two properties matter for reproducibility:
//
//   * Ties in simulated time are broken by schedule order (a monotonically
//     increasing sequence number), so the processing order is a pure
//     function of the event schedule — never of queue internals.
//   * Events are never cancelled. A timer that became irrelevant (its unit
//     completed, or was re-issued under a new epoch) drains as a stale
//     no-op; producers stamp events with the subject's epoch and consumers
//     drop mismatches. This keeps the queues allocation-free on the cancel
//     path and makes replay trivially deterministic.
//
// Two implementations share the interface (reserve / schedule / peek / pop):
//
//   * EventQueue — a plain std::vector binary heap driven by
//     std::push_heap/pop_heap. O(log n) per operation; the reference
//     implementation every other queue must match pop-for-pop.
//   * CalendarQueue — a bucketed ring (Brown's calendar queue, CACM 1988):
//     events hash into "day" buckets by floor(time / width), pop scans the
//     ring from the current day. O(1) amortized schedule/pop when the bucket
//     width tracks the mean event spacing, which periodic rebuilds maintain.
//     Pops in exactly the same (time, seq) order as the binary heap: equal
//     times always land in the same bucket (same day), buckets are kept
//     sorted, and the day scan visits strictly increasing times.
//
// Both queues also expose pop_run(): the maximal same-timestamp run at the
// head removed in one call and returned as a contiguous view — the
// supervisor's batch drain consumes runs, not single events, and the
// calendar returns the common single-bucket run (every initial deadline of
// a campaign shares one timestamp) zero-copy from its arena.
//
// The supervisor selects between them via RuntimeConfig::queue; because the
// pop order is contractually identical, the choice cannot change any
// simulation result — only its speed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/contracts.hpp"

namespace redund::runtime {

/// What a pending event means when it fires.
enum class EventKind : std::uint8_t {
  kCompletion,     ///< A participant returns the result of a unit.
  kDeadline,       ///< A unit's report deadline elapses.
  kReissue,        ///< A timed-out unit's backoff elapses; re-deal it.
  kAdaptiveCheck,  ///< Periodic reliability review of a straggling task.
  kFault,          ///< A FaultSchedule entry starts (subject = fault index).
  kFaultEnd,       ///< A windowed fault's duration elapses (same subject).
  kHealthCheck,    ///< Periodic campaign health review (stall detection).
  kReplan,         ///< Periodic adaptive-controller re-plan review.
};

/// Which pending-event queue the supervisor's loop runs on.
enum class QueueKind : std::uint8_t {
  kBinaryHeap,  ///< std::vector min-heap; O(log n), the reference.
  kCalendar,    ///< Bucketed ring; O(1) amortized, same pop order.
};

/// One scheduled event. `subject` is a unit index (task index for
/// kAdaptiveCheck); `epoch` invalidates stale unit timers.
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kCompletion;
  std::int64_t subject = 0;
  std::uint64_t epoch = 0;
};

/// Strict event order: (time, seq) ascending. seq is unique, so this is a
/// total order — the determinism contract both queues implement.
[[nodiscard]] inline bool fires_before(const Event& a,
                                       const Event& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// Min-heap over (time, seq).
class EventQueue {
 public:
  /// Pre-sizes the backing storage for `capacity` simultaneously pending
  /// events; the event loop then never reallocates while its high-water
  /// mark stays below this.
  void reserve(std::size_t capacity) { heap_.reserve(capacity); }

  // redund: hot
  void schedule(double time, EventKind kind, std::int64_t subject,
                std::uint64_t epoch = 0) {
    // Storage is pre-sized by reserve(); steady-state pushes never allocate.
    heap_.push_back(Event{time, next_seq_++, kind, subject, epoch});  // redund-lint: allow(hot-alloc)
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }

  /// Earliest pending event, or nullptr when empty. The pointer is
  /// invalidated by the next schedule()/pop().
  [[nodiscard]] const Event* peek() const noexcept {
    return heap_.empty() ? nullptr : heap_.data();
  }

  /// Removes and returns the earliest event (schedule order on time ties).
  // redund: hot
  Event pop() {
    REDUND_PRECONDITION(!heap_.empty(), "pop() requires a pending event");
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    Event event = heap_.back();
    heap_.pop_back();
    return event;
  }

  /// Removes the maximal run of events sharing the head timestamp and
  /// returns a view of it in (time, seq) order, backed by `scratch`. The
  /// view is valid until the next call on this queue or on `scratch`.
  // redund: hot
  std::span<const Event> pop_run(std::vector<Event>& scratch) {
    scratch.clear();
    scratch.push_back(pop());  // redund-lint: allow(hot-alloc)
    const double time = scratch.front().time;
    while (!heap_.empty() && heap_.front().time == time) {
      // Amortized by the caller's reused scratch buffer; the run replaces
      // the per-event pops the supervisor would otherwise issue anyway.
      scratch.push_back(pop());  // redund-lint: allow(hot-alloc, hot-per-element-insert)
    }
    return {scratch.data(), scratch.size()};
  }

  /// Sequence number the next schedule() will stamp (checkpoint state).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// The pending events in (time, seq) order, for checkpointing.
  [[nodiscard]] std::vector<Event> snapshot() const {
    std::vector<Event> events = heap_;
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) noexcept {
                return fires_before(a, b);
              });
    return events;
  }

  /// Appends the pending events to `out` in unspecified order — the raw
  /// staging copy behind an L2 checkpoint payload; the writer thread
  /// sorts canonically off the hot path.
  void snapshot_into(std::vector<Event>& out) const {
    out.insert(out.end(), heap_.begin(), heap_.end());
  }

  /// Reinstates a snapshot (events sorted by fires_before) and the seq
  /// cursor. Only meaningful on a fresh queue. An ascending-sorted array
  /// is already a valid min-heap, so the heap is adopted as-is.
  void restore(std::vector<Event> events, std::uint64_t seq) {
    heap_ = std::move(events);
    next_seq_ = seq;
  }

 private:
  // "a fires after b" — makes the max-heap algorithms yield a min-heap.
  struct After {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return fires_before(b, a);
    }
  };

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Calendar queue: a ring of day buckets over simulated time, stored as a
/// packed arena with a separate cache-line-packed header array.
///
/// An event at time t belongs to day floor(t / width); its bucket is
/// day mod nbuckets (nbuckets a power of two). The live events sit in one
/// flat arena grouped by bucket, each bucket's slice sorted by
/// (time, seq); a 16-byte header per bucket carries (min_time, count), so
/// the pop-side day scan touches *only* the header array — four headers
/// per cache line — and never the event storage until it has found the
/// minimum's bucket. pop() scans days forward from the current day: the
/// first bucket whose header's min actually belongs to the day under
/// inspection holds the global minimum, because equal times share a day
/// and later days hold strictly later times. If a whole lap (nbuckets
/// days) finds nothing, the next event is more than one "year" away and a
/// direct min over the headers relocates the cursor — the standard
/// sparse-queue fallback, also header-only.
///
/// The arena is built in bulk — histogram, prefix-sum, scatter, per-slice
/// insertion sort — from the staging buffer at the first pop (a cold
/// campaign schedules every initial event up front) and again at every
/// rebuild. Bulk building into one flat array replaces the per-bucket
/// vector ring of the previous layout, whose initial distribution paid a
/// malloc and a cache miss per bucket. Events scheduled after a build go
/// to a small side min-heap (the overflow); pop compares the arena front
/// with the overflow front, and a rebuild folds the overflow back into
/// the arena whenever it outgrows a fraction of the live set (or the
/// arena drains past the shrink band). Every event scheduled after a
/// build carries a larger seq than every arena event, so on a shared
/// timestamp the arena run drains strictly before the overflow run —
/// (time, seq) order holds across the two stores by construction.
///
/// Days are compared as exact integers held in doubles; width_ is clamped
/// so day numbers stay below 2^50 and the floor/step/compare arithmetic is
/// exact. Negative times are not supported (the runtime starts at t = 0).
class CalendarQueue {
 public:
  CalendarQueue() { reset_geometry_(); }

  /// Pre-sizes the staging buffer for the initial bulk load (see
  /// schedule()); the arena allocates lazily at the first build.
  void reserve(std::size_t capacity) {
    if (size_ != 0) return;  // Only meaningful before the first schedule.
    staged_.reserve(capacity);
  }

  // redund: hot
  void schedule(double time, EventKind kind, std::int64_t subject,
                std::uint64_t epoch = 0) {
    const Event event{time, next_seq_++, kind, subject, epoch};
    ++size_;
    max_time_ = time > max_time_ ? time : max_time_;
    // Until the first pop the queue only accumulates (a cold campaign
    // schedules every initial event up front), so events are staged in a
    // plain vector and the arena is built once, with the width learned
    // from the whole initial set.
    if (staging_) {
      staged_.push_back(event);  // redund-lint: allow(hot-alloc)
      return;
    }
    overflow_.push_back(event);  // redund-lint: allow(hot-alloc)
    std::push_heap(overflow_.begin(), overflow_.end(), After_{});
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Earliest pending event, or nullptr when empty. Amortized O(1); the
  /// pointer is invalidated by the next schedule()/pop()/pop_run().
  [[nodiscard]] const Event* peek() {
    if (size_ == 0) return nullptr;
    if (staging_) flush_();
    const Event* arena_front = arena_min_();
    if (overflow_.empty()) return arena_front;
    const Event* overflow_front = overflow_.data();
    if (arena_front == nullptr ||
        fires_before(*overflow_front, *arena_front)) {
      return overflow_front;
    }
    return arena_front;
  }

  /// Removes and returns the earliest event (schedule order on time ties).
  // redund: hot
  Event pop() {
    REDUND_PRECONDITION(size_ != 0, "pop() requires a pending event");
    // Amortized calendar rebuild: flush_/rebuild_ regrow the buckets, but
    // only on geometry changes (O(1) amortized per event, audited).
    // redund-lint: allow(transitive-hot-alloc)
    if (staging_) flush_();
    maybe_rebuild_();  // redund-lint: allow(transitive-hot-alloc)
    const Event* arena_front = arena_min_();
    if (arena_front != nullptr &&
        (overflow_.empty() ||
         fires_before(*arena_front, overflow_.front()))) {
      const Event event = *arena_front;
      pop_arena_front_();
      --size_;
      current_day_ = day_(event.time);  // Same-day successors hit on step 0.
      return event;
    }
    std::pop_heap(overflow_.begin(), overflow_.end(), After_{});
    const Event event = overflow_.back();
    overflow_.pop_back();
    --size_;
    current_day_ = day_(event.time);
    return event;
  }

  /// Removes the maximal run of events sharing the head timestamp and
  /// returns a view of it in (time, seq) order. A run wholly inside the
  /// arena — the common case, and the campaign-wide same-timestamp
  /// deadline waves especially — is returned zero-copy from the arena
  /// slice; `scratch` backs the view only when the run spans the overflow
  /// heap. The view is valid until the next call on this queue.
  // redund: hot
  std::span<const Event> pop_run(std::vector<Event>& scratch) {
    REDUND_PRECONDITION(size_ != 0, "pop_run() requires a pending event");
    // Same amortized-rebuild exception as pop() above.
    // redund-lint: allow(transitive-hot-alloc)
    if (staging_) flush_();
    maybe_rebuild_();  // redund-lint: allow(transitive-hot-alloc)
    const Event* arena_front = arena_min_();
    const bool arena_first =
        arena_front != nullptr &&
        (overflow_.empty() || fires_before(*arena_front, overflow_.front()));
    const double time =
        arena_first ? arena_front->time : overflow_.front().time;
    current_day_ = day_(time);
    if (arena_first) {
      // All equal times share the bucket, and the slice is sorted, so the
      // run is a contiguous prefix of the minimum's slice.
      const std::size_t b = peek_bucket_;
      Header& header = headers_[b];
      const Event* front = arena_.data() + begin_[b];
      std::size_t run = 1;
      while (run < header.count && front[run].time == time) ++run;
      begin_[b] += static_cast<std::uint32_t>(run);
      header.count -= static_cast<std::uint32_t>(run);
      if (header.count != 0) header.min_time = arena_.data()[begin_[b]].time;
      arena_live_ -= run;
      size_ -= run;
      peek_bucket_ = kNoBucket;
      if (overflow_.empty() || overflow_.front().time != time) {
        return {front, run};  // Zero-copy: the slice outlives this call.
      }
      scratch.assign(front, front + run);
    } else {
      scratch.clear();
    }
    // Overflow events on the shared timestamp: strictly later seqs than
    // any arena event (see class comment), so appending keeps the order.
    while (!overflow_.empty() && overflow_.front().time == time) {
      std::pop_heap(overflow_.begin(), overflow_.end(), After_{});
      // Rare path (overflow sharing the head timestamp); scratch is the
      // caller's reused buffer, so the growth amortizes away.
      scratch.push_back(overflow_.back());  // redund-lint: allow(hot-alloc, hot-per-element-insert)
      overflow_.pop_back();
      --size_;
    }
    return {scratch.data(), scratch.size()};
  }

  /// Sequence number the next schedule() will stamp (checkpoint state).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// The pending events in (time, seq) order, for checkpointing.
  [[nodiscard]] std::vector<Event> snapshot() const {
    std::vector<Event> events;
    events.reserve(size_);
    events.insert(events.end(), staged_.begin(), staged_.end());
    for (std::size_t b = 0; b < headers_.size(); ++b) {
      const Event* slice = arena_.data() + begin_[b];
      events.insert(events.end(), slice, slice + headers_[b].count);
    }
    events.insert(events.end(), overflow_.begin(), overflow_.end());
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) noexcept {
                return fires_before(a, b);
              });
    return events;
  }

  /// Appends the pending events to `out` in unspecified order (see
  /// EventQueue::snapshot_into) — no sort, no per-bucket gather order
  /// guarantees; the checkpoint writer thread sorts canonically.
  void snapshot_into(std::vector<Event>& out) const {
    out.insert(out.end(), staged_.begin(), staged_.end());
    for (std::size_t b = 0; b < headers_.size(); ++b) {
      const Event* slice = arena_.data() + begin_[b];
      out.insert(out.end(), slice, slice + headers_[b].count);
    }
    out.insert(out.end(), overflow_.begin(), overflow_.end());
  }

  /// Reinstates a snapshot and the seq cursor. Only meaningful on a fresh
  /// queue: the events re-enter the staging phase, so the first pop bulk
  /// loads them exactly like a cold campaign's initial schedule.
  void restore(std::vector<Event> events, std::uint64_t seq) {
    staged_ = std::move(events);
    staging_ = true;
    size_ = staged_.size();
    next_seq_ = seq;
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kNoBucket = ~std::size_t{0};

  /// One day-ring header: the bucket's earliest pending time and its live
  /// event count. 16 bytes — four headers per cache line — so the day
  /// scan streams through headers without touching event storage.
  struct Header {
    double min_time = 0.0;
    std::uint32_t count = 0;
    std::uint32_t pad_ = 0;
  };
  static_assert(sizeof(Header) == 16);

  // "a fires after b" — makes the max-heap algorithms yield a min-heap.
  struct After_ {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return fires_before(b, a);
    }
  };

  // Multiplying by the cached reciprocal instead of dividing saves a
  // hardware divide on the hottest path. The rounding can differ from a
  // true division by one day near day boundaries, but the queue only needs
  // day_ to be one fixed monotone map from time to integral doubles — and
  // it is: equal times share a day, later times never get earlier days.
  [[nodiscard]] double day_(double time) const noexcept {
    return std::floor(time * inv_width_);
  }
  [[nodiscard]] std::size_t bucket_of_day_(double day) const noexcept {
    return static_cast<std::size_t>(day) & (headers_.size() - 1);
  }
  [[nodiscard]] std::size_t bucket_index_(double time) const noexcept {
    return bucket_of_day_(day_(time));
  }

  /// The arena's earliest event (cached via peek_bucket_), or nullptr
  /// when the arena is drained.
  [[nodiscard]] const Event* arena_min_() {
    if (arena_live_ == 0) return nullptr;
    if (peek_bucket_ == kNoBucket) locate_min_();
    return arena_.data() + begin_[peek_bucket_];
  }

  void pop_arena_front_() {
    const std::size_t b = peek_bucket_;
    Header& header = headers_[b];
    ++begin_[b];
    --header.count;
    if (header.count != 0) header.min_time = arena_.data()[begin_[b]].time;
    --arena_live_;
    peek_bucket_ = kNoBucket;
  }

  /// Finds the arena's earliest event's bucket and caches it in
  /// peek_bucket_. Phase 1 walks at most one lap of days from
  /// current_day_; phase 2 (the next event is over a year away) takes the
  /// minimum over all headers. Both phases read only the 16-byte headers.
  /// min_time ties across buckets cannot happen — equal times share a day
  /// and therefore a bucket — so no seq tie-break is needed here.
  // redund: hot
  void locate_min_() {

    const std::size_t lap = headers_.size();
    const Header* headers = headers_.data();
    for (std::size_t step = 0; step < lap; ++step) {
      const double day = current_day_ + static_cast<double>(step);
      const std::size_t b = bucket_of_day_(day);
      // The scan order is a fixed ring walk over the header array; at
      // four headers a line, +8 days is two lines ahead — far enough to
      // hide the miss behind this step's compare, close enough to stay
      // in the L1 streaming window.
      __builtin_prefetch(headers + bucket_of_day_(day + 8.0));
      if (headers[b].count != 0 && day_(headers[b].min_time) == day) {
        current_day_ = day;
        peek_bucket_ = b;
        return;
      }
    }
    std::size_t best = kNoBucket;
    for (std::size_t b = 0; b < lap; ++b) {
      if (headers[b].count == 0) continue;
      if (best == kNoBucket ||
          headers[b].min_time < headers[best].min_time) {
        best = b;
      }
    }
    current_day_ = day_(headers[best].min_time);
    peek_bucket_ = best;
  }

  /// Folds the overflow back into the arena when it outgrows the live
  /// set, and re-learns the geometry when the arena drains past the
  /// shrink band. Called at pop boundaries only, so a view returned by
  /// the previous pop_run() is never invalidated mid-batch. Both
  /// thresholds are deliberately lazy: each fold costs O(arena +
  /// overflow), so folding at a fraction f of the arena pays (1 + f)/f
  /// rebuild passes per overflow event — under a sustained reissue storm
  /// (a chaos schedule's dropout bursts) f = 1/4 meant ~5x write
  /// amplification and the rebuild dominated the whole campaign. At
  /// f = 1 the amplification is ~2x, and in the meantime the overflow
  /// min-heap serves pops at the reference queue's O(log n) — strictly
  /// better than rebuilding more eagerly.
  void maybe_rebuild_() {
    const bool overflow_heavy =
        overflow_.size() > 4096 && overflow_.size() > arena_live_;
    if (arena_live_ < rebuild_lo_ || overflow_heavy) rebuild_();
  }

  /// Sizes the ring to ~size/2 buckets (~2 events per bucket — halves the
  /// header footprint and the build's scatter misses, and the slice
  /// insertion sort stays O(1) per bucket) and derives the width from the
  /// time spread [lo, hi]: ~twice the mean gap (Brown's rule of thumb).
  /// Clamped below so day numbers remain exact integers (and day +
  /// lap-step sums exact) up to 2^50.
  void set_geometry_(std::size_t n, double lo, double hi) {
    std::size_t nbuckets = kMinBuckets;
    while (nbuckets < n / 2) nbuckets *= 2;

    const double span = hi - lo;
    double width = n > 0 ? 2.0 * span / static_cast<double>(n) : 0.0;
    const double magnitude = std::max({std::abs(hi), std::abs(lo), 1.0});
    width = std::max(width, magnitude / 1.125899906842624e15);  // 2^50
    width_ = std::max(width, 1e-300);
    inv_width_ = 1.0 / width_;

    headers_.assign(nbuckets, Header{});
    begin_.resize(nbuckets);
    counts_.assign(nbuckets, 0);
    rebuild_lo_ = n / 16;
    peek_bucket_ = kNoBucket;
  }

  void reset_geometry_() {
    width_ = 1.0;
    inv_width_ = 1.0;
    current_day_ = 0.0;
    max_time_ = 0.0;  // The queue is empty; the span restarts fresh.
    headers_.assign(kMinBuckets, Header{});
    begin_.assign(kMinBuckets, 0);
    rebuild_lo_ = 0;
    arena_live_ = 0;
    peek_bucket_ = kNoBucket;
  }

  /// Bulk build core: histogram, prefix-sum, scatter, per-slice insertion
  /// sort. O(n) plus the (tiny, mostly-sorted) slice sorts; no per-bucket
  /// allocation — the arena double-buffers through arena_spare_ and every
  /// auxiliary array recycles its storage across builds. `for_each` must
  /// visit the same n events in the same order on every invocation.
  template <typename ForEach>
  void build_core_(std::size_t n, double lo, double hi, double min_time,
                   const ForEach& for_each) {
    set_geometry_(n, lo, hi);
    current_day_ = day_(min_time);

    for_each([&](const Event& event) {
      ++counts_[bucket_index_(event.time)];
    });
    std::uint32_t cursor = 0;
    for (std::size_t b = 0; b < headers_.size(); ++b) {
      begin_[b] = cursor;
      cursor += counts_[b];
      counts_[b] = begin_[b];  // Reused as the scatter cursor below.
    }
    arena_spare_.ensure(n);
    Event* spare = arena_spare_.data();
    for_each([&](const Event& event) {
      spare[counts_[bucket_index_(event.time)]++] = event;
    });
    std::swap(arena_, arena_spare_);
    arena_live_ = n;
    Event* arena = arena_.data();
    for (std::size_t b = 0; b < headers_.size(); ++b) {
      const std::uint32_t begin = begin_[b];
      const std::uint32_t count = counts_[b] - begin;
      if (count == 0) continue;
      sort_slice_(arena + begin, count);
      headers_[b].min_time = arena[begin].time;
      headers_[b].count = count;
    }
  }

  /// Builds the arena from a materialized event vector (the staging
  /// flush and snapshot restore paths).
  void build_(std::vector<Event>& source) {
    overflow_.clear();
    arena_live_ = source.size();
    if (source.empty()) {
      reset_geometry_();
      return;
    }
    double lo = source.front().time;
    double hi = lo;
    for (const Event& event : source) {
      lo = std::min(lo, event.time);
      hi = std::max(hi, event.time);
    }
    // Restored snapshots bypass schedule(); fold their span into the
    // monotone high-water mark the in-place rebuild relies on.
    max_time_ = std::max(max_time_, hi);
    build_core_(source.size(), lo, hi, lo, [&](const auto& visit) {
      for (const Event& event : source) visit(event);
    });
  }

  /// Insertion sort by (time, seq). Slices average ~2 events, and the one
  /// large slice a campaign produces — the shared-deadline storm — arrives
  /// already sorted (scatter preserves seq order), costing O(n).
  static void sort_slice_(Event* events, std::size_t n) noexcept {
    for (std::size_t i = 1; i < n; ++i) {
      if (!fires_before(events[i], events[i - 1])) continue;
      const Event event = events[i];
      std::size_t j = i;
      do {
        events[j] = events[j - 1];
        --j;
      } while (j > 0 && fires_before(event, events[j - 1]));
      events[j] = event;
    }
  }

  /// Ends the staging phase at the first pop with one bulk build.
  void flush_() {
    staging_ = false;
    build_(staged_);
    staged_.clear();
    staged_.shrink_to_fit();  // The bulk load happens at most once.
  }

  /// Folds the live arena slices plus the overflow into a fresh arena —
  /// without materializing a gather buffer. An earlier version copied
  /// everything into a collect vector and rebuilt from that, paying one
  /// extra full write+read pass over every live event per fold; here the
  /// histogram and scatter passes read the old slice map (swapped aside,
  /// since set_geometry_ overwrites it) and the overflow directly, in
  /// exactly the order the gather produced — the resulting arena is
  /// byte-identical. The span comes cheap: lo is exact from the old
  /// 16-byte headers and the overflow min-heap front (no event touched),
  /// hi is the monotone high-water mark of every scheduled time — an
  /// upper bound, which only widens Brown's-rule bucket width and never
  /// affects pop order.
  void rebuild_() {
    const std::size_t n = arena_live_ + overflow_.size();
    if (n == 0) {
      overflow_.clear();
      reset_geometry_();
      return;
    }
    double lo = std::numeric_limits<double>::infinity();
    for (const Header& header : headers_) {
      if (header.count != 0) lo = std::min(lo, header.min_time);
    }
    if (!overflow_.empty()) lo = std::min(lo, overflow_.front().time);

    headers_spare_.swap(headers_);
    begin_spare_.swap(begin_);
    // Both build_core_ passes run before the arena buffers swap, so the
    // old slices stay addressable through arena_ for the whole fold.
    build_core_(n, lo, max_time_, lo, [&](const auto& visit) {
      const Event* old_arena = arena_.data();
      for (std::size_t b = 0; b < headers_spare_.size(); ++b) {
        const Event* slice = old_arena + begin_spare_[b];
        const std::uint32_t count = headers_spare_[b].count;
        for (std::uint32_t i = 0; i < count; ++i) visit(slice[i]);
      }
      for (const Event& event : overflow_) visit(event);
    });
    overflow_.clear();
  }

  /// Grow-only uninitialized event buffer. The build scatter overwrites
  /// exactly the [0, live) prefix and every read goes through
  /// begin_/Header::count, so elements are never default-constructed — a
  /// std::vector here would value-initialize megabytes per build.
  struct Arena {
    std::unique_ptr<Event[]> events;
    std::size_t capacity = 0;

    void ensure(std::size_t n) {
      if (capacity >= n) return;
      events = std::make_unique_for_overwrite<Event[]>(n);
      capacity = n;
    }
    [[nodiscard]] Event* data() const noexcept { return events.get(); }
  };

  std::vector<Header> headers_;        ///< Packed (min_time, count) ring.
  std::vector<std::uint32_t> begin_;   ///< Arena offset of each slice front.
  std::vector<Header> headers_spare_;  ///< Old slice map during a fold.
  std::vector<std::uint32_t> begin_spare_;  ///< Its begin array (recycled).
  Arena arena_;                        ///< Live events grouped by bucket.
  Arena arena_spare_;                  ///< Build double-buffer (recycled).
  std::vector<Event> overflow_;        ///< Min-heap of post-build schedules.
  std::vector<std::uint32_t> counts_;  ///< Build histogram (recycled).
  std::vector<Event> staged_;          ///< Initial bulk load, pre-first-pop.
  bool staging_ = true;                ///< True until the first pop.
  double width_ = 1.0;
  double inv_width_ = 1.0;             ///< Cached 1 / width_ for day_().
  double current_day_ = 0.0;           ///< Day the pop scan resumes from.
  double max_time_ = 0.0;              ///< High-water mark of schedule times.
  std::size_t peek_bucket_ = kNoBucket;  ///< Bucket holding the cached min.
  std::size_t size_ = 0;               ///< Staged + arena + overflow.
  std::size_t arena_live_ = 0;         ///< Live events in the arena.
  std::size_t rebuild_lo_ = 0;         ///< Rebuild when arena drains below.
  std::uint64_t next_seq_ = 0;
};

}  // namespace redund::runtime
