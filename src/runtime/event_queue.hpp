// Deterministic pending-event heap for the asynchronous supervisor runtime.
//
// Generalizes the completion min-heap inside sim/des.cpp into a reusable
// queue carrying typed events. Two properties matter for reproducibility:
//
//   * Ties in simulated time are broken by schedule order (a monotonically
//     increasing sequence number), so the processing order is a pure
//     function of the event schedule — never of heap internals.
//   * Events are never cancelled. A timer that became irrelevant (its unit
//     completed, or was re-issued under a new epoch) drains as a stale
//     no-op; producers stamp events with the subject's epoch and consumers
//     drop mismatches. This keeps the queue allocation-free on the cancel
//     path and makes replay trivially deterministic.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace redund::runtime {

/// What a pending event means when it fires.
enum class EventKind : std::uint8_t {
  kCompletion,     ///< A participant returns the result of a unit.
  kDeadline,       ///< A unit's report deadline elapses.
  kReissue,        ///< A timed-out unit's backoff elapses; re-deal it.
  kAdaptiveCheck,  ///< Periodic reliability review of a straggling task.
};

/// One scheduled event. `subject` is a unit index (task index for
/// kAdaptiveCheck); `epoch` invalidates stale unit timers.
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kCompletion;
  std::int64_t subject = 0;
  std::uint64_t epoch = 0;
};

/// Min-heap over (time, seq).
class EventQueue {
 public:
  void schedule(double time, EventKind kind, std::int64_t subject,
                std::uint64_t epoch = 0) {
    heap_.push(Event{time, next_seq_++, kind, subject, epoch});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Removes and returns the earliest event (schedule order on time ties).
  Event pop() {
    Event event = heap_.top();
    heap_.pop();
    return event;
  }

 private:
  struct After {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, After> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace redund::runtime
