// Deterministic pending-event queues for the asynchronous supervisor
// runtime.
//
// Generalizes the completion min-heap inside sim/des.cpp into reusable
// queues carrying typed events. Two properties matter for reproducibility:
//
//   * Ties in simulated time are broken by schedule order (a monotonically
//     increasing sequence number), so the processing order is a pure
//     function of the event schedule — never of queue internals.
//   * Events are never cancelled. A timer that became irrelevant (its unit
//     completed, or was re-issued under a new epoch) drains as a stale
//     no-op; producers stamp events with the subject's epoch and consumers
//     drop mismatches. This keeps the queues allocation-free on the cancel
//     path and makes replay trivially deterministic.
//
// Two implementations share the interface (reserve / schedule / peek / pop):
//
//   * EventQueue — a plain std::vector binary heap driven by
//     std::push_heap/pop_heap. O(log n) per operation; the reference
//     implementation every other queue must match pop-for-pop.
//   * CalendarQueue — a bucketed ring (Brown's calendar queue, CACM 1988):
//     events hash into "day" buckets by floor(time / width), pop scans the
//     ring from the current day. O(1) amortized schedule/pop when the bucket
//     width tracks the mean event spacing, which periodic rebuilds maintain.
//     Pops in exactly the same (time, seq) order as the binary heap: equal
//     times always land in the same bucket (same day), buckets are kept
//     sorted, and the day scan visits strictly increasing times.
//
// The supervisor selects between them via RuntimeConfig::queue; because the
// pop order is contractually identical, the choice cannot change any
// simulation result — only its speed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/contracts.hpp"

namespace redund::runtime {

/// What a pending event means when it fires.
enum class EventKind : std::uint8_t {
  kCompletion,     ///< A participant returns the result of a unit.
  kDeadline,       ///< A unit's report deadline elapses.
  kReissue,        ///< A timed-out unit's backoff elapses; re-deal it.
  kAdaptiveCheck,  ///< Periodic reliability review of a straggling task.
  kFault,          ///< A FaultSchedule entry starts (subject = fault index).
  kFaultEnd,       ///< A windowed fault's duration elapses (same subject).
  kHealthCheck,    ///< Periodic campaign health review (stall detection).
  kReplan,         ///< Periodic adaptive-controller re-plan review.
};

/// Which pending-event queue the supervisor's loop runs on.
enum class QueueKind : std::uint8_t {
  kBinaryHeap,  ///< std::vector min-heap; O(log n), the reference.
  kCalendar,    ///< Bucketed ring; O(1) amortized, same pop order.
};

/// One scheduled event. `subject` is a unit index (task index for
/// kAdaptiveCheck); `epoch` invalidates stale unit timers.
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kCompletion;
  std::int64_t subject = 0;
  std::uint64_t epoch = 0;
};

/// Strict event order: (time, seq) ascending. seq is unique, so this is a
/// total order — the determinism contract both queues implement.
[[nodiscard]] inline bool fires_before(const Event& a,
                                       const Event& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// Min-heap over (time, seq).
class EventQueue {
 public:
  /// Pre-sizes the backing storage for `capacity` simultaneously pending
  /// events; the event loop then never reallocates while its high-water
  /// mark stays below this.
  void reserve(std::size_t capacity) { heap_.reserve(capacity); }

  // redund: hot
  void schedule(double time, EventKind kind, std::int64_t subject,
                std::uint64_t epoch = 0) {
    // Storage is pre-sized by reserve(); steady-state pushes never allocate.
    heap_.push_back(Event{time, next_seq_++, kind, subject, epoch});  // redund-lint: allow(hot-alloc)
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }

  /// Earliest pending event, or nullptr when empty. The pointer is
  /// invalidated by the next schedule()/pop().
  [[nodiscard]] const Event* peek() const noexcept {
    return heap_.empty() ? nullptr : heap_.data();
  }

  /// Removes and returns the earliest event (schedule order on time ties).
  // redund: hot
  Event pop() {
    REDUND_PRECONDITION(!heap_.empty(), "pop() requires a pending event");
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    Event event = heap_.back();
    heap_.pop_back();
    return event;
  }

  /// Sequence number the next schedule() will stamp (checkpoint state).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// The pending events in (time, seq) order, for checkpointing.
  [[nodiscard]] std::vector<Event> snapshot() const {
    std::vector<Event> events = heap_;
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) noexcept {
                return fires_before(a, b);
              });
    return events;
  }

  /// Reinstates a snapshot (events sorted by fires_before) and the seq
  /// cursor. Only meaningful on a fresh queue. An ascending-sorted array
  /// is already a valid min-heap, so the heap is adopted as-is.
  void restore(std::vector<Event> events, std::uint64_t seq) {
    heap_ = std::move(events);
    next_seq_ = seq;
  }

 private:
  // "a fires after b" — makes the max-heap algorithms yield a min-heap.
  struct After {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return fires_before(b, a);
    }
  };

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Calendar queue: a ring of day buckets over simulated time.
///
/// An event at time t belongs to day floor(t / width); its bucket is
/// day mod nbuckets (nbuckets a power of two). Every bucket keeps its live
/// events sorted by (time, seq), so its front is its earliest event. pop()
/// scans days forward from the current day: the first bucket whose front
/// actually belongs to the day under inspection holds the global minimum,
/// because equal times share a day and later days hold strictly later
/// times. If a whole lap (nbuckets days) finds nothing, the next event is
/// more than one "year" away and a direct scan over all bucket fronts
/// relocates the cursor — the standard sparse-queue fallback.
///
/// Buckets are vectors with a consumed-prefix head index: pop advances the
/// head (O(1)) and the storage compacts once the dead prefix dominates, so
/// a burst of equal-time events (every initial deadline of a campaign
/// lands on one timestamp, hence in one bucket) drains in O(1) amortized
/// instead of the O(n) front-erase would cost.
///
/// The structure rebuilds itself (new bucket count ~ size, new width ~ the
/// observed mean gap between event times) whenever the size leaves the
/// band set at the previous rebuild, keeping occupancy O(1) per bucket and
/// day density O(1) — the conditions under which every operation is O(1)
/// amortized. Rebuilds preserve (time, seq) order exactly.
///
/// Days are compared as exact integers held in doubles; width_ is clamped
/// so day numbers stay below 2^50 and the floor/step/compare arithmetic is
/// exact. Negative times are not supported (the runtime starts at t = 0).
class CalendarQueue {
 public:
  CalendarQueue() { buckets_.resize(kMinBuckets); }

  /// Pre-sizes the staging buffer for the initial bulk load (see
  /// schedule()) and the ring arrays for the first build after it.
  void reserve(std::size_t capacity) {
    if (size_ != 0) return;  // Only meaningful before the first schedule.
    std::size_t nbuckets = kMinBuckets;
    while (nbuckets < capacity) nbuckets *= 2;
    staged_.reserve(capacity);
    buckets_.reserve(nbuckets);
    spare_.reserve(nbuckets);
  }

  void schedule(double time, EventKind kind, std::int64_t subject,
                std::uint64_t epoch = 0) {
    const Event event{time, next_seq_++, kind, subject, epoch};
    // Until the first pop the queue only accumulates (a cold campaign
    // schedules every initial event up front), so events are staged in a
    // plain vector and the ring is built once, with the width learned from
    // the whole initial set. Building day buckets before any time is known
    // would pack hundreds of events per bucket and pay a memmove-heavy
    // sorted insert for each — the bulk load replaces all of that with one
    // O(n) distribution pass at first pop.
    if (staging_) {
      staged_.push_back(event);
      ++size_;
      return;
    }
    const std::size_t b = bucket_index_(time);
    buckets_[b].insert(event);
    ++size_;
    if (size_ == 1) {
      current_day_ = day_(time);
      peek_bucket_ = b;
    } else {
      if (const double d = day_(time); d < current_day_) current_day_ = d;
      if (peek_bucket_ != kNoBucket &&
          fires_before(event, buckets_[peek_bucket_].front())) {
        peek_bucket_ = b;
      }
    }
    if (size_ > rebuild_hi_) rebuild_();
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Earliest pending event, or nullptr when empty. Amortized O(1); the
  /// pointer is invalidated by the next schedule()/pop().
  [[nodiscard]] const Event* peek() {
    if (size_ == 0) return nullptr;
    if (staging_) flush_();
    if (peek_bucket_ == kNoBucket) locate_min_();
    return &buckets_[peek_bucket_].front();
  }

  /// Removes and returns the earliest event (schedule order on time ties).
  // redund: hot
  Event pop() {
    REDUND_PRECONDITION(size_ != 0, "pop() requires a pending event");
    (void)peek();
    const Event event = buckets_[peek_bucket_].pop_front();
    --size_;
    peek_bucket_ = kNoBucket;
    current_day_ = day_(event.time);  // Same-day successors hit on step 0.
    if (size_ < rebuild_lo_) rebuild_();
    return event;
  }

  /// Sequence number the next schedule() will stamp (checkpoint state).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// The pending events in (time, seq) order, for checkpointing.
  [[nodiscard]] std::vector<Event> snapshot() const {
    std::vector<Event> events;
    events.reserve(size_);
    events.insert(events.end(), staged_.begin(), staged_.end());
    for (const Bucket& bucket : buckets_) {
      events.insert(events.end(),
                    bucket.events.begin() +
                        static_cast<std::ptrdiff_t>(bucket.head),
                    bucket.events.end());
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) noexcept {
                return fires_before(a, b);
              });
    return events;
  }

  /// Reinstates a snapshot and the seq cursor. Only meaningful on a fresh
  /// queue: the events re-enter the staging phase, so the first pop bulk
  /// loads them exactly like a cold campaign's initial schedule.
  void restore(std::vector<Event> events, std::uint64_t seq) {
    staged_ = std::move(events);
    staging_ = true;
    size_ = staged_.size();
    next_seq_ = seq;
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kNoBucket = ~std::size_t{0};

  /// One day-ring slot: live events are events[head..), sorted ascending by
  /// (time, seq). pop_front advances head; the dead prefix is compacted
  /// away once it outgrows the live suffix (amortized O(1) per pop).
  struct Bucket {
    std::vector<Event> events;
    std::size_t head = 0;

    [[nodiscard]] bool empty() const noexcept {
      return head == events.size();
    }
    [[nodiscard]] const Event& front() const noexcept { return events[head]; }

    // redund: hot
    void insert(const Event& event) {
      // Append fast path: schedule() stamps monotonically increasing seq
      // numbers and simulated time never runs backwards within a bucket's
      // day in the common case, so most inserts land at the tail. The
      // binary search + memmove-heavy vector::insert is kept only for the
      // out-of-order minority (re-issues racing deadlines).
      if (events.empty() || !fires_before(event, events.back())) {
        events.push_back(event);  // redund-lint: allow(hot-alloc)
        return;
      }
      events.insert(  // redund-lint: allow(hot-alloc)
          std::upper_bound(events.begin() +
                               static_cast<std::ptrdiff_t>(head),
                           events.end(), event,
                           [](const Event& a, const Event& b) noexcept {
                             return fires_before(a, b);
                           }),
          event);
    }

    Event pop_front() {
      const Event event = events[head++];
      if (head >= 32 && head * 2 >= events.size()) {
        events.erase(events.begin(),
                     events.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      } else if (head == events.size()) {
        events.clear();
        head = 0;
      }
      return event;
    }
  };

  // Multiplying by the cached reciprocal instead of dividing saves a
  // hardware divide on the hottest path. The rounding can differ from a
  // true division by one day near day boundaries, but the queue only needs
  // day_ to be one fixed monotone map from time to integral doubles — and
  // it is: equal times share a day, later times never get earlier days.
  [[nodiscard]] double day_(double time) const noexcept {
    return std::floor(time * inv_width_);
  }
  [[nodiscard]] std::size_t bucket_of_day_(double day) const noexcept {
    return static_cast<std::size_t>(day) & (buckets_.size() - 1);
  }
  [[nodiscard]] std::size_t bucket_index_(double time) const noexcept {
    return bucket_of_day_(day_(time));
  }

  /// Finds the earliest event's bucket and caches it in peek_bucket_.
  /// Phase 1 walks at most one lap of days from current_day_; phase 2 (the
  /// next event is over a year away) takes the minimum over all fronts.
  // redund: hot
  void locate_min_() {
    const std::size_t lap = buckets_.size();
    for (std::size_t step = 0; step < lap; ++step) {
      const double day = current_day_ + static_cast<double>(step);
      const std::size_t b = bucket_of_day_(day);
      // The scan order is a fixed ring walk, so the bucket header one day
      // ahead is a perfectly predictable miss — hide it behind this step's
      // empty()/front() work.
      __builtin_prefetch(&buckets_[bucket_of_day_(day + 1.0)]);
      if (!buckets_[b].empty() && day_(buckets_[b].front().time) == day) {
        current_day_ = day;
        peek_bucket_ = b;
        return;
      }
    }
    const Event* best = nullptr;
    std::size_t best_bucket = kNoBucket;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      if (buckets_[b].empty()) continue;
      const Event& front = buckets_[b].front();
      if (best == nullptr || fires_before(front, *best)) {
        best = &front;
        best_bucket = b;
      }
    }
    current_day_ = day_(best->time);
    peek_bucket_ = best_bucket;
  }

  /// Sizes the ring to ~size_ buckets and derives the width from the time
  /// spread [lo, hi] of the current event set: ~ twice the mean gap
  /// (Brown's rule of thumb), so one day holds a couple of events on
  /// average. Clamped below so day numbers remain exact integers (and
  /// day + lap-step sums exact) up to 2^50. Shrinking the ring keeps the
  /// surviving buckets' vector capacity; clearing it never frees storage.
  void set_geometry_(double lo, double hi, const Event* min_event) {
    // ~2 events per bucket instead of ~1: halves the ring footprint (and
    // the zeroing each rebuild pays), trading a two-element sorted insert
    // — which the append fast path usually turns into a push_back — for
    // half the cache misses on the random-bucket distribution walk.
    std::size_t nbuckets = kMinBuckets;
    while (nbuckets < size_ / 2) nbuckets *= 2;

    const double span = hi - lo;
    double width = size_ > 0 ? 2.0 * span / static_cast<double>(size_) : 0.0;
    const double magnitude = std::max({std::abs(hi), std::abs(lo), 1.0});
    width = std::max(width, magnitude / 1.125899906842624e15);  // 2^50
    width_ = std::max(width, 1e-300);
    inv_width_ = 1.0 / width_;
    if (min_event != nullptr) current_day_ = day_(min_event->time);

    if (buckets_.size() > nbuckets) buckets_.resize(nbuckets);
    for (Bucket& bucket : buckets_) {
      bucket.events.clear();
      bucket.head = 0;
    }
    if (buckets_.size() < nbuckets) buckets_.resize(nbuckets);
    rebuild_hi_ = std::max<std::size_t>(2 * size_, 32);
    // Shrink rebuilds trade one O(size) redistribution for a denser day
    // scan. At /4 a draining campaign rebuilds on every quartering — the
    // dominant rebuild cost in profiles; /8 halves that count and the
    // prefetched lap scan absorbs the extra sparsity.
    rebuild_lo_ = size_ / 8;
    peek_bucket_ = kNoBucket;
  }

  /// Ends the staging phase at the first pop: one pass over the staged
  /// events learns the geometry, a second distributes them in schedule
  /// order (so equal-time runs land already sorted, appending).
  void flush_() {
    staging_ = false;
    double lo = 0.0;
    double hi = 0.0;
    const Event* min_event = nullptr;
    for (const Event& event : staged_) {
      if (min_event == nullptr) {
        lo = hi = event.time;
        min_event = &event;
      } else {
        lo = std::min(lo, event.time);
        hi = std::max(hi, event.time);
        if (fires_before(event, *min_event)) min_event = &event;
      }
    }
    set_geometry_(lo, hi, min_event);
    for (const Event& event : staged_) {
      buckets_[bucket_index_(event.time)].insert(event);
    }
    staged_.clear();
    staged_.shrink_to_fit();  // The bulk load happens at most once.
  }

  /// Re-learns the geometry from the live event set whenever the size
  /// leaves the band set last time, keeping occupancy O(1) per bucket and
  /// day density O(1). Events move bucket-by-bucket (each already sorted)
  /// through sorted re-insertion into the small new buckets — no global
  /// sort. The old and new rings double-buffer through spare_, and
  /// draining only clear()s the small per-bucket vectors, so steady-state
  /// rebuilds recycle all their storage instead of re-allocating it.
  void rebuild_() {
    std::swap(buckets_, spare_);  // Live events are now in spare_.
    double lo = 0.0;
    double hi = 0.0;
    const Event* min_event = nullptr;
    for (const Bucket& bucket : spare_) {
      for (std::size_t i = bucket.head; i < bucket.events.size(); ++i) {
        const Event& event = bucket.events[i];
        if (min_event == nullptr) {
          lo = hi = event.time;
          min_event = &event;
        } else {
          lo = std::min(lo, event.time);
          hi = std::max(hi, event.time);
          if (fires_before(event, *min_event)) min_event = &event;
        }
      }
    }
    set_geometry_(lo, hi, min_event);
    for (const Bucket& bucket : spare_) {
      for (std::size_t i = bucket.head; i < bucket.events.size(); ++i) {
        const Event& event = bucket.events[i];
        buckets_[bucket_index_(event.time)].insert(event);
      }
    }
    for (Bucket& bucket : spare_) {  // Drop events, keep vector capacity.
      bucket.events.clear();
      bucket.head = 0;
    }
  }

  std::vector<Bucket> buckets_;
  std::vector<Bucket> spare_;      ///< Rebuild double-buffer (recycled).
  std::vector<Event> staged_;      ///< Initial bulk load, pre-first-pop.
  bool staging_ = true;            ///< True until the first pop.
  double width_ = 1.0;
  double inv_width_ = 1.0;         ///< Cached 1 / width_ for day_().
  double current_day_ = 0.0;       ///< Day the pop scan resumes from.
  std::size_t peek_bucket_ = kNoBucket;  ///< Bucket holding the cached min.
  std::size_t size_ = 0;
  std::size_t rebuild_hi_ = 32;    ///< Rebuild when size grows past this.
  std::size_t rebuild_lo_ = 0;     ///< ... or shrinks below this.
  std::uint64_t next_seq_ = 0;
};

}  // namespace redund::runtime
