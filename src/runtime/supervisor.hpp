// Asynchronous supervisor runtime: executes a realized redundancy plan over
// simulated time (event-driven), instead of platform::Campaign's single
// synchronous enroll->deal->verify pass.
//
// The paper's Section 1 caveat — detection "alerts the supervisor to the
// presence of an active adversary, allowing for potential reactive
// measures" — presumes an operational substrate with *time* in it: copies
// straggle, results get lost, deadlines fire, the supervisor re-issues work
// and only then can it react. This module provides that substrate, modelled
// on the BOINC scheduler/transitioner/validator loop:
//
//   * per-participant latency/availability model (runtime/latency_model.hpp):
//     heterogeneous speeds, stragglers, no-reply dropouts;
//   * a work-issue loop with per-unit deadlines, bounded retries under
//     exponential backoff, and re-issue through
//     platform::Scheduler::try_reassign_unit (so the one-copy-per-identity
//     rule keeps holding across re-deals);
//   * a per-task transitioner/validator state machine
//     (runtime/task_state.hpp) with quorum agreement, ringer ground-truth
//     checks, and the resolution policies of platform::Campaign;
//   * adaptive replication: per-identity reliability scores (EWMA over
//     timeouts and validated results) gate delayed extra replicas for
//     straggling tasks held by unreliable identities;
//   * a RuntimeReport (runtime/report.hpp) with totals, makespan, detection
//     latency, and an optional counter time series.
//
// Deterministic for a fixed RuntimeConfig::seed: every random draw comes
// from a SplitMix64-derived stream keyed by purpose and subject, and event
// ties resolve by schedule order (runtime/event_queue.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "control/controller.hpp"
#include "core/realize.hpp"
#include "platform/campaign.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/fault.hpp"
#include "runtime/latency_model.hpp"
#include "runtime/report.hpp"
#include "sim/adversary.hpp"

namespace redund::runtime {

/// Deadline / retry policy of the work-issue loop.
struct RetryPolicy {
  /// Floor on the effective re-issue delay. backoff_base == 0 would
  /// otherwise re-issue at the timeout instant itself for *every* retry
  /// (0 · factor^k = 0) — a zero-delay re-issue storm that floods the
  /// event queue at a single timestamp. Any configured backoff is
  /// clamped up to this minimum rather than rejected, so legacy configs
  /// keep working with a bounded re-issue rate.
  static constexpr double kMinReissueDelay = 1e-3;

  /// Per-unit report deadline measured from issue time. <= 0 selects the
  /// automatic deadline: network_delay + 4 * mean_service * expected
  /// queue depth (units / participants, at least 1).
  double deadline = 0.0;
  /// Re-issues allowed per unit before the supervisor recomputes it itself.
  std::int64_t max_retries = 3;
  /// First re-issue delay after a timeout; grows by backoff_factor each
  /// further attempt (exponential backoff). Effective delay is
  /// max(backoff_base * backoff_factor^k, kMinReissueDelay).
  double backoff_base = 0.5;
  double backoff_factor = 2.0;
};

/// Reliability-score-gated adaptive replication.
struct AdaptiveConfig {
  bool enabled = true;
  /// Review period for straggling tasks. <= 0 selects half the effective
  /// deadline.
  double check_interval = 0.0;
  /// Replicate a straggling task when the mean reliability score of the
  /// identities holding its outstanding copies falls below this floor.
  double reliability_floor = 0.4;
  /// Cap on extra replicas per task (adaptive + INCONCLUSIVE combined).
  std::int64_t max_extra_replicas = 2;
  /// Score dynamics: start value, gain toward 1 on a validated-correct
  /// result, multiplicative decay on a timeout or rejected result.
  double score_init = 0.7;
  double score_gain = 0.1;
  double score_loss = 0.3;
};

/// Campaign health monitoring and graceful degradation.
///
/// The monitor runs as a periodic kHealthCheck event. At each check it
/// folds the progress made since the previous check (completions,
/// supervisor recomputes, validations) into an EWMA progress rate and
/// tracks the live-fleet low-water mark. A campaign is declared
/// *stalled* — CampaignOutcome::kStalled, partial report — when
/// `stall_checks` consecutive checks observe zero progress while no
/// completion is in flight (nothing pending that could produce any).
/// This is deliberately conservative: a configuration whose only
/// pending work is hours away (e.g. an enormous backoff) is reported
/// stalled rather than waited out; raise check_interval or stall_checks
/// to wait longer.
struct HealthConfig {
  /// Review period. <= 0 selects twice the effective deadline.
  double check_interval = 0.0;
  /// Consecutive zero-progress reviews (with nothing in flight) that
  /// declare the campaign stalled.
  std::int64_t stall_checks = 3;
  /// EWMA smoothing factor for the progress rate, in (0, 1].
  double ewma_alpha = 0.3;
  /// Supervisor recomputes allowed per campaign; < 0 is unlimited (the
  /// pre-fault-model behaviour, where recompute guarantees termination).
  /// With a finite budget, a unit whose budget ran out parks until the
  /// health monitor ends the campaign.
  std::int64_t recompute_budget = -1;
  /// Hard bound on simulated time; the campaign aborts
  /// (CampaignOutcome::kAborted) when the next event lies beyond it.
  /// <= 0 disables the bound.
  double max_sim_time = 0.0;
};

/// Write-ahead journaling (crash safety). See runtime/journal.hpp and
/// runtime/checkpoint.hpp for the multi-level design.
struct JournalOptions {
  /// Journal file path; empty disables journaling.
  std::string path;
  /// Events processed between checkpoints.
  std::int64_t checkpoint_interval = 4096;
  /// Every Nth checkpoint is a full (L2) snapshot; the ones between are
  /// L1 deltas of the lanes dirtied since the previous record. 1 makes
  /// every checkpoint full (the pre-multi-level behavior). The first
  /// checkpoint of a run is always full.
  std::int64_t full_snapshot_every = 8;
  /// Record the per-event write-ahead log. On: resume replays the exact
  /// post-checkpoint suffix and verifies every re-executed event against
  /// it. Off (checkpoint-only mode): nothing is written between
  /// checkpoints, every checkpoint is full (L1 deltas need the WAL's pop
  /// records to compose), and resume re-runs deterministically from the
  /// latest snapshot — same bytes, granularity of one checkpoint
  /// interval, near-zero cost on the event loop.
  bool wal = true;
};

/// Full configuration of one asynchronous campaign.
struct RuntimeConfig {
  core::RealizedPlan plan;               ///< What to distribute.
  std::int64_t honest_participants = 0;  ///< Honest identities to enroll.
  std::int64_t sybil_identities = 0;     ///< Adversary identities to enroll.
  sim::CheatStrategy strategy = sim::CheatStrategy::kAlwaysCheat;
  std::int64_t tuple_size = 1;           ///< For the tuple strategies.
  double benign_error_rate = 0.0;        ///< Honest per-unit error prob.
  platform::Resolution resolution = platform::Resolution::kRecompute;
  bool reactive = true;                  ///< Blacklist + requeue on catch.
  LatencyModel latency;
  RetryPolicy retry;
  AdaptiveConfig adaptive;
  /// Online adaptive redundancy controller (src/control/): estimates the
  /// adversary fraction from validator outcomes and re-plans the
  /// remaining units' multiplicity mix on a kReplan cadence. Disabled by
  /// default; a disabled controller changes nothing about the campaign.
  control::ControlConfig control;
  /// Timed fault injection (empty = no faults). Validated against the
  /// enrolled fleet at campaign start.
  FaultSchedule faults;
  HealthConfig health;
  JournalOptions journal;
  /// Counter sampling period for RuntimeReport::series (0 disables).
  double sample_interval = 0.0;
  /// Pending-event queue the supervisor's loop runs on. Both kinds pop in
  /// the identical (time, seq) order, so this cannot change any result —
  /// only throughput (the calendar queue is O(1) amortized per event).
  QueueKind queue = QueueKind::kCalendar;
  std::uint64_t seed = 0xA57C0DEULL;
};

/// Runs one asynchronous campaign until every task is VALID or the health
/// monitor ends it (RuntimeReport::outcome records which). Deterministic
/// given config.seed; throws std::invalid_argument on bad parameters.
[[nodiscard]] RuntimeReport run_async_campaign(const RuntimeConfig& config);

/// Like run_async_campaign, but stops — as if the supervisor process were
/// killed — once `max_events` events have been processed (batch
/// granularity: the cap is checked between same-timestamp batches).
/// Returns nullopt when the cap hit first; with journaling configured the
/// journal then holds everything resume_async_campaign needs. Buffered
/// WAL records are flushed at the kill (a graceful SIGTERM; a hard crash
/// would lose the tail since the last checkpoint, which only shrinks the
/// verified suffix on resume).
[[nodiscard]] std::optional<RuntimeReport> run_async_campaign_capped(
    const RuntimeConfig& config, std::int64_t max_events);

/// Resumes a campaign from config.journal.path: restores the latest
/// checkpoint (or starts fresh when none was flushed) and re-runs the
/// deterministic event loop to the end, verifying the re-executed event
/// stream against the journal's WAL tail. The resulting report is
/// bit-identical to the uninterrupted run's. Throws std::runtime_error
/// when the journal belongs to a different config/seed or the replay
/// diverges from the WAL.
[[nodiscard]] RuntimeReport resume_async_campaign(const RuntimeConfig& config);

/// Canonical fingerprint of everything that determines a campaign's
/// event stream (all of RuntimeConfig except the journal options, which
/// only decide *recording*). This is the hash a journal header carries;
/// exposed so ShardedSupervisor can match L3 partner records to the
/// shard they belong to.
[[nodiscard]] std::uint64_t campaign_fingerprint(const RuntimeConfig& config);

}  // namespace redund::runtime
