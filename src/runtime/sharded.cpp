#include "runtime/sharded.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/contracts.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/engines.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/journal.hpp"

namespace redund::runtime {

namespace {

constexpr std::uint64_t kShardSeedSalt = 0x5AA2DED5EEDULL;

/// Shard s's share of `total` under the fixed floor-plus-remainder rule:
/// every shard gets total/S, the first total%S shards one more. Summing
/// over s returns exactly `total`, and the rule is monotone (a shard never
/// gets a larger share of a smaller total), which keeps derived per-shard
/// quantities (e.g. tail tasks vs. their multiplicity class) consistent.
[[nodiscard]] std::int64_t share(std::int64_t total, std::int64_t shards,
                                 std::int64_t s) noexcept {
  return total / shards + (s < total % shards ? 1 : 0);
}

}  // namespace

ShardedSupervisor::ShardedSupervisor(const RuntimeConfig& base,
                                     std::int64_t shards) {
  if (shards < 1) {
    throw std::invalid_argument("ShardedSupervisor: shards must be >= 1");
  }
  // Every shard needs at least one task and one honest identity to be a
  // well-formed campaign of its own.
  std::int64_t s_count = shards;
  if (base.plan.task_count > 0) {
    s_count = std::min(s_count, base.plan.task_count);
  }
  if (base.honest_participants > 0) {
    s_count = std::min(s_count, base.honest_participants);
  }
  s_count = std::max<std::int64_t>(s_count, 1);

  // Per-shard seeds come from one SplitMix64 walk over the base seed, so
  // shard streams are decorrelated from each other and from the base
  // campaign's own streams (which key off base.seed directly).
  rng::SplitMix64 seed_mixer(base.seed ^ kShardSeedSalt);
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(s_count));
  for (std::uint64_t& seed : seeds) seed = seed_mixer();

  configs_.reserve(static_cast<std::size_t>(s_count));
  for (std::int64_t s = 0; s < s_count; ++s) {
    RuntimeConfig shard = base;  // Policies, latency model, queue kind.
    shard.seed = seeds[static_cast<std::size_t>(s)];
    shard.honest_participants = share(base.honest_participants, s_count, s);
    shard.sybil_identities = share(base.sybil_identities, s_count, s);

    core::RealizedPlan& plan = shard.plan;
    plan.counts.assign(base.plan.counts.size(), 0);
    plan.task_count = 0;
    plan.work_assignments = 0;
    for (std::size_t i = 0; i < base.plan.counts.size(); ++i) {
      const std::int64_t cut = share(base.plan.counts[i], s_count, s);
      plan.counts[i] = cut;
      plan.task_count += cut;
      plan.work_assignments += static_cast<std::int64_t>(i + 1) * cut;
    }
    plan.tail_tasks = share(base.plan.tail_tasks, s_count, s);
    plan.tail_multiplicity = plan.tail_tasks > 0
                                 ? base.plan.tail_multiplicity
                                 : 0;
    plan.ringer_count = share(base.plan.ringer_count, s_count, s);
    plan.ringer_multiplicity = plan.ringer_count > 0
                                   ? base.plan.ringer_multiplicity
                                   : 0;
    plan.ringer_assignments = plan.ringer_count * plan.ringer_multiplicity;

    // Each shard sees its slice of the fault schedule: fleet-wide events
    // replicate to every shard, participant-targeted events go to the
    // owning shard with the identity remapped to its local index.
    shard.faults = base.faults.slice(base.honest_participants,
                                     base.sybil_identities, s_count, s);
    // Per-shard journals: each sub-campaign is its own crash-recovery
    // domain, so each writes (and resumes) its own file.
    if (!base.journal.path.empty()) {
      shard.journal.path = base.journal.path + ".shard" + std::to_string(s);
    }
    configs_.push_back(std::move(shard));
  }

#if REDUND_ENABLE_INVARIANTS
  // Partition conservation: the shard slices must add back to the base
  // campaign exactly — tasks, assignments (Σ i·x_i), ringers, and fleet.
  std::int64_t sum_tasks = 0;
  std::int64_t sum_work = 0;
  std::int64_t sum_ringers = 0;
  std::int64_t sum_honest = 0;
  for (const RuntimeConfig& shard : configs_) {
    sum_tasks += shard.plan.task_count;
    sum_work += shard.plan.work_assignments;
    sum_ringers += shard.plan.ringer_count;
    sum_honest += shard.honest_participants;
  }
  REDUND_INVARIANT(sum_tasks == base.plan.task_count,
                   "shard task counts partition the base plan");
  REDUND_INVARIANT(sum_work == base.plan.work_assignments,
                   "shard assignment totals (sum i*x_i) partition the base "
                   "plan");
  REDUND_INVARIANT(sum_ringers == base.plan.ringer_count,
                   "shard ringer counts partition the base plan");
  REDUND_INVARIANT(sum_honest == base.honest_participants,
                   "shard fleets partition the base fleet");
#endif
}

RuntimeReport ShardedSupervisor::run(parallel::ThreadPool& pool) const {
  std::vector<RuntimeReport> reports(configs_.size());
  // Slot-per-shard writes: scheduling order cannot shuffle results.
  parallel::parallel_for(pool, configs_.size(), [&](std::size_t s) {
    reports[s] = run_async_campaign(configs_[s]);
  });
  // Every shard's journal is final (writer threads joined) — replicate
  // the L3 partner copies so the fleet's journals now tolerate losing
  // any single file.
  if (!configs_.empty() && !configs_[0].journal.path.empty()) {
    replicate_partner_checkpoints();
  }
  return merge(reports);
}

void ShardedSupervisor::replicate_partner_checkpoints() const {
  const std::size_t s_count = configs_.size();
  if (s_count < 2 || configs_[0].journal.path.empty()) return;
  for (std::size_t s = 0; s < s_count; ++s) {
    JournalContents contents;
    try {
      contents = read_journal(configs_[s].journal.path);
    } catch (const std::runtime_error&) {
      continue;  // Missing or unreadable origin: nothing to replicate.
    }
    if (!contents.has_checkpoint) continue;  // No L2 yet.
    // Only the latest *full* record ships — a partner rescue needs a
    // self-contained snapshot (the delta chain references WAL records
    // that die with the origin file). The rescue just re-runs a little
    // more of the deterministic suffix.
    const PartnerCopy copy =
        make_partner_copy(contents.config_hash, contents.seed,
                          contents.checkpoint_index, contents.checkpoint_blob);
    append_partner_record(configs_[(s + 1) % s_count].journal.path, copy);
  }
}

RuntimeReport ShardedSupervisor::resume(parallel::ThreadPool& pool) const {
  if (configs_.empty() || configs_[0].journal.path.empty()) {
    throw std::invalid_argument(
        "ShardedSupervisor::resume: journaling must be configured "
        "(journal.path empty)");
  }
  std::vector<RuntimeReport> reports(configs_.size());
  parallel::parallel_for(pool, configs_.size(), [&](std::size_t s) {
    reports[s] = resume_shard_(s);
  });
  return merge(reports);
}

RuntimeReport ShardedSupervisor::resume_shard_(std::size_t s) const {
  const RuntimeConfig& config = configs_[s];
  try {
    return resume_async_campaign(config);
  } catch (const std::runtime_error&) {
    // Own journal missing or unusable — fall through to the L3 copy.
    // Falling back can never change the output, only how much of the
    // run is re-executed: every path below replays the same
    // deterministic event loop.
  }
  try {
    const JournalContents holder =
        read_journal(configs_[(s + 1) % configs_.size()].journal.path);
    if (holder.has_partner &&
        holder.partner_config_hash == campaign_fingerprint(config) &&
        holder.partner_seed == config.seed) {
      write_rescue_journal(config.journal.path, holder.partner_config_hash,
                           holder.partner_seed, holder.partner_index,
                           extract_partner_blob(holder));
      return resume_async_campaign(config);
    }
  } catch (const std::runtime_error&) {
    // Holder journal unusable too; last resort below.
  }
  // Both copies gone: determinism still recovers the exact report, just
  // by re-running the shard from the start.
  return run_async_campaign(config);
}

RuntimeReport ShardedSupervisor::merge(
    const std::vector<RuntimeReport>& reports) {
  RuntimeReport merged;
  double detection_weighted_latency = 0.0;
  double p_mean_weighted = 0.0;
  double p_upper_weighted = 0.0;
  std::int64_t p_hat_weight = 0;
  for (const RuntimeReport& r : reports) {
    // Per-shard counter consistency before folding: a report whose own
    // counters do not balance would poison every merged total. (Partial
    // fixture reports with tasks == 0 are exempt from the balance check.)
    REDUND_INVARIANT(r.tasks == 0 ||
                         r.tasks_valid + r.tasks_unfinished <= r.tasks,
                     "shard report: valid + unfinished tasks within total");
    REDUND_INVARIANT(
        r.final_correct_tasks + r.final_corrupt_tasks == r.tasks_valid,
        "shard report: validated tasks split into correct + corrupt");
    merged.tasks += r.tasks;
    merged.units_planned += r.units_planned;
    merged.participants += r.participants;
    merged.stragglers += r.stragglers;
    merged.units_issued += r.units_issued;
    merged.units_completed += r.units_completed;
    merged.units_timed_out += r.units_timed_out;
    merged.units_reissued += r.units_reissued;
    merged.units_dropped += r.units_dropped;
    merged.late_results += r.late_results;
    merged.adaptive_replicas += r.adaptive_replicas;
    merged.quorum_replicas += r.quorum_replicas;
    merged.supervisor_recomputes += r.supervisor_recomputes;
    merged.tasks_valid += r.tasks_valid;
    merged.tasks_inconclusive += r.tasks_inconclusive;
    merged.mismatches_detected += r.mismatches_detected;
    merged.ringer_catches += r.ringer_catches;
    merged.blacklisted_identities += r.blacklisted_identities;
    merged.replan_rounds += r.replan_rounds;
    merged.control_boosts += r.control_boosts;
    merged.control_releases += r.control_releases;
    merged.control_observations += r.control_observations;
    // Posterior summaries merge as observation-weighted means: each
    // shard's controller saw only its own outcomes, so this is the
    // natural fleet-level pooling (deterministic: ascending shard order).
    if (r.control_observations > 0) {
      p_mean_weighted +=
          r.p_hat_mean * static_cast<double>(r.control_observations);
      p_upper_weighted +=
          r.p_hat_upper * static_cast<double>(r.control_observations);
      p_hat_weight += r.control_observations;
    }
    merged.adversary_cheat_attempts += r.adversary_cheat_attempts;
    merged.false_accusations += r.false_accusations;
    merged.final_correct_tasks += r.final_correct_tasks;
    merged.final_corrupt_tasks += r.final_corrupt_tasks;
    // Degradation fields: the campaign is only as healthy as its sickest
    // shard (outcome = max severity); the additive gauges sum — the fleet
    // is partitioned, so per-shard low-water marks and progress rates add.
    merged.outcome = std::max(merged.outcome, r.outcome);
    merged.tasks_unfinished += r.tasks_unfinished;
    merged.fault_events += r.fault_events;
    merged.churn_leaves += r.churn_leaves;
    merged.churn_rejoins += r.churn_rejoins;
    merged.results_lost += r.results_lost;
    merged.results_corrupted += r.results_corrupted;
    merged.duplicate_results += r.duplicate_results;
    merged.min_live_fleet += r.min_live_fleet;
    merged.progress_rate += r.progress_rate;
    merged.events_processed += r.events_processed;
    merged.makespan = std::max(merged.makespan, r.makespan);
    merged.end_time = std::max(merged.end_time, r.end_time);
    if (r.detections > 0) {
      merged.first_detection_time =
          merged.detections == 0
              ? r.first_detection_time
              : std::min(merged.first_detection_time, r.first_detection_time);
      detection_weighted_latency +=
          r.mean_detection_latency * static_cast<double>(r.detections);
      merged.detections += r.detections;
    }
  }
  if (merged.detections > 0) {
    merged.mean_detection_latency =
        detection_weighted_latency / static_cast<double>(merged.detections);
  }
  if (p_hat_weight > 0) {
    merged.p_hat_mean = p_mean_weighted / static_cast<double>(p_hat_weight);
    merged.p_hat_upper = p_upper_weighted / static_cast<double>(p_hat_weight);
  }

  // Series merge: the union of all shard sample times, ascending; at each
  // time, sum every shard's counters as of that time (carry the last row
  // forward once a shard's campaign has ended — its cumulative counters
  // stay at their final values).
  std::vector<std::size_t> cursor(reports.size(), 0);
  for (;;) {
    double next_time = 0.0;
    bool have_next = false;
    for (std::size_t s = 0; s < reports.size(); ++s) {
      if (cursor[s] >= reports[s].series.size()) continue;
      const double t = reports[s].series[cursor[s]].time;
      if (!have_next || t < next_time) {
        next_time = t;
        have_next = true;
      }
    }
    if (!have_next) break;
    RuntimeSample row;
    row.time = next_time;
    for (std::size_t s = 0; s < reports.size(); ++s) {
      const auto& series = reports[s].series;
      while (cursor[s] < series.size() &&
             series[cursor[s]].time <= next_time) {
        ++cursor[s];
      }
      if (cursor[s] == 0) continue;  // Shard not yet sampled: all zeros.
      const RuntimeSample& last = series[cursor[s] - 1];
      row.units_issued += last.units_issued;
      row.units_completed += last.units_completed;
      row.units_timed_out += last.units_timed_out;
      row.units_reissued += last.units_reissued;
      row.tasks_valid += last.tasks_valid;
      row.control_boosts += last.control_boosts;
      row.control_releases += last.control_releases;
    }
    merged.series.push_back(row);
  }
  return merged;
}

RuntimeReport run_sharded_campaign(const RuntimeConfig& base,
                                   std::int64_t shards,
                                   parallel::ThreadPool& pool) {
  // Each shard's event loop owns a calendar ring, unit/task tables, and a
  // participant pool that together dwarf L2 — spreading workers one per
  // available CPU keeps each shard's working set resident on its core
  // instead of migrating with the scheduler. Placement hint only: the
  // merged report is bit-identical pinned or not, and on a single-CPU
  // host pin_workers() is a no-op.
  pool.pin_workers();
  const ShardedSupervisor sharded(base, shards);
  return sharded.run(pool);
}

RuntimeReport resume_sharded_campaign(const RuntimeConfig& base,
                                      std::int64_t shards,
                                      parallel::ThreadPool& pool) {
  pool.pin_workers();
  const ShardedSupervisor sharded(base, shards);
  return sharded.resume(pool);
}

}  // namespace redund::runtime
