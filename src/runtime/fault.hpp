// Timed fault injection for the asynchronous supervisor runtime.
//
// PR 1-3 model only *static* faults: per-participant straggler and
// dropout coins fixed at enroll time. Real fleets fail in time —
// participants churn, racks black out together, networks lose and
// duplicate messages in bursts, and data corruption arrives in spikes.
// A FaultSchedule is a deterministic script of such events over
// simulated time. The supervisor injects them through its own event
// queue (EventKind::kFault / kFaultEnd), so a faulted campaign remains
// a pure function of (RuntimeConfig, FaultSchedule): every fault coin
// is keyed off (seed, fault index, unit, attempt) SplitMix64 streams,
// never off wall-clock or processing order.
//
// Fault kinds:
//
//   * kLeave / kRejoin — one participant leaves (stops receiving work;
//     in-flight results are lost) or rejoins the fleet.
//   * kBlackout — a deterministic pseudo-random `fraction` of the fleet
//     leaves for `duration`, then rejoins (correlated outage: rack
//     power, site link).
//   * kDropoutBurst — for `duration`, every issue additionally drops
//     with `probability` (correlated no-reply burst on top of the
//     static LatencyModel::dropout_probability).
//   * kMessageLoss — for `duration`, every completed result is lost in
//     transit with `probability` (the work was done; the report never
//     arrives; the unit times out).
//   * kDuplication — for `duration`, every delivered result is
//     re-delivered once with `probability` after a second network
//     delay (the duplicate drains as a stale epoch / late result).
//   * kCorruption — for `duration`, every delivered honest result is
//     bit-flipped with `probability` (storage/transit corruption: the
//     value mismatches and the validator sees a detection that no
//     adversary caused).
//   * kPDrift — the colluding fraction changes mid-campaign: from
//     `time` on, the proportion of the adversary's tuples she actually
//     plays moves to `fraction`, as a step (duration 0) or a linear
//     ramp over `duration`. This is what the adaptive controller
//     (src/control/) tracks: a campaign that starts quiet and turns
//     hostile, or an adversary that backs off after early catches.
//
// Schedules serialize to a small JSON document (redund-faults-v1) so
// chaos scenarios are shareable files: `redundctl run-async
// --fault-plan faults.json`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rng/distributions.hpp"

namespace redund::runtime {

/// What a scheduled fault does when its time arrives.
enum class FaultKind : std::uint8_t {
  kLeave,         ///< `participant` leaves the fleet.
  kRejoin,        ///< `participant` rejoins the fleet.
  kBlackout,      ///< A random `fraction` of the fleet leaves for `duration`.
  kDropoutBurst,  ///< Issues drop with `probability` for `duration`.
  kMessageLoss,   ///< Results are lost with `probability` for `duration`.
  kDuplication,   ///< Results duplicate with `probability` for `duration`.
  kCorruption,    ///< Honest results corrupt with `probability` for
                  ///< `duration`.
  kPDrift,        ///< Active colluding fraction moves to `fraction`
                  ///< (step when `duration` is 0, linear ramp over
                  ///< `duration` otherwise).
};

/// Stable wire name of a fault kind ("leave", "blackout", ...).
[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// One deterministic coin of fault event `fault_index`: Bernoulli(p) on
/// the first draw of the stream keyed by (master_seed ^ salt, fault
/// index, stream). Keyed draws mean adding or removing one fault never
/// perturbs another's coins, and processing order never matters; the
/// single-draw closed form (rng::first_bernoulli) keeps the per-unit
/// window checks off the engine-construction path.
[[nodiscard]] constexpr bool fault_coin(std::uint64_t master_seed,
                                        std::uint64_t salt,
                                        std::size_t fault_index,
                                        std::uint64_t stream,
                                        double probability) noexcept {
  return rng::first_bernoulli(
      probability,
      master_seed ^ salt ^
          (0x9E3779B97F4A7C15ULL *
           (static_cast<std::uint64_t>(fault_index) + 1)),
      stream);
}

/// One scheduled fault. Fields beyond `time`/`kind` are used only by the
/// kinds documented on them.
struct FaultEvent {
  double time = 0.0;             ///< Simulated time the fault starts.
  FaultKind kind = FaultKind::kLeave;
  /// Target identity for kLeave/kRejoin (enrollment order: honest first,
  /// then sybil). Ignored by the fleet-wide kinds.
  std::int64_t participant = -1;
  double fraction = 0.0;         ///< Fleet fraction hit (kBlackout) or
                                 ///< target colluding fraction (kPDrift).
  double duration = 0.0;         ///< Window length (windowed kinds) or
                                 ///< ramp length (kPDrift; 0 = step).
  double probability = 0.0;      ///< Per-unit coin (burst/loss/dup/corrupt).
};

/// A deterministic script of timed faults. Order in `events` is the
/// injection tie-break for equal times; validate() before running.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Checks times (finite, >= 0), fractions/probabilities in [0, 1],
  /// durations > 0 where required, and participant targets within
  /// [0, participant_count) (pass < 0 to skip the range check, e.g.
  /// before the fleet size is known). Throws std::invalid_argument.
  void validate(std::int64_t participant_count) const;

  /// The shard's view of this schedule under the ShardedSupervisor
  /// fleet split: fleet-wide events are copied to every shard;
  /// participant-targeted events go only to the shard that owns the
  /// identity, with `participant` remapped to the shard-local
  /// enrollment index. (honest, sybils) are the *base* campaign counts,
  /// `shards` the effective shard count, `shard` this shard's index.
  [[nodiscard]] FaultSchedule slice(std::int64_t honest, std::int64_t sybils,
                                    std::int64_t shards,
                                    std::int64_t shard) const;

  /// Serializes to the redund-faults-v1 JSON document.
  [[nodiscard]] std::string to_json() const;

  /// Parses a redund-faults-v1 document. Unknown keys are ignored;
  /// malformed input throws std::runtime_error.
  [[nodiscard]] static FaultSchedule from_json(const std::string& text);

  /// File convenience wrappers around to_json()/from_json(). Throw
  /// std::runtime_error on I/O failure.
  void save(const std::string& path) const;
  [[nodiscard]] static FaultSchedule load(const std::string& path);
};

}  // namespace redund::runtime
