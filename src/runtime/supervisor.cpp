#include "runtime/supervisor.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "platform/registry.hpp"
#include "platform/scheduler.hpp"
#include "platform/simd.hpp"
#include "rng/distributions.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/journal.hpp"
#include "runtime/quorum.hpp"
#include "runtime/task_state.hpp"

namespace redund::runtime {

namespace {

using platform::ParticipantId;
using platform::Principal;

constexpr std::uint64_t kDealSalt = 0xDEA1ULL;
constexpr std::uint64_t kDemandSalt = 0xDE34A4DULL;
constexpr std::uint64_t kBenignSalt = 0xE44EULL;
// Fault-injection streams: each fault event draws from its own family of
// streams keyed off (seed, salt, fault index), so adding or removing one
// fault never perturbs another's coins.
constexpr std::uint64_t kBlackoutSalt = 0xB1AC0117ULL;
constexpr std::uint64_t kBurstSalt = 0xB4457ULL;
constexpr std::uint64_t kLossSalt = 0x105505ULL;
constexpr std::uint64_t kDupSalt = 0xD0D0D0ULL;
constexpr std::uint64_t kCorruptSalt = 0xC0440417ULL;
// Per-task activation coin of the drifting colluding fraction (kPDrift).
constexpr std::uint64_t kPDriftSalt = 0x9D41F7ULL;

/// Ground-truth result of a task — the same keyed-hash construction as
/// platform/campaign.cpp, so honest computation is deterministic and the
/// supervisor can recompute it at will.
std::uint64_t truth_value(std::uint64_t seed, std::int64_t task) {
  rng::SplitMix64 mixer(seed ^ (0x9E3779B97F4A7C15ULL *
                                static_cast<std::uint64_t>(task + 1)));
  return mixer();
}

/// The colluders' agreed wrong value is truth ^ kCollusionMask: identical
/// across all their copies, derivable from the precomputed truth lane.
constexpr std::uint64_t kCollusionMask = 0xBAD0BEEFCAFEF00DULL;

void validate_config(const RuntimeConfig& config) {
  if (config.honest_participants < 1) {
    throw std::invalid_argument(
        "run_async_campaign: need at least one honest participant");
  }
  if (config.sybil_identities < 0 || config.benign_error_rate < 0.0 ||
      config.benign_error_rate >= 1.0) {
    throw std::invalid_argument(
        "run_async_campaign: bad adversary/error settings");
  }
  if (config.retry.max_retries < 0 || config.retry.backoff_base < 0.0 ||
      !(config.retry.backoff_factor >= 1.0)) {
    throw std::invalid_argument("run_async_campaign: bad retry policy");
  }
  if (config.adaptive.max_extra_replicas < 0 ||
      config.adaptive.reliability_floor < 0.0 ||
      config.adaptive.reliability_floor > 1.0 ||
      config.adaptive.score_init < 0.0 || config.adaptive.score_init > 1.0 ||
      config.adaptive.score_gain < 0.0 || config.adaptive.score_gain > 1.0 ||
      config.adaptive.score_loss < 0.0 || config.adaptive.score_loss > 1.0) {
    throw std::invalid_argument("run_async_campaign: bad adaptive settings");
  }
  if (config.sample_interval < 0.0) {
    throw std::invalid_argument("run_async_campaign: sample_interval >= 0");
  }
  control::validate(config.control);
  config.faults.validate(config.honest_participants +
                         config.sybil_identities);
  if (config.health.stall_checks < 1 || !(config.health.ewma_alpha > 0.0) ||
      config.health.ewma_alpha > 1.0) {
    throw std::invalid_argument("run_async_campaign: bad health settings");
  }
  if (!config.journal.path.empty() && config.journal.checkpoint_interval < 1) {
    throw std::invalid_argument(
        "run_async_campaign: journal checkpoint_interval must be >= 1");
  }
  if (!config.journal.path.empty() && config.journal.full_snapshot_every < 1) {
    throw std::invalid_argument(
        "run_async_campaign: journal full_snapshot_every must be >= 1");
  }
}

/// Canonical fingerprint of everything that determines the event stream
/// (all of RuntimeConfig except the journal options, which only decide
/// *recording*). A journal written under one fingerprint refuses to
/// resume under another.
std::uint64_t config_fingerprint(const RuntimeConfig& config) {
  StateWriter w;
  w.i64(static_cast<std::int64_t>(config.plan.counts.size()));
  for (const std::int64_t count : config.plan.counts) w.i64(count);
  w.i64(config.plan.ringer_count);
  w.i64(config.plan.ringer_multiplicity);
  w.i64(config.honest_participants);
  w.i64(config.sybil_identities);
  w.i64(static_cast<std::int64_t>(config.strategy));
  w.i64(config.tuple_size);
  w.f64(config.benign_error_rate);
  w.i64(static_cast<std::int64_t>(config.resolution));
  w.boolean(config.reactive);
  w.f64(config.latency.mean_service);
  w.boolean(config.latency.deterministic_service);
  w.f64(config.latency.speed_sigma);
  w.f64(config.latency.straggler_fraction);
  w.f64(config.latency.straggler_slowdown);
  w.f64(config.latency.dropout_probability);
  w.f64(config.latency.network_delay);
  w.f64(config.retry.deadline);
  w.i64(config.retry.max_retries);
  w.f64(config.retry.backoff_base);
  w.f64(config.retry.backoff_factor);
  w.boolean(config.adaptive.enabled);
  w.f64(config.adaptive.check_interval);
  w.f64(config.adaptive.reliability_floor);
  w.i64(config.adaptive.max_extra_replicas);
  w.f64(config.adaptive.score_init);
  w.f64(config.adaptive.score_gain);
  w.f64(config.adaptive.score_loss);
  w.boolean(config.control.enabled);
  w.f64(config.control.epsilon);
  w.f64(config.control.quantile);
  w.i64(config.control.replan_interval);
  w.f64(config.control.check_interval);
  w.i64(config.control.max_boost);
  w.f64(config.control.prior_alpha);
  w.f64(config.control.prior_beta);
  w.i64(config.control.min_observations);
  w.i64(config.control.max_promotions);
  w.i64(config.control.max_releases);
  w.boolean(config.control.allow_release);
  w.f64(config.control.release_dropout_ceiling);
  w.f64(config.control.dropout_ewma_alpha);
  w.i64(static_cast<std::int64_t>(config.faults.events.size()));
  for (const FaultEvent& fault : config.faults.events) {
    w.f64(fault.time);
    w.i64(static_cast<std::int64_t>(fault.kind));
    w.i64(fault.participant);
    w.f64(fault.fraction);
    w.f64(fault.duration);
    w.f64(fault.probability);
  }
  w.f64(config.health.check_interval);
  w.i64(config.health.stall_checks);
  w.f64(config.health.ewma_alpha);
  w.i64(config.health.recompute_budget);
  w.f64(config.health.max_sim_time);
  w.f64(config.sample_interval);
  w.i64(static_cast<std::int64_t>(config.queue));
  return fnv1a_hash(w.text());
}

/// The whole asynchronous campaign: owns the registry, scheduler, pool,
/// event queue, and all per-task / per-unit runtime state. Templated on
/// the pending-event queue (binary heap or calendar ring); both pop in the
/// identical (time, seq) order, so the instantiations are observationally
/// equivalent.
///
/// The steady-state loop is allocation-free: the event queues pre-size
/// their storage, the unit-per-task adjacency is a flat slot table with
/// replica capacity built in, vote counting reuses a flat scratch vector,
/// and blacklist membership is a plain bitmap. Fault windows are a plain
/// bitmap over the (small) schedule; every fault coin is a keyed stream
/// draw, so the chaos layer adds no allocation either.
template <typename Queue>
class Runner {
 public:
  explicit Runner(const RuntimeConfig& config)
      : config_(config),
        scheduler_(config.plan),
        deal_engine_(rng::make_stream(config.seed ^ kDealSalt, 0)),
        decision_{.proportion = 0.0,
                  .strategy = config.strategy,
                  .tuple_size = config.tuple_size} {
    validate_config(config);
    config_hash_ = config_fingerprint(config);

    for (std::int64_t i = 0; i < config.honest_participants; ++i) {
      registry_.enroll(Principal::kHonest);
    }
    if (config.sybil_identities > 0) {
      registry_.enroll_sybils(config.sybil_identities);
    }
    pool_.emplace(config.latency, registry_.size(), config.seed);
    scheduler_.deal(registry_, deal_engine_);

    const auto task_count = static_cast<std::size_t>(scheduler_.task_count());
    const auto unit_count = static_cast<std::size_t>(scheduler_.unit_count());

    // Per-task service demands, shared by all copies of a task.
    demand_.resize(task_count);
    auto demand_engine = rng::make_stream(config.seed ^ kDemandSalt, 0);
    for (double& d : demand_) {
      d = config.latency.deterministic_service
              ? config.latency.mean_service
              : rng::exponential(config.latency.mean_service, demand_engine);
    }

    // Pre-size the event queue and unit table from the plan: every live
    // unit carries at most one completion and one deadline timer, each task
    // one adaptive check, plus the fault schedule, the health timer, and
    // slack for replication units added mid-campaign.
    queue_.reserve(2 * unit_count + task_count + config.faults.events.size() +
                   32);
    units_.reserve(unit_count + 64);
    units_.resize(unit_count);
    tasks_.resize(task_count);
    batch_.reserve(64);
    vote_scratch_.reserve(16);
    adversary_held_.assign(task_count, 0);
    // Immutable per-participant principal bitmap: the hot result path only
    // needs "is this an adversary identity", not the whole registry row.
    is_adversary_.resize(static_cast<std::size_t>(registry_.size()));
    for (std::int64_t p = 0; p < registry_.size(); ++p) {
      is_adversary_[static_cast<std::size_t>(p)] =
          registry_.record(static_cast<ParticipantId>(p)).principal ==
                  Principal::kAdversary
              ? 1
              : 0;
    }

    // Flat unit-per-task adjacency with the replica budget built into each
    // task's slot run, so mid-campaign replicas append without allocating.
    // The controller's escalation budget gets its own slots on top of the
    // adaptive/quorum ones.
    const auto extra =
        static_cast<std::size_t>(config.adaptive.max_extra_replicas) +
        static_cast<std::size_t>(config.control.enabled
                                     ? config.control.max_boost
                                     : 0);
    task_slot_begin_.resize(task_count + 1);
    std::size_t total_slots = 0;
    for (std::size_t t = 0; t < task_count; ++t) {
      task_slot_begin_[t] = total_slots;
      total_slots +=
          static_cast<std::size_t>(scheduler_.tasks()[t].multiplicity) + extra;
    }
    task_slot_begin_[task_count] = total_slots;
    unit_slots_.resize(total_slots);
    task_unit_count_.assign(task_count, 0);

    for (std::size_t u = 0; u < unit_count; ++u) {
      const auto& wu = scheduler_.units()[u];
      const auto t = static_cast<std::size_t>(wu.task);
      units_.task[u] = static_cast<std::int32_t>(wu.task);
      units_.assignee[u] = static_cast<std::uint32_t>(wu.assignee);
      unit_slots_[task_slot_begin_[t] +
                  static_cast<std::size_t>(task_unit_count_[t]++)] = u;
      adversary_held_[t] += is_adversary_[wu.assignee];
    }
    // Assignment conservation: the initial deal must place exactly the
    // plan's Σ i·x_i work units (plus ringers), and the slot table must
    // have one slot per dealt unit plus the per-task replica budget.
    REDUND_INVARIANT(
        scheduler_.unit_count() == config.plan.total_assignments(),
        "initial deal conserves the plan's assignment total (sum i*x_i)");
    REDUND_INVARIANT(total_slots == unit_count + task_count * extra,
                     "slot table covers every dealt unit plus the per-task "
                     "replica budget");
    for (std::size_t t = 0; t < task_count; ++t) {
      tasks_.target_copies[t] =
          static_cast<std::int32_t>(scheduler_.tasks()[t].multiplicity);
      tasks_.truth[t] =
          truth_value(config.seed, static_cast<std::int64_t>(t));
      tasks_.is_ringer[t] = scheduler_.tasks()[t].is_ringer ? 1 : 0;
    }
    score_.assign(static_cast<std::size_t>(registry_.size()),
                  config.adaptive.score_init);
    flagged_.assign(static_cast<std::size_t>(registry_.size()), 0);
    offline_count_.assign(static_cast<std::size_t>(registry_.size()), 0);
    window_active_.assign(config.faults.events.size(), 0);
    min_live_ = registry_.size();

    // Effective deadline: explicit, or scaled to the expected FCFS queue
    // depth so back-of-queue units are not spuriously timed out.
    const double queue_depth =
        std::max(1.0, static_cast<double>(unit_count) /
                          static_cast<double>(registry_.size()));
    effective_deadline_ =
        config.retry.deadline > 0.0
            ? config.retry.deadline
            : config.latency.network_delay +
                  4.0 * config.latency.mean_service * queue_depth;
    check_interval_ = config.adaptive.check_interval > 0.0
                          ? config.adaptive.check_interval
                          : 0.5 * effective_deadline_;
    health_interval_ = config.health.check_interval > 0.0
                           ? config.health.check_interval
                           : 2.0 * effective_deadline_;
    replan_period_ = config.control.check_interval > 0.0
                         ? config.control.check_interval
                         : 0.5 * effective_deadline_;
    if (config.control.enabled) {
      controller_ = control::CampaignController(config.control);
      moved_scratch_.assign(task_count, 0);
    }
    for (const FaultEvent& fault : config.faults.events) {
      if (fault.kind == FaultKind::kPDrift) has_drift_ = true;
    }
    judgments_moot_ = !config.adaptive.enabled && !config.control.enabled;
    next_checkpoint_ = config.journal.checkpoint_interval;

    report_.tasks = scheduler_.task_count();
    report_.units_planned = scheduler_.unit_count();
    report_.participants = registry_.size();
    report_.stragglers = pool_->straggler_count();
  }

  RuntimeReport run() {
    open_journal_();
    prologue_();
    (void)loop_(-1);
    return epilogue_();
  }

  std::optional<RuntimeReport> run_capped(std::int64_t max_events) {
    open_journal_();
    prologue_();
    if (loop_(max_events) == LoopExit::kKilled) {
      // A graceful shutdown: flush the buffered WAL tail so resume gets
      // the longest possible verification suffix. (A hard crash would
      // lose records back to the last checkpoint — recovery still works,
      // it just verifies less.)
      if (journal_) {
        flush_wal_();
        journal_->flush();
      }
      return std::nullopt;
    }
    return epilogue_();
  }

  RuntimeReport resume() {
    const JournalContents contents = read_journal(config_.journal.path);
    if (contents.config_hash != config_hash_ ||
        contents.seed != config_.seed) {
      throw std::runtime_error(
          "resume_async_campaign: journal belongs to a different "
          "config/seed");
    }
    verify_tail_ = &contents.tail;
    verify_cursor_ = 0;
    open_journal_();  // Truncates; the restored state is re-anchored below.
    if (contents.has_checkpoint) {
      // Compose the recovery point: the latest full (L2) snapshot, then
      // each delta (L1) on top. Deltas carry the window's pushes; the
      // window's pops come from the WAL records between the two indices.
      std::vector<Event> pending;
      std::uint64_t seq = 0;
      restore_state_(contents.checkpoint_blob, pending, seq);
      for (const JournalDelta& delta : contents.deltas) {
        apply_delta_(delta, contents.tail, pending, seq);
      }
      rebuild_derived_();
      std::sort(pending.begin(), pending.end(),
                [](const Event& a, const Event& b) noexcept {
                  return fires_before(a, b);
                });
      queue_.restore(std::move(pending), seq);
      // Re-anchor with a fresh full snapshot immediately so a second
      // kill before the next periodic checkpoint still resumes from
      // here, not from scratch (checkpoint_ordinal_ is 0 here, so this
      // is always an L2).
      checkpoint_now_();
    } else {
      prologue_();
    }
    (void)loop_(-1);
    verify_tail_ = nullptr;
    return epilogue_();
  }

 private:
  enum class LoopExit { kDrained, kStopped, kKilled };

  // ----------------------------------------------------------- loop phases

  void open_journal_() {
    if (config_.journal.path.empty()) return;
    journal_.emplace(config_.journal.path, config_hash_, config_.seed);
    wal_enabled_ = config_.journal.wal;
    if (!wal_enabled_) return;  // Checkpoint-only mode stages nothing.
    // WAL staging is bounded by the checkpoint interval (or the standing
    // flush threshold, whichever is smaller) plus one batch of slack.
    wal_stage_.reserve(static_cast<std::size_t>(std::min<std::int64_t>(
                           config_.journal.checkpoint_interval,
                           kWalFlushThreshold)) +
                       256);
    pushed_since_cp_.reserve(1024);
  }

  /// t = 0: arm the fault schedule, issue every dealt unit, arm the
  /// per-task reliability reviews and the health monitor.
  void prologue_() {
    for (std::size_t i = 0; i < config_.faults.events.size(); ++i) {
      schedule_(config_.faults.events[i].time, EventKind::kFault,
                static_cast<std::int64_t>(i));
    }
    // The t = 0 mass issue is the one spot where every unit draws its
    // dropout coin at a known attempt (the first); batch the draws into
    // one contiguous pass before the issue loop consumes them.
    pool_->prime_dropout_coins(units_.size(), 1);
    for (std::size_t u = 0; u < units_.size(); ++u) issue_unit(u, 0.0);
    if (config_.adaptive.enabled) {
      for (std::size_t t = 0; t < tasks_.size(); ++t) {
        schedule_(check_interval_, EventKind::kAdaptiveCheck,
                  static_cast<std::int64_t>(t));
      }
    }
    schedule_(health_interval_, EventKind::kHealthCheck, 0);
    if (config_.control.enabled) {
      schedule_(replan_period_, EventKind::kReplan, 0);
    }
  }

  /// The event loop. Drains same-timestamp events in batches: all events
  /// already queued at the head timestamp are popped together (strictly
  /// ascending seq — identical order to one-at-a-time pops; events a
  /// handler schedules at the same timestamp carry later seqs and so form
  /// the next batch). Sampling, journal checkpoints, and the kill/abort
  /// checks run at batch boundaries.
  ///
  /// When nothing observes the per-event order (no replay verification,
  /// no compiled invariants — WAL recording is batch-level and sees the
  /// whole run regardless), same-timestamp deadline waves
  /// take a vectorized fast path: drain_deadline_segment_ classifies whole
  /// lanes of units stale/live with one SIMD pass and dispatches only the
  /// live minority through the full handler. Handler calls, counters, and
  /// every draw are identical either way — the fast path only skips
  /// per-event dispatch of events whose handler would return immediately.
  LoopExit loop_(std::int64_t max_events) {
#if REDUND_ENABLE_INVARIANTS
    // Pop-order contract: the queue must deliver events in strictly
    // ascending (time, seq) order — any regression here (a heap bug, a
    // calendar-bucket mis-sort) silently breaks journal replay equality.
    contracts::ScopedCampaignContext context_guard(
        {config_.seed, 0.0, report_.events_processed});
    bool have_last_popped = false;
    Event last_popped{};
#endif
    // WAL recording is batch-level (the whole pop_run stages in one
    // insert), so journaling no longer forces per-event dispatch; only
    // replay *verification* still needs to see every event one by one.
    const bool fast_drain = verify_tail_ == nullptr;
    while (!queue_.empty()) {
      if (max_events >= 0 && report_.events_processed >= max_events) {
        return LoopExit::kKilled;
      }
      const Event* head_peek = queue_.peek();
      if (config_.health.max_sim_time > 0.0 &&
          head_peek->time > config_.health.max_sim_time) {
        outcome_ = CampaignOutcome::kAborted;
        report_.end_time =
            std::max(report_.end_time, config_.health.max_sim_time);
        return LoopExit::kStopped;
      }
      const std::span<const Event> batch = queue_.pop_run(batch_);
      const double batch_time = batch.front().time;
      if (wal_enabled_) {
        // Stage the batch's WAL records in one copy. Indices stay
        // contiguous because every popped event advances
        // events_processed exactly once below (scalar dispatch and the
        // SIMD deadline segment both count per event).
        if (wal_stage_.empty()) {
          wal_stage_base_ =
              static_cast<std::uint64_t>(report_.events_processed);
        }
        wal_stage_.insert(wal_stage_.end(), batch.begin(), batch.end());
      }
      // The completion stream visits units in completion-time order —
      // random in unit space, so each handler opens with dependent misses
      // on the unit lanes. The next batch's head is already known here;
      // warming its lanes now overlaps those misses with this batch's
      // processing. (A subject that is not a unit index — fault or task
      // subjects — just warms harmless nearby lines.)
      if (const Event* next_head = queue_.peek()) {
        const auto nu = static_cast<std::size_t>(next_head->subject);
        if (nu < units_.size()) {
          __builtin_prefetch(units_.state.data() + nu);
          __builtin_prefetch(units_.epoch.data() + nu);
          __builtin_prefetch(units_.attempts.data() + nu);
          __builtin_prefetch(units_.task.data() + nu);
          __builtin_prefetch(units_.value.data() + nu);
        }
      }
      // Sample only until the campaign is fully valid: later events are
      // stale-timer drains, and the closing sample at the makespan in
      // epilogue_() must stay the last (and latest) row of the series.
      if (config_.sample_interval > 0.0 &&
          report_.tasks_valid < report_.tasks) {
        while (next_sample_ <= batch_time) {
          record_sample(next_sample_);
          next_sample_ += config_.sample_interval;
        }
      }
      report_.end_time = std::max(report_.end_time, batch_time);
      if (fast_drain) prime_reissue_wave_(batch);
      std::size_t i = 0;
      while (i < batch.size()) {
        const Event& event = batch[i];
#if !REDUND_ENABLE_INVARIANTS
        if (fast_drain && event.kind == EventKind::kDeadline) {
          // Maximal consecutive-subject deadline run: the storm shape the
          // prologue's unit-order mass issue produces (and every reissue
          // wave reproduces in miniature).
          std::size_t j = i + 1;
          while (j < batch.size() && batch[j].kind == EventKind::kDeadline &&
                 batch[j].subject == batch[j - 1].subject + 1) {
            ++j;
          }
          if (j - i >= 16) {
            drain_deadline_segment_(batch.data() + i, j - i);
            i = j;
            continue;
          }
        }
#endif
#if REDUND_ENABLE_INVARIANTS
        contracts::set_campaign_context(
            {config_.seed, event.time, report_.events_processed});
        REDUND_INVARIANT(!have_last_popped || fires_before(last_popped, event),
                         "event queue pops in strictly ascending (time, seq) "
                         "order");
        have_last_popped = true;
        last_popped = event;
#endif
        verify_event_(event);
        ++report_.events_processed;
        switch (event.kind) {
          case EventKind::kCompletion: on_completion(event); break;
          case EventKind::kDeadline: on_deadline(event); break;
          case EventKind::kReissue: on_reissue(event); break;
          case EventKind::kAdaptiveCheck: on_adaptive_check(event); break;
          case EventKind::kFault: on_fault(event); break;
          case EventKind::kFaultEnd: on_fault_end(event); break;
          case EventKind::kHealthCheck: on_health_check(event); break;
          case EventKind::kReplan: on_replan(event); break;
        }
        if (stop_) break;
        ++i;
      }
      if (wal_enabled_ && i < batch.size()) {
        // stop_ broke mid-batch: events past position i were staged but
        // never processed — drop them so the WAL mirrors the processed
        // stream exactly.
        wal_stage_.resize(wal_stage_.size() - (batch.size() - (i + 1)));
      }
      if (stop_) return LoopExit::kStopped;
      if (journal_) {
        if (report_.events_processed >= next_checkpoint_) {
          checkpoint_now_();
        } else if (wal_stage_.size() >= kWalFlushThreshold) {
          flush_wal_();  // Bound the staging buffer between checkpoints.
        }
      }
    }
    return LoopExit::kDrained;
  }

  /// Pre-draws the dropout coins a batch of live kReissue events is about
  /// to burn, in one vectorized pass. Coins are keyed off (unit, attempt) —
  /// pure functions of the seed — so priming is unconditionally safe: a
  /// primed coin that goes unconsumed (the reissue lands on recompute
  /// instead) is just a cache entry nobody reads, and a consumed one is the
  /// byte-identical value issue() would have derived on its own.
  void prime_reissue_wave_(std::span<const Event> batch) {
    if (batch.size() < 16 || batch.front().kind != EventKind::kReissue) {
      return;
    }
    wave_units_.clear();
    wave_attempts_.clear();
    for (const Event& event : batch) {
      if (event.kind != EventKind::kReissue) continue;
      const auto u = static_cast<std::size_t>(event.subject);
      if (units_.state[u] != UnitState::kTimedOut ||
          units_.epoch[u] != event.epoch) {
        continue;  // Stale: on_reissue will drop it without a draw.
      }
      wave_units_.push_back(static_cast<std::uint64_t>(u));  // redund-lint: allow(hot-alloc)
      wave_attempts_.push_back(units_.attempts[u] + 1);  // redund-lint: allow(hot-alloc)
    }
    if (wave_units_.size() >= 8) {
      pool_->prime_dropout_coins_wave(wave_units_.data(),
                                      wave_attempts_.data(),
                                      wave_units_.size());
    }
  }

  /// Vectorized drain of a same-timestamp run of kDeadline events on
  /// consecutive subjects u0, u0+1, ...: one SIMD pass over the state and
  /// epoch lanes classifies every unit stale/live, stale events (the
  /// overwhelming majority — every completed unit still has its deadline
  /// timer pending) are counted in bulk, and the live minority goes
  /// through the full on_deadline handler one by one. on_deadline re-checks
  /// liveness itself, so the lane mask is purely a dispatch filter — state
  /// changes and draws happen only inside the handler, in event order.
  /// (Deadline handling never sets stop_, so the segment is atomic.)
  void drain_deadline_segment_(const Event* events, std::size_t n) {
    const auto u0 = static_cast<std::size_t>(events[0].subject);
    epoch_scratch_.resize(n);  // redund-lint: allow(hot-alloc)
    live_scratch_.resize(n);   // redund-lint: allow(hot-alloc)
    for (std::size_t i = 0; i < n; ++i) {
      epoch_scratch_[i] = static_cast<std::uint32_t>(events[i].epoch);
    }
    platform::simd::lanes_live(
        reinterpret_cast<const std::uint8_t*>(units_.state.data()) + u0,
        static_cast<std::uint8_t>(UnitState::kInProgress),
        units_.epoch.data() + u0, epoch_scratch_.data(), n,
        live_scratch_.data());
    report_.events_processed += static_cast<std::int64_t>(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (live_scratch_[i] != 0) on_deadline(events[i]);
    }
  }

  RuntimeReport epilogue_() {
    // A drained queue with unfinished tasks is a stall the monitor did not
    // get to declare first (e.g. a parked unit whose health timer already
    // drained) — degrade to a partial report, never throw.
    if (outcome_ == CampaignOutcome::kCompleted) {
      for (const TaskState state : tasks_.state) {
        if (state != TaskState::kValid) {
          outcome_ = CampaignOutcome::kStalled;
          break;
        }
      }
    }
    report_.outcome = outcome_;
    report_.tasks_unfinished = static_cast<std::int64_t>(
        tasks_.size() -
        platform::simd::count_eq_u8(
            reinterpret_cast<const std::uint8_t*>(tasks_.state.data()),
            tasks_.size(), static_cast<std::uint8_t>(TaskState::kValid)));
    report_.min_live_fleet = min_live_;
    report_.progress_rate = ewma_;
    report_.end_time = std::max(report_.end_time, report_.makespan);
    if (config_.sample_interval > 0.0 &&
        (report_.series.empty() ||
         report_.series.back().time < report_.makespan)) {
      record_sample(report_.makespan);
    }

    // Ground-truth audit of the accepted output — validated tasks only;
    // unfinished tasks have no accepted value to audit.
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      if (tasks_.state[t] != TaskState::kValid) continue;
      if (tasks_.accepted[t] == tasks_.truth[t]) {
        ++report_.final_correct_tasks;
      } else {
        ++report_.final_corrupt_tasks;
      }
    }
    if (report_.detections > 0) {
      report_.mean_detection_latency =
          detection_time_total_ / static_cast<double>(report_.detections);
      report_.first_detection_time = first_detection_;
    }
    if (config_.control.enabled) {
      // Both are closed-form functions of the serialized posterior
      // counts, so resume reproduces them bit-for-bit.
      report_.p_hat_mean = controller_.p_mean();
      report_.p_hat_upper = controller_.p_upper();
    }
    if (journal_) {
      flush_wal_();
      journal_->finish(static_cast<std::uint64_t>(report_.events_processed),
                       static_cast<std::int64_t>(outcome_));
    }
    return report_;
  }

  // ------------------------------------------------------------- journaling

  /// On resume, verifies the re-executed event against the pre-crash
  /// journal's WAL tail (recording itself is batch-level in loop_).
  void verify_event_(const Event& event) {
    if (verify_tail_ == nullptr) return;
    const auto index = static_cast<std::uint64_t>(report_.events_processed);
    while (verify_cursor_ < verify_tail_->size() &&
           (*verify_tail_)[verify_cursor_].index < index) {
      ++verify_cursor_;
    }
    if (verify_cursor_ >= verify_tail_->size()) return;
    const JournalEntry& want = (*verify_tail_)[verify_cursor_];
    if (want.index != index) return;
    if (std::bit_cast<std::uint64_t>(want.time) !=
            std::bit_cast<std::uint64_t>(event.time) ||
        want.kind != static_cast<std::uint8_t>(event.kind) ||
        want.subject != event.subject || want.epoch != event.epoch ||
        want.seq != event.seq) {
      throw std::runtime_error(
          "resume_async_campaign: journal replay divergence at event " +
          std::to_string(index));
    }
    ++verify_cursor_;
  }

  /// Hands the staged WAL batch records to the writer thread. Indices
  /// [wal_stage_base_, wal_stage_base_ + size) are contiguous by
  /// construction (see loop_); append_wal swaps in a recycled empty
  /// buffer, so the staging vector keeps its capacity.
  void flush_wal_() {
    if (wal_stage_.empty()) return;
    journal_->append_wal(wal_stage_base_, wal_stage_);
  }

  /// Records the events a handler pushes while an L1 delta window is
  /// open, then forwards to the queue. The mirrored Event carries the
  /// exact seq the queue will stamp (read before the push), so delta
  /// composition reinstates pending events bit-identically.
  // redund: hot
  void schedule_(double time, EventKind kind, std::int64_t subject,
                 std::uint64_t epoch = 0) {
    if (track_deltas_) {
      pushed_since_cp_.push_back(  // redund-lint: allow(hot-alloc)
          Event{time, queue_.next_seq(), kind, subject, epoch});
    }
    queue_.schedule(time, kind, subject, epoch);
  }

  /// Stamps a mutated row with the open delta window. One stamp per row
  /// per window suffices: checkpoints only run at batch boundaries, so
  /// every mutation a handler makes lands in the same window as its
  /// stamp.
  void touch_unit_(std::size_t u) {
    if (track_deltas_) units_.dirty[u] = cp_window_;
  }
  void touch_task_(std::size_t t) {
    if (track_deltas_) tasks_.dirty[t] = cp_window_;
  }

  [[nodiscard]] UnitRow unit_row_(std::size_t u) const {
    UnitRow row;
    row.u = static_cast<std::uint64_t>(u);
    row.state = static_cast<std::int64_t>(units_.state[u]);
    row.attempts = units_.attempts[u];
    row.epoch = units_.epoch[u];
    row.value = units_.value[u];
    row.task = units_.task[u];
    row.assignee = units_.assignee[u];
    row.has_value = units_.has_value(u);
    return row;
  }

  [[nodiscard]] TaskRow task_row_(std::size_t t) const {
    TaskRow row;
    row.t = static_cast<std::uint64_t>(t);
    row.state = static_cast<std::int64_t>(tasks_.state[t]);
    row.target_copies = tasks_.target_copies[t];
    row.arrived = tasks_.arrived[t];
    row.extra_replicas = tasks_.extra_replicas[t];
    row.control_boosts = tasks_.control_boosts[t];
    row.control_released = tasks_.control_released[t];
    row.adversary_committed = tasks_.test(t, TaskTable::kAdversaryCommitted);
    row.adversary_cheats = tasks_.test(t, TaskTable::kAdversaryCheats);
    row.mismatch_counted = tasks_.test(t, TaskTable::kMismatchCounted);
    row.ringer_counted = tasks_.test(t, TaskTable::kRingerCounted);
    row.inconclusive_counted = tasks_.test(t, TaskTable::kInconclusiveCounted);
    row.detected = tasks_.test(t, TaskTable::kDetected);
    row.accepted = tasks_.accepted[t];
    return row;
  }

  /// Stages one checkpoint — full (L2) on every Nth call, delta (L1)
  /// between — and queues it behind the window's WAL records (FIFO, so
  /// the window's pops are on disk before the record that needs them).
  /// Everything here is a value copy into the writer's pooled buffers;
  /// formatting, fwrite, and fsync all happen on the writer thread.
  void checkpoint_now_() {
    flush_wal_();
    const bool full =
        !wal_enabled_ || config_.journal.full_snapshot_every <= 1 ||
        checkpoint_ordinal_ % config_.journal.full_snapshot_every == 0;
    CheckpointPayload& p = journal_->stage();
    p.full = full;
    p.index = static_cast<std::uint64_t>(report_.events_processed);
    p.base_index = last_checkpoint_index_;
    CheckpointScalars& s = p.scalars;
    s.effective_deadline = effective_deadline_;
    s.next_sample = next_sample_;
    s.detection_time_total = detection_time_total_;
    s.first_detection = first_detection_;
    s.completions_pending = completions_pending_;
    s.recompute_used = recompute_used_;
    s.stall_streak = stall_streak_;
    s.last_progress = last_progress_;
    s.ewma = ewma_;
    s.ewma_init = ewma_init_;
    s.min_live = min_live_;
    s.rng = deal_engine_.state();
    s.ctrl_wrong = controller_.estimator().wrong_count();
    s.ctrl_right = controller_.estimator().right_count();
    s.ctrl_observations = controller_.observations();
    s.ctrl_last_replan = controller_.last_replan_completed();
    s.ctrl_dropout = controller_.dropout().value();
    s.ctrl_dropout_init = controller_.dropout().initialized();
    s.drift_from = drift_from_;
    s.drift_target = drift_target_;
    s.drift_start = drift_start_;
    s.drift_duration = drift_duration_;
    p.report = report_;
    p.series_base = series_base_;
    for (const auto& record : registry_.records()) {
      p.registry.push_back({record.blacklisted, record.assignments_completed,
                            record.credit, record.wrong_results});
    }
    const auto& busy = pool_->busy_until();
    p.busy.assign(busy.begin(), busy.end());
    p.score.assign(score_.begin(), score_.end());
    p.flagged.assign(flagged_.begin(), flagged_.end());
    p.offline.assign(offline_count_.begin(), offline_count_.end());
    p.window_active.assign(window_active_.begin(), window_active_.end());
    p.unit_total = static_cast<std::int64_t>(units_.size());
    if (full) {
      for (std::size_t u = 0; u < units_.size(); ++u) {
        p.units.push_back(unit_row_(u));
      }
      for (std::size_t t = 0; t < tasks_.size(); ++t) {
        p.tasks.push_back(task_row_(t));
      }
      queue_.snapshot_into(p.events);  // Unsorted; the writer sorts.
      pushed_since_cp_.clear();
    } else {
      for (std::size_t u = 0; u < units_.size(); ++u) {
        if (units_.dirty[u] == cp_window_) p.units.push_back(unit_row_(u));
      }
      for (std::size_t t = 0; t < tasks_.size(); ++t) {
        if (tasks_.dirty[t] == cp_window_) p.tasks.push_back(task_row_(t));
      }
      p.events.swap(pushed_since_cp_);  // Leaves the push log empty.
    }
    p.next_seq = queue_.next_seq();
    const std::uint64_t index = p.index;  // p is the writer's after submit.
    journal_->submit();
    last_checkpoint_index_ = index;
    series_base_ = report_.series.size();
    ++checkpoint_ordinal_;
    // Delta tracking arms only once a full snapshot exists to anchor the
    // chain (so a fresh run's prologue pushes are never recorded), and
    // the window counter advances only while deltas are live. Without
    // the WAL there are no pop records to compose a delta against, so
    // checkpoint-only mode stays all-full.
    if (full) {
      track_deltas_ = wal_enabled_ && config_.journal.full_snapshot_every > 1;
    }
    if (track_deltas_) ++cp_window_;
    next_checkpoint_ =
        report_.events_processed + config_.journal.checkpoint_interval;
  }

  // The restore-side parsers below are the exact inverses of
  // checkpoint.cpp's append_* formatters; each pair's token order must
  // stay in lockstep (tests/test_recovery.cpp's kill/resume sweeps are
  // the lockstep check).

  /// Reads the scalar prefix shared by full and delta blobs straight
  /// into the runner's members (inverse of append_scalar_prefix).
  void read_scalar_prefix_(StateReader& r) {
    effective_deadline_ = r.f64();
    next_sample_ = r.f64();
    detection_time_total_ = r.f64();
    first_detection_ = r.f64();
    completions_pending_ = r.i64();
    recompute_used_ = r.i64();
    stall_streak_ = r.i64();
    last_progress_ = r.i64();
    ewma_ = r.f64();
    ewma_init_ = r.boolean();
    min_live_ = r.i64();
    std::array<std::uint64_t, 4> rng_state{};
    for (std::uint64_t& word : rng_state) word = r.u64();
    deal_engine_.set_state(rng_state);
    report_.units_issued = r.i64();
    report_.units_completed = r.i64();
    report_.units_timed_out = r.i64();
    report_.units_reissued = r.i64();
    report_.units_dropped = r.i64();
    report_.late_results = r.i64();
    report_.adaptive_replicas = r.i64();
    report_.quorum_replicas = r.i64();
    report_.supervisor_recomputes = r.i64();
    report_.tasks_valid = r.i64();
    report_.tasks_inconclusive = r.i64();
    report_.mismatches_detected = r.i64();
    report_.ringer_catches = r.i64();
    report_.blacklisted_identities = r.i64();
    report_.adversary_cheat_attempts = r.i64();
    report_.false_accusations = r.i64();
    report_.fault_events = r.i64();
    report_.churn_leaves = r.i64();
    report_.churn_rejoins = r.i64();
    report_.results_lost = r.i64();
    report_.results_corrupted = r.i64();
    report_.duplicate_results = r.i64();
    report_.replan_rounds = r.i64();
    report_.control_boosts = r.i64();
    report_.control_releases = r.i64();
    report_.control_observations = r.i64();
    report_.makespan = r.f64();
    report_.end_time = r.f64();
    report_.detections = r.i64();
    report_.events_processed = r.i64();
  }

  [[nodiscard]] static RuntimeSample read_series_row_(StateReader& r) {
    RuntimeSample sample;
    sample.time = r.f64();
    sample.units_issued = r.i64();
    sample.units_completed = r.i64();
    sample.units_timed_out = r.i64();
    sample.units_reissued = r.i64();
    sample.tasks_valid = r.i64();
    sample.control_boosts = r.i64();
    sample.control_releases = r.i64();
    return sample;
  }

  void read_registry_and_busy_(StateReader& r) {
    for (std::int64_t p = 0; p < registry_.size(); ++p) {
      const auto id = static_cast<ParticipantId>(p);
      auto& record = registry_.record(id);
      registry_.set_blacklisted(id, r.boolean());
      record.assignments_completed = r.i64();
      record.credit = r.i64();
      record.wrong_results = r.i64();
    }
    std::vector<double> busy(static_cast<std::size_t>(registry_.size()));
    for (double& clock : busy) clock = r.f64();
    pool_->restore_busy_until(busy);
  }

  void read_dense_suffix_(StateReader& r) {
    for (double& score : score_) score = r.f64();
    for (char& flag : flagged_) flag = r.boolean() ? 1 : 0;
    for (std::int64_t& count : offline_count_) count = r.i64();
    for (char& active : window_active_) active = r.boolean() ? 1 : 0;
    const std::int64_t wrong = r.i64();
    const std::int64_t right = r.i64();
    const std::int64_t observations = r.i64();
    const std::int64_t last_replan = r.i64();
    const double dropout_value = r.f64();
    const bool dropout_init = r.boolean();
    controller_.restore(wrong, right, observations, last_replan,
                        dropout_value, dropout_init);
    drift_from_ = r.f64();
    drift_target_ = r.f64();
    drift_start_ = r.f64();
    drift_duration_ = r.f64();
  }

  [[nodiscard]] static Event read_event_row_(StateReader& r) {
    Event event;
    event.time = r.f64();
    event.seq = r.u64();
    event.kind = static_cast<EventKind>(r.i64());
    event.subject = r.i64();
    event.epoch = r.u64();
    return event;
  }

  /// Restores a full (L2) checkpoint blob into the lanes and scalar
  /// state. Appends the snapshot's pending events to `pending` and sets
  /// `seq`; the caller composes deltas on top, then rebuilds derived
  /// state and the queue once (rebuild_derived_, queue_.restore).
  void restore_state_(const std::string& blob, std::vector<Event>& pending,
                      std::uint64_t& seq) {
    StateReader r(blob);
    read_scalar_prefix_(r);
    const std::int64_t samples = r.i64();
    report_.series.clear();
    for (std::int64_t s = 0; s < samples; ++s) {
      report_.series.push_back(read_series_row_(r));
    }
    read_registry_and_busy_(r);
    const std::int64_t unit_count = r.i64();
    if (unit_count < scheduler_.task_count()) {
      throw std::runtime_error(
          "journal checkpoint: fewer units than tasks");
    }
    units_.resize(0);
    units_.resize(static_cast<std::size_t>(unit_count));
    for (std::size_t u = 0; u < units_.size(); ++u) {
      units_.task[u] = static_cast<std::int32_t>(r.i64());
      units_.assignee[u] = static_cast<std::uint32_t>(r.i64());
    }
    for (std::size_t u = 0; u < units_.size(); ++u) {
      units_.state[u] = static_cast<UnitState>(r.i64());
      units_.attempts[u] = static_cast<std::int32_t>(r.i64());
      units_.epoch[u] = static_cast<std::uint32_t>(r.u64());
      units_.value[u] = r.u64();
      (void)r.boolean();  // has_value: derived from the state lane.
    }
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      tasks_.state[t] = static_cast<TaskState>(r.i64());
      tasks_.target_copies[t] = static_cast<std::int32_t>(r.i64());
      tasks_.arrived[t] = static_cast<std::int32_t>(r.i64());
      tasks_.extra_replicas[t] = static_cast<std::int32_t>(r.i64());
      tasks_.control_boosts[t] = static_cast<std::int32_t>(r.i64());
      tasks_.control_released[t] = static_cast<std::int32_t>(r.i64());
      tasks_.flags[t] = 0;
      tasks_.assign(t, TaskTable::kAdversaryCommitted, r.boolean());
      tasks_.assign(t, TaskTable::kAdversaryCheats, r.boolean());
      tasks_.assign(t, TaskTable::kMismatchCounted, r.boolean());
      tasks_.assign(t, TaskTable::kRingerCounted, r.boolean());
      tasks_.assign(t, TaskTable::kInconclusiveCounted, r.boolean());
      tasks_.assign(t, TaskTable::kDetected, r.boolean());
      tasks_.accepted[t] = r.u64();
    }
    read_dense_suffix_(r);
    seq = r.u64();
    const std::int64_t pending_count = r.i64();
    for (std::int64_t i = 0; i < pending_count; ++i) {
      pending.push_back(read_event_row_(r));
    }
    if (!r.at_end()) {
      throw std::runtime_error("journal checkpoint: trailing state tokens");
    }
  }

  /// Applies one L1 delta on top of the composed state: overwrites the
  /// scalar prefix and dense vectors wholesale, patches only the dirty
  /// unit/task rows, appends the window's pushed events to `pending`,
  /// then subtracts the window's popped events — exactly the WAL records
  /// with base_index <= index < delta.index, matched by seq. Pushes are
  /// appended before the subtraction so an event pushed *and* popped
  /// within one window cancels.
  void apply_delta_(const JournalDelta& delta,
                    const std::vector<JournalEntry>& tail,
                    std::vector<Event>& pending, std::uint64_t& seq) {
    StateReader r(delta.blob);
    read_scalar_prefix_(r);
    const std::int64_t series_base = r.i64();
    const std::int64_t series_new = r.i64();
    if (series_base < 0 || series_new < 0 ||
        static_cast<std::size_t>(series_base) > report_.series.size()) {
      throw std::runtime_error("journal delta: bad series window");
    }
    report_.series.resize(static_cast<std::size_t>(series_base));
    for (std::int64_t s = 0; s < series_new; ++s) {
      report_.series.push_back(read_series_row_(r));
    }
    read_registry_and_busy_(r);
    const std::int64_t unit_total = r.i64();
    if (unit_total < static_cast<std::int64_t>(units_.size())) {
      throw std::runtime_error("journal delta: unit table shrank");
    }
    units_.resize(static_cast<std::size_t>(unit_total));
    const std::int64_t dirty_units = r.i64();
    for (std::int64_t i = 0; i < dirty_units; ++i) {
      const std::uint64_t row = r.u64();
      if (row >= units_.size()) {
        throw std::runtime_error("journal delta: unit row out of range");
      }
      const auto u = static_cast<std::size_t>(row);
      units_.state[u] = static_cast<UnitState>(r.i64());
      units_.attempts[u] = static_cast<std::int32_t>(r.i64());
      units_.epoch[u] = static_cast<std::uint32_t>(r.u64());
      units_.value[u] = r.u64();
      units_.task[u] = static_cast<std::int32_t>(r.i64());
      units_.assignee[u] = static_cast<std::uint32_t>(r.i64());
    }
    const std::int64_t dirty_tasks = r.i64();
    for (std::int64_t i = 0; i < dirty_tasks; ++i) {
      const std::uint64_t row = r.u64();
      if (row >= tasks_.size()) {
        throw std::runtime_error("journal delta: task row out of range");
      }
      const auto t = static_cast<std::size_t>(row);
      tasks_.state[t] = static_cast<TaskState>(r.i64());
      tasks_.target_copies[t] = static_cast<std::int32_t>(r.i64());
      tasks_.arrived[t] = static_cast<std::int32_t>(r.i64());
      tasks_.extra_replicas[t] = static_cast<std::int32_t>(r.i64());
      tasks_.control_boosts[t] = static_cast<std::int32_t>(r.i64());
      tasks_.control_released[t] = static_cast<std::int32_t>(r.i64());
      tasks_.flags[t] = 0;
      tasks_.assign(t, TaskTable::kAdversaryCommitted, r.boolean());
      tasks_.assign(t, TaskTable::kAdversaryCheats, r.boolean());
      tasks_.assign(t, TaskTable::kMismatchCounted, r.boolean());
      tasks_.assign(t, TaskTable::kRingerCounted, r.boolean());
      tasks_.assign(t, TaskTable::kInconclusiveCounted, r.boolean());
      tasks_.assign(t, TaskTable::kDetected, r.boolean());
      tasks_.accepted[t] = r.u64();
    }
    read_dense_suffix_(r);
    seq = r.u64();
    const std::int64_t push_count = r.i64();
    for (std::int64_t i = 0; i < push_count; ++i) {
      pending.push_back(read_event_row_(r));
    }
    if (!r.at_end()) {
      throw std::runtime_error("journal delta: trailing state tokens");
    }
    std::vector<std::uint64_t> popped;
    for (const JournalEntry& entry : tail) {
      if (entry.index >= delta.base_index && entry.index < delta.index) {
        popped.push_back(entry.seq);
      }
    }
    std::sort(popped.begin(), popped.end());
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&popped](const Event& event) {
                                   return std::binary_search(popped.begin(),
                                                             popped.end(),
                                                             event.seq);
                                 }),
                  pending.end());
  }

  /// Rebuilds every derived structure from the restored lanes after
  /// checkpoint composition: the scheduler's unit records (the lanes are
  /// the scheduler mirror, so the rebuild direction is lanes -> records),
  /// the task/slot adjacency, the adversary-held counts, and the vote
  /// aggregates. Units in index order — initial deal first, replicas in
  /// creation order — is the same append order register_replica used.
  /// fold_vote is order-insensitive in everything behavior depends on —
  /// see the TaskTable::vote_value lane comment.
  void rebuild_derived_() {
    std::vector<platform::WorkUnit> units(units_.size());
    for (std::size_t u = 0; u < units_.size(); ++u) {
      units[u].task = units_.task[u];
      units[u].assignee = static_cast<ParticipantId>(units_.assignee[u]);
    }
    scheduler_.restore_units(std::move(units), registry_.size());
    task_unit_count_.assign(tasks_.size(), 0);
    adversary_held_.assign(tasks_.size(), 0);
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      tasks_.assign(t, TaskTable::kVoteSeen, false);
      tasks_.assign(t, TaskTable::kVoteMismatch, false);
    }
    for (std::size_t u = 0; u < units_.size(); ++u) {
      const auto t = static_cast<std::size_t>(units_.task[u]);
      unit_slots_[task_slot_begin_[t] +
                  static_cast<std::size_t>(task_unit_count_[t]++)] = u;
      adversary_held_[t] += is_adversary_[units_.assignee[u]];
      if (units_.has_value(u)) tasks_.fold_vote(t, units_.value[u]);
    }
  }

  // --------------------------------------------------------- fault injection

  /// One deterministic coin of fault event `fault_index`: keyed off
  /// (seed, salt, fault index) and the caller's stream, never off
  /// processing order.
  [[nodiscard]] bool fault_coin_(std::uint64_t salt, std::size_t fault_index,
                                 std::uint64_t stream, double p) const {
    return fault_coin(config_.seed, salt, fault_index, stream, p);
  }

  /// Per-(unit, attempt) stream index, same scheme as the benign-error and
  /// dropout coins.
  [[nodiscard]] static std::uint64_t unit_stream_(std::size_t u,
                                                  std::int64_t attempt) {
    return static_cast<std::uint64_t>(u) * 64 +
           static_cast<std::uint64_t>(attempt & 63);
  }

  void on_fault(const Event& event) {
    ++report_.fault_events;
    const auto i = static_cast<std::size_t>(event.subject);
    const FaultEvent& fault = config_.faults.events[i];
    switch (fault.kind) {
      case FaultKind::kLeave:
        set_offline_(static_cast<ParticipantId>(fault.participant), +1,
                     event.time);
        reestimate_deadline_();
        break;
      case FaultKind::kRejoin:
        set_offline_(static_cast<ParticipantId>(fault.participant), -1,
                     event.time);
        reestimate_deadline_();
        break;
      case FaultKind::kBlackout:
        for (std::int64_t p = 0; p < registry_.size(); ++p) {
          if (fault_coin_(kBlackoutSalt, i, static_cast<std::uint64_t>(p),
                          fault.fraction)) {
            set_offline_(static_cast<ParticipantId>(p), +1, event.time);
          }
        }
        reestimate_deadline_();
        schedule_(event.time + fault.duration, EventKind::kFaultEnd,
                  event.subject);
        break;
      case FaultKind::kDropoutBurst:
      case FaultKind::kMessageLoss:
      case FaultKind::kDuplication:
      case FaultKind::kCorruption:
        window_active_[i] = 1;
        schedule_(event.time + fault.duration, EventKind::kFaultEnd,
                  event.subject);
        break;
      case FaultKind::kPDrift:
        // Re-anchor the drift from wherever the previous segment stands
        // now, so chained drift events compose (ramp into step into ramp).
        drift_from_ = active_cheat_fraction_(event.time);
        drift_target_ = fault.fraction;
        drift_start_ = event.time;
        drift_duration_ = fault.duration;
        break;
    }
  }

  void on_fault_end(const Event& event) {
    ++report_.fault_events;
    const auto i = static_cast<std::size_t>(event.subject);
    const FaultEvent& fault = config_.faults.events[i];
    if (fault.kind == FaultKind::kBlackout) {
      // Redraws the same per-participant coins as the start, so exactly
      // the affected participants rejoin.
      for (std::int64_t p = 0; p < registry_.size(); ++p) {
        if (fault_coin_(kBlackoutSalt, i, static_cast<std::uint64_t>(p),
                        fault.fraction)) {
          set_offline_(static_cast<ParticipantId>(p), -1, event.time);
        }
      }
      reestimate_deadline_();
    } else {
      window_active_[i] = 0;
    }
  }

  /// Applies one leave (+1) or rejoin (-1) to a participant's nesting
  /// count; only the offline<->online *transitions* touch the registry.
  /// Leaving loses every in-flight unit the participant held (the results
  /// never arrive); the units re-enter the re-issue path immediately.
  void set_offline_(ParticipantId id, int delta, double now) {
    auto& count = offline_count_[id];
    const bool was_offline = count > 0;
    count = std::max<std::int64_t>(0, count + delta);
    const bool is_offline = count > 0;
    if (!was_offline && is_offline) {
      ++report_.churn_leaves;
      registry_.set_blacklisted(id, true);
      // Two-lane SIMD sweep: the assignee and state lanes are all this
      // scan reads; collect_matches compresses the (held by id,
      // in-progress) units into an index list in ascending unit order —
      // the same order the scalar walk visited them.
      collect_scratch_.resize(units_.size());  // redund-lint: allow(hot-alloc)
      const std::size_t hits = platform::simd::collect_matches(
          units_.assignee.data(), static_cast<std::uint32_t>(id),
          reinterpret_cast<const std::uint8_t*>(units_.state.data()),
          static_cast<std::uint8_t>(UnitState::kInProgress), units_.size(),
          collect_scratch_.data());
      for (std::size_t i = 0; i < hits; ++i) {
        const auto u = static_cast<std::size_t>(collect_scratch_[i]);
        units_.state[u] = UnitState::kTimedOut;
        units_.epoch[u] += 1;  // In-flight completion drains as late.
        touch_unit_(u);
        ++report_.results_lost;
        schedule_(now, EventKind::kReissue,
                  static_cast<std::int64_t>(u), units_.epoch[u]);
      }
    } else if (was_offline && !is_offline) {
      ++report_.churn_rejoins;
      // A rejoin clears the availability hold, never a validator verdict.
      if (flagged_[id] == 0) registry_.set_blacklisted(id, false);
    }
    update_min_live_();
  }

  /// Re-derives the automatic deadline from the surviving fleet: the same
  /// queue-depth scaling as at campaign start, but with the *live* fleet
  /// and the in-flight load. An explicit RetryPolicy::deadline is a
  /// contract and is never re-estimated. Applies to future issues only;
  /// armed deadline timers keep their original expiry.
  void reestimate_deadline_() {
    if (config_.retry.deadline > 0.0) return;
    const std::int64_t live = std::max<std::int64_t>(
        1, registry_.active_count());
    const auto inflight = static_cast<std::int64_t>(platform::simd::count_eq_u8(
        reinterpret_cast<const std::uint8_t*>(units_.state.data()),
        units_.size(), static_cast<std::uint8_t>(UnitState::kInProgress)));
    const double depth = std::max(1.0, static_cast<double>(inflight) /
                                           static_cast<double>(live));
    effective_deadline_ = config_.latency.network_delay +
                          4.0 * config_.latency.mean_service * depth;
  }

  void update_min_live_() {
    min_live_ = std::min(min_live_, registry_.active_count());
  }

  /// The colluding fraction the adversary currently plays, following the
  /// most recent kPDrift segment (1.0 before any drift event: the
  /// paper's baseline adversary plays every playable tuple).
  [[nodiscard]] double active_cheat_fraction_(double now) const noexcept {
    if (now >= drift_start_ + drift_duration_ || drift_duration_ <= 0.0) {
      return drift_target_;
    }
    if (now <= drift_start_) return drift_from_;
    return drift_from_ + (drift_target_ - drift_from_) *
                             (now - drift_start_) / drift_duration_;
  }

  // --------------------------------------------------------- health monitor

  void on_health_check(const Event& event) {
    // Campaign finished: the timer drains without re-arming, so the queue
    // can empty.
    if (report_.tasks_valid >= report_.tasks) return;
    const std::int64_t progress = report_.units_completed +
                                  report_.supervisor_recomputes +
                                  report_.tasks_valid;
    const double rate =
        static_cast<double>(progress - last_progress_) / health_interval_;
    if (!ewma_init_) {
      ewma_ = rate;
      ewma_init_ = true;
    } else {
      ewma_ = config_.health.ewma_alpha * rate +
              (1.0 - config_.health.ewma_alpha) * ewma_;
    }
    if (progress == last_progress_) {
      ++stall_streak_;
      // Soft stall: nothing is even in flight that could produce progress.
      // Hard backstop: pending completions kept appearing but no progress
      // ever landed (e.g. deadline < service time with infinite retries —
      // every result arrives late, forever).
      const bool soft = stall_streak_ >= config_.health.stall_checks &&
                        completions_pending_ == 0;
      const bool hard = stall_streak_ >= 10 * config_.health.stall_checks;
      if (soft || hard) {
        outcome_ = CampaignOutcome::kStalled;
        stop_ = true;
        return;  // No re-arm.
      }
    } else {
      stall_streak_ = 0;
    }
    last_progress_ = progress;
    schedule_(event.time + health_interval_, EventKind::kHealthCheck, 0);
  }

  // ------------------------------------------------------------- issue loop

  void issue_unit(std::size_t u, double now) {
    const auto t = static_cast<std::size_t>(units_.task[u]);
    units_.state[u] = UnitState::kInProgress;
    const std::int64_t attempt = units_.attempts[u] += 1;
    units_.epoch[u] += 1;
    touch_unit_(u);
    ++report_.units_issued;

    const auto outcome = pool_->issue(
        static_cast<ParticipantId>(units_.assignee[u]), now, demand_[t],
        static_cast<std::uint64_t>(u), attempt);
    bool delivered = outcome.replies;
    if (delivered) {
      // Active dropout-burst windows stack their coins on the static
      // model's: any hit drops the issue.
      for (std::size_t i = 0; i < window_active_.size(); ++i) {
        if (window_active_[i] == 0) continue;
        const FaultEvent& fault = config_.faults.events[i];
        if (fault.kind != FaultKind::kDropoutBurst) continue;
        if (fault_coin_(kBurstSalt, i, unit_stream_(u, attempt),
                        fault.probability)) {
          delivered = false;
          break;
        }
      }
    }
    if (delivered) {
      schedule_(outcome.completion_time, EventKind::kCompletion,
                static_cast<std::int64_t>(u), units_.epoch[u]);
      ++completions_pending_;
    } else {
      ++report_.units_dropped;
    }
    schedule_(now + effective_deadline_, EventKind::kDeadline,
              static_cast<std::int64_t>(u), units_.epoch[u]);

    if (tasks_.state[t] == TaskState::kUnsent ||
        tasks_.state[t] == TaskState::kInconclusive) {
      tasks_.state[t] = TaskState::kInProgress;
      touch_task_(t);
    }
  }

  void on_completion(const Event& event) {
    --completions_pending_;  // Every scheduled delivery drains exactly once.
    const auto u = static_cast<std::size_t>(event.subject);
    if (units_.state[u] != UnitState::kInProgress ||
        units_.epoch[u] != event.epoch) {
      ++report_.late_results;  // Timed out (or requeued) before arriving.
      return;
    }
    const std::int64_t attempt = units_.attempts[u];
    // Message-loss window: the work was done but the report vanishes in
    // transit; the unit stays in progress and its deadline will fire.
    for (std::size_t i = 0; i < window_active_.size(); ++i) {
      if (window_active_[i] == 0) continue;
      const FaultEvent& fault = config_.faults.events[i];
      if (fault.kind != FaultKind::kMessageLoss) continue;
      if (fault_coin_(kLossSalt, i, unit_stream_(u, attempt),
                      fault.probability)) {
        ++report_.results_lost;
        return;
      }
    }
    units_.state[u] = UnitState::kCompleted;
    touch_unit_(u);
    ++report_.units_completed;
    if (config_.control.enabled) controller_.observe_issue(false);
    compute_value(u, event.time);
    // Corruption window: flip the delivered value in transit. Ground truth
    // (ParticipantRecord::wrong_results) is untouched — the submitter
    // computed correctly; the validator will still see a mismatch and may
    // blacklist an honest identity, which is exactly the cost such spikes
    // impose on a real platform.
    for (std::size_t i = 0; i < window_active_.size(); ++i) {
      if (window_active_[i] == 0) continue;
      const FaultEvent& fault = config_.faults.events[i];
      if (fault.kind != FaultKind::kCorruption) continue;
      // Two draws (gate + flip), so this rare window keeps the full
      // engine rather than the single-draw closed form.
      auto engine = rng::make_stream(
          config_.seed ^ kCorruptSalt ^
              (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(i) + 1)),
          unit_stream_(u, attempt));
      if (rng::bernoulli(fault.probability, engine)) {
        units_.value[u] ^= (engine() | 1ULL);  // Guaranteed non-zero flip.
        ++report_.results_corrupted;
        break;
      }
    }
    on_result(u, event.time);
    // Duplication window: the network re-delivers the same report after
    // another network delay; the copy drains as a late result.
    for (std::size_t i = 0; i < window_active_.size(); ++i) {
      if (window_active_[i] == 0) continue;
      const FaultEvent& fault = config_.faults.events[i];
      if (fault.kind != FaultKind::kDuplication) continue;
      if (fault_coin_(kDupSalt, i, unit_stream_(u, attempt),
                      fault.probability)) {
        schedule_(event.time + config_.latency.network_delay,
                  EventKind::kCompletion,
                  static_cast<std::int64_t>(u), event.epoch);
        ++completions_pending_;
        ++report_.duplicate_results;
        break;
      }
    }
  }

  void on_deadline(const Event& event) {
    const auto u = static_cast<std::size_t>(event.subject);
    if (units_.state[u] != UnitState::kInProgress ||
        units_.epoch[u] != event.epoch) {
      return;
    }
    units_.state[u] = UnitState::kTimedOut;
    units_.epoch[u] += 1;  // A straggling completion now lands late.
    touch_unit_(u);
    ++report_.units_timed_out;
    score_down(static_cast<ParticipantId>(units_.assignee[u]));
    if (config_.control.enabled) controller_.observe_issue(true);

    const std::int64_t retries_used = units_.attempts[u] - 1;
    if (retries_used < config_.retry.max_retries) {
      const double backoff =
          std::max(config_.retry.backoff_base *
                       std::pow(config_.retry.backoff_factor,
                                static_cast<double>(retries_used)),
                   RetryPolicy::kMinReissueDelay);
      schedule_(event.time + backoff, EventKind::kReissue,
                static_cast<std::int64_t>(u), units_.epoch[u]);
    } else {
      recompute_unit(u, event.time);
    }
  }

  void on_reissue(const Event& event) {
    const auto u = static_cast<std::size_t>(event.subject);
    if (units_.state[u] != UnitState::kTimedOut ||
        units_.epoch[u] != event.epoch) {
      return;
    }
    const std::uint32_t old_assignee = units_.assignee[u];
    const auto next =
        scheduler_.try_reassign_unit(u, registry_, deal_engine_);
    if (!next) {
      // Nobody eligible is left; the supervisor does the work itself.
      recompute_unit(u, event.time);
      return;
    }
    ++report_.units_reissued;
    const auto task = static_cast<std::size_t>(units_.task[u]);
    units_.assignee[u] = static_cast<std::uint32_t>(*next);
    adversary_held_[task] +=
        is_adversary_[*next] - is_adversary_[old_assignee];
    issue_unit(u, event.time);
  }

  /// Supervisor computes the unit itself (trusted, costly). With the
  /// default unlimited HealthConfig::recompute_budget this is the terminal
  /// fallback that guarantees every task reaches VALID; with a finite
  /// budget an over-budget unit *parks* (timed out, no event scheduled)
  /// and the health monitor ends the campaign as stalled.
  void recompute_unit(std::size_t u, double now) {
    if (config_.health.recompute_budget >= 0 &&
        recompute_used_ >= config_.health.recompute_budget) {
      units_.state[u] = UnitState::kTimedOut;
      units_.epoch[u] += 1;
      touch_unit_(u);
      return;
    }
    ++recompute_used_;
    units_.state[u] = UnitState::kRecomputed;
    units_.epoch[u] += 1;
    units_.value[u] = tasks_.truth[static_cast<std::size_t>(units_.task[u])];
    touch_unit_(u);
    ++report_.supervisor_recomputes;
    on_result(u, now);
  }

  // ------------------------------------------------------------ result path

  void compute_value(std::size_t u, double now) {
    const auto t = static_cast<std::size_t>(units_.task[u]);
    const std::uint32_t assignee = units_.assignee[u];
    const std::uint64_t truth = tasks_.truth[t];
    std::uint64_t value = truth;
    if (is_adversary_[assignee] != 0) {
      // The principal commits to a per-task plan the first time any of her
      // identities reports a copy, based on how many copies she holds then.
      if (!tasks_.test(t, TaskTable::kAdversaryCommitted)) {
        tasks_.set(t, TaskTable::kAdversaryCommitted);
        touch_task_(t);
        bool cheats = decision_.should_cheat(adversary_held_[t]);
        // Under a kPDrift schedule the principal only plays a fraction of
        // her playable tuples; the coin is keyed per task, so commit
        // *order* never changes the draw, only the active fraction at
        // commit time does.
        if (cheats && has_drift_) {
          cheats = rng::first_bernoulli(active_cheat_fraction_(now),
                                        config_.seed ^ kPDriftSalt,
                                        static_cast<std::uint64_t>(t));
        }
        tasks_.assign(t, TaskTable::kAdversaryCheats, cheats);
        if (cheats) ++report_.adversary_cheat_attempts;
      }
      if (tasks_.test(t, TaskTable::kAdversaryCheats)) {
        value = truth ^ kCollusionMask;
      }
    } else if (config_.benign_error_rate > 0.0) {
      // Per-(unit, attempt) stream so replay stays deterministic. The
      // Bernoulli gate takes the single-draw closed form; only a hit —
      // rare by construction — pays for the full engine, whose second
      // draw scrambles the value.
      const std::uint64_t stream =
          static_cast<std::uint64_t>(u) * 64 +
          static_cast<std::uint64_t>(units_.attempts[u] & 63);
      if (rng::first_bernoulli(config_.benign_error_rate,
                               config_.seed ^ kBenignSalt, stream)) {
        auto unit_engine =
            rng::make_stream(config_.seed ^ kBenignSalt, stream);
        (void)unit_engine();
        value = truth ^ (0x1ULL + (unit_engine() | 0x2ULL));
      }
    }
    if (value != truth) {
      ++registry_.record(static_cast<ParticipantId>(assignee)).wrong_results;
    }
    units_.value[u] = value;
  }

  void on_result(std::size_t u, double now) {
    const auto t = static_cast<std::size_t>(units_.task[u]);
    // A task can be VALID with copies still in flight only after the
    // controller released its target below the issued count; a straggler
    // arriving then is informational, never a re-validation.
    if (tasks_.state[t] == TaskState::kValid) {
      ++report_.late_results;
      return;
    }
    ++tasks_.arrived[t];
    touch_task_(t);
    // Every value-bearing unit passes through here exactly once with its
    // final value (completions are epoch-guarded, corruption happens
    // upstream, and flag() never touches value-bearing states), so the
    // running fold sees exactly the values a slot gather would.
    tasks_.fold_vote(t, units_.value[u]);

    // Ringer copies are checked the moment they arrive: the supervisor
    // knows the answer outright, so a wrong value is an immediate catch.
    if (tasks_.is_ringer[t] != 0 &&
        units_.state[u] == UnitState::kCompleted &&
        units_.value[u] != tasks_.truth[t]) {
      if (!tasks_.test(t, TaskTable::kRingerCounted)) {
        tasks_.set(t, TaskTable::kRingerCounted);
        ++report_.ringer_catches;
      }
      record_detection(t, now);
      flag(static_cast<ParticipantId>(units_.assignee[u]), now);
    }

    if (tasks_.arrived[t] >= tasks_.target_copies[t]) validate(t, now);
  }

  // ---------------------------------------------------------- transitioner

  /// The task's unit indices (initial deal plus appended replicas).
  [[nodiscard]] const std::size_t* task_units_begin(std::size_t t) const {
    return unit_slots_.data() + task_slot_begin_[t];
  }
  [[nodiscard]] const std::size_t* task_units_end(std::size_t t) const {
    return task_units_begin(t) + task_unit_count_[t];
  }

  /// Gathers the task's vote word: values of all slots into `values`
  /// (lane = slot position) and a presence bit per value-bearing unit.
  /// Requires task_unit_count_[t] <= kMaxPackedQuorum.
  [[nodiscard]] std::uint64_t gather_votes_(std::size_t t,
                                            std::uint64_t* values) const {
    const std::size_t* slots = task_units_begin(t);
    const int lanes = static_cast<int>(task_unit_count_[t]);
    std::uint64_t present = 0;
    for (int i = 0; i < lanes; ++i) {
      const std::size_t u = slots[static_cast<std::size_t>(i)];
      values[i] = units_.value[u];
      present |= static_cast<std::uint64_t>(units_.has_value(u)) << i;
    }
    return present;
  }

  void validate(std::size_t t, double now) {
    tasks_.state[t] = TaskState::kPendingValidation;
    touch_task_(t);
    const std::uint64_t truth = tasks_.truth[t];

    if (tasks_.is_ringer[t] != 0) {
      accept(t, truth, now);
      return;
    }

    // Unanimity fast path: on_result folded every arriving value into the
    // per-task vote aggregate as it landed, so the common all-agree case
    // answers from two task lanes instead of gathering the (randomly
    // scattered) unit slots. kVoteSeen clear means zero value-bearing
    // copies — the gather's present==0 case, which accepts 0.
    if (!tasks_.test(t, TaskTable::kVoteMismatch)) {
      accept(t,
             tasks_.test(t, TaskTable::kVoteSeen) ? tasks_.vote_value[t] : 0,
             now);
      return;
    }

    // Copies disagree — gather the vote word over the task's slot run:
    // lane i is slot i's value, the presence mask selects the
    // value-bearing units. The plurality tally runs branchlessly over the
    // word; the slot run outgrowing the word (multiplicity + replica
    // budget past 64 — no realized plan does) falls back to the scalar
    // tally.
    const bool packed = task_unit_count_[t] <= kMaxPackedQuorum;
    std::uint64_t vote_values[kMaxPackedQuorum];
    std::uint64_t present = 0;
    if (packed) present = gather_votes_(t, vote_values);

    // Copies disagree: the alarm condition of the paper's model.
    record_detection(t, now);
    if (!tasks_.test(t, TaskTable::kMismatchCounted)) {
      tasks_.set(t, TaskTable::kMismatchCounted);
      ++report_.mismatches_detected;
    }
    if (!tasks_.test(t, TaskTable::kInconclusiveCounted)) {
      tasks_.set(t, TaskTable::kInconclusiveCounted);
      ++report_.tasks_inconclusive;
    }

    // BOINC-style INCONCLUSIVE: buy information with an extra replica
    // before spending a trusted recompute.
    if (tasks_.extra_replicas[t] < config_.adaptive.max_extra_replicas) {
      if (const auto nu =
              scheduler_.try_add_replica(static_cast<std::int64_t>(t),
                                         registry_, deal_engine_)) {
        tasks_.state[t] = TaskState::kInconclusive;
        ++tasks_.extra_replicas[t];
        ++tasks_.target_copies[t];
        touch_task_(t);
        ++report_.quorum_replicas;
        register_replica(*nu);
        issue_unit(*nu, now);
        return;
      }
    }

    // Replicas exhausted: resolve by policy. The winner is independent
    // of tally order — a unique plurality wins, any tie resolves to
    // truth (tally_packed reports ties the same way the scalar scratch
    // did; tests/test_quorum.cpp pins the equivalence).
    std::uint64_t resolved = 0;
    if (config_.resolution == platform::Resolution::kRecompute) {
      ++report_.supervisor_recomputes;
      resolved = truth;
    } else if (packed) {
      const QuorumTally tally = tally_packed(
          vote_values, present, static_cast<int>(task_unit_count_[t]));
      if (tally.tie) {
        ++report_.supervisor_recomputes;
        resolved = truth;
      } else {
        resolved = tally.winner;
      }
    } else {
      vote_scratch_.clear();
      for (const std::size_t* it = task_units_begin(t);
           it != task_units_end(t); ++it) {
        if (!units_.has_value(*it)) continue;
        const std::uint64_t value = units_.value[*it];
        bool counted = false;
        for (auto& [seen, count] : vote_scratch_) {
          if (seen == value) {
            ++count;
            counted = true;
            break;
          }
        }
        if (!counted) vote_scratch_.emplace_back(value, 1);
      }
      int best = 0;
      bool tie = false;
      for (const auto& [value, count] : vote_scratch_) {
        if (count > best) {
          best = count;
          resolved = value;
          tie = false;
        } else if (count == best) {
          tie = true;
        }
      }
      if (tie) {
        ++report_.supervisor_recomputes;
        resolved = truth;
      }
    }
    accept(t, resolved, now);
  }

  void accept(std::size_t t, std::uint64_t value, double now) {
    tasks_.accepted[t] = value;
    tasks_.state[t] = TaskState::kValid;
    touch_task_(t);
    ++report_.tasks_valid;
    report_.makespan = std::max(report_.makespan, now);

    // Per-copy judgments feed exactly three consumers: the adaptive
    // reliability scores, the controller's posterior, and the reactive
    // flag/false-accusation path for copies that disagree with the
    // accepted value. With the first two disabled by config and every
    // folded value equal to the accepted one (unanimity latch clear and
    // the aggregate matches), the sweep below is dead work — skip it.
    // The guard is config-keyed plus latch state, never a fresh draw, so
    // replay and resume take the same branch.
    if (judgments_moot_ && !tasks_.test(t, TaskTable::kVoteMismatch) &&
        (!tasks_.test(t, TaskTable::kVoteSeen) ||
         tasks_.vote_value[t] == value)) {
      return;
    }

    const std::uint64_t truth = tasks_.truth[t];
    for (const std::size_t* it = task_units_begin(t);
         it != task_units_end(t); ++it) {
      const std::size_t u = *it;
      if (units_.state[u] != UnitState::kCompleted) continue;  // No report.
      const auto submitter = static_cast<ParticipantId>(units_.assignee[u]);
      // Every judged copy is one Bernoulli observation for the
      // controller's adversary-fraction posterior.
      if (config_.control.enabled) {
        controller_.observe_outcome(units_.value[u] != value);
        ++report_.control_observations;
      }
      if (units_.value[u] == value) {
        score_up(submitter);
      } else {
        score_down(submitter);
        if (units_.value[u] == truth) ++report_.false_accusations;
        flag(submitter, now);
      }
    }
  }

  // -------------------------------------------------- reaction & adaptivity

  /// Blacklists a caught identity and requeues its outstanding units.
  void flag(ParticipantId id, double now) {
    if (!config_.reactive) return;
    if (flagged_[id] != 0) return;
    flagged_[id] = 1;
    registry_.blacklist(id);
    ++report_.blacklisted_identities;
    for (std::size_t u = 0; u < units_.size(); ++u) {
      if (units_.assignee[u] != static_cast<std::uint32_t>(id)) continue;
      if (units_.state[u] != UnitState::kInProgress) continue;
      units_.state[u] = UnitState::kTimedOut;
      units_.epoch[u] += 1;  // Invalidate its completion/deadline timers.
      touch_unit_(u);
      schedule_(now, EventKind::kReissue, static_cast<std::int64_t>(u),
                units_.epoch[u]);
    }
    update_min_live_();
  }

  void on_adaptive_check(const Event& event) {
    const auto t = static_cast<std::size_t>(event.subject);
    if (tasks_.state[t] == TaskState::kValid) return;  // Drain, no re-arm.

    // Straggling by construction (still unfinished after a full review
    // period); replicate when the holders look unreliable too.
    double score_total = 0.0;
    std::int64_t outstanding = 0;
    for (const std::size_t* it = task_units_begin(t);
         it != task_units_end(t); ++it) {
      const std::size_t u = *it;
      const UnitState state = units_.state[u];
      if (state != UnitState::kInProgress && state != UnitState::kTimedOut) {
        continue;
      }
      score_total += score_[units_.assignee[u]];
      ++outstanding;
    }
    if (outstanding > 0 &&
        score_total / static_cast<double>(outstanding) <
            config_.adaptive.reliability_floor &&
        tasks_.extra_replicas[t] < config_.adaptive.max_extra_replicas) {
      if (const auto nu =
              scheduler_.try_add_replica(static_cast<std::int64_t>(t),
                                         registry_, deal_engine_)) {
        ++tasks_.extra_replicas[t];
        ++tasks_.target_copies[t];
        touch_task_(t);
        ++report_.adaptive_replicas;
        register_replica(*nu);
        issue_unit(*nu, event.time);
      }
    }
    schedule_(event.time + check_interval_, EventKind::kAdaptiveCheck,
              event.subject);
  }

  // ------------------------------------------------------ adaptive control

  void on_replan(const Event& event) {
    if (report_.tasks_valid >= report_.tasks) return;  // Drain, no re-arm.
    if (controller_.due(report_.units_completed)) {
      do_replan_(event.time);
    }
    schedule_(event.time + replan_period_, EventKind::kReplan, 0);
  }

  /// Eligibility for one more controller copy this round. Ringers are
  /// planner-verified and INCONCLUSIVE tasks are mid-quorum-resolution;
  /// both stay out of the controller's hands.
  [[nodiscard]] bool promotable_(std::size_t t) const {
    return tasks_.state[t] == TaskState::kInProgress &&
           tasks_.is_ringer[t] == 0 &&
           tasks_.control_boosts[t] < config_.control.max_boost;
  }

  /// Eligibility to give one previously escalated copy back: there must
  /// be a live boost to return and an outstanding copy to cancel without
  /// dropping the target below the already-arrived count.
  [[nodiscard]] bool demotable_(std::size_t t) const {
    return tasks_.state[t] == TaskState::kInProgress &&
           tasks_.is_ringer[t] == 0 &&
           tasks_.control_boosts[t] > tasks_.control_released[t] &&
           tasks_.target_copies[t] - 1 >= tasks_.arrived[t];
  }

  /// One re-plan round: build the residual multiplicity mix of the
  /// unfinished tasks, evaluate the Section 5 bound at the posterior's
  /// upper credible limit, and apply the planner's promotion/release
  /// deltas in ascending task order (deterministic by construction).
  void do_replan_(double now) {
    controller_.mark_replanned(report_.units_completed);
    ++report_.replan_rounds;

    REDUND_INVARIANT(
        controller_.estimator().observations() ==
                controller_.observations() &&
            controller_.observations() == report_.control_observations,
        "controller posterior counts conserve the observed validator "
        "outcomes");

    residual_scratch_.clear();
    std::int64_t unfinished = 0;
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      if (tasks_.state[t] == TaskState::kValid) continue;
      ++unfinished;
      const auto target = static_cast<std::int64_t>(tasks_.target_copies[t]);
      control::ResidualClass* cls = nullptr;
      for (control::ResidualClass& existing : residual_scratch_) {
        if (existing.multiplicity == target) {
          cls = &existing;
          break;
        }
      }
      if (cls == nullptr) {
        residual_scratch_.push_back({target, 0, 0, 0});
        cls = &residual_scratch_.back();
      }
      ++cls->tasks;
      if (promotable_(t)) ++cls->promotable;
      if (demotable_(t)) ++cls->demotable;
    }
    std::int64_t mix_total = 0;
    for (const control::ResidualClass& cls : residual_scratch_) {
      mix_total += cls.tasks;
    }
    REDUND_INVARIANT(mix_total == unfinished &&
                         unfinished == report_.tasks - report_.tasks_valid,
                     "residual re-plan mix sums to the outstanding task "
                     "count");
    if (unfinished == 0) return;

    const bool top_verified = config_.plan.ringer_count > 0;
    const control::ReplanDecision decision = control::plan_remaining(
        residual_scratch_, controller_.p_upper(),
        controller_.budgets(top_verified));

    if (decision.empty()) return;
    std::fill(moved_scratch_.begin(), moved_scratch_.end(), 0);
    for (const control::ClassDelta& delta : decision.promotions) {
      std::int64_t remaining = delta.count;
      for (std::size_t t = 0; t < tasks_.size() && remaining > 0; ++t) {
        if (moved_scratch_[t] != 0 ||
            tasks_.target_copies[t] != delta.multiplicity ||
            !promotable_(t)) {
          continue;
        }
        const auto nu = scheduler_.try_add_replica(
            static_cast<std::int64_t>(t), registry_, deal_engine_);
        if (!nu) continue;  // No eligible identity for this task.
        moved_scratch_[t] = 1;
        ++tasks_.control_boosts[t];
        ++tasks_.target_copies[t];
        touch_task_(t);
        ++report_.control_boosts;
        register_replica(*nu);
        issue_unit(*nu, now);
        --remaining;
      }
    }
    for (const control::ClassDelta& delta : decision.demotions) {
      std::int64_t remaining = delta.count;
      for (std::size_t t = 0; t < tasks_.size() && remaining > 0; ++t) {
        if (moved_scratch_[t] != 0 ||
            tasks_.target_copies[t] != delta.multiplicity ||
            !demotable_(t)) {
          continue;
        }
        if (!cancel_one_unit_(t)) continue;
        moved_scratch_[t] = 1;
        ++tasks_.control_released[t];
        --tasks_.target_copies[t];
        touch_task_(t);
        ++report_.control_releases;
        --remaining;
        if (tasks_.arrived[t] >= tasks_.target_copies[t]) validate(t, now);
      }
    }
  }

  /// Cancels one outstanding copy of task `t`: a timed-out unit if one
  /// exists (its pending re-issue becomes stale — pure savings), else
  /// the latest in-flight unit (its completion drains as a late result).
  bool cancel_one_unit_(std::size_t t) {
    std::size_t victim = units_.size();
    for (const std::size_t* it = task_units_begin(t);
         it != task_units_end(t); ++it) {
      const UnitState state = units_.state[*it];
      if (state == UnitState::kTimedOut) {
        victim = *it;
        break;
      }
      if (state == UnitState::kInProgress) victim = *it;
    }
    if (victim >= units_.size()) return false;
    units_.state[victim] = UnitState::kTimedOut;
    units_.epoch[victim] += 1;  // Stale-out its pending timers.
    touch_unit_(victim);
    return true;
  }

  // -------------------------------------------------------------- plumbing

  /// Extends the runtime bookkeeping for a unit just appended by
  /// Scheduler::try_add_replica. The task's slot run was sized for
  /// max_extra_replicas extras up front, so the append cannot overflow it.
  void register_replica(std::size_t u) {
    units_.append();
    const auto& wu = scheduler_.units()[u];
    const auto t = static_cast<std::size_t>(wu.task);
    units_.task[u] = static_cast<std::int32_t>(wu.task);
    units_.assignee[u] = static_cast<std::uint32_t>(wu.assignee);
    touch_unit_(u);
    REDUND_PRECONDITION(
        static_cast<std::size_t>(task_unit_count_[t]) <
            task_slot_begin_[t + 1] - task_slot_begin_[t],
        "replica append stays within the task's pre-sized slot run");
    unit_slots_[task_slot_begin_[t] +
                static_cast<std::size_t>(task_unit_count_[t]++)] = u;
    adversary_held_[t] += is_adversary_[wu.assignee];
  }

  void record_detection(std::size_t t, double now) {
    if (tasks_.test(t, TaskTable::kDetected)) return;
    tasks_.set(t, TaskTable::kDetected);
    touch_task_(t);
    ++report_.detections;
    detection_time_total_ += now;
    first_detection_ = report_.detections == 1
                           ? now
                           : std::min(first_detection_, now);
  }

  void score_up(ParticipantId id) {
    score_[id] += config_.adaptive.score_gain * (1.0 - score_[id]);
  }
  void score_down(ParticipantId id) {
    score_[id] *= 1.0 - config_.adaptive.score_loss;
  }

  void record_sample(double time) {
    report_.series.push_back({time, report_.units_issued,
                              report_.units_completed, report_.units_timed_out,
                              report_.units_reissued, report_.tasks_valid,
                              report_.control_boosts,
                              report_.control_releases});
  }

  const RuntimeConfig& config_;
  platform::Registry registry_;
  platform::Scheduler scheduler_;
  rng::Xoshiro256StarStar deal_engine_;
  sim::AdversaryConfig decision_;
  std::optional<ParticipantPool> pool_;
  Queue queue_;
  RuntimeReport report_;
  std::optional<CheckpointWriter> journal_;

  std::vector<double> demand_;              ///< Per task.
  UnitTable units_;                         ///< SoA per-unit runtime state.
  TaskTable tasks_;                         ///< SoA per-task runtime state.
  std::vector<char> is_adversary_;          ///< Immutable, per identity.
  std::vector<std::size_t> task_slot_begin_;  ///< Slot-run start per task.
  std::vector<std::int64_t> task_unit_count_; ///< Occupied slots per task.
  std::vector<std::size_t> unit_slots_;       ///< Flat unit-index runs.
  std::vector<std::int64_t> adversary_held_;  ///< Copies per task.
  std::vector<double> score_;               ///< Per identity.
  std::vector<char> flagged_;               ///< Blacklist bitmap per identity.
  std::vector<std::int64_t> offline_count_; ///< Churn nesting per identity.
  std::vector<char> window_active_;         ///< Open windows per fault event.
  std::vector<Event> batch_;                ///< Same-timestamp drain scratch.
  std::vector<std::uint32_t> epoch_scratch_;  ///< Gathered wave epochs.
  std::vector<std::uint8_t> live_scratch_;    ///< SIMD stale/live lane mask.
  std::vector<std::uint32_t> collect_scratch_;  ///< Offline-sweep hit list.
  std::vector<std::uint64_t> wave_units_;     ///< Reissue-wave coin units.
  std::vector<std::int32_t> wave_attempts_;   ///< ... and their attempts.
  std::vector<std::pair<std::uint64_t, int>> vote_scratch_;
  std::vector<control::ResidualClass> residual_scratch_;
  std::vector<char> moved_scratch_;         ///< Per-task moved-this-round.

  control::CampaignController controller_;
  double replan_period_ = 0.0;
  bool has_drift_ = false;
  /// No consumer of per-copy judgments is active (see accept()).
  bool judgments_moot_ = false;
  // Current kPDrift segment (identity before any drift event fires).
  double drift_from_ = 1.0;
  double drift_target_ = 1.0;
  double drift_start_ = 0.0;
  double drift_duration_ = 0.0;

  double effective_deadline_ = 0.0;
  double check_interval_ = 0.0;
  double health_interval_ = 0.0;
  double next_sample_ = 0.0;
  double detection_time_total_ = 0.0;
  double first_detection_ = 0.0;
  std::int64_t completions_pending_ = 0;   ///< Scheduled, undrained deliveries.
  std::int64_t recompute_used_ = 0;
  std::int64_t stall_streak_ = 0;
  std::int64_t last_progress_ = 0;
  double ewma_ = 0.0;
  bool ewma_init_ = false;
  std::int64_t min_live_ = 0;
  bool stop_ = false;
  CampaignOutcome outcome_ = CampaignOutcome::kCompleted;

  std::uint64_t config_hash_ = 0;
  std::int64_t next_checkpoint_ = 0;
  const std::vector<JournalEntry>* verify_tail_ = nullptr;
  std::size_t verify_cursor_ = 0;

  /// WAL staging buffer: the whole batch records here in one splice per
  /// drain (the writer thread formats it), handed off when it outgrows
  /// this bound or a checkpoint closes the window.
  static constexpr std::size_t kWalFlushThreshold = 65536;
  bool wal_enabled_ = false;  ///< journal_ open with JournalOptions::wal.
  std::vector<Event> wal_stage_;
  std::uint64_t wal_stage_base_ = 0;  ///< Event index of wal_stage_[0].

  // L1 delta bookkeeping. track_deltas_ arms after the first full
  // snapshot (a delta needs a base); cp_window_ is the stamp handlers
  // write into the SoA dirty lanes; pushed_since_cp_ mirrors every
  // queue push of the open window.
  bool track_deltas_ = false;
  std::uint32_t cp_window_ = 1;
  std::int64_t checkpoint_ordinal_ = 0;
  std::uint64_t last_checkpoint_index_ = 0;
  std::size_t series_base_ = 0;  ///< report_.series size at last checkpoint.
  std::vector<Event> pushed_since_cp_;
};

}  // namespace

RuntimeReport run_async_campaign(const RuntimeConfig& config) {
  if (config.queue == QueueKind::kBinaryHeap) {
    Runner<EventQueue> runner(config);
    return runner.run();
  }
  Runner<CalendarQueue> runner(config);
  return runner.run();
}

std::optional<RuntimeReport> run_async_campaign_capped(
    const RuntimeConfig& config, std::int64_t max_events) {
  if (max_events < 0) {
    throw std::invalid_argument(
        "run_async_campaign_capped: max_events must be >= 0");
  }
  if (config.queue == QueueKind::kBinaryHeap) {
    Runner<EventQueue> runner(config);
    return runner.run_capped(max_events);
  }
  Runner<CalendarQueue> runner(config);
  return runner.run_capped(max_events);
}

RuntimeReport resume_async_campaign(const RuntimeConfig& config) {
  if (config.journal.path.empty()) {
    throw std::invalid_argument(
        "resume_async_campaign: config.journal.path must name the journal "
        "to resume from");
  }
  if (config.queue == QueueKind::kBinaryHeap) {
    Runner<EventQueue> runner(config);
    return runner.resume();
  }
  Runner<CalendarQueue> runner(config);
  return runner.resume();
}

std::uint64_t campaign_fingerprint(const RuntimeConfig& config) {
  return config_fingerprint(config);
}

}  // namespace redund::runtime
