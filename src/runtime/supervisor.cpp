#include "runtime/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <vector>

#include "platform/registry.hpp"
#include "platform/scheduler.hpp"
#include "rng/distributions.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/task_state.hpp"

namespace redund::runtime {

namespace {

using platform::ParticipantId;
using platform::Principal;

constexpr std::uint64_t kDealSalt = 0xDEA1ULL;
constexpr std::uint64_t kDemandSalt = 0xDE34A4DULL;
constexpr std::uint64_t kBenignSalt = 0xE44EULL;

/// Ground-truth result of a task — the same keyed-hash construction as
/// platform/campaign.cpp, so honest computation is deterministic and the
/// supervisor can recompute it at will.
std::uint64_t truth_value(std::uint64_t seed, std::int64_t task) {
  rng::SplitMix64 mixer(seed ^ (0x9E3779B97F4A7C15ULL *
                                static_cast<std::uint64_t>(task + 1)));
  return mixer();
}

/// The colluders' agreed wrong value: identical across all their copies.
std::uint64_t collusion_value(std::uint64_t seed, std::int64_t task) {
  return truth_value(seed, task) ^ 0xBAD0BEEFCAFEF00DULL;
}

/// Mutable per-unit runtime record (parallel to Scheduler::units()).
struct UnitRuntime {
  UnitState state = UnitState::kUnsent;
  std::int64_t attempts = 0;   ///< Issues so far (1 = initial deal).
  std::uint64_t epoch = 0;     ///< Bumped to invalidate in-flight timers.
  std::uint64_t value = 0;
  bool has_value = false;
};

/// Mutable per-task runtime record (parallel to Scheduler::tasks()).
struct TaskRuntime {
  TaskState state = TaskState::kUnsent;
  std::int64_t target_copies = 0;  ///< Planned multiplicity + replicas.
  std::int64_t arrived = 0;        ///< Completed or recomputed copies.
  std::int64_t extra_replicas = 0;
  bool adversary_committed = false;
  bool adversary_cheats = false;
  bool mismatch_counted = false;
  bool ringer_counted = false;
  bool inconclusive_counted = false;
  bool detected = false;
  std::uint64_t accepted = 0;
};

void validate_config(const RuntimeConfig& config) {
  if (config.honest_participants < 1) {
    throw std::invalid_argument(
        "run_async_campaign: need at least one honest participant");
  }
  if (config.sybil_identities < 0 || config.benign_error_rate < 0.0 ||
      config.benign_error_rate >= 1.0) {
    throw std::invalid_argument(
        "run_async_campaign: bad adversary/error settings");
  }
  if (config.retry.max_retries < 0 || config.retry.backoff_base < 0.0 ||
      !(config.retry.backoff_factor >= 1.0)) {
    throw std::invalid_argument("run_async_campaign: bad retry policy");
  }
  if (config.adaptive.max_extra_replicas < 0 ||
      config.adaptive.reliability_floor < 0.0 ||
      config.adaptive.reliability_floor > 1.0 ||
      config.adaptive.score_init < 0.0 || config.adaptive.score_init > 1.0 ||
      config.adaptive.score_gain < 0.0 || config.adaptive.score_gain > 1.0 ||
      config.adaptive.score_loss < 0.0 || config.adaptive.score_loss > 1.0) {
    throw std::invalid_argument("run_async_campaign: bad adaptive settings");
  }
  if (config.sample_interval < 0.0) {
    throw std::invalid_argument("run_async_campaign: sample_interval >= 0");
  }
}

/// The whole asynchronous campaign: owns the registry, scheduler, pool,
/// event queue, and all per-task / per-unit runtime state. Templated on
/// the pending-event queue (binary heap or calendar ring); both pop in the
/// identical (time, seq) order, so the instantiations are observationally
/// equivalent.
///
/// The steady-state loop is allocation-free: the event queues pre-size
/// their storage, the unit-per-task adjacency is a flat slot table with
/// replica capacity built in, vote counting reuses a flat scratch vector,
/// and blacklist membership is a plain bitmap.
template <typename Queue>
class Runner {
 public:
  explicit Runner(const RuntimeConfig& config)
      : config_(config),
        scheduler_(config.plan),
        deal_engine_(rng::make_stream(config.seed ^ kDealSalt, 0)),
        decision_{.proportion = 0.0,
                  .strategy = config.strategy,
                  .tuple_size = config.tuple_size} {
    validate_config(config);

    for (std::int64_t i = 0; i < config.honest_participants; ++i) {
      registry_.enroll(Principal::kHonest);
    }
    if (config.sybil_identities > 0) {
      registry_.enroll_sybils(config.sybil_identities);
    }
    pool_.emplace(config.latency, registry_.size(), config.seed);
    scheduler_.deal(registry_, deal_engine_);

    const auto task_count = static_cast<std::size_t>(scheduler_.task_count());
    const auto unit_count = static_cast<std::size_t>(scheduler_.unit_count());

    // Per-task service demands, shared by all copies of a task.
    demand_.resize(task_count);
    auto demand_engine = rng::make_stream(config.seed ^ kDemandSalt, 0);
    for (double& d : demand_) {
      d = config.latency.deterministic_service
              ? config.latency.mean_service
              : rng::exponential(config.latency.mean_service, demand_engine);
    }

    // Pre-size the event queue and unit table from the plan: every live
    // unit carries at most one completion and one deadline timer, each task
    // one adaptive check, plus slack for replication units added
    // mid-campaign.
    queue_.reserve(2 * unit_count + task_count + 16);
    units_rt_.reserve(unit_count + 64);
    units_rt_.resize(unit_count);
    tasks_rt_.resize(task_count);
    batch_.reserve(64);
    vote_scratch_.reserve(16);
    adversary_held_.assign(task_count, 0);

    // Flat unit-per-task adjacency with the replica budget built into each
    // task's slot run, so mid-campaign replicas append without allocating.
    const auto extra =
        static_cast<std::size_t>(config.adaptive.max_extra_replicas);
    task_slot_begin_.resize(task_count + 1);
    std::size_t total_slots = 0;
    for (std::size_t t = 0; t < task_count; ++t) {
      task_slot_begin_[t] = total_slots;
      total_slots +=
          static_cast<std::size_t>(scheduler_.tasks()[t].multiplicity) + extra;
    }
    task_slot_begin_[task_count] = total_slots;
    unit_slots_.resize(total_slots);
    task_unit_count_.assign(task_count, 0);

    for (std::size_t u = 0; u < unit_count; ++u) {
      const auto& wu = scheduler_.units()[u];
      const auto t = static_cast<std::size_t>(wu.task);
      unit_slots_[task_slot_begin_[t] +
                  static_cast<std::size_t>(task_unit_count_[t]++)] = u;
      if (registry_.record(wu.assignee).principal == Principal::kAdversary) {
        ++adversary_held_[t];
      }
    }
    for (std::size_t t = 0; t < task_count; ++t) {
      tasks_rt_[t].target_copies = scheduler_.tasks()[t].multiplicity;
    }
    score_.assign(static_cast<std::size_t>(registry_.size()),
                  config.adaptive.score_init);
    flagged_.assign(static_cast<std::size_t>(registry_.size()), 0);

    // Effective deadline: explicit, or scaled to the expected FCFS queue
    // depth so back-of-queue units are not spuriously timed out.
    const double queue_depth =
        std::max(1.0, static_cast<double>(unit_count) /
                          static_cast<double>(registry_.size()));
    effective_deadline_ =
        config.retry.deadline > 0.0
            ? config.retry.deadline
            : config.latency.network_delay +
                  4.0 * config.latency.mean_service * queue_depth;
    check_interval_ = config.adaptive.check_interval > 0.0
                          ? config.adaptive.check_interval
                          : 0.5 * effective_deadline_;

    report_.tasks = scheduler_.task_count();
    report_.units_planned = scheduler_.unit_count();
    report_.participants = registry_.size();
    report_.stragglers = pool_->straggler_count();
  }

  RuntimeReport run() {
    // t = 0: issue every dealt unit; arm the per-task reliability reviews.
    for (std::size_t u = 0; u < units_rt_.size(); ++u) issue_unit(u, 0.0);
    if (config_.adaptive.enabled) {
      for (std::size_t t = 0; t < tasks_rt_.size(); ++t) {
        queue_.schedule(check_interval_, EventKind::kAdaptiveCheck,
                        static_cast<std::int64_t>(t));
      }
    }

    // The loop drains same-timestamp events in batches: all events already
    // queued at the head timestamp are popped together (strictly ascending
    // seq — identical order to one-at-a-time pops; events a handler
    // schedules at the same timestamp carry later seqs and so form the
    // next batch). Sampling and makespan bookkeeping then run once per
    // timestamp instead of once per event.
    double next_sample = 0.0;
    while (!queue_.empty()) {
      const Event head = queue_.pop();
      batch_.clear();
      batch_.push_back(head);
      while (const Event* next = queue_.peek()) {
        if (next->time != head.time) break;
        batch_.push_back(queue_.pop());
      }
      // Sample only until the campaign is fully valid: later events are
      // stale-timer drains, and the closing sample at the makespan below
      // must stay the last (and latest) row of the series.
      if (config_.sample_interval > 0.0 &&
          report_.tasks_valid < report_.tasks) {
        while (next_sample <= head.time) {
          record_sample(next_sample);
          next_sample += config_.sample_interval;
        }
      }
      report_.events_processed += static_cast<std::int64_t>(batch_.size());
      for (const Event& event : batch_) {
        switch (event.kind) {
          case EventKind::kCompletion: on_completion(event); break;
          case EventKind::kDeadline: on_deadline(event); break;
          case EventKind::kReissue: on_reissue(event); break;
          case EventKind::kAdaptiveCheck: on_adaptive_check(event); break;
        }
      }
    }

    for (const TaskRuntime& tr : tasks_rt_) {
      if (tr.state != TaskState::kValid) {
        throw std::logic_error(
            "run_async_campaign: event queue drained with unfinished tasks");
      }
    }
    if (config_.sample_interval > 0.0 &&
        (report_.series.empty() ||
         report_.series.back().time < report_.makespan)) {
      record_sample(report_.makespan);
    }

    // Ground-truth audit of the accepted output.
    for (std::size_t t = 0; t < tasks_rt_.size(); ++t) {
      if (tasks_rt_[t].accepted ==
          truth_value(config_.seed, static_cast<std::int64_t>(t))) {
        ++report_.final_correct_tasks;
      } else {
        ++report_.final_corrupt_tasks;
      }
    }
    if (report_.detections > 0) {
      report_.mean_detection_latency =
          detection_time_total_ / static_cast<double>(report_.detections);
      report_.first_detection_time = first_detection_;
    }
    return report_;
  }

 private:
  // ------------------------------------------------------------- issue loop

  void issue_unit(std::size_t u, double now) {
    UnitRuntime& ur = units_rt_[u];
    const auto& wu = scheduler_.units()[u];
    ur.state = UnitState::kInProgress;
    ur.attempts += 1;
    ur.epoch += 1;
    ++report_.units_issued;

    const auto outcome = pool_->issue(
        wu.assignee, now, demand_[static_cast<std::size_t>(wu.task)],
        static_cast<std::uint64_t>(u), ur.attempts);
    if (outcome.replies) {
      queue_.schedule(outcome.completion_time, EventKind::kCompletion,
                      static_cast<std::int64_t>(u), ur.epoch);
    } else {
      ++report_.units_dropped;
    }
    queue_.schedule(now + effective_deadline_, EventKind::kDeadline,
                    static_cast<std::int64_t>(u), ur.epoch);

    TaskRuntime& tr = tasks_rt_[static_cast<std::size_t>(wu.task)];
    if (tr.state == TaskState::kUnsent ||
        tr.state == TaskState::kInconclusive) {
      tr.state = TaskState::kInProgress;
    }
  }

  void on_completion(const Event& event) {
    const auto u = static_cast<std::size_t>(event.subject);
    UnitRuntime& ur = units_rt_[u];
    if (ur.state != UnitState::kInProgress || ur.epoch != event.epoch) {
      ++report_.late_results;  // Timed out (or requeued) before arriving.
      return;
    }
    ur.state = UnitState::kCompleted;
    ++report_.units_completed;
    compute_value(u);
    on_result(u, event.time);
  }

  void on_deadline(const Event& event) {
    const auto u = static_cast<std::size_t>(event.subject);
    UnitRuntime& ur = units_rt_[u];
    if (ur.state != UnitState::kInProgress || ur.epoch != event.epoch) return;
    ur.state = UnitState::kTimedOut;
    ur.epoch += 1;  // A straggling completion now lands as a late result.
    ++report_.units_timed_out;
    score_down(scheduler_.units()[u].assignee);

    const std::int64_t retries_used = ur.attempts - 1;
    if (retries_used < config_.retry.max_retries) {
      const double backoff =
          config_.retry.backoff_base *
          std::pow(config_.retry.backoff_factor,
                   static_cast<double>(retries_used));
      queue_.schedule(event.time + backoff, EventKind::kReissue,
                      static_cast<std::int64_t>(u), ur.epoch);
    } else {
      recompute_unit(u, event.time);
    }
  }

  void on_reissue(const Event& event) {
    const auto u = static_cast<std::size_t>(event.subject);
    UnitRuntime& ur = units_rt_[u];
    if (ur.state != UnitState::kTimedOut || ur.epoch != event.epoch) return;
    const ParticipantId old_assignee = scheduler_.units()[u].assignee;
    const auto next =
        scheduler_.try_reassign_unit(u, registry_, deal_engine_);
    if (!next) {
      // Nobody eligible is left; the supervisor does the work itself.
      recompute_unit(u, event.time);
      return;
    }
    ++report_.units_reissued;
    const auto task = static_cast<std::size_t>(scheduler_.units()[u].task);
    if (registry_.record(old_assignee).principal == Principal::kAdversary) {
      --adversary_held_[task];
    }
    if (registry_.record(*next).principal == Principal::kAdversary) {
      ++adversary_held_[task];
    }
    issue_unit(u, event.time);
  }

  /// Supervisor computes the unit itself (trusted, costly) — the terminal
  /// fallback that guarantees every task reaches VALID.
  void recompute_unit(std::size_t u, double now) {
    UnitRuntime& ur = units_rt_[u];
    ur.state = UnitState::kRecomputed;
    ur.epoch += 1;
    ur.value = truth_value(config_.seed, scheduler_.units()[u].task);
    ur.has_value = true;
    ++report_.supervisor_recomputes;
    on_result(u, now);
  }

  // ------------------------------------------------------------ result path

  void compute_value(std::size_t u) {
    const auto& wu = scheduler_.units()[u];
    UnitRuntime& ur = units_rt_[u];
    const std::uint64_t truth = truth_value(config_.seed, wu.task);
    platform::ParticipantRecord& record = registry_.record(wu.assignee);
    std::uint64_t value = truth;
    if (record.principal == Principal::kAdversary) {
      TaskRuntime& tr = tasks_rt_[static_cast<std::size_t>(wu.task)];
      // The principal commits to a per-task plan the first time any of her
      // identities reports a copy, based on how many copies she holds then.
      if (!tr.adversary_committed) {
        tr.adversary_committed = true;
        tr.adversary_cheats = decision_.should_cheat(
            adversary_held_[static_cast<std::size_t>(wu.task)]);
        if (tr.adversary_cheats) ++report_.adversary_cheat_attempts;
      }
      if (tr.adversary_cheats) value = collusion_value(config_.seed, wu.task);
    } else if (config_.benign_error_rate > 0.0) {
      // Per-(unit, attempt) stream so replay stays deterministic.
      auto unit_engine = rng::make_stream(
          config_.seed ^ kBenignSalt,
          static_cast<std::uint64_t>(u) * 64 +
              static_cast<std::uint64_t>(ur.attempts & 63));
      if (rng::bernoulli(config_.benign_error_rate, unit_engine)) {
        value = truth ^ (0x1ULL + (unit_engine() | 0x2ULL));
      }
    }
    if (value != truth) ++record.wrong_results;
    ur.value = value;
    ur.has_value = true;
  }

  void on_result(std::size_t u, double now) {
    const auto& wu = scheduler_.units()[u];
    const auto t = static_cast<std::size_t>(wu.task);
    TaskRuntime& tr = tasks_rt_[t];
    ++tr.arrived;

    // Ringer copies are checked the moment they arrive: the supervisor
    // knows the answer outright, so a wrong value is an immediate catch.
    if (scheduler_.tasks()[t].is_ringer &&
        units_rt_[u].state == UnitState::kCompleted &&
        units_rt_[u].value != truth_value(config_.seed, wu.task)) {
      if (!tr.ringer_counted) {
        tr.ringer_counted = true;
        ++report_.ringer_catches;
      }
      record_detection(tr, now);
      flag(wu.assignee, now);
    }

    if (tr.arrived >= tr.target_copies) validate(t, now);
  }

  // ---------------------------------------------------------- transitioner

  /// The task's unit indices (initial deal plus appended replicas).
  [[nodiscard]] const std::size_t* task_units_begin(std::size_t t) const {
    return unit_slots_.data() + task_slot_begin_[t];
  }
  [[nodiscard]] const std::size_t* task_units_end(std::size_t t) const {
    return task_units_begin(t) + task_unit_count_[t];
  }

  void validate(std::size_t t, double now) {
    TaskRuntime& tr = tasks_rt_[t];
    tr.state = TaskState::kPendingValidation;
    const std::uint64_t truth =
        truth_value(config_.seed, static_cast<std::int64_t>(t));

    if (scheduler_.tasks()[t].is_ringer) {
      accept(t, truth, now);
      return;
    }

    bool all_equal = true;
    std::uint64_t first_value = 0;
    bool have_first = false;
    for (const std::size_t* it = task_units_begin(t);
         it != task_units_end(t); ++it) {
      const UnitRuntime& ur = units_rt_[*it];
      if (!ur.has_value) continue;
      if (!have_first) {
        first_value = ur.value;
        have_first = true;
      } else if (ur.value != first_value) {
        all_equal = false;
      }
    }
    if (all_equal) {
      accept(t, first_value, now);
      return;
    }

    // Copies disagree: the alarm condition of the paper's model.
    record_detection(tr, now);
    if (!tr.mismatch_counted) {
      tr.mismatch_counted = true;
      ++report_.mismatches_detected;
    }
    if (!tr.inconclusive_counted) {
      tr.inconclusive_counted = true;
      ++report_.tasks_inconclusive;
    }

    // BOINC-style INCONCLUSIVE: buy information with an extra replica
    // before spending a trusted recompute.
    if (tr.extra_replicas < config_.adaptive.max_extra_replicas) {
      if (const auto nu =
              scheduler_.try_add_replica(static_cast<std::int64_t>(t),
                                         registry_, deal_engine_)) {
        tr.state = TaskState::kInconclusive;
        ++tr.extra_replicas;
        ++tr.target_copies;
        ++report_.quorum_replicas;
        register_replica(*nu);
        issue_unit(*nu, now);
        return;
      }
    }

    // Replicas exhausted: resolve by policy. The vote tally runs over a
    // reusable flat scratch (values are few); the winner is independent of
    // tally order — a unique plurality wins, any tie resolves to truth.
    std::uint64_t resolved = 0;
    if (config_.resolution == platform::Resolution::kRecompute) {
      ++report_.supervisor_recomputes;
      resolved = truth;
    } else {
      vote_scratch_.clear();
      for (const std::size_t* it = task_units_begin(t);
           it != task_units_end(t); ++it) {
        const UnitRuntime& ur = units_rt_[*it];
        if (!ur.has_value) continue;
        bool counted = false;
        for (auto& [value, count] : vote_scratch_) {
          if (value == ur.value) {
            ++count;
            counted = true;
            break;
          }
        }
        if (!counted) vote_scratch_.emplace_back(ur.value, 1);
      }
      int best = 0;
      bool tie = false;
      for (const auto& [value, count] : vote_scratch_) {
        if (count > best) {
          best = count;
          resolved = value;
          tie = false;
        } else if (count == best) {
          tie = true;
        }
      }
      if (tie) {
        ++report_.supervisor_recomputes;
        resolved = truth;
      }
    }
    accept(t, resolved, now);
  }

  void accept(std::size_t t, std::uint64_t value, double now) {
    TaskRuntime& tr = tasks_rt_[t];
    tr.accepted = value;
    tr.state = TaskState::kValid;
    ++report_.tasks_valid;
    report_.makespan = std::max(report_.makespan, now);

    const std::uint64_t truth =
        truth_value(config_.seed, static_cast<std::int64_t>(t));
    for (const std::size_t* it = task_units_begin(t);
         it != task_units_end(t); ++it) {
      const std::size_t u = *it;
      const UnitRuntime& ur = units_rt_[u];
      if (ur.state != UnitState::kCompleted) continue;  // Not a submission.
      const ParticipantId submitter = scheduler_.units()[u].assignee;
      if (ur.value == value) {
        score_up(submitter);
      } else {
        score_down(submitter);
        if (ur.value == truth) ++report_.false_accusations;
        flag(submitter, now);
      }
    }
  }

  // -------------------------------------------------- reaction & adaptivity

  /// Blacklists a caught identity and requeues its outstanding units.
  void flag(ParticipantId id, double now) {
    if (!config_.reactive) return;
    if (flagged_[id] != 0) return;
    flagged_[id] = 1;
    registry_.blacklist(id);
    ++report_.blacklisted_identities;
    for (std::size_t u = 0; u < units_rt_.size(); ++u) {
      if (scheduler_.units()[u].assignee != id) continue;
      UnitRuntime& ur = units_rt_[u];
      if (ur.state != UnitState::kInProgress) continue;
      ur.state = UnitState::kTimedOut;
      ur.epoch += 1;  // Invalidate its completion and deadline timers.
      queue_.schedule(now, EventKind::kReissue, static_cast<std::int64_t>(u),
                      ur.epoch);
    }
  }

  void on_adaptive_check(const Event& event) {
    const auto t = static_cast<std::size_t>(event.subject);
    TaskRuntime& tr = tasks_rt_[t];
    if (tr.state == TaskState::kValid) return;  // Timer drains, no re-arm.

    // Straggling by construction (still unfinished after a full review
    // period); replicate when the holders look unreliable too.
    double score_total = 0.0;
    std::int64_t outstanding = 0;
    for (const std::size_t* it = task_units_begin(t);
         it != task_units_end(t); ++it) {
      const std::size_t u = *it;
      const UnitState state = units_rt_[u].state;
      if (state != UnitState::kInProgress && state != UnitState::kTimedOut) {
        continue;
      }
      score_total += score_[scheduler_.units()[u].assignee];
      ++outstanding;
    }
    if (outstanding > 0 &&
        score_total / static_cast<double>(outstanding) <
            config_.adaptive.reliability_floor &&
        tr.extra_replicas < config_.adaptive.max_extra_replicas) {
      if (const auto nu =
              scheduler_.try_add_replica(static_cast<std::int64_t>(t),
                                         registry_, deal_engine_)) {
        ++tr.extra_replicas;
        ++tr.target_copies;
        ++report_.adaptive_replicas;
        register_replica(*nu);
        issue_unit(*nu, event.time);
      }
    }
    queue_.schedule(event.time + check_interval_, EventKind::kAdaptiveCheck,
                    event.subject);
  }

  // -------------------------------------------------------------- plumbing

  /// Extends the runtime bookkeeping for a unit just appended by
  /// Scheduler::try_add_replica. The task's slot run was sized for
  /// max_extra_replicas extras up front, so the append cannot overflow it.
  void register_replica(std::size_t u) {
    units_rt_.emplace_back();
    const auto& wu = scheduler_.units()[u];
    const auto t = static_cast<std::size_t>(wu.task);
    unit_slots_[task_slot_begin_[t] +
                static_cast<std::size_t>(task_unit_count_[t]++)] = u;
    if (registry_.record(wu.assignee).principal == Principal::kAdversary) {
      ++adversary_held_[t];
    }
  }

  void record_detection(TaskRuntime& tr, double now) {
    if (tr.detected) return;
    tr.detected = true;
    ++report_.detections;
    detection_time_total_ += now;
    first_detection_ = report_.detections == 1
                           ? now
                           : std::min(first_detection_, now);
  }

  void score_up(ParticipantId id) {
    score_[id] += config_.adaptive.score_gain * (1.0 - score_[id]);
  }
  void score_down(ParticipantId id) {
    score_[id] *= 1.0 - config_.adaptive.score_loss;
  }

  void record_sample(double time) {
    report_.series.push_back({time, report_.units_issued,
                              report_.units_completed, report_.units_timed_out,
                              report_.units_reissued, report_.tasks_valid});
  }

  const RuntimeConfig& config_;
  platform::Registry registry_;
  platform::Scheduler scheduler_;
  rng::Xoshiro256StarStar deal_engine_;
  sim::AdversaryConfig decision_;
  std::optional<ParticipantPool> pool_;
  Queue queue_;
  RuntimeReport report_;

  std::vector<double> demand_;              ///< Per task.
  std::vector<UnitRuntime> units_rt_;
  std::vector<TaskRuntime> tasks_rt_;
  std::vector<std::size_t> task_slot_begin_;  ///< Slot-run start per task.
  std::vector<std::int64_t> task_unit_count_; ///< Occupied slots per task.
  std::vector<std::size_t> unit_slots_;       ///< Flat unit-index runs.
  std::vector<std::int64_t> adversary_held_;  ///< Copies per task.
  std::vector<double> score_;               ///< Per identity.
  std::vector<char> flagged_;               ///< Blacklist bitmap per identity.
  std::vector<Event> batch_;                ///< Same-timestamp drain scratch.
  std::vector<std::pair<std::uint64_t, int>> vote_scratch_;

  double effective_deadline_ = 0.0;
  double check_interval_ = 0.0;
  double detection_time_total_ = 0.0;
  double first_detection_ = 0.0;
};

}  // namespace

RuntimeReport run_async_campaign(const RuntimeConfig& config) {
  if (config.queue == QueueKind::kBinaryHeap) {
    Runner<EventQueue> runner(config);
    return runner.run();
  }
  Runner<CalendarQueue> runner(config);
  return runner.run();
}

}  // namespace redund::runtime
