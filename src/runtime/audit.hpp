// Determinism auditor: a logical race detector for the campaign runtime.
//
// The project's determinism contract says a campaign's RuntimeReport is a
// pure function of (config, shard count) — the event-queue implementation,
// the thread-pool size, and where a crash/resume cycle cuts the run must
// not change a single byte. TSan can prove the absence of *data* races,
// but an ordering bug — an unordered-container iteration feeding a merge,
// a calendar-queue bucket mis-sort, a resume that replays one event short
// — is invisible to it: every interleaving is memory-safe, the output is
// just wrong on some of them.
//
// The auditor closes that gap empirically: it runs a matrix of equivalent
// executions —
//
//     queue kinds x shard counts x thread-pool sizes x kill/resume points
//
// — fingerprints every resulting report with FNV-1a over a canonical
// serialization, and fails loudly when any cell of a must-agree group
// diverges. Reports from different shard counts legitimately differ (the
// shards draw from different derived seeds); everything else must match
// bit-for-bit.
//
// Exposed as `tools/determinism_audit` and `redundctl audit`; the quick
// matrix runs in CI on every push.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/report.hpp"
#include "runtime/supervisor.hpp"

namespace redund::runtime {

/// FNV-1a fingerprint of every field of a report, including the full time
/// series, via a canonical StateWriter serialization (doubles as IEEE-754
/// bit patterns). Two reports fingerprint equal iff they are value-equal.
[[nodiscard]] std::uint64_t report_fingerprint(const RuntimeReport& report);

/// The audit matrix. Defaults are the full CI matrix from the acceptance
/// bar: 2 queue kinds x {1,2,8} shards x {1,4} threads x 2 kill points.
struct AuditOptions {
  /// Campaign under audit: a mid-size balanced plan; override for scale.
  std::int64_t target_tasks = 1200;
  std::int64_t honest_participants = 90;
  std::int64_t sybil_identities = 18;
  std::uint64_t seed = 0xA0D17D15EEDULL;

  std::vector<std::int64_t> shard_counts = {1, 2, 8};
  std::vector<std::size_t> thread_counts = {1, 4};
  std::vector<QueueKind> queue_kinds = {QueueKind::kBinaryHeap,
                                        QueueKind::kCalendar};
  /// Kill/resume cut points as fractions of each shard's uninterrupted
  /// event count.
  std::vector<double> kill_fractions = {0.25, 0.5};

  /// Directory for the scratch journals of the kill/resume legs; created
  /// if missing.
  std::string scratch_dir = "audit-scratch";

  /// Run the whole matrix a second time with the online adaptive
  /// controller enabled over a drifting-adversary fault schedule, so
  /// kReplan events, controller checkpoints, and boost/release
  /// bookkeeping are inside the byte-identity contract too.
  bool include_adaptive = true;
};

/// Shrinks the matrix for CI/pre-commit latency: a smaller campaign,
/// shards {1,2}, threads {1,2}, one kill point.
[[nodiscard]] AuditOptions quick_audit_options();

struct AuditResult {
  bool passed = false;
  std::size_t runs = 0;        ///< Campaign executions performed.
  std::size_t groups = 0;      ///< Must-agree fingerprint groups checked.
  std::vector<std::string> divergences;  ///< One line per disagreeing cell.
};

/// Runs the matrix, logging one line per group to `log`. Deterministic:
/// two invocations with equal options produce identical logs and results.
[[nodiscard]] AuditResult run_determinism_audit(const AuditOptions& options,
                                                std::ostream& log);

}  // namespace redund::runtime
