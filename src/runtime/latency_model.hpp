// Per-participant latency / availability model for the async runtime.
//
// sim/des.cpp models heterogeneous speeds only; real volunteer fleets also
// contain *stragglers* (hosts an order of magnitude slower than the median —
// the population the straggler-replication literature targets) and hosts
// that silently vanish mid-unit (power-off, detach, network loss). The
// model here is the minimal superset the runtime needs:
//
//   * base speed: lognormal with log-scale sigma, normalized to unit mean
//     so aggregate capacity is invariant in the spread (same convention as
//     sim/des.cpp);
//   * stragglers: an independent Bernoulli(straggler_fraction) coin marks a
//     participant as a straggler and divides its speed by
//     straggler_slowdown;
//   * no-reply faults: each *issue* of a unit independently never returns
//     with probability dropout_probability — the completion event is simply
//     never scheduled and only the unit's deadline fires;
//   * a fixed network_delay added to every successful round trip.
//
// Every draw is keyed off (seed, participant) or (seed, unit, attempt)
// SplitMix64 streams, so outcomes are independent of event ordering and the
// whole simulation replays bit-identically for a fixed seed.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/identity.hpp"

namespace redund::runtime {

/// Configuration of the participant latency/availability model.
struct LatencyModel {
  /// Mean task service demand; per-task demands are exponential(mean) and
  /// shared by all copies of a task (same code, same data).
  double mean_service = 1.0;
  /// Deterministic demands instead of exponential (all = mean_service).
  bool deterministic_service = false;
  /// Lognormal sigma of base participant speeds (0 = homogeneous).
  double speed_sigma = 0.0;
  /// Probability a participant is a straggler.
  double straggler_fraction = 0.0;
  /// Speed divisor applied to stragglers (>= 1).
  double straggler_slowdown = 8.0;
  /// Per-issue probability the result never comes back.
  double dropout_probability = 0.0;
  /// Fixed supervisor<->participant round-trip added to each completion.
  double network_delay = 0.0;
};

/// Materialized per-participant state: speeds, straggler flags, and the
/// FCFS busy-until clock used to serialize each participant's queue.
class ParticipantPool {
 public:
  /// Draws speeds and straggler flags for `count` participants from streams
  /// keyed off `seed`. Throws std::invalid_argument on bad model settings.
  ParticipantPool(const LatencyModel& model, std::int64_t count,
                  std::uint64_t seed);

  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(speed_.size());
  }
  [[nodiscard]] double speed(platform::ParticipantId id) const {
    return speed_[id];
  }
  [[nodiscard]] bool is_straggler(platform::ParticipantId id) const {
    return straggler_[id] != 0;
  }
  [[nodiscard]] std::int64_t straggler_count() const noexcept;

  /// Outcome of issuing one unit to one participant.
  struct Issue {
    bool replies = true;            ///< False: dropped, no completion event.
    double completion_time = 0.0;   ///< Valid only when replies.
  };

  /// Issues a unit of service demand `demand` to `id` at time `now`,
  /// advancing the participant's FCFS queue clock on success. The dropout
  /// coin is keyed off (unit, attempt) so replay order cannot affect it.
  Issue issue(platform::ParticipantId id, double now, double demand,
              std::uint64_t unit, std::int64_t attempt);

  /// Pre-draws the dropout coins of units [0, unit_count) at `attempt`
  /// into a contiguous buffer that subsequent issue() calls at that
  /// attempt consume instead of re-deriving a stream each. A pure cache
  /// over keyed coins: outcomes are byte-identical with or without it,
  /// so it needs no checkpoint state. No-op when dropouts are disabled.
  void prime_dropout_coins(std::uint64_t unit_count, std::int64_t attempt);

  /// The per-participant busy-until clocks — the pool's only mutable
  /// state, exposed for checkpoint serialization.
  [[nodiscard]] const std::vector<double>& busy_until() const noexcept {
    return free_at_;
  }
  /// Reinstates checkpointed busy-until clocks. Throws
  /// std::invalid_argument when the size does not match the pool.
  void restore_busy_until(const std::vector<double>& clocks);

 private:
  const LatencyModel model_;
  const std::uint64_t seed_;
  std::vector<double> speed_;
  std::vector<char> straggler_;
  std::vector<double> free_at_;
  // Batched dropout coins (see prime_dropout_coins): coins for units
  // [0, size) at primed_attempt_. Derived cache, never checkpointed.
  std::vector<char> primed_coins_;
  std::int64_t primed_attempt_ = -1;
};

}  // namespace redund::runtime
