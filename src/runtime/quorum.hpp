// Branchless quorum/validation counting over packed vote words.
//
// The validator's hot path asks two questions about the (few) result
// copies of a task: do they all agree, and if not, which value has the
// plurality? The scalar tally answers both with per-replica branching
// (a compare-and-branch per copy per distinct value) that the branch
// predictor cannot learn — the values are adversarial by construction.
//
// These kernels answer the same questions over vote *words*: the copies'
// values are gathered into a flat array of up to 64 lanes plus a
// presence bitmask, equality classes are built as bitmasks (one
// compare per pair, materialized as a mask, no branches in the inner
// loop), and class sizes fall out of popcount. The winner and the tie
// flag are reductions over those counts.
//
// Contract: identical verdicts to the scalar tally for every input —
// tests/test_quorum.cpp proves equivalence exhaustively over all vote
// patterns up to the max quorum size. Quorums beyond 64 copies (beyond
// any plan this project realizes) must take the scalar path.
#pragma once

#include <bit>
#include <cstdint>

namespace redund::runtime {

/// Max copies a packed vote word can hold (one presence bit per copy).
inline constexpr int kMaxPackedQuorum = 64;

/// Verdict of a packed plurality tally.
struct QuorumTally {
  std::uint64_t winner = 0;  ///< Plurality value (lowest lane on ties).
  int best_count = 0;        ///< Its vote count; 0 when no lane is present.
  bool tie = false;          ///< Another value class matched best_count.
};

/// True iff every present lane holds the same value (vacuously true for
/// an empty mask). Branchless over the lanes: each lane contributes its
/// XOR against the reference value, masked by its presence bit.
[[nodiscard]] inline bool all_equal_packed(const std::uint64_t* values,
                                           std::uint64_t present,
                                           int lanes) noexcept {
  if (present == 0) return true;
  const std::uint64_t ref =
      values[std::countr_zero(present)];
  std::uint64_t diff = 0;
  for (int i = 0; i < lanes; ++i) {
    const std::uint64_t lane_present = (present >> i) & 1ULL;
    diff |= (values[i] ^ ref) & (0ULL - lane_present);
  }
  return diff == 0;
}

/// Plurality vote over up to 64 packed lanes. For each lane present in
/// `present`, builds the equality-class bitmask (which other lanes hold
/// the same value) with compare-to-mask arithmetic, counts the class via
/// popcount, and keeps the largest class. A class is tallied once, at
/// its lowest lane. Ties report tie = true with the lowest-lane winner —
/// callers resolve ties by policy (the supervisor recomputes).
[[nodiscard]] inline QuorumTally tally_packed(const std::uint64_t* values,
                                              std::uint64_t present,
                                              int lanes) noexcept {
  QuorumTally tally;
  std::uint64_t counted = 0;  // Lanes already claimed by an earlier class.
  for (int i = 0; i < lanes; ++i) {
    const std::uint64_t bit = 1ULL << i;
    if ((present & bit) == 0 || (counted & bit) != 0) continue;
    // Equality class of lane i over the remaining lanes, branch-free:
    // each comparison becomes an all-ones/all-zeros mask.
    std::uint64_t cls = 0;
    for (int j = i; j < lanes; ++j) {
      const std::uint64_t equal =
          static_cast<std::uint64_t>(values[j] == values[i]);
      cls |= (equal << j);
    }
    cls &= present;
    counted |= cls;
    const int count = std::popcount(cls);
    if (count > tally.best_count) {
      tally.best_count = count;
      tally.winner = values[i];
      tally.tie = false;
    } else if (count == tally.best_count) {
      tally.tie = true;
    }
  }
  return tally;
}

}  // namespace redund::runtime
