#include "runtime/latency_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace redund::runtime {

namespace {
constexpr std::uint64_t kSpeedSalt = 0x5EEDFACEULL;
constexpr std::uint64_t kDropoutSalt = 0xD40F0FFULL;
}  // namespace

ParticipantPool::ParticipantPool(const LatencyModel& model, std::int64_t count,
                                 std::uint64_t seed)
    : model_(model), seed_(seed) {
  if (count < 1) {
    throw std::invalid_argument("ParticipantPool: count >= 1");
  }
  if (!(model.mean_service > 0.0)) {
    throw std::invalid_argument("ParticipantPool: mean_service > 0");
  }
  if (model.straggler_fraction < 0.0 || model.straggler_fraction > 1.0 ||
      model.dropout_probability < 0.0 || model.dropout_probability > 1.0) {
    throw std::invalid_argument(
        "ParticipantPool: straggler_fraction/dropout_probability in [0, 1]");
  }
  if (!(model.straggler_slowdown >= 1.0)) {
    throw std::invalid_argument("ParticipantPool: straggler_slowdown >= 1");
  }
  if (model.network_delay < 0.0) {
    throw std::invalid_argument("ParticipantPool: network_delay >= 0");
  }

  const auto n = static_cast<std::size_t>(count);
  speed_.resize(n);
  straggler_.assign(n, 0);
  free_at_.assign(n, 0.0);

  // Unit-mean normalization as in sim/des.cpp: divide the unit-median
  // lognormal draw by exp(sigma^2/2).
  const double mean_correction =
      std::exp(0.5 * model.speed_sigma * model.speed_sigma);
  auto engine = rng::make_stream(seed ^ kSpeedSalt, 0);
  for (std::size_t p = 0; p < n; ++p) {
    double s = model.speed_sigma > 0.0
                   ? rng::lognormal_unit_median(model.speed_sigma, engine) /
                         mean_correction
                   : 1.0;
    if (model.straggler_fraction > 0.0 &&
        rng::bernoulli(model.straggler_fraction, engine)) {
      straggler_[p] = 1;
      s /= model.straggler_slowdown;
    }
    speed_[p] = s;
  }
}

void ParticipantPool::restore_busy_until(const std::vector<double>& clocks) {
  if (clocks.size() != free_at_.size()) {
    throw std::invalid_argument(
        "ParticipantPool::restore_busy_until: size mismatch");
  }
  free_at_ = clocks;
}

std::int64_t ParticipantPool::straggler_count() const noexcept {
  return static_cast<std::int64_t>(
      std::count(straggler_.begin(), straggler_.end(), char{1}));
}

void ParticipantPool::prime_dropout_coins(std::uint64_t unit_count,
                                          std::int64_t attempt) {
  if (model_.dropout_probability <= 0.0) return;
  primed_attempt_ = attempt;
  primed_coins_.resize(unit_count);
  // Buffer-then-consume: each coin is the same (unit, attempt)-keyed draw
  // issue() would make on its own, so pre-filling the whole batch here in
  // one contiguous pass cannot change any outcome — only the cache
  // behaviour of the mass-issue loop that consumes it.
  const std::uint64_t lane = static_cast<std::uint64_t>(attempt & 63);
  for (std::uint64_t u = 0; u < unit_count; ++u) {
    primed_coins_[u] = rng::first_bernoulli(model_.dropout_probability,
                                            seed_ ^ kDropoutSalt, u * 64 + lane)
                           ? 1
                           : 0;
  }
}

ParticipantPool::Issue ParticipantPool::issue(platform::ParticipantId id,
                                              double now, double demand,
                                              std::uint64_t unit,
                                              std::int64_t attempt) {
  if (model_.dropout_probability > 0.0) {
    const bool dropped =
        (attempt == primed_attempt_ && unit < primed_coins_.size())
            ? primed_coins_[unit] != 0
            : rng::first_bernoulli(
                  model_.dropout_probability, seed_ ^ kDropoutSalt,
                  unit * 64 + static_cast<std::uint64_t>(attempt & 63));
    if (dropped) return {false, 0.0};
  }
  const double service = demand / speed_[id];
  const double start = std::max(now, free_at_[id]);
  const double finish = start + service + model_.network_delay;
  free_at_[id] = finish;
  return {true, finish};
}

}  // namespace redund::runtime
