#include "runtime/latency_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/bulk.hpp"
#include "rng/distributions.hpp"

namespace redund::runtime {

namespace {
constexpr std::uint64_t kSpeedSalt = 0x5EEDFACEULL;
constexpr std::uint64_t kDropoutSalt = 0xD40F0FFULL;
}  // namespace

ParticipantPool::ParticipantPool(const LatencyModel& model, std::int64_t count,
                                 std::uint64_t seed)
    : model_(model), seed_(seed) {
  if (count < 1) {
    throw std::invalid_argument("ParticipantPool: count >= 1");
  }
  if (!(model.mean_service > 0.0)) {
    throw std::invalid_argument("ParticipantPool: mean_service > 0");
  }
  if (model.straggler_fraction < 0.0 || model.straggler_fraction > 1.0 ||
      model.dropout_probability < 0.0 || model.dropout_probability > 1.0) {
    throw std::invalid_argument(
        "ParticipantPool: straggler_fraction/dropout_probability in [0, 1]");
  }
  if (!(model.straggler_slowdown >= 1.0)) {
    throw std::invalid_argument("ParticipantPool: straggler_slowdown >= 1");
  }
  if (model.network_delay < 0.0) {
    throw std::invalid_argument("ParticipantPool: network_delay >= 0");
  }

  const auto n = static_cast<std::size_t>(count);
  speed_.resize(n);
  straggler_.assign(n, 0);
  free_at_.assign(n, 0.0);

  // Unit-mean normalization as in sim/des.cpp: divide the unit-median
  // lognormal draw by exp(sigma^2/2).
  const double mean_correction =
      std::exp(0.5 * model.speed_sigma * model.speed_sigma);
  auto engine = rng::make_stream(seed ^ kSpeedSalt, 0);
  for (std::size_t p = 0; p < n; ++p) {
    double s = model.speed_sigma > 0.0
                   ? rng::lognormal_unit_median(model.speed_sigma, engine) /
                         mean_correction
                   : 1.0;
    if (model.straggler_fraction > 0.0 &&
        rng::bernoulli(model.straggler_fraction, engine)) {
      straggler_[p] = 1;
      s /= model.straggler_slowdown;
    }
    speed_[p] = s;
  }
}

void ParticipantPool::restore_busy_until(const std::vector<double>& clocks) {
  if (clocks.size() != free_at_.size()) {
    throw std::invalid_argument(
        "ParticipantPool::restore_busy_until: size mismatch");
  }
  free_at_ = clocks;
}

std::int64_t ParticipantPool::straggler_count() const noexcept {
  return static_cast<std::int64_t>(
      std::count(straggler_.begin(), straggler_.end(), char{1}));
}

void ParticipantPool::ensure_primed_storage_(std::size_t unit_count) {
  if (primed_coins_.size() < unit_count) {
    primed_coins_.resize(unit_count, 0);
    primed_attempt_for_.resize(unit_count, -1);
  }
}

void ParticipantPool::prime_dropout_coins(std::uint64_t unit_count,
                                          std::int64_t attempt) {
  if (model_.dropout_probability <= 0.0) return;
  ensure_primed_storage_(unit_count);
  // Buffer-then-consume: each coin is the same (unit, attempt)-keyed draw
  // issue() would make on its own, so pre-filling the whole batch here in
  // one vectorized pass cannot change any outcome — only the cache
  // behaviour of the mass-issue loop that consumes it.
  const std::uint64_t lane = static_cast<std::uint64_t>(attempt & 63);
  draw_scratch_.resize(unit_count);
  rng::bulk_first_bernoulli_strided(model_.dropout_probability,
                                    seed_ ^ kDropoutSalt, lane, 64,
                                    unit_count, draw_scratch_.data(),
                                    primed_coins_.data());
  std::fill_n(primed_attempt_for_.begin(), unit_count,
              static_cast<std::int32_t>(attempt));
}

void ParticipantPool::prime_dropout_coins_wave(const std::uint64_t* units,
                                               const std::int32_t* attempts,
                                               std::size_t n) {
  if (model_.dropout_probability <= 0.0 || n == 0) return;
  std::uint64_t max_unit = 0;
  for (std::size_t i = 0; i < n; ++i) max_unit = std::max(max_unit, units[i]);
  ensure_primed_storage_(static_cast<std::size_t>(max_unit) + 1);
  key_scratch_.resize(n);
  draw_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    key_scratch_[i] =
        units[i] * 64 +
        static_cast<std::uint64_t>(
            static_cast<std::uint64_t>(attempts[i]) & 63);
  }
  // The coins land in the wave's scratch first (coin_scratch doubles as
  // the output), then scatter into the per-unit slots.
  std::vector<std::uint8_t>& coins = coin_scratch_;
  coins.resize(n);
  rng::bulk_first_bernoulli(model_.dropout_probability, seed_ ^ kDropoutSalt,
                            key_scratch_.data(), n, draw_scratch_.data(),
                            coins.data());
  for (std::size_t i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(units[i]);
    primed_coins_[u] = coins[i];
    primed_attempt_for_[u] = attempts[i];
  }
}

ParticipantPool::Issue ParticipantPool::issue(platform::ParticipantId id,
                                              double now, double demand,
                                              std::uint64_t unit,
                                              std::int64_t attempt) {
  if (model_.dropout_probability > 0.0) {
    const bool dropped =
        (unit < primed_coins_.size() &&
         primed_attempt_for_[unit] == static_cast<std::int32_t>(attempt))
            ? primed_coins_[unit] != 0
            : rng::first_bernoulli(
                  model_.dropout_probability, seed_ ^ kDropoutSalt,
                  unit * 64 + static_cast<std::uint64_t>(attempt & 63));
    if (dropped) return {false, 0.0};
  }
  const double service = demand / speed_[id];
  const double start = std::max(now, free_at_[id]);
  const double finish = start + service + model_.network_delay;
  free_at_[id] = finish;
  return {true, finish};
}

}  // namespace redund::runtime
