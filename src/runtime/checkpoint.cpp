#include "runtime/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define REDUND_HAVE_FSYNC 1
#else
#define REDUND_HAVE_FSYNC 0
#endif

namespace redund::runtime {

namespace {

constexpr std::size_t kFileBufferBytes = 1 << 20;
constexpr std::size_t kMaxQueuedItems = 4;

/// Space-separated token sink with StateWriter's exact conventions
/// (u64 → minimal hex, i64 → decimal, f64 → 16-hex-digit IEEE bits,
/// bool → hex 0/1), writing into a caller-owned reusable string. The
/// "first token carries no separator" rule is tracked explicitly so the
/// blob can be appended after a record prefix ("C <index> ") that is
/// already in the buffer.
class TokenSink {
 public:
  explicit TokenSink(std::string& out) : out_(out) {}

  void u64(std::uint64_t value) {
    sep_();
    detail::append_hex(out_, value);
  }
  void i64(std::int64_t value) {
    sep_();
    detail::append_dec(out_, value);
  }
  void f64(double value) {
    sep_();
    detail::append_hex16(out_, std::bit_cast<std::uint64_t>(value));
  }
  void boolean(bool value) { u64(value ? 1 : 0); }

 private:
  void sep_() {
    if (first_) {
      first_ = false;
    } else {
      out_ += ' ';
    }
  }
  std::string& out_;
  bool first_ = true;
};

void append_series_row(TokenSink& w, const RuntimeSample& sample) {
  w.f64(sample.time);
  w.i64(sample.units_issued);
  w.i64(sample.units_completed);
  w.i64(sample.units_timed_out);
  w.i64(sample.units_reissued);
  w.i64(sample.tasks_valid);
  w.i64(sample.control_boosts);
  w.i64(sample.control_releases);
}

/// The scalar prefix shared by full and delta blobs: Runner scalars,
/// then the report counters that the event loop mutates. Order matches
/// the original synchronous serializer exactly.
void append_scalar_prefix(TokenSink& w, const CheckpointPayload& payload) {
  const CheckpointScalars& s = payload.scalars;
  w.f64(s.effective_deadline);
  w.f64(s.next_sample);
  w.f64(s.detection_time_total);
  w.f64(s.first_detection);
  w.i64(s.completions_pending);
  w.i64(s.recompute_used);
  w.i64(s.stall_streak);
  w.i64(s.last_progress);
  w.f64(s.ewma);
  w.boolean(s.ewma_init);
  w.i64(s.min_live);
  for (const std::uint64_t word : s.rng) w.u64(word);
  const RuntimeReport& r = payload.report;
  w.i64(r.units_issued);
  w.i64(r.units_completed);
  w.i64(r.units_timed_out);
  w.i64(r.units_reissued);
  w.i64(r.units_dropped);
  w.i64(r.late_results);
  w.i64(r.adaptive_replicas);
  w.i64(r.quorum_replicas);
  w.i64(r.supervisor_recomputes);
  w.i64(r.tasks_valid);
  w.i64(r.tasks_inconclusive);
  w.i64(r.mismatches_detected);
  w.i64(r.ringer_catches);
  w.i64(r.blacklisted_identities);
  w.i64(r.adversary_cheat_attempts);
  w.i64(r.false_accusations);
  w.i64(r.fault_events);
  w.i64(r.churn_leaves);
  w.i64(r.churn_rejoins);
  w.i64(r.results_lost);
  w.i64(r.results_corrupted);
  w.i64(r.duplicate_results);
  w.i64(r.replan_rounds);
  w.i64(r.control_boosts);
  w.i64(r.control_releases);
  w.i64(r.control_observations);
  w.f64(r.makespan);
  w.f64(r.end_time);
  w.i64(r.detections);
  w.i64(r.events_processed);
}

/// The dense per-participant / controller / drift suffix shared by both
/// blob flavors (small vectors, always serialized whole).
void append_dense_suffix(TokenSink& w, const CheckpointPayload& payload) {
  for (const double score : payload.score) w.f64(score);
  for (const char flag : payload.flagged) w.boolean(flag != 0);
  for (const std::int64_t count : payload.offline) w.i64(count);
  for (const char active : payload.window_active) w.boolean(active != 0);
  const CheckpointScalars& s = payload.scalars;
  w.i64(s.ctrl_wrong);
  w.i64(s.ctrl_right);
  w.i64(s.ctrl_observations);
  w.i64(s.ctrl_last_replan);
  w.f64(s.ctrl_dropout);
  w.boolean(s.ctrl_dropout_init);
  w.f64(s.drift_from);
  w.f64(s.drift_target);
  w.f64(s.drift_start);
  w.f64(s.drift_duration);
}

void append_registry_and_busy(TokenSink& w, const CheckpointPayload& payload) {
  for (const ParticipantSnapshot& record : payload.registry) {
    w.boolean(record.blacklisted);
    w.i64(record.assignments_completed);
    w.i64(record.credit);
    w.i64(record.wrong_results);
  }
  for (const double clock : payload.busy) w.f64(clock);
}

void append_event_row(TokenSink& w, const Event& event) {
  w.f64(event.time);
  w.u64(event.seq);
  w.i64(static_cast<std::int64_t>(event.kind));
  w.i64(event.subject);
  w.u64(event.epoch);
}

/// Full (L2) blob: byte-identical to what the old synchronous
/// serialize_state_ produced from the same state, so the restore path
/// reads both eras of checkpoints with one parser.
// redund: deterministic
void append_full_blob(std::string& out, CheckpointPayload& payload) {
  TokenSink w(out);
  append_scalar_prefix(w, payload);
  w.i64(static_cast<std::int64_t>(payload.report.series.size()));
  for (const RuntimeSample& sample : payload.report.series) {
    append_series_row(w, sample);
  }
  append_registry_and_busy(w, payload);
  w.i64(payload.unit_total);
  for (const UnitRow& row : payload.units) {
    w.i64(row.task);
    w.i64(row.assignee);
  }
  for (const UnitRow& row : payload.units) {
    w.i64(row.state);
    w.i64(row.attempts);
    w.u64(row.epoch);
    w.u64(row.value);
    w.boolean(row.has_value);
  }
  for (const TaskRow& row : payload.tasks) {
    w.i64(row.state);
    w.i64(row.target_copies);
    w.i64(row.arrived);
    w.i64(row.extra_replicas);
    w.i64(row.control_boosts);
    w.i64(row.control_released);
    w.boolean(row.adversary_committed);
    w.boolean(row.adversary_cheats);
    w.boolean(row.mismatch_counted);
    w.boolean(row.ringer_counted);
    w.boolean(row.inconclusive_counted);
    w.boolean(row.detected);
    w.u64(row.accepted);
  }
  append_dense_suffix(w, payload);
  w.u64(payload.next_seq);
  // The supervisor stages the pending set in whatever order the queue
  // stores it; the canonical blob sorts by firing order here, off the
  // hot path (this is what made the staging cheap enough).
  std::sort(payload.events.begin(), payload.events.end(),
            [](const Event& a, const Event& b) { return fires_before(a, b); });
  w.i64(static_cast<std::int64_t>(payload.events.size()));
  for (const Event& event : payload.events) append_event_row(w, event);
}

/// Delta (L1) blob: the scalar prefix and small dense vectors in full
/// (cheaper to re-serialize than to diff), then only the series rows,
/// unit rows, and task rows touched in the window, then the events
/// pushed in it. The popped events are *not* recorded — composition
/// derives them from the WAL records in the window via their seq.
// redund: deterministic
void append_delta_blob(std::string& out, const CheckpointPayload& payload) {
  TokenSink w(out);
  append_scalar_prefix(w, payload);
  w.i64(static_cast<std::int64_t>(payload.series_base));
  w.i64(static_cast<std::int64_t>(payload.report.series.size() -
                                  payload.series_base));
  for (std::size_t i = payload.series_base; i < payload.report.series.size();
       ++i) {
    append_series_row(w, payload.report.series[i]);
  }
  append_registry_and_busy(w, payload);
  w.i64(payload.unit_total);
  w.i64(static_cast<std::int64_t>(payload.units.size()));
  for (const UnitRow& row : payload.units) {
    w.u64(row.u);
    w.i64(row.state);
    w.i64(row.attempts);
    w.u64(row.epoch);
    w.u64(row.value);
    w.i64(row.task);
    w.i64(row.assignee);
  }
  w.i64(static_cast<std::int64_t>(payload.tasks.size()));
  for (const TaskRow& row : payload.tasks) {
    w.u64(row.t);
    w.i64(row.state);
    w.i64(row.target_copies);
    w.i64(row.arrived);
    w.i64(row.extra_replicas);
    w.i64(row.control_boosts);
    w.i64(row.control_released);
    w.boolean(row.adversary_committed);
    w.boolean(row.adversary_cheats);
    w.boolean(row.mismatch_counted);
    w.boolean(row.ringer_counted);
    w.boolean(row.inconclusive_counted);
    w.boolean(row.detected);
    w.u64(row.accepted);
  }
  append_dense_suffix(w, payload);
  w.u64(payload.next_seq);
  w.i64(static_cast<std::int64_t>(payload.events.size()));
  for (const Event& event : payload.events) append_event_row(w, event);
}

// ------------------------------------------------------------ compression

// LZSS tuned for checkpoint blobs (long runs of repeated token shapes):
// 4 KiB window, matches of 3..18 bytes packed as 12-bit distance +
// 4-bit length, one flag byte per 8 items (bit set = literal). A
// single-candidate hash head keeps compression O(n) — ratio matters
// less than not stalling replicate_partner_checkpoints.
constexpr std::size_t kWindow = 4096;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 18;
constexpr std::size_t kHashBits = 13;

[[nodiscard]] std::uint32_t hash3(const unsigned char* p) {
  const std::uint32_t x = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (x * 2654435761u) >> (32 - kHashBits);
}

[[nodiscard]] std::string lzss_compress(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() / 2 + 16);
  std::vector<std::int64_t> head(std::size_t{1} << kHashBits, -1);
  const auto* data = reinterpret_cast<const unsigned char*>(raw.data());
  const std::size_t n = raw.size();
  std::size_t i = 0;
  std::size_t flag_pos = 0;
  int items = 0;
  while (i < n) {
    if (items == 0) {
      flag_pos = out.size();
      out.push_back('\0');
    }
    std::size_t match_len = 0;
    std::size_t match_dist = 0;
    if (i + kMinMatch <= n) {
      const std::uint32_t h = hash3(data + i);
      const std::int64_t cand = head[h];
      head[h] = static_cast<std::int64_t>(i);
      if (cand >= 0 &&
          i - static_cast<std::size_t>(cand) <= kWindow) {
        const auto c = static_cast<std::size_t>(cand);
        const std::size_t limit = std::min(kMaxMatch, n - i);
        std::size_t len = 0;
        while (len < limit && data[c + len] == data[i + len]) ++len;
        if (len >= kMinMatch) {
          match_len = len;
          match_dist = i - c;
        }
      }
    }
    if (match_len != 0) {
      const std::size_t dist = match_dist - 1;  // 0..4095
      out.push_back(static_cast<char>(dist & 0xFF));
      out.push_back(static_cast<char>(((dist >> 8) << 4) |
                                      (match_len - kMinMatch)));
      // Index the covered positions too, so later matches can anchor
      // inside this one.
      for (std::size_t k = i + 1; k + kMinMatch <= n && k < i + match_len;
           ++k) {
        head[hash3(data + k)] = static_cast<std::int64_t>(k);
      }
      i += match_len;
    } else {
      out[flag_pos] = static_cast<char>(
          static_cast<unsigned char>(out[flag_pos]) | (1u << items));
      out.push_back(raw[i]);
      ++i;
    }
    items = (items + 1) & 7;
  }
  return out;
}

[[nodiscard]] std::string lzss_decompress(const std::string& in,
                                          std::size_t raw_size) {
  std::string out;
  out.reserve(raw_size);
  std::size_t i = 0;
  while (i < in.size() && out.size() < raw_size) {
    const auto flags = static_cast<unsigned char>(in[i++]);
    for (int b = 0; b < 8 && i < in.size() && out.size() < raw_size; ++b) {
      if (flags & (1u << b)) {
        out.push_back(in[i++]);
      } else {
        if (i + 2 > in.size()) {
          throw std::runtime_error("partner payload: truncated LZSS pair");
        }
        const auto lo = static_cast<unsigned char>(in[i]);
        const auto hi = static_cast<unsigned char>(in[i + 1]);
        i += 2;
        const std::size_t dist =
            (static_cast<std::size_t>(hi >> 4) << 8 | lo) + 1;
        const std::size_t len = static_cast<std::size_t>(hi & 0xF) + kMinMatch;
        if (dist > out.size()) {
          throw std::runtime_error("partner payload: LZSS distance underflow");
        }
        for (std::size_t k = 0; k < len; ++k) {
          out.push_back(out[out.size() - dist]);  // Overlap-safe, byte-wise.
        }
      }
    }
  }
  if (out.size() != raw_size) {
    throw std::runtime_error("partner payload: inflated size mismatch");
  }
  return out;
}

constexpr char kBase64[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

[[nodiscard]] std::string base64_encode(const std::string& bytes) {
  std::string out;
  out.reserve(((bytes.size() + 2) / 3) * 4);
  std::size_t i = 0;
  while (i + 3 <= bytes.size()) {
    const std::uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                            (static_cast<unsigned char>(bytes[i + 1]) << 8) |
                            static_cast<unsigned char>(bytes[i + 2]);
    out.push_back(kBase64[(v >> 18) & 63]);
    out.push_back(kBase64[(v >> 12) & 63]);
    out.push_back(kBase64[(v >> 6) & 63]);
    out.push_back(kBase64[v & 63]);
    i += 3;
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const std::uint32_t v = static_cast<unsigned char>(bytes[i]) << 16;
    out.push_back(kBase64[(v >> 18) & 63]);
    out.push_back(kBase64[(v >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    const std::uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                            (static_cast<unsigned char>(bytes[i + 1]) << 8);
    out.push_back(kBase64[(v >> 18) & 63]);
    out.push_back(kBase64[(v >> 12) & 63]);
    out.push_back(kBase64[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

[[nodiscard]] std::string base64_decode(const std::string& text) {
  std::array<std::int8_t, 256> lut;
  lut.fill(-1);
  for (int i = 0; i < 64; ++i) {
    lut[static_cast<unsigned char>(kBase64[i])] = static_cast<std::int8_t>(i);
  }
  if (text.size() % 4 != 0) {
    throw std::runtime_error("partner payload: base64 length not a "
                             "multiple of 4");
  }
  std::string out;
  out.reserve((text.size() / 4) * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text[i + k];
      if (c == '=') {
        // Padding is only legal in the final group's last two slots.
        if (i + 4 != text.size() || k < 2) {
          throw std::runtime_error("partner payload: stray base64 padding");
        }
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad != 0 || lut[static_cast<unsigned char>(c)] < 0) {
        throw std::runtime_error("partner payload: bad base64 digit");
      }
      v = (v << 6) | static_cast<std::uint32_t>(
                         lut[static_cast<unsigned char>(c)]);
    }
    out.push_back(static_cast<char>((v >> 16) & 0xFF));
    if (pad < 2) out.push_back(static_cast<char>((v >> 8) & 0xFF));
    if (pad < 1) out.push_back(static_cast<char>(v & 0xFF));
  }
  return out;
}

void fwrite_all(std::FILE* file, const std::string& path,
                const std::string& text) {
  if (text.empty()) return;
  if (std::fwrite(text.data(), 1, text.size(), file) != text.size()) {
    throw std::runtime_error("journal: write to " + path + " failed");
  }
}

void flush_file(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    throw std::runtime_error("journal: flush of " + path + " failed");
  }
}

void sync_file(std::FILE* file, const std::string& path) {
#if REDUND_HAVE_FSYNC
  if (::fsync(fileno(file)) != 0) {
    throw std::runtime_error("journal: fsync of " + path + " failed");
  }
#else
  (void)file;
  (void)path;
#endif
}

}  // namespace

void CheckpointPayload::clear_keep_capacity() {
  full = false;
  index = 0;
  base_index = 0;
  scalars = CheckpointScalars{};
  report.series.clear();
  series_base = 0;
  registry.clear();
  busy.clear();
  score.clear();
  flagged.clear();
  offline.clear();
  window_active.clear();
  unit_total = 0;
  units.clear();
  tasks.clear();
  next_seq = 0;
  events.clear();
}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   std::uint64_t config_hash,
                                   std::uint64_t seed)
    : path_(path), file_buffer_(kFileBufferBytes) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("journal: cannot open " + path + " for writing");
  }
  std::setvbuf(file_, file_buffer_.data(), _IOFBF, file_buffer_.size());
  line_ = "redund-journal-v2 ";
  detail::append_hex(line_, config_hash);
  line_ += ' ';
  detail::append_hex(line_, seed);
  line_ += '\n';
  try {
    fwrite_all(file_, path_, line_);
    flush_file(file_, path_);
  } catch (...) {
    std::fclose(file_);
    throw;
  }
  line_.clear();
  thread_ = std::thread(&CheckpointWriter::thread_main_, this);
}

CheckpointWriter::~CheckpointWriter() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (file_ != nullptr) {
    std::fflush(file_);  // Best effort: destructors must not throw.
    std::fclose(file_);
  }
}

void CheckpointWriter::enqueue_(WorkItem&& item) {
  std::unique_lock<std::mutex> lock(mutex_);
  throw_pending_error_locked_();
  work_done_.wait(lock, [&] { return queue_.size() < kMaxQueuedItems; });
  throw_pending_error_locked_();
  queue_.push_back(std::move(item));
  work_ready_.notify_one();
}

void CheckpointWriter::append_wal(std::uint64_t base_index,
                                  std::vector<Event>& events) {
  if (events.empty()) return;
  WorkItem item;
  item.kind = WorkItem::kWal;
  item.base = base_index;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    throw_pending_error_locked_();
    if (!wal_pool_.empty()) {
      item.events = std::move(wal_pool_.back());
      wal_pool_.pop_back();
    }
  }
  item.events.clear();
  item.events.swap(events);
  enqueue_(std::move(item));
}

CheckpointPayload& CheckpointWriter::stage() {
  std::unique_lock<std::mutex> lock(mutex_);
  throw_pending_error_locked_();
  work_done_.wait(lock, [&] {
    return !payload_busy_[0] || !payload_busy_[1];
  });
  throw_pending_error_locked_();
  const std::size_t slot = payload_busy_[0] ? 1 : 0;
  payload_busy_[slot] = true;
  staging_ = &payload_pool_[slot];
  staging_->clear_keep_capacity();
  return *staging_;
}

void CheckpointWriter::submit() {
  WorkItem item;
  item.kind = WorkItem::kCheckpoint;
  item.payload = staging_;
  staging_ = nullptr;
  enqueue_(std::move(item));
}

void CheckpointWriter::finish(std::uint64_t index, std::int64_t outcome) {
  WorkItem item;
  item.kind = WorkItem::kFinish;
  item.base = index;
  item.outcome = outcome;
  enqueue_(std::move(item));
  flush();
}

void CheckpointWriter::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [&] { return queue_.empty() && !writing_; });
  throw_pending_error_locked_();
}

void CheckpointWriter::throw_pending_error_locked_() {
  if (!error_.empty()) throw std::runtime_error(error_);
}

void CheckpointWriter::thread_main_() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left to drain.
      item = std::move(queue_.front());
      queue_.pop_front();
      writing_ = true;
    }
    std::string failure;
    {
      bool skip;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        skip = !error_.empty();  // Sticky: drain without writing.
      }
      if (!skip) {
        try {
          write_item_(item);
        } catch (const std::exception& error) {
          failure = error.what();
        }
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!failure.empty() && error_.empty()) error_ = failure;
      if (item.payload != nullptr) {
        for (std::size_t slot = 0; slot < payload_pool_.size(); ++slot) {
          if (&payload_pool_[slot] == item.payload) {
            payload_busy_[slot] = false;
          }
        }
      }
      if (item.kind == WorkItem::kWal && item.events.capacity() > 0 &&
          wal_pool_.size() < 2) {
        item.events.clear();
        wal_pool_.push_back(std::move(item.events));
      }
      writing_ = false;
    }
    work_done_.notify_all();
  }
}

void CheckpointWriter::write_item_(const WorkItem& item) {
  line_.clear();
  switch (item.kind) {
    case WorkItem::kWal: {
      for (std::size_t i = 0; i < item.events.size(); ++i) {
        const Event& event = item.events[i];
        line_ += "E ";
        detail::append_udec(line_, item.base + i);
        line_ += ' ';
        detail::append_hex16(line_, std::bit_cast<std::uint64_t>(event.time));
        line_ += ' ';
        detail::append_udec(line_, static_cast<std::uint64_t>(event.kind));
        line_ += ' ';
        detail::append_dec(line_, event.subject);
        line_ += ' ';
        detail::append_udec(line_, event.epoch);
        line_ += ' ';
        detail::append_udec(line_, event.seq);
        line_ += '\n';
      }
      fwrite_all(file_, path_, line_);
      flush_file(file_, path_);
      break;
    }
    case WorkItem::kCheckpoint: {
      CheckpointPayload& payload = *item.payload;
      if (payload.full) {
        line_ += "C ";
        detail::append_udec(line_, payload.index);
        line_ += ' ';
        append_full_blob(line_, payload);
      } else {
        line_ += "D ";
        detail::append_udec(line_, payload.index);
        line_ += ' ';
        detail::append_udec(line_, payload.base_index);
        line_ += ' ';
        append_delta_blob(line_, payload);
      }
      line_ += '\n';
      fwrite_all(file_, path_, line_);
      flush_file(file_, path_);
      sync_file(file_, path_);  // A checkpoint is a durability point.
      break;
    }
    case WorkItem::kFinish: {
      line_ += "F ";
      detail::append_udec(line_, item.base);
      line_ += ' ';
      detail::append_dec(line_, item.outcome);
      line_ += '\n';
      fwrite_all(file_, path_, line_);
      flush_file(file_, path_);
      sync_file(file_, path_);
      break;
    }
  }
}

std::string compress_blob(const std::string& raw) {
  return base64_encode(lzss_compress(raw));
}

std::string decompress_blob(const std::string& encoded,
                            std::size_t raw_size) {
  return lzss_decompress(base64_decode(encoded), raw_size);
}

PartnerCopy make_partner_copy(std::uint64_t config_hash, std::uint64_t seed,
                              std::uint64_t index, const std::string& blob) {
  PartnerCopy copy;
  copy.config_hash = config_hash;
  copy.seed = seed;
  copy.index = index;
  copy.raw_size = blob.size();
  copy.payload = compress_blob(blob);
  return copy;
}

void append_partner_record(const std::string& path, const PartnerCopy& copy) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    throw std::runtime_error("journal: cannot open " + path +
                             " for partner append");
  }
  std::string line = "P ";
  detail::append_hex(line, copy.config_hash);
  line += ' ';
  detail::append_hex(line, copy.seed);
  line += ' ';
  detail::append_udec(line, copy.index);
  line += ' ';
  detail::append_udec(line, copy.raw_size);
  line += ' ';
  line += copy.payload;
  line += '\n';
  try {
    fwrite_all(file, path, line);
    flush_file(file, path);
    sync_file(file, path);
  } catch (...) {
    std::fclose(file);
    throw;
  }
  std::fclose(file);
}

std::string extract_partner_blob(const JournalContents& holder) {
  if (!holder.has_partner) {
    throw std::runtime_error("journal: no partner checkpoint record");
  }
  return decompress_blob(holder.partner_payload,
                         static_cast<std::size_t>(holder.partner_raw_size));
}

void write_rescue_journal(const std::string& path, std::uint64_t config_hash,
                          std::uint64_t seed, std::uint64_t index,
                          const std::string& blob) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("journal: cannot open " + path +
                             " for rescue write");
  }
  std::string text = "redund-journal-v2 ";
  detail::append_hex(text, config_hash);
  text += ' ';
  detail::append_hex(text, seed);
  text += '\n';
  text += "C ";
  detail::append_udec(text, index);
  text += ' ';
  text += blob;
  text += '\n';
  try {
    fwrite_all(file, path, text);
    flush_file(file, path);
    sync_file(file, path);
  } catch (...) {
    std::fclose(file);
    throw;
  }
  std::fclose(file);
}

}  // namespace redund::runtime
