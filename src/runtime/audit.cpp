#include "runtime/audit.hpp"

#include <exception>
#include <filesystem>
#include <ostream>
#include <string>
#include <vector>

#include "core/realize.hpp"
#include "core/schemes/balanced.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/journal.hpp"
#include "runtime/sharded.hpp"

namespace redund::runtime {

// redund: deterministic
std::uint64_t report_fingerprint(const RuntimeReport& report) {
  StateWriter w;
  w.reserve(1024 + 96 * report.series.size());
  w.i64(report.tasks);
  w.i64(report.units_planned);
  w.i64(report.participants);
  w.i64(report.stragglers);
  w.i64(report.units_issued);
  w.i64(report.units_completed);
  w.i64(report.units_timed_out);
  w.i64(report.units_reissued);
  w.i64(report.units_dropped);
  w.i64(report.late_results);
  w.i64(report.adaptive_replicas);
  w.i64(report.quorum_replicas);
  w.i64(report.supervisor_recomputes);
  w.i64(report.tasks_valid);
  w.i64(report.tasks_inconclusive);
  w.i64(report.mismatches_detected);
  w.i64(report.ringer_catches);
  w.i64(report.blacklisted_identities);
  w.i64(report.replan_rounds);
  w.i64(report.control_boosts);
  w.i64(report.control_releases);
  w.i64(report.control_observations);
  w.f64(report.p_hat_mean);
  w.f64(report.p_hat_upper);
  w.i64(report.adversary_cheat_attempts);
  w.i64(report.false_accusations);
  w.i64(report.final_correct_tasks);
  w.i64(report.final_corrupt_tasks);
  w.u64(static_cast<std::uint64_t>(report.outcome));
  w.i64(report.tasks_unfinished);
  w.i64(report.fault_events);
  w.i64(report.churn_leaves);
  w.i64(report.churn_rejoins);
  w.i64(report.results_lost);
  w.i64(report.results_corrupted);
  w.i64(report.duplicate_results);
  w.i64(report.min_live_fleet);
  w.f64(report.progress_rate);
  w.f64(report.makespan);
  w.f64(report.end_time);
  w.f64(report.first_detection_time);
  w.f64(report.mean_detection_latency);
  w.i64(report.detections);
  w.i64(report.events_processed);
  w.u64(static_cast<std::uint64_t>(report.series.size()));
  for (const RuntimeSample& sample : report.series) {
    w.f64(sample.time);
    w.i64(sample.units_issued);
    w.i64(sample.units_completed);
    w.i64(sample.units_timed_out);
    w.i64(sample.units_reissued);
    w.i64(sample.tasks_valid);
    w.i64(sample.control_boosts);
    w.i64(sample.control_releases);
  }
  return fnv1a_hash(w.text());
}

AuditOptions quick_audit_options() {
  AuditOptions options;
  options.target_tasks = 300;
  options.honest_participants = 40;
  options.sybil_identities = 8;
  options.shard_counts = {1, 2};
  options.thread_counts = {1, 2};
  options.kill_fractions = {0.5};
  return options;
}

namespace {

const char* queue_name(QueueKind kind) {
  return kind == QueueKind::kBinaryHeap ? "binary-heap" : "calendar";
}

RuntimeConfig base_config(const AuditOptions& options) {
  RuntimeConfig config;
  const auto tasks = static_cast<double>(options.target_tasks);
  config.plan = core::realize(
      core::make_balanced(tasks, 0.5, {.truncate_below = 1e-9}),
      options.target_tasks, 0.5);
  config.honest_participants = options.honest_participants;
  config.sybil_identities = options.sybil_identities;
  // Exercise the timeout/retry/adaptive machinery, not just the happy
  // path: stragglers and dropouts make deadlines fire and units re-deal.
  config.latency.straggler_fraction = 0.1;
  config.latency.dropout_probability = 0.02;
  config.sample_interval = 25.0;  // Series merge is part of the surface.
  config.seed = options.seed;
  return config;
}

/// The static base plus the online controller and an adversary whose
/// colluding fraction drifts mid-campaign (step down, then ramp back up)
/// — the configuration whose determinism the control subsystem must not
/// break: kReplan events, boost/release bookkeeping, and the controller
/// state in every checkpoint all join the byte-identity contract.
RuntimeConfig adaptive_config(const AuditOptions& options) {
  RuntimeConfig config = base_config(options);
  config.control.enabled = true;
  config.control.epsilon = 0.5;
  config.control.replan_interval = 48;
  config.control.min_observations = 24;
  config.faults.events.push_back({.time = 40.0,
                                  .kind = FaultKind::kPDrift,
                                  .fraction = 0.3});
  config.faults.events.push_back({.time = 160.0,
                                  .kind = FaultKind::kPDrift,
                                  .fraction = 0.9,
                                  .duration = 120.0});
  return config;
}

/// One must-agree group: every (label, fingerprint) cell must match the
/// first. Records divergences into `result`.
class AgreementGroup {
 public:
  AgreementGroup(AuditResult& result, std::ostream& log, std::string name)
      : result_(result),
        log_(log),
        name_(std::move(name)),
        divergences_before_(result.divergences.size()) {
    ++result_.groups;
  }

  void cell(const std::string& label, std::uint64_t fingerprint) {
    ++cells_;
    if (cells_ == 1) {
      reference_ = fingerprint;
      reference_label_ = label;
      return;
    }
    if (fingerprint != reference_) {
      result_.divergences.push_back(
          name_ + ": " + label + " diverged from " + reference_label_);
    }
  }

  void failure(const std::string& label, const std::string& what) {
    result_.divergences.push_back(name_ + ": " + label + " failed: " + what);
  }

  ~AgreementGroup() {
    const std::size_t diverged =
        result_.divergences.size() - divergences_before_;
    log_ << "  " << name_ << ": " << cells_ << " cell(s), ";
    if (diverged == 0) {
      // The agreed fingerprint is part of the log so two *builds* can be
      // cross-checked by diffing their audit logs — the in-process matrix
      // only proves agreement within one binary.
      log_ << "all agree, fingerprint 0x" << std::hex << reference_
           << std::dec << "\n";
    } else {
      log_ << diverged << " DIVERGENCE(S)\n";
    }
  }

 private:
  AuditResult& result_;
  std::ostream& log_;
  std::string name_;
  std::size_t divergences_before_;
  std::size_t cells_ = 0;
  std::uint64_t reference_ = 0;
  std::string reference_label_;
};

/// Runs the full queue x threads x kill matrix for one base campaign.
/// `tag` labels the agreement groups and keys the scratch journal names
/// so multiple bases can share one scratch directory.
void audit_matrix(const AuditOptions& options, const RuntimeConfig& base,
                  const std::string& tag, AuditResult& result,
                  std::ostream& log) {
  for (const std::int64_t shards : options.shard_counts) {
    AgreementGroup group(result, log,
                         tag + " shards=" + std::to_string(shards));

    // Per-shard uninterrupted runs, executed sequentially on this thread:
    // the scheduling-free reference, and the source of each shard's event
    // count for placing kill points.
    RuntimeConfig reference_base = base;
    reference_base.queue = options.queue_kinds.front();
    const ShardedSupervisor reference_sharded(reference_base, shards);
    std::vector<RuntimeReport> shard_reports;
    std::vector<std::int64_t> shard_events;
    shard_reports.reserve(reference_sharded.shard_configs().size());
    for (const RuntimeConfig& shard : reference_sharded.shard_configs()) {
      shard_reports.push_back(run_async_campaign(shard));
      shard_events.push_back(shard_reports.back().events_processed);
      ++result.runs;
    }
    group.cell("sequential reference",
               report_fingerprint(ShardedSupervisor::merge(shard_reports)));

    // Queue kind x pool size: the merged report may depend on neither.
    for (const QueueKind queue : options.queue_kinds) {
      RuntimeConfig config = base;
      config.queue = queue;
      const ShardedSupervisor sharded(config, shards);
      for (const std::size_t threads : options.thread_counts) {
        parallel::ThreadPool pool(threads);
        const RuntimeReport merged = sharded.run(pool);
        ++result.runs;
        group.cell(std::string("queue=") + queue_name(queue) +
                       " threads=" + std::to_string(threads),
                   report_fingerprint(merged));
      }
    }

    // Kill/resume: killing each shard's supervisor mid-campaign and
    // resuming from its journal must reproduce the uninterrupted bytes.
    for (const QueueKind queue : options.queue_kinds) {
      RuntimeConfig config = base;
      config.queue = queue;
      const ShardedSupervisor sharded(config, shards);
      for (const double fraction : options.kill_fractions) {
        const std::string label = std::string("queue=") + queue_name(queue) +
                                  " kill=" + std::to_string(fraction);
        std::vector<RuntimeReport> resumed;
        resumed.reserve(sharded.shard_configs().size());
        bool leg_failed = false;
        for (std::size_t s = 0;
             s < sharded.shard_configs().size() && !leg_failed; ++s) {
          RuntimeConfig shard = sharded.shard_configs()[s];
          shard.journal.path = options.scratch_dir + "/audit-" + tag + "-s" +
                               std::to_string(shards) + "-q" +
                               queue_name(queue) + "-f" +
                               std::to_string(fraction) + "-shard" +
                               std::to_string(s) + ".journal";
          // Checkpoint often enough that the kill lands between
          // checkpoints, exercising the WAL-verified replay suffix; a
          // full snapshot every third checkpoint makes every resume
          // compose an L2 with a short L1 delta chain (the multi-level
          // recovery path, not just the legacy full-snapshot one).
          shard.journal.checkpoint_interval =
              std::max<std::int64_t>(shard_events[s] / 7, 16);
          shard.journal.full_snapshot_every = 3;
          const std::int64_t kill_at = std::max<std::int64_t>(
              1, static_cast<std::int64_t>(
                     static_cast<double>(shard_events[s]) * fraction));
          try {
            auto capped = run_async_campaign_capped(shard, kill_at);
            ++result.runs;
            if (capped.has_value()) {
              // Campaign finished before the kill point (tiny shard);
              // the report still belongs in the agreement group.
              resumed.push_back(std::move(*capped));
            } else {
              resumed.push_back(resume_async_campaign(shard));
              ++result.runs;
            }
          } catch (const std::exception& error) {
            group.failure(label + " shard=" + std::to_string(s),
                          error.what());
            leg_failed = true;
          }
        }
        if (!leg_failed) {
          group.cell(label,
                     report_fingerprint(ShardedSupervisor::merge(resumed)));
        }
      }
    }

    // Partner (L3) recovery: run the fleet journaled (run() replicates
    // each shard's latest L2 into its ring partner's journal), delete
    // one shard's journal file outright, and resume the whole fleet.
    // The lost shard must come back bit-identically via the partner
    // copy; the survivors resume from their own journals.
    if (shards >= 2) {
      RuntimeConfig config = base;
      config.queue = options.queue_kinds.front();
      config.journal.path = options.scratch_dir + "/audit-" + tag + "-s" +
                            std::to_string(shards) + "-partner.journal";
      std::int64_t min_events = shard_events.front();
      for (const std::int64_t events : shard_events) {
        min_events = std::min(min_events, events);
      }
      // Checkpoint inside even the smallest shard, with fulls frequent
      // enough that every shard has an L2 worth replicating.
      config.journal.checkpoint_interval =
          std::max<std::int64_t>(min_events / 5, 16);
      config.journal.full_snapshot_every = 2;
      const ShardedSupervisor journaled(config, shards);
      try {
        parallel::ThreadPool pool(options.thread_counts.front());
        const RuntimeReport full = journaled.run(pool);
        result.runs += static_cast<std::size_t>(journaled.shard_count());
        group.cell("partner-recovery run", report_fingerprint(full));
        std::filesystem::remove(
            journaled.shard_configs().front().journal.path);
        const RuntimeReport recovered = journaled.resume(pool);
        result.runs += static_cast<std::size_t>(journaled.shard_count());
        group.cell("partner-recovery resume", report_fingerprint(recovered));
      } catch (const std::exception& error) {
        group.failure("partner-recovery", error.what());
      }
    }
  }
}

}  // namespace

AuditResult run_determinism_audit(const AuditOptions& options,
                                  std::ostream& log) {
  AuditResult result;
  std::filesystem::create_directories(options.scratch_dir);

  log << "determinism audit: " << options.queue_kinds.size()
      << " queue kind(s) x " << options.shard_counts.size()
      << " shard count(s) x " << options.thread_counts.size()
      << " pool size(s) x " << options.kill_fractions.size()
      << " kill point(s)"
      << (options.include_adaptive ? " x {static, adaptive}" : "")
      << ", seed 0x" << std::hex << options.seed << std::dec << "\n";

  audit_matrix(options, base_config(options), "static", result, log);
  if (options.include_adaptive) {
    audit_matrix(options, adaptive_config(options), "adaptive", result, log);
  }

  result.passed = result.divergences.empty();
  for (const std::string& divergence : result.divergences) {
    log << "  DIVERGENCE " << divergence << "\n";
  }
  log << "determinism audit: " << result.runs << " campaign run(s), "
      << result.groups << " agreement group(s), "
      << (result.passed ? "all agree" : "DIVERGENCE DETECTED") << "\n";
  return result;
}

}  // namespace redund::runtime
