// Multi-level checkpointing: asynchronous journal writer (L1/L2) and
// partner-copy redundancy (L3).
//
// The supervisor's event loop must never block on checkpoint I/O, so
// the hot path only *stages* raw data (lane memcpys, WAL event batches)
// into a CheckpointPayload and hands it to a dedicated writer thread.
// All text formatting, fwrite, fflush, and fsync happen on that thread
// — on a machine with a spare core the event loop pays only the staging
// copies (docs/checkpointing.md has the measured overhead table and the
// single-core caveat). The
// queue between them is FIFO, so records land on disk in exactly the
// order a synchronous writer would have produced; combined with
// read_journal()'s torn-tail trim, a crash at any instant leaves a
// journal whose complete-record prefix is a valid recovery point.
//
// Levels (format in runtime/journal.hpp):
//   L1  `D` delta checkpoints — only the unit/task rows dirtied since
//       the previous checkpoint record plus the events pushed since it.
//   L2  `C` full snapshots — every Nth checkpoint
//       (JournalOptions::full_snapshot_every).
//   L3  `P` partner copies — ShardedSupervisor compresses each shard's
//       latest L2 (LZSS + base64) into the next shard's journal, so
//       losing any single journal file still resumes bit-identically.
//
// Why resume stays bit-identical under the async writer: the writer
// never observes live state. Every payload is a value copy staged at a
// batch boundary, the FIFO preserves the WAL-before-checkpoint enqueue
// order, and a drain barrier (flush/finish) gates every point where the
// supervisor needs durability. The formatter reproduces the exact token
// stream the old synchronous serializer wrote, so the restore path is
// unchanged modulo delta composition.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_annotations.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/journal.hpp"
#include "runtime/report.hpp"

namespace redund::runtime {

/// Non-SoA mutable scalars of the Runner, staged by value.
struct CheckpointScalars {
  double effective_deadline = 0.0;
  double next_sample = 0.0;
  double detection_time_total = 0.0;
  double first_detection = 0.0;
  std::int64_t completions_pending = 0;
  std::int64_t recompute_used = 0;
  std::int64_t stall_streak = 0;
  std::int64_t last_progress = 0;
  double ewma = 0.0;
  bool ewma_init = false;
  std::int64_t min_live = 0;
  std::array<std::uint64_t, 4> rng{};
  // Adaptive controller + drift (constants when disabled, but always
  // serialized so the blob layout never forks).
  std::int64_t ctrl_wrong = 0;
  std::int64_t ctrl_right = 0;
  std::int64_t ctrl_observations = 0;
  std::int64_t ctrl_last_replan = 0;
  double ctrl_dropout = 0.0;
  bool ctrl_dropout_init = false;
  double drift_from = 0.0;
  double drift_target = 0.0;
  double drift_start = 0.0;
  double drift_duration = 0.0;
};

/// One registry row as serialized (ground-truth principal is immutable
/// and rebuilt from the config, so it is not staged).
struct ParticipantSnapshot {
  bool blacklisted = false;
  std::int64_t assignments_completed = 0;
  std::int64_t credit = 0;
  std::int64_t wrong_results = 0;
};

/// One unit row. L2 payloads stage every unit (u == row position); L1
/// payloads stage only rows dirtied in the delta window, identified by
/// `u` (which may lie beyond the base snapshot's unit count — replicas
/// registered mid-window append to the table).
struct UnitRow {
  std::uint64_t u = 0;
  std::int64_t state = 0;
  std::int64_t attempts = 0;
  std::uint64_t epoch = 0;
  std::uint64_t value = 0;
  std::int64_t task = 0;
  std::int64_t assignee = 0;
  bool has_value = false;
};

/// One task row; `t` identifies the task in L1 payloads. The six
/// booleans are the serialized latch flags (vote aggregates are derived
/// and rebuilt on restore).
struct TaskRow {
  std::uint64_t t = 0;
  std::int64_t state = 0;
  std::int64_t target_copies = 0;
  std::int64_t arrived = 0;
  std::int64_t extra_replicas = 0;
  std::int64_t control_boosts = 0;
  std::int64_t control_released = 0;
  bool adversary_committed = false;
  bool adversary_cheats = false;
  bool mismatch_counted = false;
  bool ringer_counted = false;
  bool inconclusive_counted = false;
  bool detected = false;
  std::uint64_t accepted = 0;
};

/// Everything one checkpoint (full or delta) needs, staged by value on
/// the supervisor thread and formatted on the writer thread. Instances
/// live in the CheckpointWriter's buffer pool and keep their vector
/// capacities across reuse, so steady-state staging allocates nothing.
struct CheckpointPayload {
  bool full = false;           ///< L2 (`C`) if true, L1 (`D`) if false.
  std::uint64_t index = 0;     ///< Events processed at the snapshot.
  std::uint64_t base_index = 0;  ///< Previous checkpoint record (L1 only).
  CheckpointScalars scalars;
  RuntimeReport report;        ///< Counters + full series (value copy).
  std::size_t series_base = 0;  ///< Series rows already covered by the
                                ///< base record (L1 serializes the rest).
  std::vector<ParticipantSnapshot> registry;
  std::vector<double> busy;    ///< Per-participant busy-until clocks.
  std::vector<double> score;
  std::vector<char> flagged;
  std::vector<std::int64_t> offline;
  std::vector<char> window_active;
  std::int64_t unit_total = 0;  ///< Unit-table size at the snapshot.
  std::vector<UnitRow> units;   ///< All units (L2) or dirty rows (L1).
  std::vector<TaskRow> tasks;   ///< All tasks (L2) or dirty rows (L1).
  std::uint64_t next_seq = 0;
  std::vector<Event> events;   ///< Pending set (L2, any order — the
                               ///< writer sorts canonically) or the
                               ///< events pushed in the window (L1).

  /// Resets for reuse without releasing vector capacity.
  void clear_keep_capacity();
};

/// Owns one journal file and its writer thread. The constructor
/// truncates the file and writes the v2 header; append_wal/submit stage
/// work and return without touching the file. Writer-thread failures
/// (disk full, I/O error) are sticky and rethrown from the next staging
/// or flush call on the supervisor thread.
class CheckpointWriter {
 public:
  CheckpointWriter(const std::string& path, std::uint64_t config_hash,
                   std::uint64_t seed);
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Queues WAL records for the events at indices
  /// [base_index, base_index + events.size()). Swaps `events` with a
  /// recycled buffer from the pool, so the caller's vector comes back
  /// empty with capacity intact.
  void append_wal(std::uint64_t base_index, std::vector<Event>& events);

  /// Returns a pooled payload to fill (cleared, capacity kept). Blocks
  /// only if both pool buffers are still in flight — i.e. the event
  /// loop has outrun two whole checkpoint writes.
  CheckpointPayload& stage();

  /// Queues the payload returned by the matching stage() call.
  void submit();

  /// Terminal `F` record; drains the queue and surfaces any error.
  void finish(std::uint64_t index, std::int64_t outcome);

  /// Drain barrier: returns once every queued record is fully written
  /// (and fsynced where the record class calls for it). Rethrows a
  /// pending writer-thread error. Acquires mutex_ and sleeps on
  /// work_done_, so it must not be called with mutex_ held.
  void flush() REDUND_EXCLUDES(mutex_);

 private:
  struct WorkItem {
    enum Kind : std::uint8_t { kWal, kCheckpoint, kFinish };
    Kind kind = kWal;
    std::uint64_t base = 0;
    std::int64_t outcome = 0;
    std::vector<Event> events;            // kWal
    CheckpointPayload* payload = nullptr;  // kCheckpoint (pool slot)
  };

  void thread_main_();
  void write_item_(const WorkItem& item);
  void enqueue_(WorkItem&& item) REDUND_EXCLUDES(mutex_);
  void throw_pending_error_locked_() REDUND_REQUIRES(mutex_);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<char> file_buffer_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::deque<WorkItem> queue_ REDUND_GUARDED_BY(mutex_);
  bool stopping_ REDUND_GUARDED_BY(mutex_) = false;
  bool writing_ REDUND_GUARDED_BY(mutex_) = false;
  std::string error_ REDUND_GUARDED_BY(mutex_);

  // Double-buffered payload pool: one being staged/written, one free.
  std::array<CheckpointPayload, 2> payload_pool_;
  std::array<bool, 2> payload_busy_ REDUND_GUARDED_BY(mutex_) {};
  CheckpointPayload* staging_ = nullptr;
  std::vector<std::vector<Event>> wal_pool_ REDUND_GUARDED_BY(mutex_);

  // Writer-thread scratch, reused across records.
  std::string line_;

  std::thread thread_;
};

/// LZSS-compresses `raw` and base64-encodes the result into a single
/// whitespace-free token (safe to embed in a journal line). Exposed for
/// round-trip tests; the partner helpers below use it internally.
[[nodiscard]] std::string compress_blob(const std::string& raw);

/// Inverse of compress_blob. `raw_size` is the expected inflated size;
/// a mismatch or malformed stream throws std::runtime_error.
[[nodiscard]] std::string decompress_blob(const std::string& encoded,
                                          std::size_t raw_size);

/// An L3 record ready to append into a partner shard's journal.
struct PartnerCopy {
  std::uint64_t config_hash = 0;  ///< Fingerprint of the *origin* shard.
  std::uint64_t seed = 0;
  std::uint64_t index = 0;
  std::uint64_t raw_size = 0;
  std::string payload;  ///< base64(LZSS(full state blob)).
};

/// Compresses an origin shard's latest full checkpoint into a
/// PartnerCopy.
[[nodiscard]] PartnerCopy make_partner_copy(std::uint64_t config_hash,
                                            std::uint64_t seed,
                                            std::uint64_t index,
                                            const std::string& blob);

/// Appends the `P` record to `path` (the holder shard's journal) and
/// syncs it to disk. The holder's own records are untouched — `P` lines
/// are ignored by that shard's own resume.
void append_partner_record(const std::string& path, const PartnerCopy& copy);

/// Inflates the partner blob carried by a holder journal's `P` record.
/// Throws if the journal holds none or the payload is corrupt.
[[nodiscard]] std::string extract_partner_blob(const JournalContents& holder);

/// Writes a minimal valid journal for a shard whose own file was lost:
/// header plus one full checkpoint reconstructed from a partner copy.
/// Resuming from it re-runs the deterministic suffix from `index`, so
/// the recovered report is bit-identical to the undamaged run's. (No
/// WAL tail survives, so the resume verifies nothing — it cannot:
/// the evidence died with the original file.)
void write_rescue_journal(const std::string& path, std::uint64_t config_hash,
                          std::uint64_t seed, std::uint64_t index,
                          const std::string& blob);

}  // namespace redund::runtime
