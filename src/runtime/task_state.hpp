// Per-task and per-unit lifecycle states of the asynchronous supervisor.
//
// The task machine follows the BOINC transitioner/validator shape
// (sched/transitioner.cpp in the BOINC source tree):
//
//   UNSENT --issue--> IN_PROGRESS --quorum reached--> PENDING_VALIDATION
//     PENDING_VALIDATION --copies agree (or ringer)--> VALID
//     PENDING_VALIDATION --copies disagree--> INCONCLUSIVE
//       INCONCLUSIVE --extra replica issued--> IN_PROGRESS
//       INCONCLUSIVE --replicas exhausted, policy resolves--> VALID
//
// VALID is the only terminal state: the runtime guarantees every task gets
// there because a unit that exhausts its retries is recomputed by the
// supervisor, and the resolution policies always produce an accepted value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace redund::runtime {

/// Validator state of one task.
enum class TaskState : std::uint8_t {
  kUnsent,             ///< No copy issued yet.
  kInProgress,         ///< Copies outstanding, quorum not reached.
  kPendingValidation,  ///< All issued copies accounted for; comparing.
  kInconclusive,       ///< Copies disagreed; awaiting an extra replica.
  kValid,              ///< Accepted value recorded (terminal).
};

/// Lifecycle of one work unit (one issued copy of a task).
enum class UnitState : std::uint8_t {
  kUnsent,      ///< Dealt but not yet issued.
  kInProgress,  ///< Issued; completion or deadline pending.
  kCompleted,   ///< Result arrived before the deadline.
  kTimedOut,    ///< Deadline fired first; awaiting re-issue or recompute.
  kRecomputed,  ///< Supervisor computed it after retries ran out.
};

[[nodiscard]] constexpr const char* to_string(TaskState state) noexcept {
  switch (state) {
    case TaskState::kUnsent: return "UNSENT";
    case TaskState::kInProgress: return "IN_PROGRESS";
    case TaskState::kPendingValidation: return "PENDING_VALIDATION";
    case TaskState::kInconclusive: return "INCONCLUSIVE";
    case TaskState::kValid: return "VALID";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(UnitState state) noexcept {
  switch (state) {
    case UnitState::kUnsent: return "UNSENT";
    case UnitState::kInProgress: return "IN_PROGRESS";
    case UnitState::kCompleted: return "COMPLETED";
    case UnitState::kTimedOut: return "TIMED_OUT";
    case UnitState::kRecomputed: return "RECOMPUTED";
  }
  return "?";
}

/// Structure-of-arrays table of the mutable per-unit runtime state, plus
/// read-mostly mirrors of each unit's task and current assignee.
///
/// The event loop touches exactly one or two lanes per event (a state
/// check and an epoch compare dominate), and the stall sweeps
/// (reestimate_deadline_, flag, set_offline_) walk one lane across every
/// unit. The array-of-structs record this replaces spread those touches
/// over 32-byte rows — one unit per half cache line; the hot lanes here
/// pack 16-64 units per line. Lane widths are sized to the values'
/// actual ranges (attempts is bounded by the retry policy, epoch by a
/// few increments per attempt), not to their serialized width — the
/// checkpoint blob still writes them as 64-bit tokens.
///
/// `has_value` is not stored: a unit has a reportable value iff its
/// state is kCompleted or kRecomputed (the only transitions that assign
/// `value`, and both are terminal), so the flag is derived from the
/// state lane.
struct UnitTable {
  std::vector<UnitState> state;
  std::vector<std::int32_t> attempts;   ///< Issues so far (1 = initial deal).
  std::vector<std::uint32_t> epoch;     ///< Bumped to stale in-flight timers.
  std::vector<std::uint64_t> value;
  std::vector<std::int32_t> task;       ///< Owning task (scheduler mirror).
  std::vector<std::uint32_t> assignee;  ///< Current holder (scheduler mirror).
  /// Checkpoint-window stamp for L1 delta checkpoints: the supervisor
  /// writes its current window counter here on every mutation, and a
  /// delta serializes exactly the rows stamped with the open window.
  /// Not part of the campaign state — never serialized, never compared.
  std::vector<std::uint32_t> dirty;

  [[nodiscard]] std::size_t size() const noexcept { return state.size(); }

  void reserve(std::size_t capacity) {
    state.reserve(capacity);
    attempts.reserve(capacity);
    epoch.reserve(capacity);
    value.reserve(capacity);
    task.reserve(capacity);
    assignee.reserve(capacity);
    dirty.reserve(capacity);
  }

  void resize(std::size_t count) {
    state.resize(count, UnitState::kUnsent);
    attempts.resize(count, 0);
    epoch.resize(count, 0);
    value.resize(count, 0);
    task.resize(count, 0);
    assignee.resize(count, 0);
    dirty.resize(count, 0);
  }

  /// Appends one zero-initialized unit (a replica); the caller fills the
  /// task/assignee mirrors.
  void append() {
    state.push_back(UnitState::kUnsent);
    attempts.push_back(0);
    epoch.push_back(0);
    value.push_back(0);
    task.push_back(0);
    assignee.push_back(0);
    dirty.push_back(0);
  }

  /// True iff unit `u` holds a reportable value (completed or
  /// supervisor-recomputed — the two terminal value-bearing states).
  [[nodiscard]] bool has_value(std::size_t u) const noexcept {
    return state[u] == UnitState::kCompleted ||
           state[u] == UnitState::kRecomputed;
  }
};

/// Structure-of-arrays table of the mutable per-task runtime state, plus
/// the immutable per-task facts the validator consults on every result
/// (ground truth, ringer membership).
///
/// The eight per-task latch booleans pack into one flags byte: they are
/// set-once markers the hot path only tests.
struct TaskTable {
  /// Latch bits in `flags`.
  enum Flag : std::uint8_t {
    kAdversaryCommitted = 1u << 0,
    kAdversaryCheats = 1u << 1,
    kMismatchCounted = 1u << 2,
    kRingerCounted = 1u << 3,
    kInconclusiveCounted = 1u << 4,
    kDetected = 1u << 5,
    kVoteSeen = 1u << 6,      ///< At least one copy's value folded in.
    kVoteMismatch = 1u << 7,  ///< Two folded values disagreed.
  };

  std::vector<TaskState> state;
  std::vector<std::uint8_t> flags;
  std::vector<std::int32_t> target_copies;  ///< Multiplicity + replicas.
  std::vector<std::int32_t> arrived;        ///< Completed/recomputed copies.
  std::vector<std::int32_t> extra_replicas;
  std::vector<std::int32_t> control_boosts;
  std::vector<std::int32_t> control_released;
  std::vector<std::uint64_t> accepted;
  std::vector<std::uint64_t> truth;     ///< Immutable ground-truth values.
  std::vector<std::uint8_t> is_ringer;  ///< Immutable ringer membership.
  /// Running unanimity aggregate: the first value folded in (arrival
  /// order). Valid only while kVoteMismatch is clear — once two values
  /// disagree the validator re-gathers the full vote word anyway. Folding
  /// order cannot change behavior: the mismatch latch is symmetric in its
  /// inputs, and when it stays clear every folded value equals this one.
  /// Derived state — checkpoints skip it; restore refolds from the
  /// value-bearing units.
  std::vector<std::uint64_t> vote_value;
  /// Checkpoint-window stamp for L1 deltas (see UnitTable::dirty).
  std::vector<std::uint32_t> dirty;

  [[nodiscard]] std::size_t size() const noexcept { return state.size(); }

  void resize(std::size_t count) {
    state.resize(count, TaskState::kUnsent);
    flags.resize(count, 0);
    target_copies.resize(count, 0);
    arrived.resize(count, 0);
    extra_replicas.resize(count, 0);
    control_boosts.resize(count, 0);
    control_released.resize(count, 0);
    accepted.resize(count, 0);
    truth.resize(count, 0);
    is_ringer.resize(count, 0);
    vote_value.resize(count, 0);
    dirty.resize(count, 0);
  }

  /// Folds one arriving copy's value into the unanimity aggregate.
  void fold_vote(std::size_t t, std::uint64_t value) noexcept {
    if (!test(t, kVoteSeen)) {
      set(t, kVoteSeen);
      vote_value[t] = value;
    } else if (value != vote_value[t]) {
      set(t, kVoteMismatch);
    }
  }

  [[nodiscard]] bool test(std::size_t t, Flag flag) const noexcept {
    return (flags[t] & flag) != 0;
  }
  void set(std::size_t t, Flag flag) noexcept {
    flags[t] = static_cast<std::uint8_t>(flags[t] | flag);
  }
  void assign(std::size_t t, Flag flag, bool on) noexcept {
    flags[t] = static_cast<std::uint8_t>(on ? (flags[t] | flag)
                                            : (flags[t] & ~flag));
  }
};

}  // namespace redund::runtime
