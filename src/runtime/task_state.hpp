// Per-task and per-unit lifecycle states of the asynchronous supervisor.
//
// The task machine follows the BOINC transitioner/validator shape
// (sched/transitioner.cpp in the BOINC source tree):
//
//   UNSENT --issue--> IN_PROGRESS --quorum reached--> PENDING_VALIDATION
//     PENDING_VALIDATION --copies agree (or ringer)--> VALID
//     PENDING_VALIDATION --copies disagree--> INCONCLUSIVE
//       INCONCLUSIVE --extra replica issued--> IN_PROGRESS
//       INCONCLUSIVE --replicas exhausted, policy resolves--> VALID
//
// VALID is the only terminal state: the runtime guarantees every task gets
// there because a unit that exhausts its retries is recomputed by the
// supervisor, and the resolution policies always produce an accepted value.
#pragma once

#include <cstdint>

namespace redund::runtime {

/// Validator state of one task.
enum class TaskState : std::uint8_t {
  kUnsent,             ///< No copy issued yet.
  kInProgress,         ///< Copies outstanding, quorum not reached.
  kPendingValidation,  ///< All issued copies accounted for; comparing.
  kInconclusive,       ///< Copies disagreed; awaiting an extra replica.
  kValid,              ///< Accepted value recorded (terminal).
};

/// Lifecycle of one work unit (one issued copy of a task).
enum class UnitState : std::uint8_t {
  kUnsent,      ///< Dealt but not yet issued.
  kInProgress,  ///< Issued; completion or deadline pending.
  kCompleted,   ///< Result arrived before the deadline.
  kTimedOut,    ///< Deadline fired first; awaiting re-issue or recompute.
  kRecomputed,  ///< Supervisor computed it after retries ran out.
};

[[nodiscard]] constexpr const char* to_string(TaskState state) noexcept {
  switch (state) {
    case TaskState::kUnsent: return "UNSENT";
    case TaskState::kInProgress: return "IN_PROGRESS";
    case TaskState::kPendingValidation: return "PENDING_VALIDATION";
    case TaskState::kInconclusive: return "INCONCLUSIVE";
    case TaskState::kValid: return "VALID";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(UnitState state) noexcept {
  switch (state) {
    case UnitState::kUnsent: return "UNSENT";
    case UnitState::kInProgress: return "IN_PROGRESS";
    case UnitState::kCompleted: return "COMPLETED";
    case UnitState::kTimedOut: return "TIMED_OUT";
    case UnitState::kRecomputed: return "RECOMPUTED";
  }
  return "?";
}

}  // namespace redund::runtime
