// A task-based thread pool (C++ Core Guidelines CP.4: think in terms of
// tasks, not threads; CP.41: minimize thread creation/destruction).
//
// The pool is the execution substrate for the Monte Carlo simulation driver:
// replicas are submitted as tasks and joined through futures. Worker threads
// are created once, never detached (CP.26), and joined in the destructor
// (CP.23/CP.25 — the pool behaves as a scoped container of joining threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace redund::parallel {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
///
/// Thread-safe: submit() may be called concurrently from any thread,
/// including from inside a running task (tasks must not *block* on tasks
/// they submitted unless workers remain to run them — the pool does not
/// implement work stealing or fibers).
class ThreadPool {
 public:
  /// Creates `thread_count` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(std::size_t thread_count = 0);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ThreadPool(ThreadPool&&) = delete;
  ThreadPool& operator=(ThreadPool&&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Submits a nullary callable; returns a future for its result.
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    // shared_ptr because std::function requires copyable targets and
    // std::packaged_task is move-only.
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([task = std::move(task)] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// Blocks until every task submitted so far has finished executing.
  void wait_idle();

 private:
  void worker_loop_();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace redund::parallel
