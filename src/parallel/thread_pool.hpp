// A task-based thread pool (C++ Core Guidelines CP.4: think in terms of
// tasks, not threads; CP.41: minimize thread creation/destruction).
//
// The pool is the execution substrate for the Monte Carlo simulation driver.
// Worker threads are created once, never detached (CP.26), and joined in the
// destructor (CP.23/CP.25 — the pool behaves as a scoped container of
// joining threads).
//
// Dispatch is lock-light: every worker owns its own deque and takes only
// that deque's mutex on the fast path; an idle worker steals from the other
// queues (FIFO from its own front, LIFO from a victim's back, the classic
// work-stealing discipline). Tasks are carried by TaskFunction, a move-only
// callable wrapper with inline small-buffer storage, so a submit() costs one
// allocation (the future's shared state) instead of the three forced by the
// old std::function + shared_ptr<packaged_task> encoding.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/thread_annotations.hpp"

namespace redund::parallel {

/// Number of CPUs actually available to this process — the scheduler
/// affinity mask when the platform exposes one (a container pinned to one
/// core reports 1 here even when hardware_concurrency() sees the host's
/// full socket), hardware_concurrency() otherwise, and never less than 1.
/// This is the oversubscription bound parallel_for uses to cap how many
/// pool workers it wakes per region.
[[nodiscard]] std::size_t available_parallelism() noexcept;

/// Move-only type-erased nullary callable with small-buffer optimization.
///
/// Replaces std::function<void()> as the pool's task carrier: std::function
/// requires copyable targets, which forced move-only payloads (futures,
/// packaged_task) behind an extra shared_ptr. Targets up to kInlineSize
/// bytes that are nothrow-move-constructible live inline; larger ones fall
/// back to a single heap cell.
class TaskFunction {
 public:
  TaskFunction() noexcept = default;

  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Fn>, TaskFunction>>>
  TaskFunction(Fn&& fn) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<Fn>;
    if constexpr (fits_inline_<Decayed>()) {
      target_ = ::new (static_cast<void*>(storage_))
          Decayed(std::forward<Fn>(fn));
      vtable_ = inline_vtable_<Decayed>();
    } else {
      target_ = new Decayed(std::forward<Fn>(fn));
      vtable_ = heap_vtable_<Decayed>();
    }
  }

  TaskFunction(TaskFunction&& other) noexcept { move_from_(other); }

  TaskFunction& operator=(TaskFunction&& other) noexcept {
    if (this != &other) {
      reset_();
      move_from_(other);
    }
    return *this;
  }

  TaskFunction(const TaskFunction&) = delete;
  TaskFunction& operator=(const TaskFunction&) = delete;

  ~TaskFunction() { reset_(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  void operator()() { vtable_->invoke(target_); }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs the target into `to` and destroys the source; null
    /// for heap targets (the pointer itself is stolen instead).
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  template <typename Fn>
  static constexpr bool fits_inline_() noexcept {
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const VTable* inline_vtable_() noexcept {
    static constexpr VTable table = {
        [](void* target) { (*static_cast<Fn*>(target))(); },
        [](void* from, void* to) noexcept {
          ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
          static_cast<Fn*>(from)->~Fn();
        },
        [](void* target) noexcept { static_cast<Fn*>(target)->~Fn(); },
    };
    return &table;
  }

  template <typename Fn>
  static const VTable* heap_vtable_() noexcept {
    static constexpr VTable table = {
        [](void* target) { (*static_cast<Fn*>(target))(); },
        nullptr,
        [](void* target) noexcept { delete static_cast<Fn*>(target); },
    };
    return &table;
  }

  void move_from_(TaskFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ == nullptr) return;
    if (vtable_->relocate != nullptr) {  // Inline target.
      vtable_->relocate(other.target_, storage_);
      target_ = storage_;
    } else {  // Heap target: steal the pointer.
      target_ = other.target_;
    }
    other.vtable_ = nullptr;
    other.target_ = nullptr;
  }

  void reset_() noexcept {
    if (vtable_ != nullptr) vtable_->destroy(target_);
    vtable_ = nullptr;
    target_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  void* target_ = nullptr;
  const VTable* vtable_ = nullptr;
};

/// Fixed-size pool of worker threads with per-worker queues + work stealing.
///
/// Thread-safe: submit() may be called concurrently from any thread,
/// including from inside a running task. A task must not *block* on tasks it
/// submitted unless workers remain to run them (no fibers) — but note that
/// parallel_for / parallel_reduce never block this way: the calling thread
/// participates in the chunk loop itself.
///
/// Ordering: submissions are distributed round-robin over the per-worker
/// queues and each queue is FIFO for its owner, so overall order is
/// near-FIFO but not globally total — callers needing strict sequencing
/// must chain futures.
class ThreadPool {
 public:
  /// Creates `thread_count` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(std::size_t thread_count = 0);

  /// Pins worker i to the (i mod k)-th CPU of the process's affinity mask
  /// (k = available_parallelism()), so each shard's event loop keeps its
  /// cache-hot calendar ring on one core instead of migrating. No-op when
  /// fewer than two CPUs are available or the platform has no affinity
  /// API. Scheduling and results are unaffected — pinning is a placement
  /// hint only, part of no determinism contract.
  void pin_workers() noexcept;

  /// Outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ThreadPool(ThreadPool&&) = delete;
  ThreadPool& operator=(ThreadPool&&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Submits a nullary callable; returns a future for its result.
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    std::packaged_task<Result()> task(std::forward<Fn>(fn));
    std::future<Result> future = task.get_future();
    push_(TaskFunction(std::move(task)));
    return future;
  }

  /// Blocks until every task submitted so far has finished executing.
  /// Sleeps on sleep_mutex_/idle_, so it must not be called while holding
  /// the pool's sleep mutex (a task calling it deadlocks anyway — no
  /// worker is left to signal idle).
  void wait_idle() REDUND_EXCLUDES(sleep_mutex_);

 private:
  /// One worker's queue; heap-allocated so the vector of workers can be
  /// built without moving mutexes.
  struct Worker {
    std::mutex mutex;
    std::deque<TaskFunction> queue REDUND_GUARDED_BY(mutex);
  };

  void push_(TaskFunction task);
  bool try_pop_(std::size_t self, TaskFunction& out);
  void run_(TaskFunction task);
  void worker_loop_(std::size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> next_queue_{0};  ///< Round-robin submit cursor.
  std::atomic<std::int64_t> queued_{0};     ///< Tasks sitting in queues.
  std::atomic<std::int64_t> in_flight_{0};  ///< Queued + executing.
  std::atomic<std::int64_t> sleepers_{0};   ///< Workers inside wake_.wait.
  std::atomic<bool> stopping_{false};
  std::mutex sleep_mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
};

}  // namespace redund::parallel
