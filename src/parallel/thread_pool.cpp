#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace redund::parallel {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop_(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop_() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace redund::parallel
