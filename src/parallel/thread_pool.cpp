#include "parallel/thread_pool.hpp"

#include <algorithm>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace redund::parallel {

std::size_t available_parallelism() noexcept {
#ifdef __linux__
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int cpus = CPU_COUNT(&mask);
    if (cpus > 0) return static_cast<std::size_t>(cpus);
  }
#endif
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::pin_workers() noexcept {
#ifdef __linux__
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return;
  if (CPU_COUNT(&allowed) < 2) return;  // Nothing to spread over.
  // The allowed CPUs, in id order (the mask can be sparse in a container).
  std::vector<int> cpus;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &allowed)) cpus.push_back(cpu);
  }
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    cpu_set_t one;
    CPU_ZERO(&one);
    CPU_SET(cpus[i % cpus.size()], &one);
    // Best-effort: a failed pin leaves the worker on the full mask.
    (void)pthread_setaffinity_np(threads_[i].native_handle(), sizeof(one),
                                 &one);
  }
#endif
}

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    threads_.emplace_back([this, i] { worker_loop_(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_seq_cst);
  {
    // Taking the sleep mutex orders the flag against any worker that is
    // between its predicate check and the actual sleep.
    const std::scoped_lock lock(sleep_mutex_);
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(sleep_mutex_);
  idle_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::push_(TaskFunction task) {
  const std::size_t index =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(workers_[index]->mutex);
    workers_[index]->queue.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_seq_cst);
  // Wake a sleeper only when one exists: the common steady-state submit
  // (all workers busy) never touches the global mutex. The seq_cst pair
  // (queued_ store above / sleepers_ load here vs. sleepers_ store /
  // queued_ load in worker_loop_) guarantees at least one side sees the
  // other, so no wakeup is lost.
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    { const std::scoped_lock lock(sleep_mutex_); }
    wake_.notify_one();
  }
}

bool ThreadPool::try_pop_(std::size_t self, TaskFunction& out) {
  const std::size_t n = workers_.size();
  // Own queue first (FIFO), then steal (from the victim's back, LIFO).
  {
    Worker& own = *workers_[self];
    const std::scoped_lock lock(own.mutex);
    if (!own.queue.empty()) {
      out = std::move(own.queue.front());
      own.queue.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (std::size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(self + k) % n];
    // try_lock: a contended victim means somebody is already working that
    // queue; skip instead of convoying.
    std::unique_lock lock(victim.mutex, std::try_to_lock);
    if (!lock.owns_lock() || victim.queue.empty()) continue;
    out = std::move(victim.queue.back());
    victim.queue.pop_back();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::run_(TaskFunction task) {
  task();
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    { const std::scoped_lock lock(sleep_mutex_); }
    idle_.notify_all();
  }
}

void ThreadPool::worker_loop_(std::size_t self) {
  while (true) {
    TaskFunction task;
    if (try_pop_(self, task)) {
      run_(std::move(task));
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    wake_.wait(lock, [this] {
      return stopping_.load(std::memory_order_seq_cst) ||
             queued_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (stopping_.load(std::memory_order_seq_cst) &&
        queued_.load(std::memory_order_seq_cst) == 0) {
      return;
    }
  }
}

}  // namespace redund::parallel
