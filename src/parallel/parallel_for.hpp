// Index-range parallelism and deterministic parallel reduction on top of
// ThreadPool.
//
// The key property for this library is *schedule-independent determinism*:
// work is decomposed into blocks whose layout depends only on the iteration
// count — never on the pool size — and parallel_reduce combines per-block
// partial results in ascending block order on the calling thread. The
// floating-point (and byte-level) result is therefore identical for any
// thread count — a requirement for reproducing the paper's Monte Carlo
// numbers exactly across machines.
//
// Scheduling is dynamic: blocks are claimed from an atomic ticket counter,
// so a slow block (straggler replica, NUMA miss) never idles the other
// workers the way the old static per-thread decomposition did. The calling
// thread participates in the block loop itself, so these entry points never
// deadlock even on a saturated pool.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <future>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace redund::parallel {

/// Static block decomposition of [0, count) into at most `pieces` contiguous
/// blocks of near-equal size. Returns (begin, end) pairs; never returns an
/// empty block.
[[nodiscard]] inline std::vector<std::pair<std::size_t, std::size_t>> decompose(
    std::size_t count, std::size_t pieces) {
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  if (count == 0 || pieces == 0) return blocks;
  pieces = std::min(pieces, count);
  const std::size_t base = count / pieces;
  const std::size_t extra = count % pieces;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < pieces; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    blocks.emplace_back(begin, begin + len);
    begin += len;
  }
  return blocks;
}

/// Number of scheduling blocks for an iteration count. Depends ONLY on
/// `count` (never on the pool size): the block layout is part of the
/// determinism contract. 256 blocks keep dynamic load balancing effective
/// up to large machines while costing one relaxed fetch_add each.
[[nodiscard]] inline std::size_t schedule_blocks(std::size_t count) noexcept {
  constexpr std::size_t kMaxBlocks = 256;
  return std::min(count, kMaxBlocks);
}

/// Runs body(block_index, begin, end) for every block, claiming blocks
/// dynamically from an atomic ticket counter across the pool plus the
/// calling thread. Blocks until all blocks complete; rethrows the first
/// exception a block threw (remaining unclaimed blocks are abandoned).
template <typename BlockBody>
void parallel_for_blocks(
    ThreadPool& pool,
    const std::vector<std::pair<std::size_t, std::size_t>>& blocks,
    BlockBody&& body) {
  if (blocks.empty()) return;
  if (blocks.size() == 1) {  // Fast path: no scheduling, no futures.
    body(std::size_t{0}, blocks[0].first, blocks[0].second);
    return;
  }
  std::atomic<std::size_t> ticket{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  const auto drain = [&] {
    while (!failed.load(std::memory_order_acquire)) {
      const std::size_t b = ticket.fetch_add(1, std::memory_order_relaxed);
      if (b >= blocks.size()) return;
      try {
        body(b, blocks[b].first, blocks[b].second);
      } catch (...) {
        {
          const std::scoped_lock lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_release);
      }
    }
  };

  // Helpers are capped by the CPUs this process may actually run on, not
  // just the pool size: with the calling thread already draining blocks,
  // waking more than available_parallelism() - 1 workers cannot add
  // throughput, only context-switch churn (on a 1-CPU container an
  // 8-worker pool would otherwise time-slice 9 runnable threads through
  // one core). Results are unaffected — the block layout never depends on
  // how many threads drain it.
  const std::size_t cpus = available_parallelism();
  const std::size_t helpers =
      std::min({pool.size(), blocks.size() - 1, cpus - 1});
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) {
    futures.push_back(pool.submit(drain));
  }
  drain();  // The calling thread works too; never idles on a busy pool.
  for (auto& future : futures) future.get();
  if (error) std::rethrow_exception(error);
}

/// Runs body(i) for every i in [0, count), distributing blocks over the
/// pool. Blocks until all iterations complete. `body` must be callable
/// concurrently from multiple threads.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t count, Body&& body) {
  const auto blocks = decompose(count, schedule_blocks(count));
  parallel_for_blocks(pool, blocks,
                      [&body](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

/// Deterministic block-level map-reduce: map_block(begin, end) returns one
/// partial of type T per block; partials are folded with combine(T, T) in
/// ascending block order on the calling thread. Because the block layout is
/// a pure function of `count`, the result is byte-identical for any pool
/// size. This is the zero-per-item-overhead entry point for kernels that
/// carry per-thread scratch state across a whole block (see
/// sim::run_monte_carlo).
template <typename T, typename MapBlock, typename Combine>
[[nodiscard]] T parallel_reduce_blocks(ThreadPool& pool, std::size_t count,
                                       T identity, MapBlock&& map_block,
                                       Combine&& combine) {
  const auto blocks = decompose(count, schedule_blocks(count));
  if (blocks.empty()) return identity;
  std::vector<std::optional<T>> partials(blocks.size());
  parallel_for_blocks(
      pool, blocks,
      [&partials, &map_block](std::size_t b, std::size_t begin,
                              std::size_t end) {
        partials[b].emplace(map_block(begin, end));
      });
  T result = std::move(identity);
  for (auto& partial : partials) {
    result = combine(std::move(result), std::move(*partial));
  }
  return result;
}

/// Deterministic map-reduce: computes combine(..., map(i), ...) over
/// i in [0, count). `map(i)` returns a value of type T; partial results per
/// block are folded with `combine(T, T)` in ascending block order, so the
/// result does not depend on the pool size or scheduling.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::size_t count, T identity,
                                Map&& map, Combine&& combine) {
  return parallel_reduce_blocks<T>(
      pool, count, identity,
      [identity, &map, &combine](std::size_t begin, std::size_t end) {
        T partial = identity;
        for (std::size_t i = begin; i < end; ++i) {
          partial = combine(std::move(partial), map(i));
        }
        return partial;
      },
      combine);
}

}  // namespace redund::parallel
