// Index-range parallelism and deterministic parallel reduction on top of
// ThreadPool.
//
// The key property for this library is *schedule-independent determinism*:
// parallel_reduce assigns work by static block decomposition and combines
// per-block partial results in block order on the calling thread, so the
// floating-point result is identical for any thread count — a requirement
// for reproducing the paper's Monte Carlo numbers exactly across machines.
#pragma once

#include <cstddef>
#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace redund::parallel {

/// Static block decomposition of [0, count) into at most `pieces` contiguous
/// blocks of near-equal size. Returns (begin, end) pairs; never returns an
/// empty block.
[[nodiscard]] inline std::vector<std::pair<std::size_t, std::size_t>> decompose(
    std::size_t count, std::size_t pieces) {
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  if (count == 0 || pieces == 0) return blocks;
  pieces = std::min(pieces, count);
  const std::size_t base = count / pieces;
  const std::size_t extra = count % pieces;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < pieces; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    blocks.emplace_back(begin, begin + len);
    begin += len;
  }
  return blocks;
}

/// Runs body(i) for every i in [0, count), distributing contiguous blocks
/// over the pool. Blocks until all iterations complete. `body` must be
/// callable concurrently from multiple threads.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t count, Body&& body) {
  const auto blocks = decompose(count, pool.size());
  std::vector<std::future<void>> futures;
  futures.reserve(blocks.size());
  for (const auto& [begin, end] : blocks) {
    futures.push_back(pool.submit([begin = begin, end = end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  for (auto& future : futures) future.get();  // Propagates exceptions.
}

/// Deterministic map-reduce: computes combine(..., map(i), ...) over
/// i in [0, count). `map(i)` returns a value of type T; partial results per
/// block are folded with `combine(T, T)` in ascending block order, so the
/// result does not depend on the pool size or scheduling.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::size_t count, T identity,
                                Map&& map, Combine&& combine) {
  const auto blocks = decompose(count, pool.size());
  std::vector<std::future<T>> futures;
  futures.reserve(blocks.size());
  for (const auto& [begin, end] : blocks) {
    futures.push_back(pool.submit([begin = begin, end = end, identity, &map, &combine] {
      T partial = identity;
      for (std::size_t i = begin; i < end; ++i) {
        partial = combine(std::move(partial), map(i));
      }
      return partial;
    }));
  }
  T result = std::move(identity);
  for (auto& future : futures) {
    result = combine(std::move(result), future.get());
  }
  return result;
}

}  // namespace redund::parallel
