#include "perf/json.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace redund::perf {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_double(double value) {
  // Max precision round-trippable decimal; trims to keep files readable.
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// Minimal recursive-descent reader for the JSON subset the report uses.
class Cursor {
 public:
  explicit Cursor(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  void skip_ws() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return p_ == end_;
  }

  [[nodiscard]] char peek() {
    skip_ws();
    if (p_ == end_) fail("unexpected end of input");
    return *p_;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++p_;
  }

  [[nodiscard]] bool consume_if(char c) {
    if (p_ != end_ && peek() == c) {
      ++p_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (p_ == end_) fail("unterminated string");
      const char c = *p_++;
      if (c == '"') return out;
      if (c == '\\') {
        if (p_ == end_) fail("unterminated escape");
        const char e = *p_++;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (end_ - p_ < 4) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p_++;
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Reports only ever contain ASCII; encode BMP as UTF-8 anyway.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  [[nodiscard]] double parse_number() {
    skip_ws();
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '+' || *p_ == '-')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(*p_));
      ++p_;
    }
    if (!digits) fail("expected number");
    return std::stod(std::string(start, p_));
  }

  /// Parses and discards any value (for unknown keys).
  void skip_value() {
    const char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else if (c == '{') {
      ++p_;
      if (!consume_if('}')) {
        do {
          (void)parse_string();
          expect(':');
          skip_value();
        } while (consume_if(','));
        expect('}');
      }
    } else if (c == '[') {
      ++p_;
      if (!consume_if(']')) {
        do {
          skip_value();
        } while (consume_if(','));
        expect(']');
      }
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (p_ != end_ && std::isalpha(static_cast<unsigned char>(*p_))) ++p_;
    } else {
      (void)parse_number();
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("perf report JSON: " + what);
  }

 private:
  const char* p_;
  const char* end_;
};

BenchRecord parse_record(Cursor& cursor) {
  BenchRecord record;
  cursor.expect('{');
  if (!cursor.consume_if('}')) {
    do {
      const std::string key = cursor.parse_string();
      cursor.expect(':');
      if (key == "bench") {
        record.bench = cursor.parse_string();
      } else if (key == "n") {
        record.n = static_cast<std::int64_t>(cursor.parse_number());
      } else if (key == "items_per_sec") {
        record.items_per_sec = cursor.parse_number();
      } else if (key == "wall_ms") {
        record.wall_ms = cursor.parse_number();
      } else if (key == "threads") {
        record.threads = static_cast<int>(cursor.parse_number());
      } else if (key == "git_rev") {
        record.git_rev = cursor.parse_string();
      } else {
        cursor.skip_value();
      }
    } while (cursor.consume_if(','));
    cursor.expect('}');
  }
  if (record.bench.empty()) {
    cursor.fail("record is missing required key \"bench\"");
  }
  return record;
}

std::string match_key(const BenchRecord& record) {
  return record.bench + "/n=" + std::to_string(record.n) +
         "/t=" + std::to_string(record.threads);
}

}  // namespace

std::string to_json(const std::vector<BenchRecord>& records) {
  std::string out;
  out += "{\n  \"schema\": \"redund-bench-v1\",\n  \"records\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"bench\": ";
    append_escaped(out, r.bench);
    out += ", \"n\": " + std::to_string(r.n);
    out += ", \"items_per_sec\": " + format_double(r.items_per_sec);
    out += ", \"wall_ms\": " + format_double(r.wall_ms);
    out += ", \"threads\": " + std::to_string(r.threads);
    out += ", \"git_rev\": ";
    append_escaped(out, r.git_rev);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void write_report(const std::string& path,
                  const std::vector<BenchRecord>& records) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    throw std::runtime_error("perf report: cannot open " + path +
                             " for writing");
  }
  file << to_json(records);
  if (!file.flush()) {
    throw std::runtime_error("perf report: write to " + path + " failed");
  }
}

std::vector<BenchRecord> parse_report_text(const std::string& json) {
  Cursor cursor(json);
  std::vector<BenchRecord> records;
  bool saw_records = false;
  cursor.expect('{');
  if (!cursor.consume_if('}')) {
    do {
      const std::string key = cursor.parse_string();
      cursor.expect(':');
      if (key == "records") {
        saw_records = true;
        cursor.expect('[');
        if (!cursor.consume_if(']')) {
          do {
            records.push_back(parse_record(cursor));
          } while (cursor.consume_if(','));
          cursor.expect(']');
        }
      } else {
        cursor.skip_value();
      }
    } while (cursor.consume_if(','));
    cursor.expect('}');
  }
  if (!cursor.at_end()) cursor.fail("trailing garbage after document");
  if (!saw_records) cursor.fail("missing \"records\" array");
  return records;
}

std::vector<BenchRecord> read_report(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("perf report: cannot read " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_report_text(text.str());
}

CompareResult compare_reports(const std::vector<BenchRecord>& baseline,
                              const std::vector<BenchRecord>& current,
                              double tolerance) {
  CompareResult result;
  for (const BenchRecord& base : baseline) {
    const BenchRecord* match = nullptr;
    for (const BenchRecord& cur : current) {
      if (match_key(cur) == match_key(base)) {
        match = &cur;
        break;
      }
    }
    if (match == nullptr) {
      result.unmatched.push_back(match_key(base) + " (baseline only)");
      continue;
    }
    Comparison row;
    row.bench = base.bench;
    row.n = base.n;
    row.threads = base.threads;
    row.baseline_items_per_sec = base.items_per_sec;
    row.current_items_per_sec = match->items_per_sec;
    row.ratio = base.items_per_sec > 0.0
                    ? match->items_per_sec / base.items_per_sec
                    : 0.0;
    row.regressed = base.items_per_sec > 0.0 &&
                    match->items_per_sec < (1.0 - tolerance) * base.items_per_sec;
    result.any_regression = result.any_regression || row.regressed;
    result.rows.push_back(row);
  }
  for (const BenchRecord& cur : current) {
    bool found = false;
    for (const BenchRecord& base : baseline) {
      if (match_key(base) == match_key(cur)) {
        found = true;
        break;
      }
    }
    if (!found) result.unmatched.push_back(match_key(cur) + " (current only)");
  }
  return result;
}

std::string current_git_rev() {
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[64] = {};
  std::string rev;
  if (std::fgets(buffer, sizeof buffer, pipe) != nullptr) rev = buffer;
  ::pclose(pipe);
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  return rev.empty() ? "unknown" : rev;
}

}  // namespace redund::perf
