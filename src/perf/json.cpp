#include "perf/json.hpp"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/jsonio.hpp"

namespace redund::perf {

namespace {

using core::JsonCursor;
using core::json_append_escaped;
using core::json_format_double;

BenchRecord parse_record(JsonCursor& cursor) {
  BenchRecord record;
  std::set<std::string> seen_keys;
  cursor.expect('{');
  if (!cursor.consume_if('}')) {
    do {
      const std::string key = cursor.parse_string();
      cursor.expect(':');
      // Reject duplicated keys: last-one-wins would let a stray merge
      // artifact silently overwrite a measured value.
      if (!seen_keys.insert(key).second) {
        cursor.fail("duplicate record key \"" + key + "\"");
      }
      if (key == "bench") {
        record.bench = cursor.parse_string();
      } else if (key == "n") {
        record.n = static_cast<std::int64_t>(cursor.parse_number());
      } else if (key == "items_per_sec") {
        record.items_per_sec = cursor.parse_number();
      } else if (key == "wall_ms") {
        record.wall_ms = cursor.parse_number();
      } else if (key == "threads") {
        record.threads = static_cast<int>(cursor.parse_number());
      } else if (key == "git_rev") {
        record.git_rev = cursor.parse_string();
      } else if (key == "aux") {
        record.aux = cursor.parse_number();
      } else if (key == "aux_label") {
        record.aux_label = cursor.parse_string();
      } else {
        cursor.skip_value();
      }
    } while (cursor.consume_if(','));
    cursor.expect('}');
  }
  if (record.bench.empty()) {
    cursor.fail("record is missing required key \"bench\"");
  }
  return record;
}

std::string match_key(const BenchRecord& record) {
  return record.bench + "/n=" + std::to_string(record.n) +
         "/t=" + std::to_string(record.threads);
}

}  // namespace

std::string to_json(const std::vector<BenchRecord>& records) {
  std::string out;
  out += "{\n  \"schema\": \"redund-bench-v1\",\n  \"records\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"bench\": ";
    json_append_escaped(out, r.bench);
    out += ", \"n\": " + std::to_string(r.n);
    out += ", \"items_per_sec\": " + json_format_double(r.items_per_sec);
    out += ", \"wall_ms\": " + json_format_double(r.wall_ms);
    out += ", \"threads\": " + std::to_string(r.threads);
    out += ", \"git_rev\": ";
    json_append_escaped(out, r.git_rev);
    if (!r.aux_label.empty()) {
      out += ", \"aux\": " + json_format_double(r.aux);
      out += ", \"aux_label\": ";
      json_append_escaped(out, r.aux_label);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void write_report(const std::string& path,
                  const std::vector<BenchRecord>& records) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    throw std::runtime_error("perf report: cannot open " + path +
                             " for writing");
  }
  file << to_json(records);
  if (!file.flush()) {
    throw std::runtime_error("perf report: write to " + path + " failed");
  }
}

std::vector<BenchRecord> parse_report_text(const std::string& json) {
  JsonCursor cursor(json, "perf report JSON");
  std::vector<BenchRecord> records;
  bool saw_records = false;
  cursor.expect('{');
  if (!cursor.consume_if('}')) {
    do {
      const std::string key = cursor.parse_string();
      cursor.expect(':');
      if (key == "records") {
        saw_records = true;
        cursor.expect('[');
        if (!cursor.consume_if(']')) {
          do {
            records.push_back(parse_record(cursor));
          } while (cursor.consume_if(','));
          cursor.expect(']');
        }
      } else {
        cursor.skip_value();
      }
    } while (cursor.consume_if(','));
    cursor.expect('}');
  }
  if (!cursor.at_end()) cursor.fail("trailing garbage after document");
  if (!saw_records) cursor.fail("missing \"records\" array");
  return records;
}

std::vector<BenchRecord> read_report(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("perf report: cannot read " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_report_text(text.str());
}

CompareResult compare_reports(const std::vector<BenchRecord>& baseline,
                              const std::vector<BenchRecord>& current,
                              double tolerance) {
  CompareResult result;
  for (const BenchRecord& base : baseline) {
    const BenchRecord* match = nullptr;
    for (const BenchRecord& cur : current) {
      if (match_key(cur) == match_key(base)) {
        match = &cur;
        break;
      }
    }
    if (match == nullptr) {
      result.unmatched.push_back(match_key(base) + " (baseline only)");
      continue;
    }
    Comparison row;
    row.bench = base.bench;
    row.n = base.n;
    row.threads = base.threads;
    row.baseline_items_per_sec = base.items_per_sec;
    row.current_items_per_sec = match->items_per_sec;
    row.ratio = base.items_per_sec > 0.0
                    ? match->items_per_sec / base.items_per_sec
                    : 0.0;
    row.regressed = base.items_per_sec > 0.0 &&
                    match->items_per_sec < (1.0 - tolerance) * base.items_per_sec;
    result.any_regression = result.any_regression || row.regressed;
    result.rows.push_back(row);
  }
  for (const BenchRecord& cur : current) {
    bool found = false;
    for (const BenchRecord& base : baseline) {
      if (match_key(base) == match_key(cur)) {
        found = true;
        break;
      }
    }
    if (!found) result.unmatched.push_back(match_key(cur) + " (current only)");
  }
  return result;
}

std::string current_git_rev() {
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[64] = {};
  std::string rev;
  if (std::fgets(buffer, sizeof buffer, pipe) != nullptr) rev = buffer;
  ::pclose(pipe);
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  return rev.empty() ? "unknown" : rev;
}

}  // namespace redund::perf
