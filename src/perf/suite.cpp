#include "perf/suite.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "core/realize.hpp"
#include "core/schemes/balanced.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/engines.hpp"
#include "runtime/fault.hpp"
#include "runtime/sharded.hpp"
#include "runtime/supervisor.hpp"
#include "sim/engine.hpp"

namespace redund::perf {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Repeats `iteration` (which reports how many items it processed) until
/// `budget_seconds` of wall time is spent, with at least one call. Returns
/// the finished record, throughput computed over the whole run.
template <typename Iteration>
BenchRecord measure(std::string bench, std::int64_t n, int threads,
                    double budget_seconds, Iteration&& iteration) {
  BenchRecord record;
  record.bench = std::move(bench);
  record.n = n;
  record.threads = threads;
  record.git_rev = current_git_rev();
  std::int64_t items = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    items += iteration();
    elapsed = seconds_since(start);
  } while (elapsed < budget_seconds);
  record.wall_ms = elapsed * 1e3;
  record.items_per_sec = elapsed > 0.0 ? static_cast<double>(items) / elapsed
                                       : 0.0;
  return record;
}

const char* allocation_name(sim::Allocation allocation) {
  switch (allocation) {
    case sim::Allocation::kClassAggregated: return "replica_class_aggregated";
    case sim::Allocation::kSequentialHypergeometric:
      return "replica_hypergeometric";
    case sim::Allocation::kPoolShuffle: return "replica_pool_shuffle";
  }
  return "replica_unknown";
}

/// One record per (allocation kernel, task count): replicas of a balanced
/// eps=0.5 workload against a 10% always-cheat adversary — the same
/// configuration perf_micro's BM_Replica* ablations use, so numbers are
/// comparable across harnesses. Items = tasks simulated (replicas x n).
void bench_replica_kernels(std::vector<BenchRecord>& records,
                           const SuiteOptions& options) {
  const std::vector<std::int64_t> sizes =
      options.quick ? std::vector<std::int64_t>{1000, 10000}
                    : std::vector<std::int64_t>{10000, 1000000};
  const double budget = options.quick ? 0.02 : 0.25;
  constexpr sim::Allocation kAllocations[] = {
      sim::Allocation::kClassAggregated,
      sim::Allocation::kSequentialHypergeometric,
      sim::Allocation::kPoolShuffle,
  };
  for (const std::int64_t n : sizes) {
    const auto plan = core::realize(
        core::make_balanced(static_cast<double>(n), 0.5,
                            {.truncate_below = 1e-9}),
        n, 0.5);
    const sim::Workload workload(plan);
    const sim::AdversaryConfig adversary{
        .proportion = 0.1, .strategy = sim::CheatStrategy::kAlwaysCheat};
    for (const sim::Allocation allocation : kAllocations) {
      auto engine = rng::make_stream(7, static_cast<std::uint64_t>(n));
      sim::ReplicaResult result;
      sim::ReplicaScratch scratch;
      records.push_back(measure(
          allocation_name(allocation), n, 1, budget, [&]() -> std::int64_t {
            sim::run_replica_into(result, workload, adversary, engine,
                                  allocation, scratch);
            return n;
          }));
    }
  }
}

/// Asynchronous supervisor event loop: double-redundant plan over a large
/// honest fleet with mild dropouts (perf_micro's BM_RuntimeEventLoop
/// configuration). Items = events processed.
void bench_event_loop(std::vector<BenchRecord>& records,
                      const SuiteOptions& options) {
  const std::int64_t units = options.quick ? 20000 : 200000;
  core::RealizedPlan plan;
  plan.counts = {0, units / 2};
  plan.task_count = units / 2;
  plan.work_assignments = units;

  runtime::RuntimeConfig config;
  config.plan = plan;
  config.honest_participants = 512;
  config.latency.dropout_probability = 0.01;
  config.latency.speed_sigma = 0.25;
  config.adaptive.enabled = false;
  records.push_back(measure("event_loop", units, 1,
                            options.quick ? 0.02 : 0.25, [&]() -> std::int64_t {
                              const auto report =
                                  runtime::run_async_campaign(config);
                              return report.events_processed;
                            }));

  // Same campaign on the reference binary-heap queue: the row that shows
  // what the calendar queue is worth, and a canary if it ever regresses.
  runtime::RuntimeConfig heap_config = config;
  heap_config.queue = runtime::QueueKind::kBinaryHeap;
  records.push_back(measure("event_loop_heap", units, 1,
                            options.quick ? 0.02 : 0.25, [&]() -> std::int64_t {
                              const auto report =
                                  runtime::run_async_campaign(heap_config);
                              return report.events_processed;
                            }));

  // Draw-heavy variant: a 10x dropout probability multiplies re-issues,
  // so the per-issue coin path (primed by
  // ParticipantPool::prime_dropout_coins and served by the closed-form
  // rng::first_bernoulli) carries a much larger share of the loop. This
  // row isolates the batched-sampler fast path the plain event_loop row
  // mostly amortizes away — a regression here that event_loop does not
  // show points straight at the RNG layer.
  runtime::RuntimeConfig draws_config = config;
  draws_config.latency.dropout_probability = 0.1;
  records.push_back(measure("event_loop_batched_draws", units, 1,
                            options.quick ? 0.02 : 0.25, [&]() -> std::int64_t {
                              const auto report =
                                  runtime::run_async_campaign(draws_config);
                              return report.events_processed;
                            }));

  // Sharded campaign at pool sizes 1, 2, 8: 8 shard event loops spread
  // over the pool. The shard decomposition is identical in every row (the
  // merged report is bit-identical by contract), so the rows differ only
  // in wall time — the multi-thread scaling picture of the serving path.
  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
    parallel::ThreadPool pool(pool_size);
    records.push_back(measure(
        "event_loop_sharded", units, static_cast<int>(pool.size()),
        options.quick ? 0.02 : 0.25, [&]() -> std::int64_t {
          const auto report = runtime::run_sharded_campaign(config, 8, pool);
          return report.events_processed;
        }));
  }
}

/// The event_loop campaign under an active chaos schedule — churn,
/// blackout, dropout burst, message loss, duplication, corruption — with
/// and without multi-level checkpointing. Three prices, most to least
/// expensive machinery:
///
///   event_loop_faulted  the chaos schedule itself, no journal;
///   event_loop_journal  checkpoint-only journaling (wal = false): the
///                       snapshots hand off to the async writer and
///                       nothing is recorded between them, so the ratio
///                       to event_loop_faulted is the checkpoint
///                       subsystem's overhead at equal resume
///                       granularity (restart a bounded re-execution
///                       window, which a plain restart also pays);
///   event_loop_wal      full durability: per-event WAL (batch-staged,
///                       formatted and flushed on the writer thread)
///                       plus the same checkpoints.
///
/// The journal row carries checkpoint bytes written per event as its aux
/// metric. Items = events processed.
void bench_event_loop_faulted(std::vector<BenchRecord>& records,
                              const SuiteOptions& options) {
  const std::int64_t units = options.quick ? 20000 : 200000;
  core::RealizedPlan plan;
  plan.counts = {0, units / 2};
  plan.task_count = units / 2;
  plan.work_assignments = units;

  runtime::RuntimeConfig config;
  config.plan = plan;
  config.honest_participants = 512;
  config.latency.dropout_probability = 0.01;
  config.latency.speed_sigma = 0.25;
  config.adaptive.enabled = false;
  using runtime::FaultKind;
  config.faults.events.push_back(
      {.time = 2.0, .kind = FaultKind::kDropoutBurst, .duration = 15.0,
       .probability = 0.2});
  config.faults.events.push_back(
      {.time = 3.0, .kind = FaultKind::kMessageLoss, .duration = 15.0,
       .probability = 0.1});
  config.faults.events.push_back(
      {.time = 4.0, .kind = FaultKind::kDuplication, .duration = 15.0,
       .probability = 0.1});
  config.faults.events.push_back({.time = 5.0, .kind = FaultKind::kBlackout,
                                  .fraction = 0.25, .duration = 10.0});
  config.faults.events.push_back(
      {.time = 6.0, .kind = FaultKind::kCorruption, .duration = 10.0,
       .probability = 0.05});

  records.push_back(measure("event_loop_faulted", units, 1,
                            options.quick ? 0.02 : 0.25, [&]() -> std::int64_t {
                              const auto report =
                                  runtime::run_async_campaign(config);
                              return report.events_processed;
                            }));

  runtime::RuntimeConfig journaled = config;
  journaled.journal.path =
      (std::filesystem::temp_directory_path() / "redund_bench_journal.wal")
          .string();
  // Checkpoint cadence proportional to campaign size: a checkpoint
  // serializes the full unit/task/fleet state (O(units) text), so a
  // fixed cadence would make the checkpoint share grow linearly with
  // scale — interval = units keeps it a constant fraction and bounds
  // crash re-execution to a fraction of the run, which is the cadence a
  // production campaign of this size would pick over the
  // durability-biased default of 4096.
  journaled.journal.checkpoint_interval = units;
  journaled.journal.wal = false;
  std::int64_t last_events = 0;
  BenchRecord journal_row =
      measure("event_loop_journal", units, 1, options.quick ? 0.02 : 0.25,
              [&]() -> std::int64_t {
                const auto report = runtime::run_async_campaign(journaled);
                last_events = report.events_processed;
                return last_events;
              });
  // Secondary metric: checkpoint bytes per event, summed over the C
  // (full), D (delta), and P (partner) records the last iteration left
  // on disk. The WAL is durability bookkeeping either way; this isolates
  // what the multi-level snapshots themselves cost in write bandwidth.
  {
    std::ifstream in(journaled.journal.path);
    std::uint64_t checkpoint_bytes = 0;
    std::string line;
    while (std::getline(in, line)) {
      if (line.size() > 1 && (line[0] == 'C' || line[0] == 'D' ||
                              line[0] == 'P') && line[1] == ' ') {
        checkpoint_bytes += line.size() + 1;
      }
    }
    if (last_events > 0) {
      journal_row.aux = static_cast<double>(checkpoint_bytes) /
                        static_cast<double>(last_events);
      journal_row.aux_label = "checkpoint_bytes_per_event";
    }
  }
  records.push_back(std::move(journal_row));

  runtime::RuntimeConfig durable = journaled;
  durable.journal.wal = true;
  records.push_back(measure("event_loop_wal", units, 1,
                            options.quick ? 0.02 : 0.25, [&]() -> std::int64_t {
                              const auto report =
                                  runtime::run_async_campaign(durable);
                              return report.events_processed;
                            }));
  std::remove(journaled.journal.path.c_str());
}

/// parallel_reduce over a compute-bound map at pool sizes 1, 2, and the
/// machine's hardware concurrency: the scaling row of the report. Items =
/// map invocations.
void bench_parallel_reduce(std::vector<BenchRecord>& records,
                           const SuiteOptions& options) {
  const std::size_t count = options.quick ? 1u << 12 : 1u << 16;
  const double budget = options.quick ? 0.02 : 0.25;
  std::vector<std::size_t> pool_sizes = {1, 2};
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  if (hw != 1 && hw != 2) pool_sizes.push_back(hw);
  for (const std::size_t pool_size : pool_sizes) {
    parallel::ThreadPool pool(pool_size);
    records.push_back(measure(
        "parallel_reduce", static_cast<std::int64_t>(count),
        static_cast<int>(pool.size()), budget, [&]() -> std::int64_t {
          const double total = parallel::parallel_reduce<double>(
              pool, count, 0.0,
              [](std::size_t i) {
                // ~100 flops per item: enough that scheduling overhead is
                // visible but not dominant.
                double x = static_cast<double>(i) * 1e-9 + 1.0;
                for (int r = 0; r < 50; ++r) x = x * 1.0000001 + 1e-12;
                return x;
              },
              [](double a, double b) { return a + b; });
          if (total < 0.0) return 0;  // Defeats over-eager optimization.
          return static_cast<std::int64_t>(count);
        }));
  }
}

}  // namespace

std::vector<BenchRecord> run_suite(const SuiteOptions& options) {
#if defined(__GLIBC__)
  // Each campaign iteration allocates tens of MB of event/lane storage;
  // glibc's default thresholds hand those chunks straight back to the
  // kernel on free, so every iteration re-faults its pages and the suite
  // measures page-fault service instead of the simulator. Keeping large
  // chunks on the heap across iterations removes that noise; it changes
  // nothing about what the benchmarks compute.
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
#endif
  std::vector<BenchRecord> records;
  bench_replica_kernels(records, options);
  bench_event_loop(records, options);
  bench_event_loop_faulted(records, options);
  bench_parallel_reduce(records, options);
  return records;
}

}  // namespace redund::perf
