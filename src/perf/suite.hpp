// Headline perf suite: the fixed set of kernels the regression gate tracks.
//
// Each entry measures one throughput number the paper reproduction lives
// on: the three replica-allocation kernels (class-aggregated default plus
// both exactness ablations) at small and large task counts, the
// asynchronous supervisor's event-loop rate, and parallel_reduce scaling
// across pool sizes. Every benchmark self-calibrates: it repeats its kernel
// until a minimum wall-time budget is spent, so the items/sec figures are
// stable without hand-tuned iteration counts.
//
// bench/perf_report and `redundctl bench` both run this suite and write
// the records via perf/json.hpp; tools/bench_compare diffs two such files.
#pragma once

#include <vector>

#include "perf/json.hpp"

namespace redund::perf {

/// Suite knobs.
struct SuiteOptions {
  /// Shrinks problem sizes and time budgets ~10x: for smoke tests and CI
  /// sanity, not for numbers worth comparing.
  bool quick = false;
};

/// Runs every headline benchmark and returns one record each, git_rev
/// already stamped.
[[nodiscard]] std::vector<BenchRecord> run_suite(const SuiteOptions& options);

}  // namespace redund::perf
