// Perf-regression report records and their JSON wire format.
//
// One BenchRecord is one headline measurement; a report file is
//
//   {
//     "schema": "redund-bench-v1",
//     "records": [
//       {"bench": "replica_class_aggregated", "n": 10000,
//        "items_per_sec": 1.5e6, "wall_ms": 250.0, "threads": 1,
//        "git_rev": "80b1b61"},
//       ...
//     ]
//   }
//
// The schema is deliberately flat and stable: CI stores one BENCH_*.json
// per revision and compare_reports() diffs any two of them, keyed on
// (bench, n, threads). The parser here is a self-contained subset-JSON
// reader (objects, arrays, strings, numbers, bools, null) so the tools
// need no external dependency; it throws std::runtime_error on malformed
// input rather than guessing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace redund::perf {

/// One headline measurement.
struct BenchRecord {
  std::string bench;          ///< Stable benchmark identifier.
  std::int64_t n = 0;         ///< Problem size (tasks, units, items...).
  double items_per_sec = 0.0; ///< Headline throughput.
  double wall_ms = 0.0;       ///< Wall time spent measuring.
  int threads = 1;            ///< Worker threads used (1 = serial kernel).
  std::string git_rev;        ///< Revision the numbers belong to.
  /// Optional secondary metric (e.g. checkpoint bytes per event for the
  /// journal row). Serialized only when `aux_label` is non-empty; absent
  /// in older reports, ignored by comparisons.
  double aux = 0.0;
  std::string aux_label;
};

/// Serializes records to the report JSON text (schema above).
[[nodiscard]] std::string to_json(const std::vector<BenchRecord>& records);

/// Writes `to_json(records)` to `path`. Throws std::runtime_error on I/O
/// failure.
void write_report(const std::string& path,
                  const std::vector<BenchRecord>& records);

/// Parses report JSON text. Unknown keys are ignored (forward
/// compatibility); malformed JSON or a wrong shape throws
/// std::runtime_error.
[[nodiscard]] std::vector<BenchRecord> parse_report_text(
    const std::string& json);

/// Reads and parses a report file. Throws std::runtime_error if the file
/// cannot be read or parsed.
[[nodiscard]] std::vector<BenchRecord> read_report(const std::string& path);

/// One baseline/current pair matched on (bench, n, threads).
struct Comparison {
  std::string bench;
  std::int64_t n = 0;
  int threads = 1;
  double baseline_items_per_sec = 0.0;
  double current_items_per_sec = 0.0;
  /// current / baseline; > 1 is a speedup.
  double ratio = 0.0;
  bool regressed = false;
};

/// Outcome of diffing two reports.
struct CompareResult {
  std::vector<Comparison> rows;
  /// Benchmarks present in only one of the two reports (informational).
  std::vector<std::string> unmatched;
  bool any_regression = false;
};

/// Diffs `current` against `baseline`: a row regresses when its throughput
/// falls below (1 - tolerance) x baseline. Default tolerance 0.15 per the
/// regression-gate policy.
[[nodiscard]] CompareResult compare_reports(
    const std::vector<BenchRecord>& baseline,
    const std::vector<BenchRecord>& current, double tolerance = 0.15);

/// Short git revision of the working tree, or "unknown" outside a checkout.
[[nodiscard]] std::string current_git_rev();

}  // namespace redund::perf
