// Fixed-width and integer-bucket histograms for simulation diagnostics
// (e.g. the distribution of how many copies of one task the adversary holds,
// which Appendix A argues is approximately Binomial(w, w/N)).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace redund::stats {

/// Histogram over non-negative integer outcomes [0, max_value]; outcomes
/// beyond max_value are clamped into the final "overflow" bucket.
class IntHistogram {
 public:
  /// Buckets 0..max_value inclusive, plus one overflow bucket.
  explicit IntHistogram(std::size_t max_value)
      : counts_(max_value + 2, 0), max_value_(max_value) {}

  void add(std::uint64_t value) noexcept {
    const std::size_t bucket =
        value <= max_value_ ? static_cast<std::size_t>(value) : max_value_ + 1;
    ++counts_[bucket];
    ++total_;
  }

  void merge(const IntHistogram& other) noexcept {
    const std::size_t n = std::min(counts_.size(), other.counts_.size());
    for (std::size_t i = 0; i < n; ++i) counts_[i] += other.counts_[i];
    // Anything the other histogram clamped stays clamped here.
    for (std::size_t i = n; i < other.counts_.size(); ++i) {
      counts_.back() += other.counts_[i];
    }
    total_ += other.total_;
  }

  [[nodiscard]] std::uint64_t count(std::size_t value) const noexcept {
    return value < counts_.size() ? counts_[value] : 0;
  }

  [[nodiscard]] std::uint64_t overflow() const noexcept { return counts_.back(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t max_value() const noexcept { return max_value_; }

  /// Empirical probability of `value`.
  [[nodiscard]] double frequency(std::size_t value) const noexcept {
    return total_ > 0
               ? static_cast<double>(count(value)) / static_cast<double>(total_)
               : 0.0;
  }

  /// Empirical mean (overflow bucket contributes at max_value + 1).
  [[nodiscard]] double mean() const noexcept {
    if (total_ == 0) return 0.0;
    double weighted = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      weighted += static_cast<double>(i) * static_cast<double>(counts_[i]);
    }
    return weighted / static_cast<double>(total_);
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::size_t max_value_;
};

}  // namespace redund::stats
