// Online statistical accumulators (Welford) and mergeable summaries.
//
// Monte Carlo replicas produce per-replica observations (e.g. "was the
// adversary detected", "how many tasks were fully controlled"). Each worker
// accumulates locally and partial accumulators are merged deterministically
// (Chan et al. parallel update), matching the parallel_reduce contract.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace redund::stats {

/// Welford/Chan online accumulator for mean, variance, min and max.
/// merge() implements the numerically stable pairwise update so accumulators
/// built per-thread combine into exactly the moments of the union.
class Accumulator {
 public:
  constexpr Accumulator() noexcept = default;

  /// Adds one observation.
  constexpr void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = x < min_ ? x : min_;
    max_ = x > max_ ? x : max_;
  }

  /// Merges another accumulator into this one (Chan parallel variance).
  constexpr void merge(const Accumulator& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    min_ = other.min_ < min_ ? other.min_ : min_;
    max_ = other.max_ > max_ ? other.max_ : max_;
  }

  [[nodiscard]] constexpr std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] constexpr double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] constexpr double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
  }

  [[nodiscard]] constexpr double min() const noexcept { return min_; }
  [[nodiscard]] constexpr double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided confidence interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] constexpr bool contains(double x) const noexcept {
    return lo <= x && x <= hi;
  }
  [[nodiscard]] constexpr double width() const noexcept { return hi - lo; }
};

/// Normal-approximation CI for the mean at z standard errors
/// (z = 1.96 for ~95%, 2.5758 for ~99%, 3.2905 for ~99.9%).
[[nodiscard]] inline Interval mean_confidence(const Accumulator& acc,
                                              double z = 1.96) noexcept {
  const double half = z * acc.sem();
  return {acc.mean() - half, acc.mean() + half};
}

/// Wilson score interval for a Bernoulli proportion with `successes` out of
/// `trials` — better behaved than the Wald interval at proportions near 0/1,
/// which is exactly where detection probabilities live.
[[nodiscard]] inline Interval wilson_interval(std::uint64_t successes,
                                              std::uint64_t trials,
                                              double z = 1.96) noexcept {
  if (trials == 0) return {0.0, 1.0};
  const auto n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = phat + z2 / (2.0 * n);
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  return {(centre - margin) / denom, (centre + margin) / denom};
}

/// Counter for Bernoulli outcomes with convenience accessors.
class BernoulliCounter {
 public:
  constexpr void add(bool success) noexcept {
    ++trials_;
    successes_ += success ? 1u : 0u;
  }

  constexpr void merge(const BernoulliCounter& other) noexcept {
    trials_ += other.trials_;
    successes_ += other.successes_;
  }

  [[nodiscard]] constexpr std::uint64_t trials() const noexcept { return trials_; }
  [[nodiscard]] constexpr std::uint64_t successes() const noexcept { return successes_; }

  [[nodiscard]] constexpr double proportion() const noexcept {
    return trials_ > 0
               ? static_cast<double>(successes_) / static_cast<double>(trials_)
               : 0.0;
  }

  [[nodiscard]] Interval confidence(double z = 1.96) const noexcept {
    return wilson_interval(successes_, trials_, z);
  }

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

}  // namespace redund::stats
