#include "sim/monte_carlo.hpp"

#include <stdexcept>
#include <vector>

#include "rng/bulk.hpp"

namespace redund::sim {

ReplicaResult run_monte_carlo(parallel::ThreadPool& pool,
                              const Workload& workload,
                              const AdversaryConfig& adversary,
                              const MonteCarloConfig& config,
                              Allocation allocation) {
  return parallel::parallel_reduce_blocks<ReplicaResult>(
      pool, static_cast<std::size_t>(config.replicas), ReplicaResult{},
      [&](std::size_t begin, std::size_t end) {
        // One scratch workspace per worker thread, reused across every block
        // that thread claims: the replica loop is allocation-free once each
        // buffer hits its high-water mark.
        thread_local ReplicaScratch scratch;
        ReplicaResult partial;
        for (std::size_t replica = begin; replica < end; ++replica) {
          // A replica consumes a data-dependent number of draws (full
          // campaign sim), so the wave kernels cannot batch this stream.
          // redund-lint: allow(scalar-draw-in-wave)
          auto engine = rng::make_stream(config.master_seed, replica);
          run_replica_into(partial, workload, adversary, engine, allocation,
                           scratch);
        }
        return partial;
      },
      [](ReplicaResult merged, const ReplicaResult& next) {
        merged.merge(next);
        return merged;
      });
}

TwoPhaseAggregate run_two_phase_monte_carlo(parallel::ThreadPool& pool,
                                            std::int64_t task_count,
                                            std::int64_t adversary_work,
                                            const MonteCarloConfig& config,
                                            TwoPhaseMethod method) {
  const auto combine = [](TwoPhaseAggregate merged,
                          const TwoPhaseAggregate& next) {
    merged.overlap.merge(next.overlap);
    merged.can_cheat.merge(next.can_cheat);
    return merged;
  };

  if (method == TwoPhaseMethod::kHypergeometric) {
    // Replica r's engine is make_stream(master_seed, r) and the
    // hypergeometric inversion consumes exactly one uniform from it, so
    // each block's overlaps can be filled by one vectorized bulk draw over
    // the contiguous key range [begin, end) — byte-identical to the scalar
    // per-replica engines, folded in the same replica order.
    if (task_count < 1 || adversary_work < 0 || adversary_work > task_count) {
      throw std::invalid_argument(
          "run_two_phase: need 0 <= adversary_work <= task_count, "
          "task_count >= 1");
    }
    return parallel::parallel_reduce_blocks<TwoPhaseAggregate>(
        pool, static_cast<std::size_t>(config.replicas), TwoPhaseAggregate{},
        [&](std::size_t begin, std::size_t end) {
          thread_local std::vector<std::uint64_t> keys;
          thread_local std::vector<std::uint64_t> scratch;
          thread_local std::vector<std::int64_t> overlaps;
          const std::size_t n = end - begin;
          keys.resize(n);
          scratch.resize(n);
          overlaps.resize(n);
          for (std::size_t i = 0; i < n; ++i) keys[i] = begin + i;
          rng::bulk_hypergeometric(task_count, adversary_work, adversary_work,
                                   config.master_seed, keys.data(), n,
                                   scratch.data(), overlaps.data());
          // Fold through one-sample aggregates, exactly as the per-replica
          // reduce does: Accumulator's singleton merge and its add() round
          // differently in the last bit, and the aggregate is pinned.
          TwoPhaseAggregate partial;
          for (std::size_t i = 0; i < n; ++i) {
            TwoPhaseAggregate one;
            one.overlap.add(static_cast<double>(overlaps[i]));
            one.can_cheat.add(overlaps[i] > 0);
            partial.overlap.merge(one.overlap);
            partial.can_cheat.merge(one.can_cheat);
          }
          return partial;
        },
        combine);
  }

  return parallel::parallel_reduce<TwoPhaseAggregate>(
      pool, static_cast<std::size_t>(config.replicas), TwoPhaseAggregate{},
      [&](std::size_t replica) {
        rng::Xoshiro256StarStar engine =
            rng::make_stream(config.master_seed, replica);
        const TwoPhaseResult result =
            run_two_phase(task_count, adversary_work, engine, method);
        TwoPhaseAggregate aggregate;
        aggregate.overlap.add(static_cast<double>(result.fully_controlled));
        aggregate.can_cheat.add(result.can_cheat());
        return aggregate;
      },
      combine);
}

}  // namespace redund::sim
