#include "sim/monte_carlo.hpp"

namespace redund::sim {

ReplicaResult run_monte_carlo(parallel::ThreadPool& pool,
                              const Workload& workload,
                              const AdversaryConfig& adversary,
                              const MonteCarloConfig& config,
                              Allocation allocation) {
  return parallel::parallel_reduce_blocks<ReplicaResult>(
      pool, static_cast<std::size_t>(config.replicas), ReplicaResult{},
      [&](std::size_t begin, std::size_t end) {
        // One scratch workspace per worker thread, reused across every block
        // that thread claims: the replica loop is allocation-free once each
        // buffer hits its high-water mark.
        thread_local ReplicaScratch scratch;
        ReplicaResult partial;
        for (std::size_t replica = begin; replica < end; ++replica) {
          rng::Xoshiro256StarStar engine =
              rng::make_stream(config.master_seed, replica);
          run_replica_into(partial, workload, adversary, engine, allocation,
                           scratch);
        }
        return partial;
      },
      [](ReplicaResult merged, const ReplicaResult& next) {
        merged.merge(next);
        return merged;
      });
}

TwoPhaseAggregate run_two_phase_monte_carlo(parallel::ThreadPool& pool,
                                            std::int64_t task_count,
                                            std::int64_t adversary_work,
                                            const MonteCarloConfig& config,
                                            TwoPhaseMethod method) {
  return parallel::parallel_reduce<TwoPhaseAggregate>(
      pool, static_cast<std::size_t>(config.replicas), TwoPhaseAggregate{},
      [&](std::size_t replica) {
        rng::Xoshiro256StarStar engine =
            rng::make_stream(config.master_seed, replica);
        const TwoPhaseResult result =
            run_two_phase(task_count, adversary_work, engine, method);
        TwoPhaseAggregate aggregate;
        aggregate.overlap.add(static_cast<double>(result.fully_controlled));
        aggregate.can_cheat.add(result.can_cheat());
        return aggregate;
      },
      [](TwoPhaseAggregate merged, const TwoPhaseAggregate& next) {
        merged.overlap.merge(next.overlap);
        merged.can_cheat.merge(next.can_cheat);
        return merged;
      });
}

}  // namespace redund::sim
