#include "sim/monte_carlo.hpp"

namespace redund::sim {

ReplicaResult run_monte_carlo(parallel::ThreadPool& pool,
                              const Workload& workload,
                              const AdversaryConfig& adversary,
                              const MonteCarloConfig& config,
                              Allocation allocation) {
  return parallel::parallel_reduce<ReplicaResult>(
      pool, static_cast<std::size_t>(config.replicas), ReplicaResult{},
      [&](std::size_t replica) {
        rng::Xoshiro256StarStar engine =
            rng::make_stream(config.master_seed, replica);
        return run_replica(workload, adversary, engine, allocation);
      },
      [](ReplicaResult merged, const ReplicaResult& next) {
        merged.merge(next);
        return merged;
      });
}

TwoPhaseAggregate run_two_phase_monte_carlo(parallel::ThreadPool& pool,
                                            std::int64_t task_count,
                                            std::int64_t adversary_work,
                                            const MonteCarloConfig& config,
                                            TwoPhaseMethod method) {
  return parallel::parallel_reduce<TwoPhaseAggregate>(
      pool, static_cast<std::size_t>(config.replicas), TwoPhaseAggregate{},
      [&](std::size_t replica) {
        rng::Xoshiro256StarStar engine =
            rng::make_stream(config.master_seed, replica);
        const TwoPhaseResult result =
            run_two_phase(task_count, adversary_work, engine, method);
        TwoPhaseAggregate aggregate;
        aggregate.overlap.add(static_cast<double>(result.fully_controlled));
        aggregate.can_cheat.add(result.can_cheat());
        return aggregate;
      },
      [](TwoPhaseAggregate merged, const TwoPhaseAggregate& next) {
        merged.overlap.merge(next.overlap);
        merged.can_cheat.merge(next.can_cheat);
        return merged;
      });
}

}  // namespace redund::sim
