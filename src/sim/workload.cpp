#include "sim/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace redund::sim {

Workload::Workload(const std::vector<std::int64_t>& counts,
                   std::int64_t ringer_count,
                   std::int64_t ringer_multiplicity) {
  std::int64_t expected = 0;
  for (const std::int64_t count : counts) {
    if (count < 0) {
      throw std::invalid_argument("Workload: negative task count");
    }
    expected += count;
  }
  if (ringer_count < 0 || (ringer_count > 0 && ringer_multiplicity < 1)) {
    throw std::invalid_argument("Workload: bad ringer configuration");
  }
  tasks_.reserve(static_cast<std::size_t>(expected + ringer_count));

  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto multiplicity = static_cast<std::int64_t>(i + 1);
    for (std::int64_t t = 0; t < counts[i]; ++t) {
      tasks_.push_back({multiplicity, false});
      total_assignments_ += multiplicity;
    }
    if (counts[i] > 0) {
      classes_.push_back(
          {multiplicity, false, counts[i], counts[i] * multiplicity});
      max_multiplicity_ = std::max(max_multiplicity_, multiplicity);
    }
  }
  for (std::int64_t t = 0; t < ringer_count; ++t) {
    tasks_.push_back({ringer_multiplicity, true});
    total_assignments_ += ringer_multiplicity;
  }
  if (ringer_count > 0) {
    classes_.push_back({ringer_multiplicity, true, ringer_count,
                        ringer_count * ringer_multiplicity});
    max_multiplicity_ = std::max(max_multiplicity_, ringer_multiplicity);
  }
  ringer_count_ = ringer_count;
}

}  // namespace redund::sim
