#include "sim/des.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

#include "rng/distributions.hpp"

namespace redund::sim {

namespace {

/// A unit completion event in the pending-event heap (min-heap by time;
/// deterministic tie-break on unit index).
struct Completion {
  double time = 0.0;
  std::int64_t participant = 0;
  std::int64_t unit = 0;

  bool operator>(const Completion& other) const noexcept {
    if (time != other.time) return time > other.time;
    return unit > other.unit;
  }
};

}  // namespace

DesResult simulate_schedule(const core::RealizedPlan& plan,
                            const DesConfig& config) {
  if (config.participants < 1) {
    throw std::invalid_argument("simulate_schedule: participants >= 1");
  }
  if (!(config.mean_service > 0.0)) {
    throw std::invalid_argument("simulate_schedule: mean_service > 0");
  }

  auto engine = rng::make_stream(config.seed, 0);

  // --- Materialize tasks (multiplicity + shared service demand). ---
  std::vector<std::int64_t> multiplicity;
  for (std::size_t i = 0; i < plan.counts.size(); ++i) {
    for (std::int64_t t = 0; t < plan.counts[i]; ++t) {
      multiplicity.push_back(static_cast<std::int64_t>(i + 1));
    }
  }
  for (std::int64_t r = 0; r < plan.ringer_count; ++r) {
    multiplicity.push_back(plan.ringer_multiplicity);
  }
  const auto task_count = static_cast<std::int64_t>(multiplicity.size());
  if (task_count == 0) {
    throw std::invalid_argument("simulate_schedule: empty plan");
  }
  std::vector<double> demand(multiplicity.size());
  for (double& d : demand) {
    d = config.deterministic_service
            ? config.mean_service
            : rng::exponential(config.mean_service, engine);
  }

  // --- Units, grouped per task so phase-serialization can chain them. ---
  struct Unit {
    std::int64_t task = 0;
  };
  std::vector<Unit> units;
  std::vector<std::int64_t> remaining_copies(multiplicity.size());
  std::vector<double> task_finish(multiplicity.size(), 0.0);
  for (std::int64_t t = 0; t < task_count; ++t) {
    remaining_copies[static_cast<std::size_t>(t)] =
        multiplicity[static_cast<std::size_t>(t)];
  }

  // Ready queue: FCFS over unit ids; built lazily.
  std::queue<std::int64_t> ready;
  const auto enqueue_copy = [&](std::int64_t task) {
    units.push_back({task});
    ready.push(static_cast<std::int64_t>(units.size()) - 1);
  };
  for (std::int64_t t = 0; t < task_count; ++t) {
    const std::int64_t copies =
        config.policy == DispatchPolicy::kAllAtOnce
            ? multiplicity[static_cast<std::size_t>(t)]
            : 1;
    for (std::int64_t c = 0; c < copies; ++c) enqueue_copy(t);
    remaining_copies[static_cast<std::size_t>(t)] -= copies;
  }

  // --- Participants. ---
  // Speeds are lognormal normalized to unit *mean* (divide the unit-median
  // draw by exp(sigma^2/2)), so expected aggregate capacity is fixed as
  // sigma varies and heterogeneity isolates the straggler effect.
  std::vector<double> speed(static_cast<std::size_t>(config.participants));
  const double mean_correction =
      std::exp(0.5 * config.speed_sigma * config.speed_sigma);
  for (double& s : speed) {
    s = config.speed_sigma > 0.0
            ? rng::lognormal_unit_median(config.speed_sigma, engine) /
                  mean_correction
            : 1.0;
  }
  std::vector<double> free_at(speed.size(), 0.0);
  // Idle pool as indices; refilled as completions land.
  std::vector<std::int64_t> idle(speed.size());
  for (std::size_t p = 0; p < speed.size(); ++p) {
    idle[p] = static_cast<std::int64_t>(p);
  }

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      pending;
  DesResult result;

  const auto dispatch = [&](double now) {
    while (!ready.empty() && !idle.empty()) {
      const std::int64_t unit = ready.front();
      ready.pop();
      const std::int64_t participant = idle.back();
      idle.pop_back();
      const auto task = units[static_cast<std::size_t>(unit)].task;
      const double service = demand[static_cast<std::size_t>(task)] /
                             speed[static_cast<std::size_t>(participant)];
      const double start = std::max(now, free_at[static_cast<std::size_t>(participant)]);
      const double finish = start + service;
      free_at[static_cast<std::size_t>(participant)] = finish;
      result.total_busy_time += service;
      pending.push({finish, participant, unit});
    }
  };

  dispatch(0.0);
  while (!pending.empty()) {
    const Completion done = pending.top();
    pending.pop();
    ++result.units_executed;
    const auto task = units[static_cast<std::size_t>(done.unit)].task;
    auto& remaining = remaining_copies[static_cast<std::size_t>(task)];
    if (config.policy == DispatchPolicy::kPhaseSerialized && remaining > 0) {
      --remaining;
      enqueue_copy(task);
    }
    task_finish[static_cast<std::size_t>(task)] =
        std::max(task_finish[static_cast<std::size_t>(task)], done.time);
    result.makespan = std::max(result.makespan, done.time);
    idle.push_back(done.participant);
    dispatch(done.time);
  }

  double latency_total = 0.0;
  for (const double finish : task_finish) {
    latency_total += finish;
    result.max_task_latency = std::max(result.max_task_latency, finish);
  }
  result.mean_task_latency = latency_total / static_cast<double>(task_count);
  result.utilization =
      result.makespan > 0.0
          ? result.total_busy_time /
                (static_cast<double>(config.participants) * result.makespan)
          : 0.0;
  return result;
}

}  // namespace redund::sim
