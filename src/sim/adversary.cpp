#include "sim/adversary.hpp"

namespace redund::sim {

std::string to_string(CheatStrategy strategy) {
  switch (strategy) {
    case CheatStrategy::kHonest: return "honest";
    case CheatStrategy::kAlwaysCheat: return "always-cheat";
    case CheatStrategy::kExactTuple: return "exact-tuple";
    case CheatStrategy::kAtLeastTuple: return "at-least-tuple";
    case CheatStrategy::kSingletons: return "singletons";
  }
  return "unknown";
}

}  // namespace redund::sim
