#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "rng/distributions.hpp"

namespace redund::sim {

double ReplicaResult::detection_rate_at(std::int64_t held) const noexcept {
  if (held < 1 || held >= static_cast<std::int64_t>(attempts_by_held.size())) {
    return 0.0;
  }
  const auto attempts = attempts_by_held[static_cast<std::size_t>(held)];
  if (attempts == 0) return 0.0;
  return static_cast<double>(detected_by_held[static_cast<std::size_t>(held)]) /
         static_cast<double>(attempts);
}

void ReplicaResult::merge(const ReplicaResult& other) {
  replicas += other.replicas;
  adversary_assignments += other.adversary_assignments;
  tasks_held += other.tasks_held;
  cheat_attempts += other.cheat_attempts;
  detected_cheats += other.detected_cheats;
  successful_cheats += other.successful_cheats;
  fully_controlled_tasks += other.fully_controlled_tasks;
  replicas_with_detection += other.replicas_with_detection;
  replicas_with_corruption += other.replicas_with_corruption;
  // Both histograms grow to the common maximum: a malformed input whose two
  // vectors disagree in length must not leave this result desynchronized
  // (or index out of bounds below).
  const std::size_t width =
      std::max({attempts_by_held.size(), detected_by_held.size(),
                other.attempts_by_held.size(), other.detected_by_held.size()});
  attempts_by_held.resize(width, 0);
  detected_by_held.resize(width, 0);
  for (std::size_t k = 0; k < other.attempts_by_held.size(); ++k) {
    attempts_by_held[k] += other.attempts_by_held[k];
  }
  for (std::size_t k = 0; k < other.detected_by_held.size(); ++k) {
    detected_by_held[k] += other.detected_by_held[k];
  }
}

namespace {

/// Widens the result's histograms (preserving counts) so held index `m` is
/// addressable.
void ensure_width(ReplicaResult& result, std::int64_t max_multiplicity) {
  const auto width = static_cast<std::size_t>(max_multiplicity + 1);
  if (result.attempts_by_held.size() < width) {
    result.attempts_by_held.resize(width, 0);
  }
  if (result.detected_by_held.size() < width) {
    result.detected_by_held.resize(width, 0);
  }
}

/// Per-task held-copy counts via sequential conditional hypergeometric
/// sampling: after deciding tasks 0..t-1, task t's held count given the
/// remaining picks is Hypergeometric(remaining pool, m_t, remaining picks).
void sample_held_hypergeometric(const Workload& workload, std::int64_t picks,
                                rng::Xoshiro256StarStar& engine,
                                std::vector<std::int64_t>& held) {
  std::int64_t remaining_pool = workload.total_assignments();
  std::int64_t remaining_picks = picks;
  const auto& tasks = workload.tasks();
  held.assign(tasks.size(), 0);
  for (std::size_t t = 0; t < tasks.size() && remaining_picks > 0; ++t) {
    const std::int64_t m = tasks[t].multiplicity;
    const std::int64_t h =
        rng::hypergeometric(remaining_pool, m, remaining_picks, engine);
    held[t] = h;
    remaining_pool -= m;
    remaining_picks -= h;
  }
}

/// Per-task held-copy counts by materializing the assignment pool and
/// sampling a uniform w-subset with partial Fisher-Yates. The pool buffer
/// is caller-owned scratch, rebuilt in place without reallocation.
void sample_held_pool(const Workload& workload, std::int64_t picks,
                      rng::Xoshiro256StarStar& engine,
                      std::vector<std::int64_t>& held,
                      std::vector<std::uint32_t>& pool) {
  const auto& tasks = workload.tasks();
  pool.clear();
  pool.reserve(static_cast<std::size_t>(workload.total_assignments()));
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (std::int64_t c = 0; c < tasks[t].multiplicity; ++c) {
      pool.push_back(static_cast<std::uint32_t>(t));
    }
  }
  held.assign(tasks.size(), 0);
  const auto n = static_cast<std::uint64_t>(pool.size());
  const auto w = static_cast<std::uint64_t>(picks);
  for (std::uint64_t i = 0; i < w && i < n; ++i) {
    const std::uint64_t j = i + rng::uniform_below(n - i, engine);
    std::swap(pool[i], pool[j]);
    ++held[pool[i]];
  }
}

/// Verification pass over per-task held counts (the two per-task kernels).
void tally_per_task(ReplicaResult& result, const Workload& workload,
                    const AdversaryConfig& adversary,
                    rng::Xoshiro256StarStar& engine,
                    const std::vector<std::int64_t>& held) {
  const auto& tasks = workload.tasks();
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const std::int64_t h = held[t];
    if (h < 1) continue;
    ++result.tasks_held;
    if (h == tasks[t].multiplicity) ++result.fully_controlled_tasks;
    if (!adversary.should_cheat(h)) continue;
    if (adversary.cheat_probability < 1.0 &&
        !rng::bernoulli(adversary.cheat_probability, engine)) {
      continue;
    }

    ++result.cheat_attempts;
    ++result.attempts_by_held[static_cast<std::size_t>(h)];
    // Detection: an honest copy exists, or the supervisor knows the answer.
    const bool detected = h < tasks[t].multiplicity || tasks[t].is_ringer;
    if (detected) {
      ++result.detected_cheats;
      ++result.detected_by_held[static_cast<std::size_t>(h)];
    } else {
      ++result.successful_cheats;
    }
  }
}

/// Held-count histogram of one exchangeability class: `hist[j]` = number of
/// tasks of the class of which the adversary holds exactly j copies, given
/// that she holds `class_picks` of the class's count x m assignments.
///
/// Exact sampling in O(m^2), independent of the class's task count: view
/// the class's assignments as m "copy columns" of `count` items each (copy
/// 1 of every task, copy 2, ...). A uniform subset of the class pool
/// induces (a) multivariate-hypergeometric column totals and (b), given
/// those totals, independent uniform task subsets per column. Columns are
/// then merged into the coverage histogram: each column's picks distribute
/// over the current coverage levels as another multivariate hypergeometric,
/// promoting u tasks from level j to j+1.
void sample_class_histogram(const TaskClass& cls, std::int64_t class_picks,
                            rng::Xoshiro256StarStar& engine,
                            std::vector<std::int64_t>& hist) {
  const std::int64_t m = cls.multiplicity;
  hist.assign(static_cast<std::size_t>(m + 1), 0);
  hist[0] = cls.count;
  std::int64_t left = class_picks;
  for (std::int64_t col = 0; col < m && left > 0; ++col) {
    // Items remaining across columns col..m-1; this column holds `count`.
    const std::int64_t items_left = (m - col) * cls.count;
    const std::int64_t in_column =
        col + 1 < m ? rng::hypergeometric(items_left, cls.count, left, engine)
                    : left;  // Last column takes the remainder exactly.
    left -= in_column;
    if (in_column == 0) continue;

    // Distribute this column's picked tasks over coverage levels col..0.
    // Levels above `col` cannot exist yet; iterating downward means the
    // +1 promotion lands in an already-processed level, so each level's
    // size is read exactly once, unmodified.
    std::int64_t unconsidered = cls.count;
    std::int64_t picks_left = in_column;
    for (std::int64_t j = col; j >= 0 && picks_left > 0; --j) {
      const std::int64_t level_size = hist[static_cast<std::size_t>(j)];
      const std::int64_t promoted =
          j > 0 ? rng::hypergeometric(unconsidered, level_size, picks_left,
                                      engine)
                : picks_left;  // Level 0 absorbs the remainder exactly.
      unconsidered -= level_size;
      picks_left -= promoted;
      hist[static_cast<std::size_t>(j)] -= promoted;
      hist[static_cast<std::size_t>(j + 1)] += promoted;
    }
  }

#if REDUND_ENABLE_INVARIANTS
  // Conservation after the promotion cascade: the histogram still covers
  // every task in the class, and total coverage (Σ j·hist[j]) equals the
  // picks dealt into the class.
  std::int64_t task_total = 0;
  std::int64_t coverage_total = 0;
  for (std::size_t j = 0; j < hist.size(); ++j) {
    task_total += hist[j];
    coverage_total += static_cast<std::int64_t>(j) * hist[j];
  }
  REDUND_INVARIANT(task_total == cls.count,
                   "class histogram levels sum to the class task count");
  REDUND_INVARIANT(coverage_total == class_picks,
                   "class histogram coverage (sum j*hist[j]) equals the "
                   "picks dealt into the class");
#endif
}

/// Verification pass over one class's held-count histogram. Statistically
/// identical to tally_per_task: within a class every task at held level k
/// has the same multiplicity and ringer flag, so the per-task Bernoulli
/// cheat coin collapses to one Binomial draw per level and detection is
/// all-or-nothing per level.
void tally_class(ReplicaResult& result, const TaskClass& cls,
                 const AdversaryConfig& adversary,
                 rng::Xoshiro256StarStar& engine,
                 const std::vector<std::int64_t>& hist) {
  const std::int64_t m = cls.multiplicity;
  for (std::int64_t k = 1; k <= m; ++k) {
    const std::int64_t n_k = hist[static_cast<std::size_t>(k)];
    if (n_k == 0) continue;
    result.tasks_held += n_k;
    if (k == m) result.fully_controlled_tasks += n_k;
    if (!adversary.should_cheat(k)) continue;
    const std::int64_t attempts =
        adversary.cheat_probability < 1.0
            ? rng::binomial(n_k, adversary.cheat_probability, engine)
            : n_k;
    if (attempts == 0) continue;
    result.cheat_attempts += attempts;
    result.attempts_by_held[static_cast<std::size_t>(k)] += attempts;
    const bool detected = k < m || cls.is_ringer;
    if (detected) {
      result.detected_cheats += attempts;
      result.detected_by_held[static_cast<std::size_t>(k)] += attempts;
    } else {
      result.successful_cheats += attempts;
    }
  }
}

/// Class-aggregated replica: outer sequential multivariate hypergeometric
/// deals the adversary's picks across exchangeability classes; within each
/// class the nested sampler builds the held-count histogram. Never touches
/// per-task state.
void run_replica_class_aggregated(ReplicaResult& result,
                                  const Workload& workload,
                                  const AdversaryConfig& adversary,
                                  std::int64_t picks,
                                  rng::Xoshiro256StarStar& engine,
                                  ReplicaScratch& scratch) {
  std::int64_t remaining_pool = workload.total_assignments();
  std::int64_t remaining_picks = picks;
  for (const TaskClass& cls : workload.classes()) {
    if (remaining_picks <= 0) break;
    const std::int64_t in_class =
        remaining_pool > cls.assignments
            ? rng::hypergeometric(remaining_pool, cls.assignments,
                                  remaining_picks, engine)
            : remaining_picks;  // Last class takes the remainder exactly.
    remaining_pool -= cls.assignments;
    remaining_picks -= in_class;
    if (in_class == 0) continue;
    sample_class_histogram(cls, in_class, engine, scratch.histogram);
    tally_class(result, cls, adversary, engine, scratch.histogram);
  }
}

}  // namespace

void run_replica_into(ReplicaResult& result, const Workload& workload,
                      const AdversaryConfig& adversary,
                      rng::Xoshiro256StarStar& engine, Allocation allocation,
                      ReplicaScratch& scratch) {
  const auto total = workload.total_assignments();
  const auto picks = static_cast<std::int64_t>(
      std::llround(adversary.proportion * static_cast<double>(total)));

  ensure_width(result, workload.max_multiplicity());
  const std::int64_t detected_before = result.detected_cheats;
  const std::int64_t successful_before = result.successful_cheats;

  result.replicas += 1;
  result.adversary_assignments += picks;

  switch (allocation) {
    case Allocation::kClassAggregated:
      run_replica_class_aggregated(result, workload, adversary, picks, engine,
                                   scratch);
      break;
    case Allocation::kPoolShuffle:
      sample_held_pool(workload, picks, engine, scratch.held, scratch.pool);
      tally_per_task(result, workload, adversary, engine, scratch.held);
      break;
    case Allocation::kSequentialHypergeometric:
      sample_held_hypergeometric(workload, picks, engine, scratch.held);
      tally_per_task(result, workload, adversary, engine, scratch.held);
      break;
  }

  if (result.detected_cheats > detected_before) {
    ++result.replicas_with_detection;
  }
  if (result.successful_cheats > successful_before) {
    ++result.replicas_with_corruption;
  }
}

ReplicaResult run_replica(const Workload& workload,
                          const AdversaryConfig& adversary,
                          rng::Xoshiro256StarStar& engine,
                          Allocation allocation) {
  ReplicaResult result;
  ReplicaScratch scratch;
  run_replica_into(result, workload, adversary, engine, allocation, scratch);
  return result;
}

}  // namespace redund::sim
