#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "rng/distributions.hpp"

namespace redund::sim {

double ReplicaResult::detection_rate_at(std::int64_t held) const noexcept {
  if (held < 1 || held >= static_cast<std::int64_t>(attempts_by_held.size())) {
    return 0.0;
  }
  const auto attempts = attempts_by_held[static_cast<std::size_t>(held)];
  if (attempts == 0) return 0.0;
  return static_cast<double>(detected_by_held[static_cast<std::size_t>(held)]) /
         static_cast<double>(attempts);
}

void ReplicaResult::merge(const ReplicaResult& other) {
  replicas += other.replicas;
  adversary_assignments += other.adversary_assignments;
  tasks_held += other.tasks_held;
  cheat_attempts += other.cheat_attempts;
  detected_cheats += other.detected_cheats;
  successful_cheats += other.successful_cheats;
  fully_controlled_tasks += other.fully_controlled_tasks;
  replicas_with_detection += other.replicas_with_detection;
  replicas_with_corruption += other.replicas_with_corruption;
  if (attempts_by_held.size() < other.attempts_by_held.size()) {
    attempts_by_held.resize(other.attempts_by_held.size(), 0);
    detected_by_held.resize(other.detected_by_held.size(), 0);
  }
  for (std::size_t k = 0; k < other.attempts_by_held.size(); ++k) {
    attempts_by_held[k] += other.attempts_by_held[k];
    detected_by_held[k] += other.detected_by_held[k];
  }
}

namespace {

/// Per-task held-copy counts via sequential conditional hypergeometric
/// sampling: after deciding tasks 0..t-1, task t's held count given the
/// remaining picks is Hypergeometric(remaining pool, m_t, remaining picks).
void sample_held_hypergeometric(const Workload& workload, std::int64_t picks,
                                rng::Xoshiro256StarStar& engine,
                                std::vector<std::int64_t>& held) {
  std::int64_t remaining_pool = workload.total_assignments();
  std::int64_t remaining_picks = picks;
  const auto& tasks = workload.tasks();
  held.assign(tasks.size(), 0);
  for (std::size_t t = 0; t < tasks.size() && remaining_picks > 0; ++t) {
    const std::int64_t m = tasks[t].multiplicity;
    const std::int64_t h =
        rng::hypergeometric(remaining_pool, m, remaining_picks, engine);
    held[t] = h;
    remaining_pool -= m;
    remaining_picks -= h;
  }
}

/// Per-task held-copy counts by materializing the assignment pool and
/// sampling a uniform w-subset with partial Fisher-Yates.
void sample_held_pool(const Workload& workload, std::int64_t picks,
                      rng::Xoshiro256StarStar& engine,
                      std::vector<std::int64_t>& held) {
  const auto& tasks = workload.tasks();
  std::vector<std::uint32_t> pool;
  pool.reserve(static_cast<std::size_t>(workload.total_assignments()));
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (std::int64_t c = 0; c < tasks[t].multiplicity; ++c) {
      pool.push_back(static_cast<std::uint32_t>(t));
    }
  }
  held.assign(tasks.size(), 0);
  const auto n = static_cast<std::uint64_t>(pool.size());
  const auto w = static_cast<std::uint64_t>(picks);
  for (std::uint64_t i = 0; i < w && i < n; ++i) {
    const std::uint64_t j = i + rng::uniform_below(n - i, engine);
    std::swap(pool[i], pool[j]);
    ++held[pool[i]];
  }
}

}  // namespace

ReplicaResult run_replica(const Workload& workload,
                          const AdversaryConfig& adversary,
                          rng::Xoshiro256StarStar& engine,
                          Allocation allocation) {
  const auto total = workload.total_assignments();
  const auto picks = static_cast<std::int64_t>(
      std::llround(adversary.proportion * static_cast<double>(total)));

  std::vector<std::int64_t> held;
  if (allocation == Allocation::kPoolShuffle) {
    sample_held_pool(workload, picks, engine, held);
  } else {
    sample_held_hypergeometric(workload, picks, engine, held);
  }

  ReplicaResult result;
  result.replicas = 1;
  result.adversary_assignments = picks;

  std::int64_t max_multiplicity = 0;
  for (const TaskSpec& task : workload.tasks()) {
    max_multiplicity = std::max(max_multiplicity, task.multiplicity);
  }
  result.attempts_by_held.assign(
      static_cast<std::size_t>(max_multiplicity + 1), 0);
  result.detected_by_held.assign(
      static_cast<std::size_t>(max_multiplicity + 1), 0);

  const auto& tasks = workload.tasks();
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const std::int64_t h = held[t];
    if (h < 1) continue;
    ++result.tasks_held;
    if (h == tasks[t].multiplicity) ++result.fully_controlled_tasks;
    if (!adversary.should_cheat(h)) continue;
    if (adversary.cheat_probability < 1.0 &&
        !rng::bernoulli(adversary.cheat_probability, engine)) {
      continue;
    }

    ++result.cheat_attempts;
    ++result.attempts_by_held[static_cast<std::size_t>(h)];
    // Detection: an honest copy exists, or the supervisor knows the answer.
    const bool detected = h < tasks[t].multiplicity || tasks[t].is_ringer;
    if (detected) {
      ++result.detected_cheats;
      ++result.detected_by_held[static_cast<std::size_t>(h)];
    } else {
      ++result.successful_cheats;
    }
  }
  result.replicas_with_detection = result.detected_cheats > 0 ? 1 : 0;
  result.replicas_with_corruption = result.successful_cheats > 0 ? 1 : 0;
  return result;
}

}  // namespace redund::sim
