// Workload construction for the volunteer-computing simulator.
//
// A workload is the supervisor-side view of one computation: the task
// multiset implied by a realized redundancy plan (real tasks, the tail
// partition, and precomputed ringers). Tasks are identified by dense indices
// so per-replica state is flat arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "core/realize.hpp"

namespace redund::sim {

/// One task in the computation.
struct TaskSpec {
  std::int64_t multiplicity = 0;  ///< How many copies enter the pool.
  bool is_ringer = false;         ///< Supervisor precomputed the answer.
};

/// One equivalence class of tasks: all tasks sharing (multiplicity,
/// is_ringer) are exchangeable under the adversary's uniform pick of
/// assignments, so per-replica sampling can work on classes instead of
/// tasks (Allocation::kClassAggregated — O(#classes), not O(N)).
struct TaskClass {
  std::int64_t multiplicity = 0;
  bool is_ringer = false;
  std::int64_t count = 0;        ///< Tasks in this class.
  std::int64_t assignments = 0;  ///< count * multiplicity.
};

/// The full task multiset plus cached totals.
class Workload {
 public:
  Workload() = default;

  /// Builds from explicit counts: counts[i-1] tasks of multiplicity i, plus
  /// `ringer_count` ringers of multiplicity `ringer_multiplicity`.
  Workload(const std::vector<std::int64_t>& counts, std::int64_t ringer_count,
           std::int64_t ringer_multiplicity);

  /// Builds the workload a RealizedPlan deploys.
  explicit Workload(const core::RealizedPlan& plan)
      : Workload(plan.counts, plan.ringer_count, plan.ringer_multiplicity) {}

  [[nodiscard]] const std::vector<TaskSpec>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] std::int64_t task_count() const noexcept {
    return static_cast<std::int64_t>(tasks_.size());
  }
  [[nodiscard]] std::int64_t total_assignments() const noexcept {
    return total_assignments_;
  }
  [[nodiscard]] std::int64_t ringer_count() const noexcept {
    return ringer_count_;
  }
  /// Exchangeability classes, in ascending multiplicity with the ringer
  /// class (if any) last. Their counts sum to task_count().
  [[nodiscard]] const std::vector<TaskClass>& classes() const noexcept {
    return classes_;
  }
  /// Largest multiplicity of any task (0 for an empty workload).
  [[nodiscard]] std::int64_t max_multiplicity() const noexcept {
    return max_multiplicity_;
  }

 private:
  std::vector<TaskSpec> tasks_;
  std::vector<TaskClass> classes_;
  std::int64_t total_assignments_ = 0;
  std::int64_t ringer_count_ = 0;
  std::int64_t max_multiplicity_ = 0;
};

}  // namespace redund::sim
