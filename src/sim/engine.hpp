// Single-replica simulation engine.
//
// One replica simulates one full computation round: the assignment pool is
// dealt, the adversary's copies are a uniform random w-subset of the pool
// (w = round(proportion * total assignments)), she cheats per her strategy,
// and the supervisor verifies — a cheat is *detected* iff an honest copy of
// the task exists (held < multiplicity) or the task is a ringer whose answer
// the supervisor precomputed. A cheat that survives verification is a
// *successful* cheat: the computation's integrity is broken.
//
// Three allocation algorithms produce the identical joint distribution of
// detection-relevant statistics and are cross-checked in the tests:
//  * kPoolShuffle — materializes the assignment multiset and samples the
//    adversary's subset by partial Fisher-Yates; O(total assignments).
//    Exactness ablation.
//  * kSequentialHypergeometric — walks the task list drawing each task's
//    held count from the exact conditional hypergeometric law;
//    O(task count), no pool materialization. Exactness ablation.
//  * kClassAggregated — tasks with identical (multiplicity, is_ringer) are
//    exchangeable, so the kernel samples per *class*: an outer multivariate
//    hypergeometric deals the adversary's picks across classes, and a
//    nested one builds the held-count histogram within each class.
//    O(#classes x max_multiplicity^2) per replica — independent of the
//    task count N. Default.
//
// The hot-path entry point is run_replica_into + ReplicaScratch: counters
// accumulate into a caller-owned ReplicaResult and all working vectors live
// in a reusable scratch workspace, so no kernel allocates inside the
// replica loop.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/engines.hpp"
#include "sim/adversary.hpp"
#include "sim/workload.hpp"

namespace redund::sim {

/// How the adversary's assignment subset is sampled.
enum class Allocation {
  kSequentialHypergeometric,
  kPoolShuffle,
  kClassAggregated,
};

/// Outcome counters of one (or many merged) replica(s).
struct ReplicaResult {
  std::int64_t replicas = 0;              ///< Replicas merged in.
  std::int64_t adversary_assignments = 0; ///< w, summed over replicas.
  std::int64_t tasks_held = 0;            ///< Tasks with >= 1 adversary copy.
  std::int64_t cheat_attempts = 0;
  std::int64_t detected_cheats = 0;
  std::int64_t successful_cheats = 0;     ///< Undetected wrong results.
  std::int64_t fully_controlled_tasks = 0;///< held == multiplicity.
  /// Replicas in which >= 1 cheat was detected — the supervisor's alarm
  /// fires and reactive measures (paper Section 1) begin.
  std::int64_t replicas_with_detection = 0;
  /// Replicas in which >= 1 wrong result entered the accepted output.
  std::int64_t replicas_with_corruption = 0;

  /// attempts/detections by held-copy count; index = held (0 unused).
  std::vector<std::int64_t> attempts_by_held;
  std::vector<std::int64_t> detected_by_held;

  /// Overall empirical detection probability over all attempts.
  [[nodiscard]] double detection_rate() const noexcept {
    return cheat_attempts > 0 ? static_cast<double>(detected_cheats) /
                                    static_cast<double>(cheat_attempts)
                              : 0.0;
  }

  /// Empirical P_{k,p}: detection rate among attempts holding exactly k.
  [[nodiscard]] double detection_rate_at(std::int64_t held) const noexcept;

  /// Fraction of replicas in which the supervisor's alarm fired.
  [[nodiscard]] double alarm_probability() const noexcept {
    return replicas > 0 ? static_cast<double>(replicas_with_detection) /
                              static_cast<double>(replicas)
                        : 0.0;
  }

  /// Fraction of replicas whose accepted output contains >= 1 wrong result.
  [[nodiscard]] double corruption_probability() const noexcept {
    return replicas > 0 ? static_cast<double>(replicas_with_corruption) /
                              static_cast<double>(replicas)
                        : 0.0;
  }

  /// Merges another result into this one (counters add; vectors extend).
  /// Both histograms are resized to the common maximum width first, so a
  /// malformed input cannot desynchronize attempts from detections.
  void merge(const ReplicaResult& other);
};

/// Reusable per-thread working memory for run_replica_into. Buffers grow to
/// the workload's high-water mark on first use and are then reused: with a
/// scratch held across a replica loop, no kernel allocates per replica.
struct ReplicaScratch {
  std::vector<std::int64_t> held;       ///< Per-task held counts (per-task kernels).
  std::vector<std::uint32_t> pool;      ///< Assignment pool (kPoolShuffle).
  std::vector<std::int64_t> histogram;  ///< Tasks per held level (kClassAggregated).
};

/// Runs one replica of the computation described by `workload` against
/// `adversary`, accumulating counters into `result` (histograms are widened
/// to the workload's max multiplicity if needed) and drawing working memory
/// from `scratch`. This is the allocation-free hot path.
void run_replica_into(ReplicaResult& result, const Workload& workload,
                      const AdversaryConfig& adversary,
                      rng::Xoshiro256StarStar& engine,
                      Allocation allocation, ReplicaScratch& scratch);

/// Convenience wrapper: runs one replica into a fresh result with its own
/// scratch. Prefer run_replica_into inside loops.
[[nodiscard]] ReplicaResult run_replica(
    const Workload& workload, const AdversaryConfig& adversary,
    rng::Xoshiro256StarStar& engine,
    Allocation allocation = Allocation::kClassAggregated);

}  // namespace redund::sim
