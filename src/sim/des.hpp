// Discrete-event time simulator for campaign scheduling.
//
// The counting model (sim/engine.hpp) answers "who gets caught"; this
// module answers "how long does the computation take". It matters because
// the paper's Section 1 dismisses the obvious hardened variant of simple
// redundancy — "require that only a single copy of a given task is
// outstanding at any time" — on the grounds that it "doubles both the
// resource and time costs". The DES quantifies that: under phase-serialized
// dispatch a task's copies execute in sequence, so the critical path scales
// with the task's multiplicity, while all-at-once dispatch overlaps them.
//
// Model: P participants with heterogeneous speeds (lognormal spread,
// normalized to unit mean so aggregate capacity is invariant in the spread
// parameter) repeatedly pull work units from a FCFS ready queue; a unit
// of a task with service demand d takes d/speed time on its host. Greedy
// list scheduling, no preemption, no churn — the classic makespan model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/realize.hpp"
#include "rng/engines.hpp"

namespace redund::sim {

/// When a task's later copies become dispatchable.
enum class DispatchPolicy {
  kAllAtOnce,        ///< Every copy enters the ready queue at time 0.
  kPhaseSerialized,  ///< Copy j+1 becomes ready when copy j completes.
};

/// Time-simulation parameters.
struct DesConfig {
  std::int64_t participants = 100;
  DispatchPolicy policy = DispatchPolicy::kAllAtOnce;
  /// Lognormal sigma of participant speeds (0 = homogeneous unit speed).
  double speed_sigma = 0.0;
  /// Mean task service demand; demands are exponential(mean), redrawn per
  /// task (copies of one task share its demand — same code, same data).
  double mean_service = 1.0;
  /// Deterministic demands instead of exponential (all = mean_service).
  bool deterministic_service = false;
  std::uint64_t seed = 0xDE5C0FFEEULL;
};

/// Time-domain results of one simulated campaign.
struct DesResult {
  double makespan = 0.0;            ///< Completion time of the last unit.
  double total_busy_time = 0.0;     ///< Sum of unit execution times.
  double mean_task_latency = 0.0;   ///< Mean over tasks of last-copy finish.
  double max_task_latency = 0.0;
  double utilization = 0.0;         ///< busy / (participants * makespan).
  std::int64_t units_executed = 0;
};

/// Simulates executing `plan` (real tasks + ringers) under `config`.
/// Deterministic given config.seed. Requires participants >= 1 and a
/// non-empty plan.
[[nodiscard]] DesResult simulate_schedule(const core::RealizedPlan& plan,
                                          const DesConfig& config);

}  // namespace redund::sim
