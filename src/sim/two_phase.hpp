// The two-phase simple-redundancy model of Appendix A.
//
// Each of N tasks is assigned exactly twice, once per phase (the "only one
// copy outstanding at a time" variant of simple redundancy from Section 1).
// An adversary controlling proportion p of the participants receives
// w = pN assignments in each phase; a task is *fully controlled* (cheatable
// with impunity) when she draws it in both phases. Appendix A shows the
// expected number of fully controlled tasks is ~ w^2/N = p^2 N (the overlap
// is Hypergeometric(N, w, w), well approximated by Binomial(w, w/N)), so she
// expects at least one cheatable task as soon as p >= 1/sqrt(N).
#pragma once

#include <cstdint>

#include "rng/engines.hpp"

namespace redund::sim {

/// How the phase-2 overlap is generated.
enum class TwoPhaseMethod {
  kExplicitDeal,    ///< Materialize phase-2's random deal; count index < w.
  kHypergeometric,  ///< Draw the overlap directly from Hypergeometric(N,w,w).
};

/// Result of one two-phase round.
struct TwoPhaseResult {
  std::int64_t task_count = 0;          ///< N.
  std::int64_t adversary_work = 0;      ///< w per phase.
  std::int64_t fully_controlled = 0;    ///< Tasks she holds in both phases.

  [[nodiscard]] bool can_cheat() const noexcept { return fully_controlled > 0; }
};

/// Expected number of fully controlled tasks: exact hypergeometric mean
/// w^2 / N (which is also the paper's p^2 N approximation when w = pN).
[[nodiscard]] double two_phase_expected_overlap(std::int64_t task_count,
                                                std::int64_t adversary_work) noexcept;

/// The paper's cheating threshold: the adversary proportion at which she
/// expects one fully controlled task, 1/sqrt(N).
[[nodiscard]] double two_phase_threshold(std::int64_t task_count) noexcept;

/// Simulates one round: the adversary receives `adversary_work` of the N
/// phase-1 assignments and `adversary_work` of the N phase-2 assignments,
/// both uniformly without replacement.
[[nodiscard]] TwoPhaseResult run_two_phase(
    std::int64_t task_count, std::int64_t adversary_work,
    rng::Xoshiro256StarStar& engine,
    TwoPhaseMethod method = TwoPhaseMethod::kHypergeometric);

}  // namespace redund::sim
