// Parallel Monte Carlo driver.
//
// Runs many independent replicas of a simulation across a thread pool with
// per-replica engines split deterministically from one master seed
// (rng::make_stream), then merges per-replica results in replica order —
// so the aggregate is bit-identical for any thread count.
#pragma once

#include <cstdint>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/engines.hpp"
#include "sim/engine.hpp"
#include "sim/two_phase.hpp"
#include "stats/accumulator.hpp"

namespace redund::sim {

/// Monte Carlo configuration.
struct MonteCarloConfig {
  std::int64_t replicas = 1000;
  std::uint64_t master_seed = 0x5EEDBA5EBA11ULL;
};

/// Runs `config.replicas` replicas of `workload` vs `adversary` on `pool`
/// and returns the merged counters.
[[nodiscard]] ReplicaResult run_monte_carlo(
    parallel::ThreadPool& pool, const Workload& workload,
    const AdversaryConfig& adversary, const MonteCarloConfig& config,
    Allocation allocation = Allocation::kClassAggregated);

/// Aggregated two-phase results (Appendix A).
struct TwoPhaseAggregate {
  stats::Accumulator overlap;         ///< Fully controlled tasks per replica.
  stats::BernoulliCounter can_cheat;  ///< Replicas with >= 1 such task.
};

/// Runs `config.replicas` independent two-phase rounds.
[[nodiscard]] TwoPhaseAggregate run_two_phase_monte_carlo(
    parallel::ThreadPool& pool, std::int64_t task_count,
    std::int64_t adversary_work, const MonteCarloConfig& config,
    TwoPhaseMethod method = TwoPhaseMethod::kHypergeometric);

}  // namespace redund::sim
