// Adversary models (paper Section 2).
//
// The global intelligent adversary controls a proportion p of the
// computation's assignments (via any number of colluding volunteer
// identities), knows the distribution scheme in use, and cheats on a task by
// returning one identical wrong result on every copy she holds. She does
// *not* know a task's true multiplicity — only how many copies of it landed
// in her hands — so her strategy is a function of that held count k.
#pragma once

#include <cstdint>
#include <string>

namespace redund::sim {

/// What the adversary does with a task of which she holds k >= 1 copies.
enum class CheatStrategy {
  kHonest,        ///< Control only; never cheats.
  kAlwaysCheat,   ///< Cheats on every task she touches (the naive saboteur).
  kExactTuple,    ///< Cheats only when k == tuple_size (probing one P_{k,p}).
  kAtLeastTuple,  ///< Cheats whenever k >= tuple_size.
  kSingletons,    ///< Cheats only on k == 1 — optimal vs Golle-Stubblebine,
                  ///< whose P_k increases with k (Section 3.1).
};

[[nodiscard]] std::string to_string(CheatStrategy strategy);

/// Adversary configuration for one simulated computation.
struct AdversaryConfig {
  /// Proportion of all assignments she controls, in [0, 1).
  double proportion = 0.0;
  CheatStrategy strategy = CheatStrategy::kAlwaysCheat;
  /// Tuple size for kExactTuple / kAtLeastTuple.
  std::int64_t tuple_size = 1;
  /// Intermittent cheating: among tasks the strategy selects, cheat only
  /// with this probability (1.0 = the paper's model). A lower rate trades
  /// corruption throughput for a longer expected time to first detection.
  double cheat_probability = 1.0;

  /// Decision function: cheat on a task of which she holds `held` copies?
  [[nodiscard]] bool should_cheat(std::int64_t held) const noexcept {
    if (held < 1) return false;
    switch (strategy) {
      case CheatStrategy::kHonest: return false;
      case CheatStrategy::kAlwaysCheat: return true;
      case CheatStrategy::kExactTuple: return held == tuple_size;
      case CheatStrategy::kAtLeastTuple: return held >= tuple_size;
      case CheatStrategy::kSingletons: return held == 1;
    }
    return false;
  }
};

}  // namespace redund::sim
