#include "sim/two_phase.hpp"

#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace redund::sim {

double two_phase_expected_overlap(std::int64_t task_count,
                                  std::int64_t adversary_work) noexcept {
  if (task_count <= 0) return 0.0;
  const auto w = static_cast<double>(adversary_work);
  return w * w / static_cast<double>(task_count);
}

double two_phase_threshold(std::int64_t task_count) noexcept {
  return task_count > 0 ? 1.0 / std::sqrt(static_cast<double>(task_count)) : 0.0;
}

TwoPhaseResult run_two_phase(std::int64_t task_count, std::int64_t adversary_work,
                             rng::Xoshiro256StarStar& engine,
                             TwoPhaseMethod method) {
  if (task_count < 1 || adversary_work < 0 || adversary_work > task_count) {
    throw std::invalid_argument(
        "run_two_phase: need 0 <= adversary_work <= task_count, "
        "task_count >= 1");
  }
  TwoPhaseResult result;
  result.task_count = task_count;
  result.adversary_work = adversary_work;

  if (method == TwoPhaseMethod::kHypergeometric) {
    // By symmetry her phase-1 tasks can be taken as {0..w-1}; the phase-2
    // deal hands her a uniform w-subset, so the overlap is hypergeometric.
    result.fully_controlled = rng::hypergeometric(
        task_count, adversary_work, adversary_work, engine);
    return result;
  }

  // Explicit deal: sample her phase-2 subset and count indices below w.
  const auto w = static_cast<std::uint64_t>(adversary_work);
  const auto phase2 = rng::sample_without_replacement(
      static_cast<std::uint64_t>(task_count), w, engine);
  for (const std::uint64_t task : phase2) {
    if (task < w) ++result.fully_controlled;
  }
  return result;
}

}  // namespace redund::sim
