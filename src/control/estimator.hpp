// Online estimators for the adaptive redundancy controller.
//
// The paper computes its plans from an *assumed* adversary proportion p;
// a live campaign can do better. Every validator verdict is a Bernoulli
// observation of the per-copy wrong-result rate: a completed copy that
// disagrees with the accepted value (or fails a ringer ground-truth
// check) is evidence *for* an active adversary, an agreeing copy is
// evidence against. AdversaryEstimator folds those outcomes into a
// conjugate Beta posterior,
//
//     p | data  ~  Beta(alpha0 + wrong, beta0 + right),
//
// and exposes the posterior mean and an upper credible limit. The
// controller plans against the *upper* limit, not the mean — the same
// pessimism BOINC's scheduler applies when it sizes replication from a
// host-error model (it would rather over-replicate briefly than accept
// corrupt results while the estimate settles).
//
// Everything here is deterministic closed-form arithmetic: the credible
// limit inverts the regularized incomplete beta function with a fixed
// continued-fraction + bisection scheme, so two runs over the same
// outcome stream produce bit-identical estimates. No RNG, no clock.
#pragma once

#include <cstdint>

namespace redund::control {

/// Regularized incomplete beta function I_x(a, b) — the CDF of Beta(a, b)
/// at x — via the Lentz continued-fraction evaluation. a, b > 0,
/// x clamped to [0, 1]. Accurate to ~1e-12 for the posterior shapes the
/// controller produces.
[[nodiscard]] double beta_cdf(double x, double a, double b) noexcept;

/// Conjugate Beta posterior over the per-copy wrong-result probability.
class AdversaryEstimator {
 public:
  AdversaryEstimator() = default;

  /// Prior pseudo-counts: alpha0 wrong results, beta0 right results.
  /// Both must be > 0 (a proper prior); the defaults below encode the
  /// weakly-informative Beta(1, 19) prior (mean 0.05).
  AdversaryEstimator(double prior_alpha, double prior_beta);

  /// Folds `wrong` disagreeing and `right` agreeing copies into the
  /// posterior. Negative counts are invalid.
  void observe(std::int64_t wrong, std::int64_t right);

  [[nodiscard]] std::int64_t wrong_count() const noexcept { return wrong_; }
  [[nodiscard]] std::int64_t right_count() const noexcept { return right_; }
  [[nodiscard]] std::int64_t observations() const noexcept {
    return wrong_ + right_;
  }
  [[nodiscard]] double prior_alpha() const noexcept { return prior_alpha_; }
  [[nodiscard]] double prior_beta() const noexcept { return prior_beta_; }

  /// Posterior mean (alpha0 + wrong) / (alpha0 + beta0 + wrong + right).
  [[nodiscard]] double posterior_mean() const noexcept;

  /// Smallest p with Pr[p_true <= p | data] >= quantile, by bisection on
  /// beta_cdf (64 fixed halvings — deterministic, ~1e-19 interval).
  /// quantile in (0, 1); e.g. 0.95 for the planning-pessimistic limit.
  [[nodiscard]] double upper_credible(double quantile) const;

  /// Checkpoint restore: overwrite the observation counters (the prior
  /// is configuration, re-supplied at construction).
  void restore_counts(std::int64_t wrong, std::int64_t right);

 private:
  double prior_alpha_ = 1.0;
  double prior_beta_ = 19.0;
  std::int64_t wrong_ = 0;
  std::int64_t right_ = 0;
};

/// EWMA of a Bernoulli event rate — the controller's dropout tracker.
/// Feeding issue outcomes (timed out vs completed) gives a smoothed
/// estimate of the fleet's current no-reply rate, which gates
/// de-escalation: releasing copies is only safe when workers are
/// actually replying.
class RateEwma {
 public:
  RateEwma() = default;
  explicit RateEwma(double alpha);

  void observe(bool hit) noexcept;

  /// Current smoothed rate; 0 before the first observation.
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool initialized() const noexcept { return initialized_; }

  /// Checkpoint restore.
  void restore(double value, bool initialized) noexcept;

 private:
  double alpha_ = 0.05;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace redund::control
