#include "control/controller.hpp"

#include <cmath>
#include <stdexcept>

namespace redund::control {

void validate(const ControlConfig& config) {
  if (!(config.epsilon >= 0.0) || !(config.epsilon <= 1.0)) {
    throw std::invalid_argument("ControlConfig: epsilon must be in [0, 1]");
  }
  if (!(config.quantile > 0.0) || !(config.quantile < 1.0)) {
    throw std::invalid_argument("ControlConfig: quantile must be in (0, 1)");
  }
  if (config.replan_interval < 1) {
    throw std::invalid_argument(
        "ControlConfig: replan_interval must be >= 1");
  }
  if (!std::isfinite(config.check_interval)) {
    throw std::invalid_argument(
        "ControlConfig: check_interval must be finite");
  }
  if (config.max_boost < 0) {
    throw std::invalid_argument("ControlConfig: max_boost must be >= 0");
  }
  if (!(config.prior_alpha > 0.0) || !(config.prior_beta > 0.0) ||
      !std::isfinite(config.prior_alpha) ||
      !std::isfinite(config.prior_beta)) {
    throw std::invalid_argument(
        "ControlConfig: prior pseudo-counts must be positive and finite");
  }
  if (config.min_observations < 0 || config.max_promotions < 0 ||
      config.max_releases < 0) {
    throw std::invalid_argument(
        "ControlConfig: counts and budgets must be >= 0");
  }
  if (!(config.release_dropout_ceiling >= 0.0) ||
      !(config.release_dropout_ceiling <= 1.0)) {
    throw std::invalid_argument(
        "ControlConfig: release_dropout_ceiling must be in [0, 1]");
  }
  if (!(config.dropout_ewma_alpha > 0.0) ||
      config.dropout_ewma_alpha > 1.0) {
    throw std::invalid_argument(
        "ControlConfig: dropout_ewma_alpha must be in (0, 1]");
  }
}

CampaignController::CampaignController(const ControlConfig& config)
    : config_(config),
      estimator_(config.prior_alpha, config.prior_beta),
      dropout_(config.dropout_ewma_alpha) {
  validate(config);
}

void CampaignController::observe_outcome(bool wrong) {
  estimator_.observe(wrong ? 1 : 0, wrong ? 0 : 1);
  ++observations_;
}

bool CampaignController::due(std::int64_t units_completed) const noexcept {
  return units_completed - last_replan_completed_ >=
             config_.replan_interval &&
         estimator_.observations() >= config_.min_observations;
}

ReplanBudgets CampaignController::budgets(bool top_verified) const noexcept {
  ReplanBudgets budgets;
  budgets.epsilon = config_.epsilon;
  budgets.max_promotions = config_.max_promotions;
  budgets.max_releases = config_.max_releases;
  budgets.allow_release =
      config_.allow_release &&
      (!dropout_.initialized() ||
       dropout_.value() <= config_.release_dropout_ceiling);
  budgets.top_verified = top_verified;
  return budgets;
}

void CampaignController::restore(std::int64_t wrong, std::int64_t right,
                                 std::int64_t observations,
                                 std::int64_t last_replan_completed,
                                 double dropout_value,
                                 bool dropout_initialized) {
  estimator_.restore_counts(wrong, right);
  observations_ = observations;
  last_replan_completed_ = last_replan_completed;
  dropout_.restore(dropout_value, dropout_initialized);
}

}  // namespace redund::control
