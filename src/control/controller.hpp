// Campaign-level adaptive controller: estimators + re-plan cadence.
//
// One CampaignController lives inside each supervisor Runner (and thus
// one per shard under ShardedSupervisor — shard merge needs no special
// controller handling because each shard's controller only ever sees
// its own shard's outcomes). The supervisor feeds it validator verdicts
// and issue outcomes as they happen; on a periodic kReplan event it
// asks `due()` whether enough new completions and observations have
// accumulated, then runs plan_remaining over the residual mix.
//
// Determinism rules (docs/control.md): the controller owns no RNG and
// never reads the clock; its entire mutable state is four integers and
// the dropout EWMA, all serialized into journal checkpoints, so a
// killed-and-resumed campaign replays identical re-plan decisions.
#pragma once

#include <cstdint>

#include "control/estimator.hpp"
#include "control/replanner.hpp"

namespace redund::control {

/// Configuration of the online adaptive controller (all-default =
/// disabled; every field participates in the runtime config
/// fingerprint).
struct ControlConfig {
  bool enabled = false;
  /// Required non-asymptotic detection level min_k P_{k,p} for the
  /// remaining work.
  double epsilon = 0.5;
  /// Posterior upper credible limit the re-planner evaluates at.
  double quantile = 0.95;
  /// Completed units between re-plan evaluations (the cadence).
  std::int64_t replan_interval = 64;
  /// kReplan timer period in simulated time. <= 0 selects half the
  /// effective deadline (same auto rule as the adaptive check).
  double check_interval = 0.0;
  /// Controller-added copies allowed per task (its slot-table budget,
  /// on top of AdaptiveConfig::max_extra_replicas).
  std::int64_t max_boost = 2;
  /// Beta prior pseudo-counts over the per-copy wrong-result rate;
  /// Beta(1, 19) = mean 0.05, weakly informative.
  double prior_alpha = 1.0;
  double prior_beta = 19.0;
  /// Observations required before the first re-plan may act.
  std::int64_t min_observations = 32;
  /// Escalation / de-escalation step caps per re-plan round.
  std::int64_t max_promotions = 256;
  std::int64_t max_releases = 64;
  /// De-escalation master switch, and the fleet-health gate: releases
  /// are suppressed while the smoothed timeout rate exceeds this
  /// ceiling (an unresponsive fleet needs its spare copies).
  bool allow_release = true;
  double release_dropout_ceiling = 0.25;
  /// Smoothing factor of the dropout-rate EWMA.
  double dropout_ewma_alpha = 0.05;
};

/// Throws std::invalid_argument when any field is out of range.
void validate(const ControlConfig& config);

class CampaignController {
 public:
  CampaignController() = default;  ///< Disabled shell (never consulted).
  explicit CampaignController(const ControlConfig& config);

  // ------------------------------------------------------------- evidence
  /// One validator/ringer verdict on a completed copy.
  void observe_outcome(bool wrong);
  /// One resolved issue: timed out (true) or completed (false).
  void observe_issue(bool timed_out) noexcept { dropout_.observe(timed_out); }

  // -------------------------------------------------------------- cadence
  /// Enough new completions since the last re-plan, and enough total
  /// observations to trust the posterior?
  [[nodiscard]] bool due(std::int64_t units_completed) const noexcept;
  void mark_replanned(std::int64_t units_completed) noexcept {
    last_replan_completed_ = units_completed;
  }

  // ------------------------------------------------------------- decision
  /// Budgets for the current round: epsilon/caps from the config, with
  /// releases additionally gated on the dropout EWMA.
  [[nodiscard]] ReplanBudgets budgets(bool top_verified) const noexcept;
  [[nodiscard]] double p_upper() const {
    return estimator_.upper_credible(config_.quantile);
  }
  [[nodiscard]] double p_mean() const noexcept {
    return estimator_.posterior_mean();
  }

  // ---------------------------------------------------------------- state
  [[nodiscard]] const AdversaryEstimator& estimator() const noexcept {
    return estimator_;
  }
  [[nodiscard]] const RateEwma& dropout() const noexcept { return dropout_; }
  /// Independent tally of observe_outcome calls — the conservation
  /// invariant cross-checks it against the posterior's counts.
  [[nodiscard]] std::int64_t observations() const noexcept {
    return observations_;
  }
  [[nodiscard]] std::int64_t last_replan_completed() const noexcept {
    return last_replan_completed_;
  }

  /// Checkpoint restore (the config itself is not state; the caller
  /// reconstructs the controller from the same RuntimeConfig).
  void restore(std::int64_t wrong, std::int64_t right,
               std::int64_t observations, std::int64_t last_replan_completed,
               double dropout_value, bool dropout_initialized);

 private:
  ControlConfig config_;
  AdversaryEstimator estimator_;
  RateEwma dropout_;
  std::int64_t observations_ = 0;
  std::int64_t last_replan_completed_ = 0;
};

}  // namespace redund::control
