#include "control/replanner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/detection.hpp"
#include "core/distribution.hpp"

namespace redund::control {

namespace {

/// min_k P_{k,p} of a counts-by-multiplicity vector (index 0 = class 1).
double residual_level(const std::vector<double>& counts, double p,
                      bool include_top) {
  std::vector<double> trimmed = counts;
  while (!trimmed.empty() && trimmed.back() == 0.0) trimmed.pop_back();
  if (trimmed.empty()) return 1.0;  // Nothing left to attack.
  const core::Distribution mix(std::move(trimmed));
  return core::min_detection(mix, p, include_top);
}

std::int64_t weakest_class(const std::vector<double>& counts, double p,
                           bool include_top) {
  std::vector<double> trimmed = counts;
  while (!trimmed.empty() && trimmed.back() == 0.0) trimmed.pop_back();
  if (trimmed.empty()) return 0;
  const core::Distribution mix(std::move(trimmed));
  return core::weakest_tuple(mix, p, include_top);
}

void record_delta(std::vector<ClassDelta>& deltas, std::int64_t multiplicity) {
  for (ClassDelta& delta : deltas) {
    if (delta.multiplicity == multiplicity) {
      ++delta.count;
      return;
    }
  }
  deltas.push_back({multiplicity, 1});
}

}  // namespace

std::int64_t ReplanDecision::promoted() const noexcept {
  std::int64_t total = 0;
  for (const ClassDelta& delta : promotions) total += delta.count;
  return total;
}

std::int64_t ReplanDecision::released() const noexcept {
  std::int64_t total = 0;
  for (const ClassDelta& delta : demotions) total += delta.count;
  return total;
}

ReplanDecision plan_remaining(const std::vector<ResidualClass>& classes,
                              double p_upper, const ReplanBudgets& budgets) {
  if (!(p_upper >= 0.0) || !(p_upper < 1.0)) {
    throw std::invalid_argument(
        "plan_remaining: p_upper must be in [0, 1)");
  }
  if (!(budgets.epsilon >= 0.0) || !(budgets.epsilon <= 1.0)) {
    throw std::invalid_argument(
        "plan_remaining: epsilon must be in [0, 1]");
  }
  if (budgets.max_promotions < 0 || budgets.max_releases < 0) {
    throw std::invalid_argument("plan_remaining: budgets must be >= 0");
  }
  std::int64_t max_multiplicity = 0;
  for (const ResidualClass& cls : classes) {
    if (cls.multiplicity < 1 || cls.tasks < 0 || cls.promotable < 0 ||
        cls.demotable < 0 || cls.promotable > cls.tasks ||
        cls.demotable > cls.tasks) {
      throw std::invalid_argument(
          "plan_remaining: malformed residual class");
    }
    max_multiplicity = std::max(max_multiplicity, cls.multiplicity);
  }

  // Working mix, with one spare slot above the top for promotions out of
  // the current top class. Duplicate class entries fold together.
  const auto dim = static_cast<std::size_t>(max_multiplicity + 1);
  std::vector<double> counts(std::max<std::size_t>(dim, 1), 0.0);
  std::vector<std::int64_t> promotable(counts.size(), 0);
  std::vector<std::int64_t> demotable(counts.size(), 0);
  for (const ResidualClass& cls : classes) {
    const auto i = static_cast<std::size_t>(cls.multiplicity - 1);
    counts[i] += static_cast<double>(cls.tasks);
    promotable[i] += cls.promotable;
    demotable[i] += cls.demotable;
  }

  const bool include_top = !budgets.top_verified;
  ReplanDecision decision;
  decision.detection_before =
      residual_level(counts, p_upper, include_top);
  double level = decision.detection_before;

  // Escalate: promote single tasks out of the weakest class until the
  // bound clears epsilon. Promoted mass lands one class up but is not
  // re-promotable this round, so every task moves at most one step.
  std::int64_t promoted = 0;
  while (level < budgets.epsilon && promoted < budgets.max_promotions) {
    const std::int64_t weakest = weakest_class(counts, p_upper, include_top);
    if (weakest < 1) break;  // No attack surface at all.
    // An unverified top class can never be protected by promotion: the
    // promoted task just becomes the new unverified top.
    if (include_top && weakest >= static_cast<std::int64_t>(counts.size())) {
      break;
    }
    // Promoting below the weakest class would feed it; only classes at
    // or above the weakest k raise P_k. Take the lowest such class with
    // promotion candidates left (the cheapest useful step).
    std::size_t from = counts.size();
    for (auto i = static_cast<std::size_t>(weakest - 1); i < counts.size();
         ++i) {
      if (promotable[i] > 0 && counts[i] > 0.0) {
        from = i;
        break;
      }
    }
    if (from >= counts.size()) break;  // Supply exhausted: infeasible.
    if (from + 1 >= counts.size()) {
      counts.push_back(0.0);
      promotable.push_back(0);
      demotable.push_back(0);
    }
    counts[from] -= 1.0;
    counts[from + 1] += 1.0;
    --promotable[from];
    record_delta(decision.promotions,
                 static_cast<std::int64_t>(from + 1));
    ++promoted;
    level = residual_level(counts, p_upper, include_top);
  }

  // De-escalate: give back previously escalated copies, most expensive
  // class first, one at a time, keeping the bound >= epsilon after every
  // step. The first release that would violate it is reverted and ends
  // the round — the mix never crosses the feasible minimum.
  if (budgets.allow_release && level >= budgets.epsilon) {
    std::int64_t released = 0;
    while (released < budgets.max_releases) {
      std::size_t from = counts.size();
      for (std::size_t i = counts.size(); i-- > 1;) {
        if (demotable[i] > 0 && counts[i] > 0.0) {
          from = i;
          break;
        }
      }
      if (from >= counts.size()) break;
      counts[from] -= 1.0;
      counts[from - 1] += 1.0;
      const double trial = residual_level(counts, p_upper, include_top);
      if (trial < budgets.epsilon) {
        counts[from] += 1.0;
        counts[from - 1] -= 1.0;
        break;
      }
      --demotable[from];
      level = trial;
      record_delta(decision.demotions,
                   static_cast<std::int64_t>(from + 1));
      ++released;
    }
  }

  decision.detection_after = level;
  decision.feasible = level >= budgets.epsilon;
  return decision;
}

}  // namespace redund::control
