// Residual-mix re-planner: the decision core of the adaptive controller.
//
// Mid-campaign, the unfinished tasks form a *residual* redundancy
// distribution — x_k unfinished tasks currently targeting k copies. The
// re-planner evaluates the paper's Section 5 non-asymptotic detection
// level min_k P_{k,p} of that mix at the posterior's upper credible
// limit p and steers it toward the cheapest mix still meeting
// P_k >= epsilon:
//
//   * too weak  -> promote tasks out of the weakest class k (one more
//     copy each) until the level clears epsilon or the promotion budget
//     / candidate supply runs out;
//   * comfortably strong and the fleet is healthy -> release previously
//     escalated copies, most-expensive class first, re-checking the
//     bound after every single release so the mix never drops below the
//     feasible minimum.
//
// This is the probe-and-observe shape of MongoDB's throughput-probing
// controller: move one small deterministic step, measure the governing
// metric, keep or revert. plan_remaining is a pure function — no RNG,
// no clock, no supervisor state — which is what lets per-shard
// controllers stay byte-identical under resume and shard merge.
#pragma once

#include <cstdint>
#include <vector>

namespace redund::control {

/// One multiplicity class of the unfinished work.
struct ResidualClass {
  std::int64_t multiplicity = 0;  ///< Current per-task copy target (>= 1).
  std::int64_t tasks = 0;         ///< Unfinished tasks at this target.
  /// How many of those tasks may take one more copy this round (caller
  /// policy: non-ringers with boost budget and an assignable identity).
  std::int64_t promotable = 0;
  /// How many may give one copy back this round (caller policy:
  /// previously boosted tasks with an outstanding, cancellable copy).
  /// A task may be eligible both ways — the caller applies each decided
  /// move to a distinct task, so the counts are independent, each within
  /// [0, tasks].
  std::int64_t demotable = 0;
};

/// Caps and targets for one re-plan round.
struct ReplanBudgets {
  double epsilon = 0.5;               ///< Required min_k P_{k,p}.
  std::int64_t max_promotions = 256;  ///< Escalation step bound per round.
  std::int64_t max_releases = 64;     ///< De-escalation step bound per round.
  bool allow_release = true;
  /// True when the residual top class is supervisor-verified (ringers):
  /// the top tuple is then not an attack surface, matching the planner's
  /// include_top convention.
  bool top_verified = true;
};

/// `count` tasks of class `multiplicity` move one copy up (promotions)
/// or down (demotions).
struct ClassDelta {
  std::int64_t multiplicity = 0;
  std::int64_t count = 0;
};

struct ReplanDecision {
  double detection_before = 0.0;  ///< min_k P_{k,p} of the input mix.
  double detection_after = 0.0;   ///< Same, after applying the deltas.
  bool feasible = false;          ///< detection_after >= epsilon.
  std::vector<ClassDelta> promotions;  ///< Keyed by *original* class.
  std::vector<ClassDelta> demotions;   ///< Keyed by *original* class.

  [[nodiscard]] std::int64_t promoted() const noexcept;
  [[nodiscard]] std::int64_t released() const noexcept;
  [[nodiscard]] bool empty() const noexcept {
    return promotions.empty() && demotions.empty();
  }
};

/// Plans one round of promotions/demotions over the residual mix at
/// adversary proportion `p_upper`. Pure and deterministic; every task
/// moves at most one step per round (multi-step escalation happens
/// across successive rounds, each re-anchored on fresh observations).
/// Throws std::invalid_argument on malformed classes or budgets.
[[nodiscard]] ReplanDecision plan_remaining(
    const std::vector<ResidualClass>& classes, double p_upper,
    const ReplanBudgets& budgets);

}  // namespace redund::control
