#include "control/estimator.hpp"

#include <cmath>
#include <stdexcept>

namespace redund::control {

namespace {

/// Continued-fraction core of the incomplete beta function (Lentz's
/// method with the standard tiny-denominator guard). Converges in a few
/// dozen iterations for the posterior shapes we feed it; the iteration
/// cap only bounds pathological inputs.
double beta_continued_fraction(double x, double a, double b) noexcept {
  constexpr double kTiny = 1e-300;
  constexpr double kEps = 1e-15;
  constexpr int kMaxIterations = 400;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double dm = static_cast<double>(m);
    const double m2 = 2.0 * dm;
    // Even step.
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double beta_cdf(double x, double a, double b) noexcept {
  if (!(a > 0.0) || !(b > 0.0)) return 0.0;
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  // The continued fraction converges fastest for x < (a+1)/(a+b+2); use
  // the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the far side.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(x, a, b) / a;
  }
  return 1.0 - front * beta_continued_fraction(1.0 - x, b, a) / b;
}

AdversaryEstimator::AdversaryEstimator(double prior_alpha, double prior_beta)
    : prior_alpha_(prior_alpha), prior_beta_(prior_beta) {
  if (!(prior_alpha > 0.0) || !(prior_beta > 0.0) ||
      !std::isfinite(prior_alpha) || !std::isfinite(prior_beta)) {
    throw std::invalid_argument(
        "AdversaryEstimator: prior pseudo-counts must be positive and "
        "finite");
  }
}

void AdversaryEstimator::observe(std::int64_t wrong, std::int64_t right) {
  if (wrong < 0 || right < 0) {
    throw std::invalid_argument(
        "AdversaryEstimator::observe: counts must be >= 0");
  }
  wrong_ += wrong;
  right_ += right;
}

double AdversaryEstimator::posterior_mean() const noexcept {
  const double alpha = prior_alpha_ + static_cast<double>(wrong_);
  const double beta = prior_beta_ + static_cast<double>(right_);
  return alpha / (alpha + beta);
}

double AdversaryEstimator::upper_credible(double quantile) const {
  if (!(quantile > 0.0) || !(quantile < 1.0)) {
    throw std::invalid_argument(
        "AdversaryEstimator::upper_credible: quantile must be in (0, 1)");
  }
  const double alpha = prior_alpha_ + static_cast<double>(wrong_);
  const double beta = prior_beta_ + static_cast<double>(right_);
  // Fixed-count bisection: deterministic and branch-stable, and 64
  // halvings of [0, 1] are far below double resolution anyway.
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (beta_cdf(mid, alpha, beta) < quantile) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

void AdversaryEstimator::restore_counts(std::int64_t wrong,
                                        std::int64_t right) {
  if (wrong < 0 || right < 0) {
    throw std::invalid_argument(
        "AdversaryEstimator::restore_counts: counts must be >= 0");
  }
  wrong_ = wrong;
  right_ = right;
}

RateEwma::RateEwma(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("RateEwma: alpha must be in (0, 1]");
  }
}

void RateEwma::observe(bool hit) noexcept {
  const double sample = hit ? 1.0 : 0.0;
  if (!initialized_) {
    value_ = sample;
    initialized_ = true;
    return;
  }
  value_ = alpha_ * sample + (1.0 - alpha_) * value_;
}

void RateEwma::restore(double value, bool initialized) noexcept {
  value_ = value;
  initialized_ = initialized;
}

}  // namespace redund::control
