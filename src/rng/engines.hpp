// Deterministic pseudo-random engines for reproducible parallel simulation.
//
// The Monte Carlo driver (redund_sim) runs thousands of independent
// simulation replicas, possibly spread across a thread pool. Results must be
// bit-reproducible regardless of thread count, so each replica derives its
// own engine deterministically from (master seed, replica index) via
// SplitMix64 — the standard seeding construction recommended by the xoshiro
// authors — rather than sharing a sequential stream.
//
// Engines satisfy std::uniform_random_bit_generator and so compose with the
// samplers in rng/distributions.hpp.
#pragma once

#include <array>
#include <cstdint>

namespace redund::rng {

/// SplitMix64: a tiny, high-quality 64-bit generator used here primarily as a
/// seed sequence / stream splitter. Passes BigCrush; period 2^64.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna): the library's workhorse generator.
/// Period 2^256 - 1, passes BigCrush, four 64-bit words of state, ~1 ns/draw.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds all four state words from SplitMix64(seed) per the authors'
  /// recommendation (guarantees a non-zero state).
  constexpr explicit Xoshiro256StarStar(std::uint64_t seed = 0xC0FFEE123456789ULL) noexcept {
    SplitMix64 mixer(seed);
    for (auto& word : state_) word = mixer();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl_(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 draws; calling jump() k times on copies of
  /// one engine yields 2^128-spaced, provably non-overlapping subsequences.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
        0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};
    std::array<std::uint64_t, 4> accumulated = {0, 0, 0, 0};
    for (const std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if ((word & (std::uint64_t{1} << bit)) != 0) {
          for (int i = 0; i < 4; ++i) accumulated[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    state_ = accumulated;
  }

  /// The raw 256-bit state, for checkpoint serialization. A state saved
  /// with state() and reinstated with set_state() resumes the exact
  /// output sequence.
  [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state()
      const noexcept {
    return state_;
  }
  constexpr void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives the engine for stream `stream_index` of a run keyed by
/// `master_seed`. Deterministic, collision-resistant (distinct streams get
/// statistically independent seeds through the SplitMix64 avalanche), and
/// independent of thread scheduling.
[[nodiscard]] constexpr Xoshiro256StarStar make_stream(std::uint64_t master_seed,
                                                       std::uint64_t stream_index) noexcept {
  SplitMix64 mixer(master_seed ^ (0x9E3779B97F4A7C15ULL * (stream_index + 1)));
  // Burn one output so stream 0 with seed 0 is not the raw SplitMix64 of 0.
  const std::uint64_t derived = mixer() ^ mixer();
  return Xoshiro256StarStar(derived);
}

/// The first output of make_stream(master_seed, stream_index)'s engine,
/// without constructing it. xoshiro256**'s first draw reads only
/// state_[1] — rotl(s1 * 5, 7) * 9 — so two steps of the seeding
/// SplitMix64 (after the two derivation steps) suffice: roughly half the
/// work of building and stepping the full 256-bit engine. Bit-identical
/// to make_stream(master_seed, stream_index)() by construction; most of
/// the runtime's keyed coins (dropout, fault windows, cheat activation)
/// consume exactly one draw per stream and take this path.
[[nodiscard]] constexpr std::uint64_t first_draw(
    std::uint64_t master_seed, std::uint64_t stream_index) noexcept {
  SplitMix64 mixer(master_seed ^ (0x9E3779B97F4A7C15ULL * (stream_index + 1)));
  const std::uint64_t derived = mixer() ^ mixer();
  SplitMix64 seeder(derived);
  (void)seeder();                      // state_[0]: unused by draw one.
  const std::uint64_t s1 = seeder();   // state_[1]: the whole first draw.
  const std::uint64_t scaled = s1 * 5;
  return ((scaled << 7) | (scaled >> 57)) * 9;
}

}  // namespace redund::rng
