// Random variate samplers over the engines in rng/engines.hpp.
//
// std::*_distribution implementations differ across standard libraries, which
// would make "bit-reproducible across toolchains" impossible; these samplers
// are self-contained and fully specified. Each takes the engine by reference
// as its last parameter (engines are cheap but stateful; see CP.31 — the
// state must be shared, everything else is passed by value).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/engines.hpp"

namespace redund::rng {

/// Uniform double in [0, 1): fills the 53-bit mantissa from the top bits of
/// one 64-bit draw (the canonical xoshiro conversion).
template <typename Engine>
[[nodiscard]] double uniform01(Engine& engine) noexcept {
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// Uniform integer in [0, bound) without modulo bias, via Lemire's
/// multiply-shift rejection method. bound must be >= 1.
template <typename Engine>
[[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound, Engine& engine) noexcept {
  // Degenerate but defined: the only value below 1 is 0.
  if (bound <= 1) return 0;
  __extension__ using uint128 = unsigned __int128;
  while (true) {
    const std::uint64_t x = engine();
    const auto product =
        static_cast<uint128>(x) * static_cast<uint128>(bound);
    const auto low = static_cast<std::uint64_t>(product);
    if (low >= bound || low >= (std::uint64_t{0} - bound) % bound) {
      return static_cast<std::uint64_t>(product >> 64);
    }
  }
}

/// Uniform integer in the closed range [lo, hi].
template <typename Engine>
[[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi,
                                       Engine& engine) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span, engine));
}

/// Bernoulli(p) draw.
template <typename Engine>
[[nodiscard]] bool bernoulli(double p, Engine& engine) noexcept {
  return uniform01(engine) < p;
}

/// The first uniform01 of make_stream(master_seed, stream): bit-identical
/// to uniform01 on a freshly built stream engine, at about half the cost
/// (see first_draw). For the single-draw keyed coins the async runtime
/// burns per issue and per fault window.
[[nodiscard]] constexpr double first_uniform01(std::uint64_t master_seed,
                                               std::uint64_t stream) noexcept {
  return static_cast<double>(first_draw(master_seed, stream) >> 11) * 0x1.0p-53;
}

/// Bernoulli(p) over the first draw of make_stream(master_seed, stream);
/// bit-identical to bernoulli(p, make_stream(master_seed, stream)).
[[nodiscard]] constexpr bool first_bernoulli(double p,
                                             std::uint64_t master_seed,
                                             std::uint64_t stream) noexcept {
  return first_uniform01(master_seed, stream) < p;
}

/// Standard normal draw (Box-Muller; one of the pair is discarded to keep
/// the sampler stateless).
template <typename Engine>
[[nodiscard]] double standard_normal(Engine& engine) noexcept {
  // Guard against log(0): uniform01 can return exactly 0.
  double u = uniform01(engine);
  while (u <= 0.0) u = uniform01(engine);
  const double v = uniform01(engine);
  constexpr double kTwoPi = 6.283185307179586;
  return std::sqrt(-2.0 * std::log(u)) * std::cos(kTwoPi * v);
}

/// Exponential draw with the given mean (inverse-CDF method).
template <typename Engine>
[[nodiscard]] double exponential(double mean, Engine& engine) noexcept {
  return -mean * std::log1p(-uniform01(engine));
}

/// Lognormal draw with log-scale sigma, normalized to unit *median*
/// (exp(sigma * Z)): the simulator's model of participant speed spread.
template <typename Engine>
[[nodiscard]] double lognormal_unit_median(double sigma, Engine& engine) noexcept {
  return std::exp(sigma * standard_normal(engine));
}

/// Binomial(n, p) sampler.
///
/// Uses BINV (inversion by sequential search) when n*p is small and a
/// normal-approximation rejection fallback is deliberately avoided: for the
/// library's workloads n*min(p,1-p) stays modest, and where it does not we
/// use the waiting-time (geometric) method, which is exact and O(n*p).
template <typename Engine>
[[nodiscard]] std::int64_t binomial(std::int64_t n, double p, Engine& engine) noexcept {
  if (n <= 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const bool flipped = p > 0.5;
  const double q = flipped ? 1.0 - p : p;

  std::int64_t successes = 0;
  if (static_cast<double>(n) * q < 30.0) {
    // BINV: invert the CDF by sequential search from 0.
    const double s = q / (1.0 - q);
    const double base = std::pow(1.0 - q, static_cast<double>(n));
    double pmf = base;
    double cdf = base;
    const double u = uniform01(engine);
    while (cdf < u && successes < n) {
      ++successes;
      pmf *= s * static_cast<double>(n - successes + 1) /
             static_cast<double>(successes);
      cdf += pmf;
    }
  } else {
    // Waiting-time method: count geometric gaps until they exceed n.
    const double log1mq = std::log1p(-q);
    std::int64_t position = 0;
    while (true) {
      const double u = uniform01(engine);
      const auto gap =
          static_cast<std::int64_t>(std::floor(std::log1p(-u) / log1mq)) + 1;
      position += gap;
      if (position > n) break;
      ++successes;
    }
  }
  return flipped ? n - successes : successes;
}

/// Hypergeometric sampler: number of "marked" items in a draw of `sample`
/// items without replacement from a population of `population` items of
/// which `marked` are marked. Exact inversion on the pmf recurrence,
/// expanding outward from the mode — pmf(lo) underflows to zero for large
/// parameters (the class-aggregated simulation kernel draws with
/// marked/sample in the thousands), so a lo-anchored walk would silently
/// degenerate. pmf(mode) never underflows. One uniform per call.
template <typename Engine>
[[nodiscard]] std::int64_t hypergeometric(std::int64_t population, std::int64_t marked,
                                          std::int64_t sample, Engine& engine) noexcept {
  marked = std::clamp<std::int64_t>(marked, 0, population);
  sample = std::clamp<std::int64_t>(sample, 0, population);
  const std::int64_t lo = std::max<std::int64_t>(0, sample + marked - population);
  const std::int64_t hi = std::min(marked, sample);
  if (lo >= hi) return lo;

  // pmf(k+1)/pmf(k) = (marked-k)(sample-k) / ((k+1)(population-marked-sample+k+1)).
  const auto step_ratio = [&](std::int64_t k) noexcept {
    return (static_cast<double>(marked - k) * static_cast<double>(sample - k)) /
           (static_cast<double>(k + 1) *
            static_cast<double>(population - marked - sample + k + 1));
  };
  const auto lchoose = [](std::int64_t n, std::int64_t k) noexcept {
    return std::lgamma(static_cast<double>(n) + 1.0) -
           std::lgamma(static_cast<double>(k) + 1.0) -
           std::lgamma(static_cast<double>(n - k) + 1.0);
  };
  const std::int64_t mode = std::clamp(
      (sample + 1) * (marked + 1) / (population + 2), lo, hi);
  const double pmf_mode =
      std::exp(lchoose(marked, mode) + lchoose(population - marked, sample - mode) -
               lchoose(population, sample));

  // Two-sided inversion: peel probability mass off alternating sides of the
  // mode until the uniform is exhausted. O(spread) steps — the pmf decays
  // geometrically away from the mode, so this is ~O(sqrt) of the range.
  double u = uniform01(engine);
  if (u <= pmf_mode) return mode;
  u -= pmf_mode;
  double pmf_up = pmf_mode;
  double pmf_down = pmf_mode;
  std::int64_t ku = mode;
  std::int64_t kd = mode;
  while (ku < hi || kd > lo) {
    if (ku < hi) {
      pmf_up *= step_ratio(ku);
      ++ku;
      if (u <= pmf_up) return ku;
      u -= pmf_up;
    }
    if (kd > lo) {
      --kd;
      pmf_down /= step_ratio(kd);
      if (u <= pmf_down) return kd;
      u -= pmf_down;
    }
  }
  // Rounding left a sliver of unclaimed mass; the mode is the safe answer.
  return mode;
}

/// Poisson(gamma) sampler. Knuth multiplication below gamma = 30, else the
/// simple normal-rounding approximation is avoided in favour of splitting:
/// Poisson(a+b) = Poisson(a) + Poisson(b) with a <= 30 chunks (exact).
template <typename Engine>
[[nodiscard]] std::int64_t poisson(double gamma, Engine& engine) noexcept {
  if (!(gamma > 0.0)) return 0;
  std::int64_t total = 0;
  while (gamma > 30.0) {
    // Split off an exact Poisson(30) component.
    constexpr double kChunk = 30.0;
    const double limit = std::exp(-kChunk);
    double product = uniform01(engine);
    std::int64_t count = 0;
    while (product > limit) {
      product *= uniform01(engine);
      ++count;
    }
    total += count;
    gamma -= kChunk;
  }
  const double limit = std::exp(-gamma);
  double product = uniform01(engine);
  std::int64_t count = 0;
  while (product > limit) {
    product *= uniform01(engine);
    ++count;
  }
  return total + count;
}

/// In-place Fisher–Yates shuffle.
template <typename T, typename Engine>
void shuffle(std::span<T> items, Engine& engine) noexcept {
  for (std::size_t i = items.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_below(i, engine));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

/// Samples `k` distinct indices from [0, n) (partial Fisher–Yates on an
/// index vector). Returned in random order.
template <typename Engine>
[[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(
    std::uint64_t n, std::uint64_t k, Engine& engine) {
  k = std::min(k, n);
  std::vector<std::uint64_t> indices(n);
  for (std::uint64_t i = 0; i < n; ++i) indices[i] = i;
  for (std::uint64_t i = 0; i < k; ++i) {
    const std::uint64_t j = i + uniform_below(n - i, engine);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace redund::rng
