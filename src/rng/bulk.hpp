// Vectorized bulk draws over keyed streams.
//
// Every coin the async runtime burns is keyed: stream k of master seed s
// yields a draw that depends only on (s, k), never on call order (see
// rng/engines.hpp first_draw). That independence is what makes *bulk*
// generation legal — a whole attempt wave's draws can be filled into one
// contiguous buffer up front and consumed later, and the outcome is
// byte-identical to issuing each scalar draw at its natural call site.
// The buffer is a pure cache over pure functions: it carries no state, so
// it is never checkpointed and resume cannot observe it.
//
// The kernels below evaluate the first_draw closed form (four SplitMix64
// steps + the xoshiro** output scramble) four streams at a time using
// GCC/Clang u64 vector lanes — all integer multiply/xor/shift, so the
// vector and scalar paths are bit-exact by construction. REDUND_SIMD=OFF
// compiles the scalar loop only.
//
// On top of the raw draws sit wave samplers for the single-uniform
// inversion distributions (Bernoulli, binomial BINV, hypergeometric,
// Poisson): each element i is drawn from stream keys[i], consuming the
// bulk-generated first uniform; the rare element whose sampler needs more
// than one uniform (binomial's waiting-time regime, a Poisson that walks
// past its first draw) falls back to the full engine for that element —
// still bit-identical to the scalar keyed call, pinned by
// tests/test_bulk_rng.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rng/distributions.hpp"
#include "rng/engines.hpp"

#ifndef REDUND_SIMD_ENABLED
#if defined(__GNUC__) || defined(__clang__)
#define REDUND_SIMD_ENABLED 1
#else
#define REDUND_SIMD_ENABLED 0
#endif
#endif

namespace redund::rng {

namespace detail {

#if REDUND_SIMD_ENABLED

// The 32-byte vector type predates any -mavx flag; since every helper here
// is inlined into this translation unit, the ABI-change warning is moot.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

using v4u64 = std::uint64_t __attribute__((vector_size(32)));

/// One SplitMix64 output step on four lane states (advances the states).
inline v4u64 splitmix_step(v4u64& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  v4u64 z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// first_draw(master_seed, key) on four keys at once; bit-identical to the
/// scalar closed form lane by lane.
inline v4u64 first_draw4(std::uint64_t master_seed, v4u64 keys) noexcept {
  v4u64 mixer = (keys + 1) * 0x9E3779B97F4A7C15ULL ^ master_seed;
  const v4u64 derived = splitmix_step(mixer) ^ splitmix_step(mixer);
  v4u64 seeder = derived;
  (void)splitmix_step(seeder);            // state_[0]: unused by draw one.
  const v4u64 s1 = splitmix_step(seeder);  // state_[1]: the whole draw.
  const v4u64 scaled = s1 * 5;
  return ((scaled << 7) | (scaled >> 57)) * 9;
}

#endif  // REDUND_SIMD_ENABLED

}  // namespace detail

/// out[i] = first_draw(master_seed, keys[i]) for i in [0, n).
inline void bulk_first_draw(std::uint64_t master_seed,
                            const std::uint64_t* keys, std::size_t n,
                            std::uint64_t* out) noexcept {
  std::size_t i = 0;
#if REDUND_SIMD_ENABLED
  for (; i + 4 <= n; i += 4) {
    detail::v4u64 k;
    __builtin_memcpy(&k, keys + i, sizeof(k));
    const detail::v4u64 draws = detail::first_draw4(master_seed, k);
    __builtin_memcpy(out + i, &draws, sizeof(draws));
  }
#endif
  for (; i < n; ++i) out[i] = first_draw(master_seed, keys[i]);
}

/// out[i] = first_draw(master_seed, base + i * stride) — the strided form
/// the (unit, attempt) key layouts use, without materializing the keys.
inline void bulk_first_draw_strided(std::uint64_t master_seed,
                                    std::uint64_t base, std::uint64_t stride,
                                    std::size_t n,
                                    std::uint64_t* out) noexcept {
  std::size_t i = 0;
#if REDUND_SIMD_ENABLED
  detail::v4u64 k = {base, base + stride, base + 2 * stride,
                     base + 3 * stride};
  const detail::v4u64 step = {4 * stride, 4 * stride, 4 * stride,
                              4 * stride};
  for (; i + 4 <= n; i += 4) {
    const detail::v4u64 draws = detail::first_draw4(master_seed, k);
    __builtin_memcpy(out + i, &draws, sizeof(draws));
    k += step;
  }
#endif
  for (; i < n; ++i) {
    out[i] = first_draw(master_seed, base + static_cast<std::uint64_t>(i) *
                                                stride);
  }
}

/// The canonical draw-to-uniform conversion (see uniform01).
[[nodiscard]] constexpr double draw_to_uniform01(std::uint64_t draw) noexcept {
  return static_cast<double>(draw >> 11) * 0x1.0p-53;
}

/// out[i] = first_bernoulli(p, master_seed, base + i * stride) as 0/1
/// bytes — the dropout-coin wave kernel.
inline void bulk_first_bernoulli_strided(double p, std::uint64_t master_seed,
                                         std::uint64_t base,
                                         std::uint64_t stride, std::size_t n,
                                         std::uint64_t* draw_scratch,
                                         std::uint8_t* out) noexcept {
  bulk_first_draw_strided(master_seed, base, stride, n, draw_scratch);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = draw_to_uniform01(draw_scratch[i]) < p ? 1 : 0;
  }
}

/// out[i] = first_bernoulli(p, master_seed, keys[i]) as 0/1 bytes — the
/// arbitrary-key wave form (mid-campaign reissue waves, where each unit
/// sits at its own attempt).
inline void bulk_first_bernoulli(double p, std::uint64_t master_seed,
                                 const std::uint64_t* keys, std::size_t n,
                                 std::uint64_t* draw_scratch,
                                 std::uint8_t* out) noexcept {
  bulk_first_draw(master_seed, keys, n, draw_scratch);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = draw_to_uniform01(draw_scratch[i]) < p ? 1 : 0;
  }
}

/// out[i] = binomial(trials, p, make_stream(master_seed, keys[i])).
/// The BINV inversion regime (trials * min(p, 1-p) < 30) consumes exactly
/// one uniform, served from the vectorized bulk draw; the waiting-time
/// regime re-derives the full engine per element.
inline void bulk_binomial(std::int64_t trials, double p,
                          std::uint64_t master_seed,
                          const std::uint64_t* keys, std::size_t n,
                          std::uint64_t* draw_scratch,
                          std::int64_t* out) noexcept {
  if (trials <= 0 || p <= 0.0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  if (p >= 1.0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = trials;
    return;
  }
  const bool flipped = p > 0.5;
  const double q = flipped ? 1.0 - p : p;
  if (!(static_cast<double>(trials) * q < 30.0)) {
    for (std::size_t i = 0; i < n; ++i) {
      auto engine = make_stream(master_seed, keys[i]);
      out[i] = binomial(trials, p, engine);
    }
    return;
  }
  bulk_first_draw(master_seed, keys, n, draw_scratch);
  const double s = q / (1.0 - q);
  const double base = std::pow(1.0 - q, static_cast<double>(trials));
  for (std::size_t i = 0; i < n; ++i) {
    const double u = draw_to_uniform01(draw_scratch[i]);
    double pmf = base;
    double cdf = base;
    std::int64_t successes = 0;
    while (cdf < u && successes < trials) {
      ++successes;
      pmf *= s * static_cast<double>(trials - successes + 1) /
             static_cast<double>(successes);
      cdf += pmf;
    }
    out[i] = flipped ? trials - successes : successes;
  }
}

/// out[i] = hypergeometric(population, marked, sample,
/// make_stream(master_seed, keys[i])). The mode-anchored inversion always
/// consumes exactly one uniform, so the whole wave runs off the bulk draw.
inline void bulk_hypergeometric(std::int64_t population, std::int64_t marked,
                                std::int64_t sample,
                                std::uint64_t master_seed,
                                const std::uint64_t* keys, std::size_t n,
                                std::uint64_t* draw_scratch,
                                std::int64_t* out) noexcept {
  bulk_first_draw(master_seed, keys, n, draw_scratch);
  for (std::size_t i = 0; i < n; ++i) {
    struct OneDraw {
      using result_type = std::uint64_t;
      std::uint64_t draw;
      static constexpr result_type min() noexcept { return 0; }
      static constexpr result_type max() noexcept {
        return ~std::uint64_t{0};
      }
      result_type operator()() noexcept { return draw; }
    } engine{draw_scratch[i]};
    out[i] = hypergeometric(population, marked, sample, engine);
  }
}

/// out[i] = poisson(gamma, make_stream(master_seed, keys[i])). The Knuth
/// walk's first uniform comes from the bulk draw; an element whose product
/// walk needs more uniforms (or gamma > 30, the chunked regime) re-derives
/// its full engine and replays from the second draw — bit-identical either
/// way.
inline void bulk_poisson(double gamma, std::uint64_t master_seed,
                         const std::uint64_t* keys, std::size_t n,
                         std::uint64_t* draw_scratch,
                         std::int64_t* out) noexcept {
  if (!(gamma > 0.0)) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  if (gamma > 30.0) {
    for (std::size_t i = 0; i < n; ++i) {
      auto engine = make_stream(master_seed, keys[i]);
      out[i] = poisson(gamma, engine);
    }
    return;
  }
  bulk_first_draw(master_seed, keys, n, draw_scratch);
  const double limit = std::exp(-gamma);
  for (std::size_t i = 0; i < n; ++i) {
    double product = draw_to_uniform01(draw_scratch[i]);
    if (product <= limit) {
      out[i] = 0;
      continue;
    }
    auto engine = make_stream(master_seed, keys[i]);
    (void)engine();  // Already consumed as the bulk first draw.
    std::int64_t count = 0;
    while (product > limit) {
      product *= uniform01(engine);
      ++count;
    }
    out[i] = count;
  }
}

}  // namespace redund::rng

#if REDUND_SIMD_ENABLED
#pragma GCC diagnostic pop
#endif
