#include "report/csv_export.hpp"

#include <fstream>
#include <stdexcept>

namespace redund::report {

std::string csv_directory_from_args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv-dir") {
      if (i + 1 >= argc) {
        throw std::invalid_argument("--csv-dir requires a directory argument");
      }
      return argv[i + 1];
    }
  }
  return {};
}

std::string export_csv(const Table& table, std::string_view directory,
                       std::string_view name) {
  if (directory.empty()) return {};
  std::string path = std::string(directory) + "/" + std::string(name) + ".csv";
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("export_csv: cannot create " + path);
  }
  table.write_csv(out);
  return path;
}

}  // namespace redund::report
