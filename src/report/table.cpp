#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace redund::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count != column count");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  const auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << (c == 0 ? "+-" : "-+-") << std::string(widths[c], '-');
    }
    out << "-+\n";
  };

  print_rule();
  print_line(headers_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_line(row);
    }
  }
  print_rule();
}

void Table::write_csv(std::ostream& out) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      const std::string& cell = cells[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (const char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    if (!row.empty()) emit(row);
  }
}

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string scientific(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*e", digits, value);
  return buffer;
}

std::string with_commas(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string result;
  result.reserve(digits.size() + digits.size() / 3 + 1);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (digits.size() - i) % 3 == 0) result += ',';
    result += digits[i];
  }
  return negative ? "-" + result : result;
}

std::string with_commas(double value) {
  return with_commas(static_cast<std::int64_t>(std::llround(value)));
}

}  // namespace redund::report
