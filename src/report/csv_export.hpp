// Optional CSV export for the benchmark harnesses.
//
// Every table/figure binary accepts `--csv-dir DIR`; when present, each
// table it prints is also written to DIR/<name>.csv so downstream plotting
// (gnuplot/matplotlib) can regenerate the paper's figures from the same run
// that produced the console output.
#pragma once

#include <string>
#include <string_view>

#include "report/table.hpp"

namespace redund::report {

/// Parses `--csv-dir DIR` from a main()'s argv. Returns the directory, or
/// an empty string when the flag is absent. Throws std::invalid_argument if
/// the flag is present without a value.
[[nodiscard]] std::string csv_directory_from_args(int argc,
                                                  const char* const* argv);

/// Writes `table` to `<directory>/<name>.csv` when directory is non-empty
/// (no-op otherwise). Returns the path written, or empty. Throws
/// std::runtime_error when the file cannot be created.
std::string export_csv(const Table& table, std::string_view directory,
                       std::string_view name);

}  // namespace redund::report
