// Plain-text table rendering for the benchmark harnesses and examples.
//
// Every table/figure reproduction binary prints the paper's rows through
// this formatter so outputs are uniform and greppable; write_csv() emits the
// same data for plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace redund::report {

/// A column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void add_separator();

  /// Renders with padded columns, header underline, and separators.
  void print(std::ostream& out) const;

  /// Emits RFC-4180-ish CSV (quotes cells containing commas or quotes);
  /// separators are skipped.
  void write_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // Empty vector = separator.
};

/// Fixed-precision double formatting ("%.*f").
[[nodiscard]] std::string fixed(double value, int digits = 4);

/// Scientific formatting for very small probabilities ("%.*e").
[[nodiscard]] std::string scientific(double value, int digits = 3);

/// Integers with thousands separators ("1,000,000").
[[nodiscard]] std::string with_commas(std::int64_t value);

/// Rounds a real task count for display with thousands separators.
[[nodiscard]] std::string with_commas(double value);

}  // namespace redund::report
