#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/contracts.hpp"

namespace redund::lp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

/// Fully updated dense tableau: rows are basic-variable equations, columns
/// are all variables (structural, slack/surplus, artificial), plus rhs.
struct Tableau {
  std::size_t rows = 0;
  std::size_t cols = 0;  // Excluding rhs.
  std::vector<double> a;  // rows x cols, row-major.
  std::vector<double> rhs;
  std::vector<std::size_t> basis;  // Column basic in each row.

  [[nodiscard]] double& at(std::size_t i, std::size_t j) noexcept {
    return a[i * cols + j];
  }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const noexcept {
    return a[i * cols + j];
  }

  void pivot(std::size_t pivot_row, std::size_t pivot_col) noexcept {
    REDUND_PRECONDITION(pivot_row < rows && pivot_col < cols,
                        "pivot element lies inside the tableau");
    const double pivot_value = at(pivot_row, pivot_col);
    REDUND_PRECONDITION(pivot_value != 0.0 && std::isfinite(pivot_value),
                        "pivot element is nonzero and finite");
    const double inv = 1.0 / pivot_value;
    for (std::size_t j = 0; j < cols; ++j) at(pivot_row, j) *= inv;
    rhs[pivot_row] *= inv;
    at(pivot_row, pivot_col) = 1.0;  // Kill representation noise.
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == pivot_row) continue;
      const double factor = at(i, pivot_col);
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        at(i, j) -= factor * at(pivot_row, j);
      }
      rhs[i] -= factor * rhs[pivot_row];
      at(i, pivot_col) = 0.0;
    }
    basis[pivot_row] = pivot_col;
  }
};

/// Reduced cost of column j under cost vector c: d_j = c_j - c_B^T (B^-1 A_j).
double reduced_cost(const Tableau& tableau, const std::vector<double>& costs,
                    std::size_t j) noexcept {
  double d = costs[j];
  for (std::size_t i = 0; i < tableau.rows; ++i) {
    const double entry = tableau.at(i, j);
    if (entry != 0.0) d -= costs[tableau.basis[i]] * entry;
  }
  return d;
}

enum class PhaseOutcome { kOptimal, kUnbounded, kIterationLimit };

#if REDUND_ENABLE_INVARIANTS
/// Basis sanity after a pivot: every basic column index is in range and
/// the numbers are still numbers. Deliberately structural-only — exact
/// properties of a correct implementation on any input. Near-feasibility
/// of the rhs is NOT asserted here: it is a numerical property, not an
/// implementation contract, and the row-equilibration ablation test runs
/// an ill-conditioned system where rounding error drives the rhs ~1e-4 of
/// the tableau scale negative while the algorithm behaves as documented.
bool tableau_consistent(const Tableau& tableau) {
  for (std::size_t i = 0; i < tableau.rows; ++i) {
    if (tableau.basis[i] >= tableau.cols) return false;
    if (!std::isfinite(tableau.rhs[i])) return false;
  }
  return true;
}
#endif

/// Runs primal simplex iterations under `costs` until optimality. Columns j
/// with allowed[j] == false may not enter the basis (used to lock out
/// artificials in phase 2).
PhaseOutcome run_phase(Tableau& tableau, const std::vector<double>& costs,
                       const std::vector<char>& allowed,
                       const SimplexOptions& options, int& pivots) {
  for (pivots = 0; pivots < options.max_pivots; ++pivots) {
    const bool use_bland = pivots >= options.dantzig_pivots;

    // Entering column: Dantzig (most negative reduced cost) early, Bland
    // (first negative) once degeneracy is suspected.
    std::size_t entering = tableau.cols;
    double best = -options.cost_tolerance;
    for (std::size_t j = 0; j < tableau.cols; ++j) {
      if (!allowed[j]) continue;
      const double d = reduced_cost(tableau, costs, j);
      if (d < best) {
        entering = j;
        if (use_bland) break;
        best = d;
      }
    }
    if (entering == tableau.cols) return PhaseOutcome::kOptimal;

    // Ratio test; Bland tie-break on the leaving basic variable's index.
    std::size_t leaving = tableau.rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < tableau.rows; ++i) {
      const double entry = tableau.at(i, entering);
      if (entry <= options.pivot_tolerance) continue;
      const double ratio = tableau.rhs[i] / entry;
      if (ratio < best_ratio - options.pivot_tolerance ||
          (ratio < best_ratio + options.pivot_tolerance &&
           (leaving == tableau.rows ||
            tableau.basis[i] < tableau.basis[leaving]))) {
        best_ratio = ratio;
        leaving = i;
      }
    }
    if (leaving == tableau.rows) return PhaseOutcome::kUnbounded;

    tableau.pivot(leaving, entering);
    REDUND_INVARIANT(tableau_consistent(tableau),
                     "simplex tableau stays basis-valid and near-feasible "
                     "after every pivot");
  }
  return PhaseOutcome::kIterationLimit;
}

}  // namespace

Solution SimplexSolver::solve(const Model& model) const {
  const std::size_t n = model.variable_count();
  const std::size_t m = model.constraint_count();

  // Count auxiliary columns.
  std::size_t slack_count = 0;
  std::size_t artificial_count = 0;
  for (const Constraint& c : model.constraints()) {
    // Normalize rhs >= 0 first to decide which auxiliaries the row needs.
    const bool negate = c.rhs < 0.0;
    Relation rel = c.relation;
    if (negate) {
      rel = rel == Relation::kLessEqual ? Relation::kGreaterEqual
            : rel == Relation::kGreaterEqual ? Relation::kLessEqual
                                             : Relation::kEqual;
    }
    if (rel != Relation::kEqual) ++slack_count;
    if (rel != Relation::kLessEqual) ++artificial_count;
  }

  Tableau tableau;
  tableau.rows = m;
  tableau.cols = n + slack_count + artificial_count;
  tableau.a.assign(tableau.rows * tableau.cols, 0.0);
  tableau.rhs.assign(m, 0.0);
  tableau.basis.assign(m, 0);

  std::vector<char> is_artificial(tableau.cols, 0);
  std::size_t next_slack = n;
  std::size_t next_artificial = n + slack_count;

  for (std::size_t i = 0; i < m; ++i) {
    const Constraint& c = model.constraints()[i];
    const bool negate = c.rhs < 0.0;
    const double sign = negate ? -1.0 : 1.0;
    Relation rel = c.relation;
    if (negate) {
      rel = rel == Relation::kLessEqual ? Relation::kGreaterEqual
            : rel == Relation::kGreaterEqual ? Relation::kLessEqual
                                             : Relation::kEqual;
    }
    // Row equilibration: divide the row by its largest structural
    // coefficient so rows with huge entries (e.g. binomial coefficients in
    // the S_m systems) do not wreck the pivoting numerics. This rescales
    // the constraint, not the solution set.
    double row_scale = 0.0;
    if (options_.row_equilibration) {
      for (const double coefficient : c.coefficients) {
        row_scale = std::max(row_scale, std::abs(coefficient));
      }
      row_scale = std::max(row_scale, std::abs(c.rhs));
    }
    const double inv_scale = row_scale > 0.0 ? 1.0 / row_scale : 1.0;
    for (std::size_t t = 0; t < c.variables.size(); ++t) {
      tableau.at(i, c.variables[t]) += sign * inv_scale * c.coefficients[t];
    }
    tableau.rhs[i] = sign * inv_scale * c.rhs;

    switch (rel) {
      case Relation::kLessEqual:
        tableau.at(i, next_slack) = 1.0;
        tableau.basis[i] = next_slack++;
        break;
      case Relation::kGreaterEqual:
        tableau.at(i, next_slack) = -1.0;  // Surplus.
        ++next_slack;
        tableau.at(i, next_artificial) = 1.0;
        is_artificial[next_artificial] = 1;
        tableau.basis[i] = next_artificial++;
        break;
      case Relation::kEqual:
        tableau.at(i, next_artificial) = 1.0;
        is_artificial[next_artificial] = 1;
        tableau.basis[i] = next_artificial++;
        break;
    }
  }

  Solution solution;

  // --- Phase 1: minimize the sum of artificials. ---
  if (artificial_count > 0) {
    std::vector<double> phase1_costs(tableau.cols, 0.0);
    for (std::size_t j = 0; j < tableau.cols; ++j) {
      if (is_artificial[j]) phase1_costs[j] = 1.0;
    }
    std::vector<char> all_allowed(tableau.cols, 1);
    const PhaseOutcome outcome = run_phase(tableau, phase1_costs, all_allowed,
                                           options_, solution.phase1_pivots);
    if (outcome == PhaseOutcome::kIterationLimit) {
      solution.status = SolveStatus::kIterationLimit;
      return solution;
    }
    // Phase-1 objective = sum over basic artificials of their value.
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (is_artificial[tableau.basis[i]]) infeasibility += tableau.rhs[i];
    }
    if (infeasibility > 1e-7 * (1.0 + std::abs(infeasibility))) {
      solution.status = SolveStatus::kInfeasible;
      return solution;
    }
    // Drive any remaining basic artificials (at value zero) out of the basis
    // where possible so phase 2 starts from a clean basis.
    for (std::size_t i = 0; i < m; ++i) {
      if (!is_artificial[tableau.basis[i]]) continue;
      for (std::size_t j = 0; j < n + slack_count; ++j) {
        if (std::abs(tableau.at(i, j)) > options_.pivot_tolerance) {
          tableau.pivot(i, j);
          break;
        }
      }
      // If no pivot exists the row is redundant; the artificial stays basic
      // at zero and is harmless because it can never increase (it is locked
      // out of entering and its row rhs is zero).
    }
  }

  // --- Phase 2: original objective (internally always minimized). ---
  const double sense_sign = model.sense() == Sense::kMinimize ? 1.0 : -1.0;
  std::vector<double> phase2_costs(tableau.cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    phase2_costs[j] = sense_sign * model.costs()[j];
  }
  std::vector<char> allowed(tableau.cols, 1);
  for (std::size_t j = 0; j < tableau.cols; ++j) {
    if (is_artificial[j]) allowed[j] = 0;
  }
  const PhaseOutcome outcome = run_phase(tableau, phase2_costs, allowed,
                                         options_, solution.phase2_pivots);
  if (outcome == PhaseOutcome::kIterationLimit) {
    solution.status = SolveStatus::kIterationLimit;
    return solution;
  }
  if (outcome == PhaseOutcome::kUnbounded) {
    solution.status = SolveStatus::kUnbounded;
    return solution;
  }

  solution.status = SolveStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (tableau.basis[i] < n) {
      // Clamp representation noise: variables are non-negative by model.
      solution.x[tableau.basis[i]] = std::max(0.0, tableau.rhs[i]);
    }
  }
  solution.objective = model.objective_value(solution.x);
  return solution;
}

}  // namespace redund::lp
