// Two-phase primal simplex solver for the models in lp/model.hpp.
//
// The S_k systems are small (tens of variables) but highly degenerate — the
// optimal vertex satisfies many constraints with equality — so the solver
// falls back to Bland's anti-cycling rule after a Dantzig-rule warm phase,
// which guarantees finite termination at the cost of extra pivots. Dense
// tableau storage is appropriate at this scale and keeps the implementation
// auditable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace redund::lp {

/// Outcome classification of a solve.
enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

[[nodiscard]] std::string to_string(SolveStatus status);

/// Result of SimplexSolver::solve.
struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  std::vector<double> x;      ///< Primal values (size = model variable count).
  double objective = 0.0;     ///< Objective at x (model sense).
  int phase1_pivots = 0;
  int phase2_pivots = 0;
};

/// Solver options.
struct SimplexOptions {
  double pivot_tolerance = 1e-9;   ///< Entries below this are treated as zero.
  double cost_tolerance = 1e-9;    ///< Reduced-cost optimality threshold.
  int max_pivots = 100000;         ///< Per-phase pivot budget.
  int dantzig_pivots = 2000;       ///< Pivots before switching to Bland's rule.
  /// Divide each constraint row by its largest coefficient before solving.
  /// Load-bearing for the S_m systems, whose rows mix O(1) and O(C(m,m/2))
  /// entries: without it the solver visibly misconverges from m ~ 20
  /// (ablation covered in tests/bench). Leave on unless you are measuring
  /// exactly that.
  bool row_equilibration = true;
};

/// Dense two-phase primal simplex. Stateless apart from options; safe to use
/// from multiple threads on distinct Model instances.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves `model`. On kOptimal the returned x is feasible
  /// (model.is_feasible(x)) and optimal to within the tolerances.
  [[nodiscard]] Solution solve(const Model& model) const;

 private:
  SimplexOptions options_;
};

}  // namespace redund::lp
