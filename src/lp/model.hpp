// Linear-program model builder.
//
// The assignment-minimizing distributions of the paper (Section 3.2) are
// solutions of the LPs S and S_k:
//
//   minimize   sum_i i * x_i                      (total assignments)
//   subject to sum_i x_i >= N                     (C_0: cover all tasks)
//              sum_{i>k} C(i,k) x_i >= eps/(1-eps) x_k   (C_k, k < dim)
//              x_i >= 0.
//
// This header provides a small general-purpose model type those systems (and
// the tests' independent oracles) are expressed in. All variables carry an
// implicit lower bound of zero, which is exactly the paper's setting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace redund::lp {

/// Relation of a linear constraint row to its right-hand side.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: sum_j coefficients[j] * x_{variables[j]} REL rhs.
/// Stored sparsely; a variable may appear at most once per constraint.
struct Constraint {
  std::vector<std::size_t> variables;  ///< Column indices.
  std::vector<double> coefficients;    ///< Parallel to `variables`.
  Relation relation = Relation::kGreaterEqual;
  double rhs = 0.0;
  std::string name;  ///< Diagnostic label (e.g. "C_3").
};

/// Objective sense.
enum class Sense { kMinimize, kMaximize };

/// A linear program over non-negative variables.
class Model {
 public:
  /// Adds a variable with objective coefficient `cost`; returns its index.
  std::size_t add_variable(double cost, std::string name = {}) {
    costs_.push_back(cost);
    variable_names_.push_back(std::move(name));
    return costs_.size() - 1;
  }

  /// Adds a constraint; dense `row` must have one entry per variable added
  /// so far (zeros are dropped internally). Returns the constraint index.
  std::size_t add_constraint_dense(const std::vector<double>& row,
                                   Relation relation, double rhs,
                                   std::string name = {});

  /// Adds a sparse constraint directly.
  std::size_t add_constraint(Constraint constraint) {
    constraints_.push_back(std::move(constraint));
    return constraints_.size() - 1;
  }

  void set_sense(Sense sense) noexcept { sense_ = sense; }

  [[nodiscard]] Sense sense() const noexcept { return sense_; }
  [[nodiscard]] std::size_t variable_count() const noexcept { return costs_.size(); }
  [[nodiscard]] std::size_t constraint_count() const noexcept {
    return constraints_.size();
  }
  [[nodiscard]] const std::vector<double>& costs() const noexcept { return costs_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }
  [[nodiscard]] const std::string& variable_name(std::size_t j) const {
    return variable_names_.at(j);
  }

  /// Evaluates the objective at a point.
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// True when `x` satisfies every constraint and non-negativity within
  /// `tolerance` (used by tests as an independent feasibility oracle).
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tolerance = 1e-7) const;

 private:
  std::vector<double> costs_;
  std::vector<std::string> variable_names_;
  std::vector<Constraint> constraints_;
  Sense sense_ = Sense::kMinimize;
};

}  // namespace redund::lp
