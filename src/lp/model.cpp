#include "lp/model.hpp"

#include <cmath>
#include <stdexcept>

namespace redund::lp {

std::size_t Model::add_constraint_dense(const std::vector<double>& row,
                                        Relation relation, double rhs,
                                        std::string name) {
  if (row.size() != costs_.size()) {
    throw std::invalid_argument(
        "Model::add_constraint_dense: row size must equal variable count");
  }
  Constraint constraint;
  constraint.relation = relation;
  constraint.rhs = rhs;
  constraint.name = std::move(name);
  for (std::size_t j = 0; j < row.size(); ++j) {
    if (row[j] != 0.0) {
      constraint.variables.push_back(j);
      constraint.coefficients.push_back(row[j]);
    }
  }
  constraints_.push_back(std::move(constraint));
  return constraints_.size() - 1;
}

double Model::objective_value(const std::vector<double>& x) const {
  double value = 0.0;
  const std::size_t n = std::min(x.size(), costs_.size());
  for (std::size_t j = 0; j < n; ++j) value += costs_[j] * x[j];
  return value;
}

bool Model::is_feasible(const std::vector<double>& x, double tolerance) const {
  if (x.size() < costs_.size()) return false;
  for (std::size_t j = 0; j < costs_.size(); ++j) {
    if (x[j] < -tolerance) return false;
  }
  for (const Constraint& constraint : constraints_) {
    double lhs = 0.0;
    for (std::size_t t = 0; t < constraint.variables.size(); ++t) {
      lhs += constraint.coefficients[t] * x[constraint.variables[t]];
    }
    // Scale the tolerance with the magnitude of the row so huge rows
    // (rhs ~ N = 1e6) do not fail on representation noise.
    const double scale =
        1.0 + std::abs(lhs) + std::abs(constraint.rhs);
    const double slack = lhs - constraint.rhs;
    switch (constraint.relation) {
      case Relation::kLessEqual:
        if (slack > tolerance * scale) return false;
        break;
      case Relation::kGreaterEqual:
        if (slack < -tolerance * scale) return false;
        break;
      case Relation::kEqual:
        if (std::abs(slack) > tolerance * scale) return false;
        break;
    }
  }
  return true;
}

}  // namespace redund::lp
