#include "platform/scheduler.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace redund::platform {

Scheduler::Scheduler(const core::RealizedPlan& plan) {
  for (std::size_t i = 0; i < plan.counts.size(); ++i) {
    const auto multiplicity = static_cast<std::int64_t>(i + 1);
    for (std::int64_t t = 0; t < plan.counts[i]; ++t) {
      tasks_.push_back({multiplicity, false});
    }
  }
  for (std::int64_t r = 0; r < plan.ringer_count; ++r) {
    tasks_.push_back({plan.ringer_multiplicity, true});
  }
  std::int64_t total_units = 0;
  for (const TaskInfo& task : tasks_) total_units += task.multiplicity;
  units_.reserve(static_cast<std::size_t>(total_units));
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (std::int64_t c = 0; c < tasks_[t].multiplicity; ++c) {
      units_.push_back({static_cast<std::int64_t>(t), 0});
    }
  }
  holders_by_task_.resize(tasks_.size());
}

bool Scheduler::holds_(ParticipantId participant, std::int64_t task) const {
  const auto& holders = holders_by_task_[static_cast<std::size_t>(task)];
  return std::find(holders.begin(), holders.end(), participant) !=
         holders.end();
}

void Scheduler::record_hold_(ParticipantId participant, std::int64_t task) {
  holders_by_task_[static_cast<std::size_t>(task)].push_back(participant);
}

void Scheduler::drop_hold_(ParticipantId participant, std::int64_t task) {
  auto& holders = holders_by_task_[static_cast<std::size_t>(task)];
  const auto it = std::find(holders.begin(), holders.end(), participant);
  if (it != holders.end()) {
    // Membership-only index: unordered, so swap-pop suffices.
    *it = holders.back();
    holders.pop_back();
  }
}

void Scheduler::deal(Registry& registry, rng::Xoshiro256StarStar& engine) {
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    holders_by_task_[t].clear();
    holders_by_task_[t].reserve(
        static_cast<std::size_t>(tasks_[t].multiplicity));
  }

  std::vector<ParticipantId> active;
  std::int64_t max_multiplicity = 0;
  for (const auto& record : registry.records()) {
    if (!record.blacklisted) active.push_back(record.id);
  }
  for (const TaskInfo& task : tasks_) {
    max_multiplicity = std::max(max_multiplicity, task.multiplicity);
  }
  if (static_cast<std::int64_t>(active.size()) < max_multiplicity) {
    throw std::invalid_argument(
        "Scheduler::deal: need at least max-multiplicity active identities "
        "to honour the one-copy-per-identity rule");
  }

  rng::shuffle(std::span<WorkUnit>(units_), engine);
  rng::shuffle(std::span<ParticipantId>(active), engine);

  std::size_t cursor = 0;
  for (WorkUnit& unit : units_) {
    // Hoisted once per unit: holds_() would re-index holders_by_task_ on
    // every candidate probe of the round-robin below.
    const std::vector<ParticipantId>& holders =
        holders_by_task_[static_cast<std::size_t>(unit.task)];
    // Round-robin with skip: try up to |active| identities.
    for (std::size_t tries = 0; tries < active.size(); ++tries) {
      const ParticipantId candidate = active[cursor];
      cursor = (cursor + 1) % active.size();
      bool held = false;
      for (const ParticipantId holder : holders) held |= holder == candidate;
      if (!held) {
        unit.assignee = candidate;
        record_hold_(candidate, unit.task);
        registry.record(candidate).assignments_completed += 1;
        break;
      }
      if (tries + 1 == active.size()) {
        throw std::runtime_error(
            "Scheduler::deal: could not place a unit without violating the "
            "one-copy rule");
      }
    }
  }
}

namespace {

/// Uniform pick over the active identities minus `excluded` (tiny,
/// active-only, duplicate-free; sorted in place here) — without
/// materializing the eligible list. Ids are dense record indices, so the
/// eligible list in record order is just the ascending ids with two
/// sorted exclusion lists (the registry's blacklist index and `excluded`)
/// punched out; the k-th eligible id falls out of one order-statistics
/// walk over those lists. Draws uniform_below with exactly the count the
/// materialized scan produced, so the chosen identity is bit-identical —
/// at O(blacklisted + excluded) instead of O(identities x holders).
std::optional<ParticipantId> pick_active_excluding(
    const Registry& registry, std::vector<ParticipantId>& excluded,
    rng::Xoshiro256StarStar& engine) {
  const std::int64_t eligible =
      registry.active_count() - static_cast<std::int64_t>(excluded.size());
  if (eligible <= 0) return std::nullopt;
  std::sort(excluded.begin(), excluded.end());
  std::uint64_t cursor =
      rng::uniform_below(static_cast<std::uint64_t>(eligible), engine);
  // Every excluded id at or below the cursor shifts it one id higher.
  // The two lists are disjoint (excluded holds no blacklisted id), so the
  // merged ascending walk visits each exclusion exactly once.
  const std::vector<ParticipantId>& black = registry.blacklisted_ids();
  std::size_t bi = 0;
  std::size_t ei = 0;
  while (bi < black.size() || ei < excluded.size()) {
    const bool from_black =
        bi < black.size() &&
        (ei >= excluded.size() || black[bi] < excluded[ei]);
    const ParticipantId at = from_black ? black[bi] : excluded[ei];
    if (static_cast<std::uint64_t>(at) > cursor) break;
    ++cursor;
    if (from_black) {
      ++bi;
    } else {
      ++ei;
    }
  }
  return static_cast<ParticipantId>(cursor);
}

}  // namespace

std::optional<ParticipantId> Scheduler::try_reassign_unit(
    std::size_t unit_index, Registry& registry,
    rng::Xoshiro256StarStar& engine) {
  if (unit_index >= units_.size()) {
    throw std::out_of_range("Scheduler::try_reassign_unit: bad unit index");
  }
  WorkUnit& unit = units_[unit_index];
  // The exclusion set is the current assignee plus the task's holders —
  // a handful of ids. Blacklisted ones are dropped (the blacklist index
  // already excludes them); the assignee is usually a holder too, so the
  // membership probe also deduplicates.
  std::vector<ParticipantId>& excluded = eligible_scratch_;
  excluded.clear();
  const auto exclude_active = [&](ParticipantId id) {
    if (registry.record(id).blacklisted) return;
    for (const ParticipantId seen : excluded) {
      if (seen == id) return;
    }
    excluded.push_back(id);
  };
  exclude_active(unit.assignee);
  for (const ParticipantId holder :
       holders_by_task_[static_cast<std::size_t>(unit.task)]) {
    exclude_active(holder);
  }
  const std::optional<ParticipantId> next =
      pick_active_excluding(registry, excluded, engine);
  if (!next) return std::nullopt;
  drop_hold_(unit.assignee, unit.task);
  unit.assignee = *next;
  record_hold_(*next, unit.task);
  registry.record(*next).assignments_completed += 1;
  return next;
}

std::optional<std::size_t> Scheduler::try_add_replica(
    std::int64_t task, Registry& registry, rng::Xoshiro256StarStar& engine) {
  if (task < 0 || task >= task_count()) {
    throw std::out_of_range("Scheduler::try_add_replica: bad task index");
  }
  // Holders are unique per task (one-copy rule) and the holder index
  // never retains a blacklisted id past its leave, but the cheap filter
  // keeps this path safe against either invariant loosening.
  std::vector<ParticipantId>& excluded = eligible_scratch_;
  excluded.clear();
  for (const ParticipantId holder :
       holders_by_task_[static_cast<std::size_t>(task)]) {
    if (!registry.record(holder).blacklisted) excluded.push_back(holder);
  }
  const std::optional<ParticipantId> assignee =
      pick_active_excluding(registry, excluded, engine);
  if (!assignee) return std::nullopt;
  units_.push_back({task, *assignee});
  record_hold_(*assignee, task);
  registry.record(*assignee).assignments_completed += 1;
  return units_.size() - 1;
}

void Scheduler::restore_units(std::vector<WorkUnit> units,
                              std::int64_t registry_size) {
  if (registry_size < 0) {
    throw std::invalid_argument("Scheduler::restore_units: bad registry size");
  }
  for (const WorkUnit& unit : units) {
    if (unit.task < 0 || unit.task >= task_count() ||
        static_cast<std::int64_t>(unit.assignee) >= registry_size) {
      throw std::invalid_argument(
          "Scheduler::restore_units: unit references an unknown task or "
          "identity");
    }
  }
  units_ = std::move(units);
  for (auto& holders : holders_by_task_) holders.clear();
  for (const WorkUnit& unit : units_) {
    record_hold_(unit.assignee, unit.task);
  }
}

std::vector<std::size_t> Scheduler::reassign_from(
    ParticipantId from, Registry& registry, rng::Xoshiro256StarStar& engine) {
  std::vector<ParticipantId> active;
  for (const auto& record : registry.records()) {
    if (!record.blacklisted) active.push_back(record.id);
  }
  if (active.empty()) {
    throw std::runtime_error("Scheduler::reassign_from: nobody left to work");
  }
  rng::shuffle(std::span<ParticipantId>(active), engine);

  std::vector<std::size_t> reassigned;
  std::size_t cursor = 0;
  for (std::size_t u = 0; u < units_.size(); ++u) {
    WorkUnit& unit = units_[u];
    if (unit.assignee != from) continue;
    drop_hold_(from, unit.task);
    for (std::size_t tries = 0; tries < active.size(); ++tries) {
      const ParticipantId candidate = active[cursor];
      cursor = (cursor + 1) % active.size();
      if (!holds_(candidate, unit.task)) {
        unit.assignee = candidate;
        record_hold_(candidate, unit.task);
        registry.record(candidate).assignments_completed += 1;
        reassigned.push_back(u);
        break;
      }
      if (tries + 1 == active.size()) {
        throw std::runtime_error(
            "Scheduler::reassign_from: could not place a reassigned unit");
      }
    }
  }
  return reassigned;
}

}  // namespace redund::platform
