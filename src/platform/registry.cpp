#include "platform/registry.hpp"

#include <stdexcept>

namespace redund::platform {

ParticipantId Registry::enroll(Principal principal, std::string name) {
  const auto id = static_cast<ParticipantId>(records_.size());
  if (name.empty()) {
    name = (principal == Principal::kAdversary ? "sybil" : "user") +
           std::to_string(id);
  }
  records_.push_back({id, std::move(name), principal, false, 0, 0, 0});
  return id;
}

ParticipantId Registry::enroll_sybils(std::int64_t count) {
  if (count < 1) {
    throw std::invalid_argument("Registry::enroll_sybils: count must be >= 1");
  }
  const ParticipantId first = enroll(Principal::kAdversary);
  for (std::int64_t i = 1; i < count; ++i) {
    enroll(Principal::kAdversary);
  }
  return first;
}

void Registry::blacklist(ParticipantId id) { record(id).blacklisted = true; }

const ParticipantRecord& Registry::record(ParticipantId id) const {
  if (id >= records_.size()) {
    throw std::out_of_range("Registry::record: unknown participant id");
  }
  return records_[id];
}

ParticipantRecord& Registry::record(ParticipantId id) {
  if (id >= records_.size()) {
    throw std::out_of_range("Registry::record: unknown participant id");
  }
  return records_[id];
}

std::int64_t Registry::active_count() const noexcept {
  std::int64_t active = 0;
  for (const auto& r : records_) active += r.blacklisted ? 0 : 1;
  return active;
}

std::int64_t Registry::blacklisted_count() const noexcept {
  return size() - active_count();
}

std::int64_t Registry::adversary_count() const noexcept {
  std::int64_t count = 0;
  for (const auto& r : records_) {
    count += r.principal == Principal::kAdversary ? 1 : 0;
  }
  return count;
}

}  // namespace redund::platform
