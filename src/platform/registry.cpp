#include "platform/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace redund::platform {

ParticipantId Registry::enroll(Principal principal, std::string name) {
  const auto id = static_cast<ParticipantId>(records_.size());
  if (name.empty()) {
    name = (principal == Principal::kAdversary ? "sybil" : "user") +
           std::to_string(id);
  }
  records_.push_back({id, std::move(name), principal, false, 0, 0, 0});
  return id;
}

ParticipantId Registry::enroll_sybils(std::int64_t count) {
  if (count < 1) {
    throw std::invalid_argument("Registry::enroll_sybils: count must be >= 1");
  }
  const ParticipantId first = enroll(Principal::kAdversary);
  for (std::int64_t i = 1; i < count; ++i) {
    enroll(Principal::kAdversary);
  }
  return first;
}

void Registry::blacklist(ParticipantId id) { set_blacklisted(id, true); }

void Registry::set_blacklisted(ParticipantId id, bool on) {
  ParticipantRecord& target = record(id);
  if (target.blacklisted == on) return;
  target.blacklisted = on;
  const auto at =
      std::lower_bound(blacklisted_ids_.begin(), blacklisted_ids_.end(), id);
  if (on) {
    blacklisted_ids_.insert(at, id);
  } else {
    blacklisted_ids_.erase(at);
  }
}

const ParticipantRecord& Registry::record(ParticipantId id) const {
  if (id >= records_.size()) {
    throw std::out_of_range("Registry::record: unknown participant id");
  }
  return records_[id];
}

ParticipantRecord& Registry::record(ParticipantId id) {
  if (id >= records_.size()) {
    throw std::out_of_range("Registry::record: unknown participant id");
  }
  return records_[id];
}

std::int64_t Registry::active_count() const noexcept {
  return size() - blacklisted_count();
}

std::int64_t Registry::blacklisted_count() const noexcept {
  return static_cast<std::int64_t>(blacklisted_ids_.size());
}

std::int64_t Registry::adversary_count() const noexcept {
  std::int64_t count = 0;
  for (const auto& r : records_) {
    count += r.principal == Principal::kAdversary ? 1 : 0;
  }
  return count;
}

}  // namespace redund::platform
