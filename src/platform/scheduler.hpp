// Work-unit scheduling: how the supervisor deals the assignment multiset to
// registered identities.
//
// Implements the standard fielded rule (BOINC-style): no identity receives
// two copies of the same task. Crucially, the rule binds per *identity* —
// an adversary principal operating many Sybil identities walks straight
// through it, which is exactly why the paper treats "the adversary controls
// k copies of a task" as the threat unit.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/realize.hpp"
#include "platform/registry.hpp"
#include "rng/engines.hpp"

namespace redund::platform {

/// One copy of one task, as handed to a participant.
struct WorkUnit {
  std::int64_t task = 0;          ///< Dense task index.
  ParticipantId assignee = 0;     ///< Identity holding this copy.
};

/// Immutable description of one task in the campaign.
struct TaskInfo {
  std::int64_t multiplicity = 0;
  bool is_ringer = false;
};

/// Builds the task list and assignment multiset of a realized plan and
/// deals every unit to the active identities.
class Scheduler {
 public:
  /// Materializes tasks and units from `plan` (real tasks first, then
  /// ringers, matching sim::Workload's layout).
  explicit Scheduler(const core::RealizedPlan& plan);

  /// Deals all units: units are shuffled, then offered to active identities
  /// round-robin; an identity already holding a copy of the unit's task is
  /// skipped (the one-copy-per-identity rule). Requires at least
  /// max-multiplicity active identities. Populates units().
  void deal(Registry& registry, rng::Xoshiro256StarStar& engine);

  /// Reassigns every unit currently held by `from` to active *honest-so-far*
  /// identities (used by the supervisor's reactive path after blacklisting;
  /// the replacement identity is chosen round-robin among non-blacklisted
  /// identities, still honouring the one-copy rule). Returns the indices of
  /// the reassigned units.
  std::vector<std::size_t> reassign_from(ParticipantId from,
                                         Registry& registry,
                                         rng::Xoshiro256StarStar& engine);

  /// Moves the single unit `unit_index` to an active identity other than
  /// its current holder, honouring the one-copy rule (used by the async
  /// runtime's timeout re-issue path). The replacement is drawn uniformly
  /// among eligible identities. Returns the new assignee, or nullopt —
  /// leaving the unit untouched — when no active identity can take it.
  std::optional<ParticipantId> try_reassign_unit(
      std::size_t unit_index, Registry& registry,
      rng::Xoshiro256StarStar& engine);

  /// Appends one extra copy (replica) of `task` and deals it to an active
  /// identity not already holding a copy, drawn uniformly among eligible
  /// identities (the async runtime's adaptive/INCONCLUSIVE replication).
  /// Returns the new unit's index, or nullopt when every active identity
  /// already holds the task.
  std::optional<std::size_t> try_add_replica(std::int64_t task,
                                             Registry& registry,
                                             rng::Xoshiro256StarStar& engine);

  /// Reinstates a checkpointed unit table (initial deal plus appended
  /// replicas, in creation order) and rebuilds the hold index from it —
  /// holds are a pure function of the current assignments, which is what
  /// makes the scheduler checkpointable by serializing units() alone.
  /// `registry_size` sizes the hold index (identities enrolled at restore
  /// time). Throws std::invalid_argument on an inconsistent table.
  void restore_units(std::vector<WorkUnit> units, std::int64_t registry_size);

  [[nodiscard]] const std::vector<TaskInfo>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] const std::vector<WorkUnit>& units() const noexcept {
    return units_;
  }
  [[nodiscard]] std::int64_t task_count() const noexcept {
    return static_cast<std::int64_t>(tasks_.size());
  }
  [[nodiscard]] std::int64_t unit_count() const noexcept {
    return static_cast<std::int64_t>(units_.size());
  }

 private:
  /// True iff `participant` already holds a copy of `task`.
  [[nodiscard]] bool holds_(ParticipantId participant, std::int64_t task) const;
  void record_hold_(ParticipantId participant, std::int64_t task);
  void drop_hold_(ParticipantId participant, std::int64_t task);

  std::vector<TaskInfo> tasks_;
  std::vector<WorkUnit> units_;
  // holders_by_task_[t] = identities currently holding a copy of task t,
  // unordered. A task has at most multiplicity + replicas holders, so a
  // membership probe is a short linear scan over one cache line — the
  // per-participant sorted index this replaces cost a binary search over
  // hundreds of entries on every deal offer.
  std::vector<std::vector<ParticipantId>> holders_by_task_;
  std::vector<ParticipantId> eligible_scratch_;  ///< Reused by try_* paths.
};

}  // namespace redund::platform
