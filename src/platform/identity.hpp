// Participant identities for the volunteer-computing platform layer.
//
// The paper's threat model (Section 1, footnote 1) rests on identities being
// cheap: "A dedicated individual can obtain hundreds of user names, each of
// which can be assigned thousands of tasks" — SETI@home saw days with more
// than 5,000 new user names. The platform therefore models *identities*
// (what the supervisor sees) separately from *principals* (who actually
// controls them): one adversary principal may own many identities.
#pragma once

#include <cstdint>
#include <string>

namespace redund::platform {

/// Dense identifier the supervisor assigns at registration.
using ParticipantId = std::uint32_t;

/// Who really operates an identity. kAdversary identities collude: they
/// share knowledge of every assignment any of them holds.
enum class Principal { kHonest, kAdversary };

/// The supervisor-visible record for one registered identity.
struct ParticipantRecord {
  ParticipantId id = 0;
  std::string name;                 ///< Display name ("user1234").
  Principal principal = Principal::kHonest;  ///< Ground truth (sim only).
  bool blacklisted = false;         ///< Supervisor reaction state.
  std::int64_t assignments_completed = 0;
  std::int64_t credit = 0;          ///< Completed-work credit (BOINC-style).
  std::int64_t wrong_results = 0;   ///< Ground-truth wrong submissions.
};

}  // namespace redund::platform
