// Portable SIMD lane primitives for the supervisor's SoA hot paths.
//
// The runtime's data-oriented tables (u8 unit-state bytes, u32 epoch
// words, u32 assignee ids, packed task-latch flags, the u8 adversary
// bitmap) are exactly the layouts wide compares want: one cache line of
// the state lane holds 64 units. The primitives here process those lanes
// 16/32 at a time using GCC/Clang vector extensions — portable "intrinsics
// by type", lowered to SSE2/AVX2/NEON by the target — behind the
// REDUND_SIMD build option (CMake -DREDUND_SIMD=OFF forces the scalar
// fallback at compile time).
//
// Determinism contract: every primitive is a pure function over integer
// lanes, and the scalar fallback is the definition — the vector bodies
// must produce byte-identical results (tests/test_simd.cpp pins this on
// every lane-boundary size, and the CI matrix diffs full campaign
// fingerprints between the two builds). To let ONE binary prove the
// equivalence, `set_force_scalar(true)` routes every call to the scalar
// body at runtime.
#pragma once

#include <cstddef>
#include <cstdint>

#ifndef REDUND_SIMD_ENABLED
#if defined(__GNUC__) || defined(__clang__)
#define REDUND_SIMD_ENABLED 1
#else
#define REDUND_SIMD_ENABLED 0
#endif
#endif

namespace redund::platform::simd {

/// True when the vector bodies were compiled in (REDUND_SIMD=ON and a
/// compiler with vector extensions).
inline constexpr bool kCompiledVector = REDUND_SIMD_ENABLED != 0;

/// Runtime escape hatch: force every primitive onto its scalar body so a
/// single binary can compare the two implementations. Test-only; reads of
/// the flag are unsynchronized, so flip it only between campaigns.
void set_force_scalar(bool force) noexcept;
[[nodiscard]] bool force_scalar() noexcept;

/// "vector" or "scalar" — whichever implementation calls currently take.
[[nodiscard]] const char* active_impl() noexcept;

/// live[i] = 1 when state[i] == want_state && epoch[i] == want_epoch[i],
/// else 0, for i in [0, n). The batch-drain liveness test over a
/// consecutive-subject event wave: `state`/`epoch` point into the unit
/// table's lanes, `want_epoch` is the wave's per-event epoch stamps.
void lanes_live(const std::uint8_t* state, std::uint8_t want_state,
                const std::uint32_t* epoch, const std::uint32_t* want_epoch,
                std::size_t n, std::uint8_t* live) noexcept;

/// Number of bytes in [p, p + n) equal to `want` — state-lane census
/// (in-flight counts, unfinished-task counts, straggler counts).
[[nodiscard]] std::size_t count_eq_u8(const std::uint8_t* p, std::size_t n,
                                      std::uint8_t want) noexcept;

/// Number of bytes in [flags, flags + n) with all bits of `bit_mask` set —
/// the packed task-latch census (e.g. how many tasks latched a mismatch).
[[nodiscard]] std::size_t count_flag_bits(const std::uint8_t* flags,
                                          std::size_t n,
                                          std::uint8_t bit_mask) noexcept;

/// Writes the ascending indices i with keys[i] == key && state[i] == want
/// into out (capacity >= n) and returns how many matched. The two-lane
/// participant sweep (assignee id + unit state) behind churn/blacklist
/// reassignment.
std::size_t collect_matches(const std::uint32_t* keys, std::uint32_t key,
                            const std::uint8_t* state, std::uint8_t want,
                            std::size_t n, std::uint32_t* out) noexcept;

}  // namespace redund::platform::simd
