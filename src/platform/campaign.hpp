// End-to-end campaign orchestration: the supervisor's full loop.
//
//   enroll -> deal -> compute -> verify -> react -> report
//
// This is the operational layer the paper assumes around its mathematics:
// a supervisor distributes a realized redundancy plan to honest volunteers
// and adversary-controlled Sybil identities, collects result values,
// verifies by copy agreement (plus ringer ground truth), resolves
// mismatches by a configurable policy, and — per the paper's Section 1
// caveat that detection "alerts the supervisor to the presence of an active
// adversary, allowing for potential reactive measures" — optionally
// blacklists caught identities and reassigns their outstanding work.
//
// Benign faults are modelled too (each honest unit is independently wrong
// with probability benign_error_rate), which is what motivates the
// Section-7 minimum-multiplicity floor: with every task at multiplicity
// >= 2, a single benign error surfaces as a mismatch instead of silently
// corrupting a singleton task.
#pragma once

#include <cstdint>
#include <vector>

#include "core/realize.hpp"
#include "platform/registry.hpp"
#include "platform/scheduler.hpp"
#include "rng/engines.hpp"
#include "sim/adversary.hpp"

namespace redund::platform {

/// How the supervisor resolves a task whose copies disagree.
enum class Resolution {
  kRecompute,     ///< Supervisor recomputes the task itself (trusted, costly).
  kMajorityVote,  ///< Accept the plurality value; recompute only on ties.
};

/// Campaign parameters.
struct CampaignConfig {
  core::RealizedPlan plan;              ///< What to distribute.
  std::int64_t honest_participants = 0; ///< Honest identities to enroll.
  std::int64_t sybil_identities = 0;    ///< Adversary identities to enroll.
  sim::CheatStrategy strategy = sim::CheatStrategy::kAlwaysCheat;
  std::int64_t tuple_size = 1;          ///< For the tuple strategies.
  double benign_error_rate = 0.0;       ///< Honest per-unit error probability.
  Resolution resolution = Resolution::kRecompute;
  bool reactive = true;                 ///< Blacklist + reassign on detection.
  std::uint64_t seed = 0xCA4461D;
};

/// What happened, from the supervisor's books and from ground truth.
struct CampaignReport {
  std::int64_t tasks = 0;
  std::int64_t units = 0;

  // Supervisor-visible outcomes.
  std::int64_t accepted_clean = 0;       ///< Copies agreed (or ringer OK).
  std::int64_t mismatches_detected = 0;  ///< Tasks whose copies disagreed.
  std::int64_t ringer_catches = 0;       ///< Ringers catching wrong values.
  std::int64_t supervisor_recomputes = 0;
  std::int64_t requeued_units = 0;
  std::int64_t blacklisted_identities = 0;

  // Ground-truth outcomes (what a simulation can additionally see).
  std::int64_t final_correct_tasks = 0;
  std::int64_t final_corrupt_tasks = 0;  ///< Wrong value in accepted output.
  std::int64_t adversary_cheat_attempts = 0;
  std::int64_t false_accusations = 0;    ///< Honest identities blacklisted.

  [[nodiscard]] bool alarm_fired() const noexcept {
    return mismatches_detected + ringer_catches > 0;
  }
  [[nodiscard]] double corruption_rate() const noexcept {
    return tasks > 0 ? static_cast<double>(final_corrupt_tasks) /
                           static_cast<double>(tasks)
                     : 0.0;
  }
};

/// Runs one full campaign. Deterministic given config.seed.
[[nodiscard]] CampaignReport run_campaign(const CampaignConfig& config);

/// Runs one campaign round against an existing registry (blacklist state
/// carries over). `round_seed` keys this round's randomness.
[[nodiscard]] CampaignReport run_campaign_round(const CampaignConfig& config,
                                                Registry& registry,
                                                std::uint64_t round_seed);

/// Runs `rounds` consecutive campaigns over a persistent registry — the
/// supervisor/adversary arms race. Identities are cheap (paper footnote 1:
/// SETI@home saw > 5,000 new user names in a day), so after each round the
/// adversary enrolls `sybil_replenishment` fresh identities to replace the
/// blacklisted ones. Each round distributes config.plan anew (a fresh batch
/// of N tasks). Returns one report per round.
[[nodiscard]] std::vector<CampaignReport> run_campaign_series(
    const CampaignConfig& config, std::int64_t rounds,
    std::int64_t sybil_replenishment);

}  // namespace redund::platform
