#include "platform/campaign.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "rng/distributions.hpp"

namespace redund::platform {

namespace {

/// Ground-truth result of a task: a keyed hash, so honest computation is
/// deterministic and the supervisor can recompute it at will.
std::uint64_t truth_value(std::uint64_t seed, std::int64_t task) {
  rng::SplitMix64 mixer(seed ^ (0x9E3779B97F4A7C15ULL *
                                static_cast<std::uint64_t>(task + 1)));
  return mixer();
}

/// The colluders' agreed wrong value for a task: identical across all their
/// copies (the paper's cheating model), distinct from the truth.
std::uint64_t collusion_value(std::uint64_t seed, std::int64_t task) {
  return truth_value(seed, task) ^ 0xBAD0BEEFCAFEF00DULL;
}

}  // namespace

namespace {

void validate_config(const CampaignConfig& config) {
  if (config.honest_participants < 1) {
    throw std::invalid_argument(
        "run_campaign: need at least one honest participant");
  }
  if (config.sybil_identities < 0 || config.benign_error_rate < 0.0 ||
      config.benign_error_rate >= 1.0) {
    throw std::invalid_argument("run_campaign: bad adversary/error settings");
  }
}

}  // namespace

CampaignReport run_campaign(const CampaignConfig& config) {
  validate_config(config);
  Registry registry;
  for (std::int64_t i = 0; i < config.honest_participants; ++i) {
    registry.enroll(Principal::kHonest);
  }
  if (config.sybil_identities > 0) {
    registry.enroll_sybils(config.sybil_identities);
  }
  return run_campaign_round(config, registry, config.seed);
}

std::vector<CampaignReport> run_campaign_series(const CampaignConfig& config,
                                                std::int64_t rounds,
                                                std::int64_t sybil_replenishment) {
  validate_config(config);
  if (rounds < 1 || sybil_replenishment < 0) {
    throw std::invalid_argument(
        "run_campaign_series: rounds >= 1, replenishment >= 0");
  }
  Registry registry;
  for (std::int64_t i = 0; i < config.honest_participants; ++i) {
    registry.enroll(Principal::kHonest);
  }
  if (config.sybil_identities > 0) {
    registry.enroll_sybils(config.sybil_identities);
  }
  std::vector<CampaignReport> reports;
  reports.reserve(static_cast<std::size_t>(rounds));
  for (std::int64_t round = 0; round < rounds; ++round) {
    if (round > 0 && sybil_replenishment > 0) {
      registry.enroll_sybils(sybil_replenishment);
    }
    reports.push_back(run_campaign_round(
        config, registry,
        config.seed ^ (0x9E3779B97F4A7C15ULL *
                       static_cast<std::uint64_t>(round + 1))));
  }
  return reports;
}

CampaignReport run_campaign_round(const CampaignConfig& config,
                                  Registry& registry,
                                  std::uint64_t round_seed) {
  Scheduler scheduler(config.plan);
  auto engine = rng::make_stream(round_seed, 0);
  scheduler.deal(registry, engine);

  const auto& tasks = scheduler.tasks();
  const auto& units = scheduler.units();
  const auto task_count = static_cast<std::size_t>(scheduler.task_count());

  CampaignReport report;
  report.tasks = scheduler.task_count();
  report.units = scheduler.unit_count();

  // Index units by task (the unit -> task mapping never changes).
  std::vector<std::vector<std::size_t>> units_by_task(task_count);
  for (std::size_t u = 0; u < units.size(); ++u) {
    units_by_task[static_cast<std::size_t>(units[u].task)].push_back(u);
  }

  // The adversary's collective view: copies held per task across all Sybils.
  std::vector<std::int64_t> adversary_held(task_count, 0);
  for (const WorkUnit& unit : units) {
    if (registry.record(unit.assignee).principal == Principal::kAdversary) {
      ++adversary_held[static_cast<std::size_t>(unit.task)];
    }
  }
  const sim::AdversaryConfig decision{.proportion = 0.0,
                                      .strategy = config.strategy,
                                      .tuple_size = config.tuple_size};
  std::vector<char> adversary_cheats(task_count, 0);
  for (std::size_t t = 0; t < task_count; ++t) {
    if (adversary_held[t] > 0 &&
        decision.should_cheat(adversary_held[t])) {
      adversary_cheats[t] = 1;
      ++report.adversary_cheat_attempts;
    }
  }

  // --- Compute phase. `lying` controls whether Sybils still execute the
  // collusion plan (they stop once the alarm has fired and reaction began).
  std::vector<std::uint64_t> values(units.size(), 0);
  const auto compute_unit = [&](std::size_t u, bool lying) {
    const WorkUnit& unit = units[u];
    const std::uint64_t truth = truth_value(round_seed, unit.task);
    ParticipantRecord& record = registry.record(unit.assignee);
    std::uint64_t value = truth;
    if (record.principal == Principal::kAdversary) {
      if (lying && adversary_cheats[static_cast<std::size_t>(unit.task)]) {
        value = collusion_value(round_seed, unit.task);
      }
    } else if (config.benign_error_rate > 0.0) {
      // Per-unit stream so requeues stay deterministic.
      auto unit_engine = rng::make_stream(round_seed ^ 0xE44EULL, u);
      if (rng::bernoulli(config.benign_error_rate, unit_engine)) {
        // Uncoordinated corruption: unique per unit, never the collusion
        // value and never the truth.
        value = truth ^ (0x1ULL + (unit_engine() | 0x2ULL));
      }
    }
    if (value != truth) ++record.wrong_results;
    values[u] = value;
  };
  for (std::size_t u = 0; u < units.size(); ++u) compute_unit(u, true);

  // --- Verify phase. Returns the identities caught submitting a value the
  // supervisor concluded was wrong; fills per-task accepted values.
  std::vector<std::uint64_t> accepted(task_count, 0);
  std::vector<char> task_resolved(task_count, 0);
  std::set<ParticipantId> flagged;

  const auto verify_task = [&](std::size_t t, bool allow_flagging) {
    const std::uint64_t truth = truth_value(round_seed, static_cast<std::int64_t>(t));
    const auto& unit_indices = units_by_task[t];

    if (tasks[t].is_ringer) {
      // The supervisor knows the answer outright.
      accepted[t] = truth;
      task_resolved[t] = 1;
      bool caught = false;
      for (const std::size_t u : unit_indices) {
        if (values[u] != truth) {
          caught = true;
          if (allow_flagging) flagged.insert(units[u].assignee);
        }
      }
      if (caught) ++report.ringer_catches;
      return;
    }

    bool all_equal = true;
    for (const std::size_t u : unit_indices) {
      all_equal &= values[u] == values[unit_indices.front()];
    }
    if (all_equal) {
      accepted[t] = values[unit_indices.front()];
      task_resolved[t] = 1;
      ++report.accepted_clean;
      return;
    }

    ++report.mismatches_detected;
    std::uint64_t resolved = 0;
    if (config.resolution == Resolution::kRecompute) {
      ++report.supervisor_recomputes;
      resolved = truth;
    } else {
      // Majority vote; recompute on ties.
      std::map<std::uint64_t, int> votes;
      for (const std::size_t u : unit_indices) ++votes[values[u]];
      int best = 0;
      bool tie = false;
      for (const auto& [value, count] : votes) {
        if (count > best) {
          best = count;
          resolved = value;
          tie = false;
        } else if (count == best) {
          tie = true;
        }
      }
      if (tie) {
        ++report.supervisor_recomputes;
        resolved = truth;
      }
    }
    accepted[t] = resolved;
    task_resolved[t] = 1;
    if (allow_flagging) {
      for (const std::size_t u : unit_indices) {
        if (values[u] != resolved) {
          flagged.insert(units[u].assignee);
          if (values[u] == truth) ++report.false_accusations;
        }
      }
    }
  };
  for (std::size_t t = 0; t < task_count; ++t) verify_task(t, true);

  // --- Reaction phase: blacklist caught identities, requeue their work,
  // and re-verify the affected tasks (no further flagging; the point is to
  // restore output integrity once the alarm has fired).
  if (config.reactive && !flagged.empty()) {
    std::set<std::size_t> affected_tasks;
    for (const ParticipantId id : flagged) {
      registry.blacklist(id);
      ++report.blacklisted_identities;
    }
    for (const ParticipantId id : flagged) {
      const auto requeued = scheduler.reassign_from(id, registry, engine);
      report.requeued_units += static_cast<std::int64_t>(requeued.size());
      for (const std::size_t u : requeued) {
        compute_unit(u, /*lying=*/false);
        affected_tasks.insert(static_cast<std::size_t>(units[u].task));
      }
    }
    for (const std::size_t t : affected_tasks) {
      // Re-resolution of a previously resolved task: recount from scratch.
      // (Counters for mismatches/recomputes intentionally accumulate — the
      // supervisor really did the work twice.)
      verify_task(t, false);
    }
  }

  // --- Ground-truth audit of the accepted output.
  for (std::size_t t = 0; t < task_count; ++t) {
    const std::uint64_t truth = truth_value(round_seed, static_cast<std::int64_t>(t));
    if (accepted[t] == truth) {
      ++report.final_correct_tasks;
    } else {
      ++report.final_corrupt_tasks;
    }
  }
  return report;
}

}  // namespace redund::platform
