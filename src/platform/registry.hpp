// Participant registry: registration, Sybil enrollment, blacklisting.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/identity.hpp"

namespace redund::platform {

/// The supervisor's book of registered identities.
///
/// Not thread-safe: the registry belongs to the (single) supervisor; Monte
/// Carlo parallelism runs one platform instance per replica.
class Registry {
 public:
  /// Registers one identity; returns its id.
  ParticipantId enroll(Principal principal, std::string name = {});

  /// Registers `count` adversary-controlled identities at once (the cheap
  /// Sybil enrollment of footnote 1). Returns the first new id; ids are
  /// contiguous.
  ParticipantId enroll_sybils(std::int64_t count);

  /// Marks an identity blacklisted; its future work requests are refused.
  void blacklist(ParticipantId id);

  /// Sets or clears the blacklist mark, keeping the sorted blacklist
  /// index in sync. Every mutation of ParticipantRecord::blacklisted must
  /// go through here (or blacklist()) — the schedulers' eligible-count
  /// arithmetic reads the index instead of scanning the records.
  void set_blacklisted(ParticipantId id, bool on);

  [[nodiscard]] const ParticipantRecord& record(ParticipantId id) const;
  [[nodiscard]] ParticipantRecord& record(ParticipantId id);

  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(records_.size());
  }
  [[nodiscard]] std::int64_t active_count() const noexcept;
  [[nodiscard]] std::int64_t blacklisted_count() const noexcept;
  [[nodiscard]] std::int64_t adversary_count() const noexcept;

  [[nodiscard]] const std::vector<ParticipantRecord>& records() const noexcept {
    return records_;
  }

  /// Blacklisted ids in ascending order (maintained by set_blacklisted).
  [[nodiscard]] const std::vector<ParticipantId>& blacklisted_ids()
      const noexcept {
    return blacklisted_ids_;
  }

 private:
  std::vector<ParticipantRecord> records_;
  std::vector<ParticipantId> blacklisted_ids_;  ///< Ascending id order.
};

}  // namespace redund::platform
