#include "platform/simd.hpp"

namespace redund::platform::simd {

namespace {

bool g_force_scalar = false;

// ------------------------------------------------------------ scalar bodies
//
// These are the definitions; the vector bodies below must match them
// byte-for-byte on every input.

void lanes_live_scalar(const std::uint8_t* state, std::uint8_t want_state,
                       const std::uint32_t* epoch,
                       const std::uint32_t* want_epoch, std::size_t n,
                       std::uint8_t* live) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    live[i] =
        (state[i] == want_state && epoch[i] == want_epoch[i]) ? 1 : 0;
  }
}

std::size_t count_eq_u8_scalar(const std::uint8_t* p, std::size_t n,
                               std::uint8_t want) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += p[i] == want ? 1 : 0;
  return count;
}

std::size_t count_flag_bits_scalar(const std::uint8_t* flags, std::size_t n,
                                   std::uint8_t bit_mask) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += (flags[i] & bit_mask) == bit_mask ? 1 : 0;
  }
  return count;
}

std::size_t collect_matches_scalar(const std::uint32_t* keys,
                                   std::uint32_t key,
                                   const std::uint8_t* state,
                                   std::uint8_t want, std::size_t n,
                                   std::uint32_t* out) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (keys[i] == key && state[i] == want) {
      out[count++] = static_cast<std::uint32_t>(i);
    }
  }
  return count;
}

#if REDUND_SIMD_ENABLED

// ------------------------------------------------------------ vector bodies
//
// GCC vector extensions: ==/&/| on these types produce lane masks
// (all-ones / all-zero per lane) and lower to the target's native compare
// instructions. 16-byte vectors map to one SSE2/NEON register and two of
// them to one AVX2 lane pair — wide enough that the state-lane loops run
// at cache speed either way.

using v16u8 = std::uint8_t __attribute__((vector_size(16)));
using v4u32 = std::uint32_t __attribute__((vector_size(16)));
using v16s8 = std::int8_t __attribute__((vector_size(16)));

inline v16u8 load16(const std::uint8_t* p) noexcept {
  v16u8 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline v4u32 load4(const std::uint32_t* p) noexcept {
  v4u32 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void store16(std::uint8_t* p, v16u8 v) noexcept {
  __builtin_memcpy(p, &v, sizeof(v));
}

inline v16u8 splat16(std::uint8_t v) noexcept {
  return v16u8{v, v, v, v, v, v, v, v, v, v, v, v, v, v, v, v};
}

/// Sums 16 lanes each holding 0 or 1.
inline std::size_t sum01_16(v16u8 ones) noexcept {
  std::uint64_t halves[2];
  __builtin_memcpy(halves, &ones, sizeof(halves));
  // Each byte is 0 or 1, so the byte-sum fits a byte times 8 lanes; the
  // multiply-accumulate trick folds one 8-byte half per multiply.
  return static_cast<std::size_t>(
      ((halves[0] * 0x0101010101010101ULL) >> 56) +
      ((halves[1] * 0x0101010101010101ULL) >> 56));
}

void lanes_live_vector(const std::uint8_t* state, std::uint8_t want_state,
                       const std::uint32_t* epoch,
                       const std::uint32_t* want_epoch, std::size_t n,
                       std::uint8_t* live) noexcept {
  const v16u8 want = splat16(want_state);
  const v16u8 one = splat16(1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const v16u8 state_eq =
        static_cast<v16u8>(load16(state + i) == want);
    // Four u32 sub-blocks of epoch compares narrow to one byte mask each:
    // lane masks are all-ones/all-zero, so taking byte 0 of each u32 lane
    // via the truncating gather below is exact.
    std::uint8_t epoch_eq_bytes[16];
    for (std::size_t b = 0; b < 4; ++b) {
      const v4u32 eq = static_cast<v4u32>(load4(epoch + i + b * 4) ==
                                          load4(want_epoch + i + b * 4));
      std::uint32_t words[4];
      __builtin_memcpy(words, &eq, sizeof(words));
      epoch_eq_bytes[b * 4 + 0] = static_cast<std::uint8_t>(words[0]);
      epoch_eq_bytes[b * 4 + 1] = static_cast<std::uint8_t>(words[1]);
      epoch_eq_bytes[b * 4 + 2] = static_cast<std::uint8_t>(words[2]);
      epoch_eq_bytes[b * 4 + 3] = static_cast<std::uint8_t>(words[3]);
    }
    const v16u8 both = state_eq & load16(epoch_eq_bytes);
    store16(live + i, both & one);
  }
  lanes_live_scalar(state + i, want_state, epoch + i, want_epoch + i, n - i,
                    live + i);
}

std::size_t count_eq_u8_vector(const std::uint8_t* p, std::size_t n,
                               std::uint8_t want) noexcept {
  const v16u8 wantv = splat16(want);
  const v16u8 one = splat16(1);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    count += sum01_16(static_cast<v16u8>(load16(p + i) == wantv) & one);
  }
  return count + count_eq_u8_scalar(p + i, n - i, want);
}

std::size_t count_flag_bits_vector(const std::uint8_t* flags, std::size_t n,
                                   std::uint8_t bit_mask) noexcept {
  const v16u8 maskv = splat16(bit_mask);
  const v16u8 one = splat16(1);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    count +=
        sum01_16(static_cast<v16u8>((load16(flags + i) & maskv) == maskv) &
                 one);
  }
  return count + count_flag_bits_scalar(flags + i, n - i, bit_mask);
}

std::size_t collect_matches_vector(const std::uint32_t* keys,
                                   std::uint32_t key,
                                   const std::uint8_t* state,
                                   std::uint8_t want, std::size_t n,
                                   std::uint32_t* out) noexcept {
  // Blocks of 16: compare the state bytes wide, fold the four u32 key
  // sub-blocks into a 16-bit hit mask, then emit indices from the (rare)
  // non-zero masks bit-by-bit. The fast case — nobody in this block held
  // by this participant — is two compares and one branch.
  const v16u8 wantv = splat16(want);
  const v4u32 keyv = {key, key, key, key};
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const v16u8 state_eq = static_cast<v16u8>(load16(state + i) == wantv);
    std::uint64_t state_halves[2];
    __builtin_memcpy(state_halves, &state_eq, sizeof(state_halves));
    std::uint32_t hits = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      const v4u32 eq = static_cast<v4u32>(load4(keys + i + b * 4) == keyv);
      std::uint32_t words[4];
      __builtin_memcpy(words, &eq, sizeof(words));
      hits |= (words[0] & 1u) << (b * 4 + 0);
      hits |= (words[1] & 1u) << (b * 4 + 1);
      hits |= (words[2] & 1u) << (b * 4 + 2);
      hits |= (words[3] & 1u) << (b * 4 + 3);
    }
    // Pack the byte mask's MSBs into bits 0..15 (multiply gathers one
    // 8-byte half per step), then intersect with the key hits.
    const std::uint32_t state_bits = static_cast<std::uint32_t>(
        (((state_halves[0] & 0x8080808080808080ULL) *
          0x0002040810204081ULL) >>
         56) |
        ((((state_halves[1] & 0x8080808080808080ULL) *
           0x0002040810204081ULL) >>
          56)
         << 8));
    std::uint32_t both = hits & state_bits;
    while (both != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(both));
      out[count++] = static_cast<std::uint32_t>(i + lane);
      both &= both - 1;
    }
  }
  // Tail indices come back relative to the tail start; rebase to absolute.
  const std::size_t tail = collect_matches_scalar(keys + i, key, state + i,
                                                  want, n - i, out + count);
  for (std::size_t k = 0; k < tail; ++k) {
    out[count + k] += static_cast<std::uint32_t>(i);
  }
  return count + tail;
}

#endif  // REDUND_SIMD_ENABLED

}  // namespace

void set_force_scalar(bool force) noexcept { g_force_scalar = force; }

bool force_scalar() noexcept { return g_force_scalar; }

const char* active_impl() noexcept {
  return (kCompiledVector && !g_force_scalar) ? "vector" : "scalar";
}

void lanes_live(const std::uint8_t* state, std::uint8_t want_state,
                const std::uint32_t* epoch, const std::uint32_t* want_epoch,
                std::size_t n, std::uint8_t* live) noexcept {
#if REDUND_SIMD_ENABLED
  if (!g_force_scalar) {
    lanes_live_vector(state, want_state, epoch, want_epoch, n, live);
    return;
  }
#endif
  lanes_live_scalar(state, want_state, epoch, want_epoch, n, live);
}

std::size_t count_eq_u8(const std::uint8_t* p, std::size_t n,
                        std::uint8_t want) noexcept {
#if REDUND_SIMD_ENABLED
  if (!g_force_scalar) return count_eq_u8_vector(p, n, want);
#endif
  return count_eq_u8_scalar(p, n, want);
}

std::size_t count_flag_bits(const std::uint8_t* flags, std::size_t n,
                            std::uint8_t bit_mask) noexcept {
#if REDUND_SIMD_ENABLED
  if (!g_force_scalar) return count_flag_bits_vector(flags, n, bit_mask);
#endif
  return count_flag_bits_scalar(flags, n, bit_mask);
}

std::size_t collect_matches(const std::uint32_t* keys, std::uint32_t key,
                            const std::uint8_t* state, std::uint8_t want,
                            std::size_t n, std::uint32_t* out) noexcept {
#if REDUND_SIMD_ENABLED
  if (!g_force_scalar) {
    return collect_matches_vector(keys, key, state, want, n, out);
  }
#endif
  return collect_matches_scalar(keys, key, state, want, n, out);
}

}  // namespace redund::platform::simd
