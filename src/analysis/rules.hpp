// Lint rules over the analysis library.
//
// Two layers, matching the two passes the tool runs:
//
//  * File rules — the proven v1 redund_lint rule set, ported verbatim
//    onto SourceFile: nondeterministic-rng, unordered-iteration,
//    hot-alloc, hot-per-element-insert, blocking-io-in-hot,
//    scalar-draw-in-wave, include-c-header, include-iostream,
//    using-namespace. Same diagnostics, same path scoping, same allow()
//    semantics.
//
//  * Project rules — the v2 interprocedural families, which need the
//    call graph and the attribute fixpoint:
//      transitive-hot-alloc            hot fn calls an (transitively)
//                                      allocating helper
//      transitive-blocking-io-in-hot   hot fn calls a helper that blocks
//      determinism-taint               a nondeterminism source reaches a
//                                      `redund: deterministic` function
//      guarded-by                      REDUND_GUARDED_BY(m) field touched
//                                      without m held
//      lock-requires                   call to a REDUND_REQUIRES(m)
//                                      function without m held
//      lock-excludes                   call while holding m into code
//                                      that (transitively) acquires or
//                                      REDUND_EXCLUDES m — deadlock
//
// All project findings are suppressible with the same
// `// redund-lint: allow(rule)` escape hatch, applied at the reported
// line (the call site / access site in the caller).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/attributes.hpp"
#include "analysis/callgraph.hpp"

namespace redund::analysis {

struct Finding {
  std::string path;
  std::size_t line = 0;  ///< 1-based.
  std::string rule;
  std::string message;
};

struct LintOptions {
  bool runtime_rules = false;  ///< unordered-iteration (runtime/sim/control).
  bool header = false;         ///< Header-only rules.
  bool wave_rules = false;     ///< scalar-draw-in-wave (sim only).
};

/// Path-scoped option selection (v1 contract): runtime rules in
/// /runtime/, /sim/, /control/; wave rules in /sim/; header rules by
/// .h/.hpp extension.
[[nodiscard]] LintOptions options_for(const std::string& path);

/// The v1 single-file rule set.
[[nodiscard]] std::vector<Finding> run_file_rules(const SourceFile& src,
                                                  const LintOptions& options);

/// The v2 interprocedural rule set over the whole analyzed project.
void run_project_rules(const CallGraph& graph, const AttributeMap& attrs,
                       const std::vector<ParsedFile>& files,
                       std::vector<Finding>& out);

/// True when a held-mutex expression satisfies a wanted mutex name:
/// exact match, or the last member component matches ("own.mutex" holds
/// "mutex"). Exposed for tests.
[[nodiscard]] bool mutex_matches(const std::string& held,
                                 const std::string& wanted);

}  // namespace redund::analysis
