#include "analysis/parse.hpp"

#include <algorithm>
#include <array>

namespace redund::analysis {

namespace {

/// Keywords that can precede a '(' without being a call or a function
/// name. Also used to reject declaration-statement false positives.
bool is_noncall_keyword(const std::string& word) {
  static const char* kWords[] = {
      "if",        "for",          "while",        "switch",
      "catch",     "return",       "sizeof",       "alignof",
      "alignas",   "decltype",     "static_assert", "new",
      "delete",    "throw",        "case",         "else",
      "do",        "goto",         "co_await",     "co_return",
      "co_yield",  "static_cast",  "dynamic_cast", "const_cast",
      "reinterpret_cast",          "typeid",       "noexcept",
      "requires",  "asm",          "assert",
  };
  return std::any_of(std::begin(kWords), std::end(kWords),
                     [&](const char* w) { return word == w; });
}

/// Keywords after which an identifier-then-'(' IS a call, not a
/// declaration ("return helper(x)", "case f(x):" ...).
bool is_call_context_keyword(const std::string& word) {
  static const char* kWords[] = {"return",    "throw",    "case",
                                 "else",      "do",       "co_return",
                                 "co_await",  "co_yield", "goto"};
  return std::any_of(std::begin(kWords), std::end(kWords),
                     [&](const char* w) { return word == w; });
}

bool is_lock_tag(const std::string& word) {
  return word == "try_to_lock" || word == "defer_lock" ||
         word == "adopt_lock" || word == "std";
}

class Parser {
 public:
  explicit Parser(ParsedFile& out)
      : out_(out), tokens_(tokenize(out.source.lines)) {}

  void run() {
    const std::size_t n = tokens_.size();
    std::size_t i = 0;
    while (i < n) {
      const Token& t = tokens_[i];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "{") {
          push_scope_(Scope::kBlock, "");
          ++i;
        } else if (t.text == "}") {
          pop_scope_();
          ++i;
        } else if (t.text == "~" && i + 1 < n &&
                   tokens_[i + 1].kind == Token::Kind::kIdent) {
          // Destructor header: `~Pool() {...}` starts on punctuation.
          std::size_t next = 0;
          i = try_function_(i, next) ? next : i + 1;
        } else {
          ++i;
        }
        continue;
      }
      if (t.kind != Token::Kind::kIdent) {
        ++i;
        continue;
      }
      if (t.text == "namespace") {
        i = parse_namespace_(i);
      } else if (t.text == "class" || t.text == "struct" ||
                 t.text == "union") {
        i = parse_class_head_(i);
      } else if (t.text == "enum") {
        i = skip_enum_(i);
      } else if (t.text == "template") {
        i = skip_angles_(i + 1);
      } else if (t.text == "using" || t.text == "typedef" ||
                 t.text == "friend" || t.text == "extern" ||
                 t.text == "static_assert") {
        i = skip_to_semicolon_(i);
      } else if (t.text == "REDUND_GUARDED_BY") {
        i = parse_guarded_field_(i);
      } else {
        std::size_t next = 0;
        if (try_function_(i, next)) {
          i = next;
        } else {
          ++i;
        }
      }
    }
    attach_annotations_();
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kBlock };
    Kind kind = kBlock;
    std::string name;
  };

  const Token& tok_(std::size_t i) const {
    static const Token kEnd{Token::Kind::kPunct, "", 0};
    return i < tokens_.size() ? tokens_[i] : kEnd;
  }
  bool punct_(std::size_t i, const char* text) const {
    return tok_(i).kind == Token::Kind::kPunct && tok_(i).text == text;
  }
  bool ident_(std::size_t i) const {
    return tok_(i).kind == Token::Kind::kIdent;
  }

  void push_scope_(Scope::Kind kind, std::string name) {
    scopes_.push_back(Scope{kind, std::move(name)});
  }
  void pop_scope_() {
    if (!scopes_.empty()) scopes_.pop_back();
  }

  std::string innermost_class_() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  }

  std::string scope_prefix_() const {
    std::string prefix;
    for (const Scope& scope : scopes_) {
      if (scope.name.empty()) continue;
      prefix += scope.name;
      prefix += "::";
    }
    return prefix;
  }

  /// Skips a balanced <...> group starting at `i` (which must be '<');
  /// returns the index past the closing '>'. Returns `i` unchanged when
  /// not at '<'.
  std::size_t skip_angles_(std::size_t i) const {
    if (!punct_(i, "<")) return i;
    int depth = 0;
    const std::size_t n = tokens_.size();
    while (i < n) {
      if (punct_(i, "<")) {
        ++depth;
      } else if (punct_(i, ">")) {
        if (--depth == 0) return i + 1;
      } else if (punct_(i, ";") || punct_(i, "{")) {
        return i;  // Not a template argument list after all; bail out.
      }
      ++i;
    }
    return i;
  }

  /// Skips a balanced (...) group starting at '('; returns index past ')'.
  std::size_t skip_parens_(std::size_t i) const {
    if (!punct_(i, "(")) return i;
    int depth = 0;
    const std::size_t n = tokens_.size();
    while (i < n) {
      if (punct_(i, "(")) {
        ++depth;
      } else if (punct_(i, ")")) {
        if (--depth == 0) return i + 1;
      }
      ++i;
    }
    return i;
  }

  /// Skips a balanced {...} group starting at '{'; returns index past '}'.
  std::size_t skip_braces_(std::size_t i) const {
    if (!punct_(i, "{")) return i;
    int depth = 0;
    const std::size_t n = tokens_.size();
    while (i < n) {
      if (punct_(i, "{")) {
        ++depth;
      } else if (punct_(i, "}")) {
        if (--depth == 0) return i + 1;
      }
      ++i;
    }
    return i;
  }

  std::size_t skip_to_semicolon_(std::size_t i) const {
    const std::size_t n = tokens_.size();
    int brace = 0;
    while (i < n) {
      if (punct_(i, "{")) ++brace;
      if (punct_(i, "}")) --brace;
      if (punct_(i, ";") && brace <= 0) return i + 1;
      ++i;
    }
    return i;
  }

  std::size_t parse_namespace_(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    while (ident_(j) || punct_(j, "::")) {
      if (ident_(j)) name += tok_(j).text;
      else name += "::";
      ++j;
    }
    if (punct_(j, "{")) {
      push_scope_(Scope::kNamespace, name);
      return j + 1;
    }
    if (punct_(j, "=")) return skip_to_semicolon_(j);  // Namespace alias.
    return i + 1;
  }

  std::size_t parse_class_head_(std::size_t i) {
    // class/struct [attrs] Name [final] [: bases] { ... } | ; | variable.
    std::size_t j = i + 1;
    std::string name;
    const std::size_t n = tokens_.size();
    while (j < n) {
      if (ident_(j)) {
        if (tok_(j).text != "final" && tok_(j).text != "alignas") {
          name = tok_(j).text;
        }
        ++j;
        continue;
      }
      if (punct_(j, "<")) {  // Specialization head: class Foo<int> ...
        j = skip_angles_(j);
        continue;
      }
      if (punct_(j, ":")) {
        // Base clause: scan to the body '{' at bracket depth 0.
        int paren = 0;
        int angle = 0;
        ++j;
        while (j < n) {
          if (punct_(j, "(")) ++paren;
          else if (punct_(j, ")")) --paren;
          else if (punct_(j, "<")) ++angle;
          else if (punct_(j, ">")) --angle;
          else if (punct_(j, "{") && paren == 0 && angle <= 0) break;
          else if (punct_(j, ";")) return j + 1;
          ++j;
        }
        continue;
      }
      if (punct_(j, "{")) {
        push_scope_(Scope::kClass, name);
        return j + 1;
      }
      if (punct_(j, ";")) return j + 1;  // Forward declaration.
      if (punct_(j, "(")) return i + 1;  // Not a class head (macro etc.).
      ++j;
    }
    return j;
  }

  std::size_t skip_enum_(std::size_t i) const {
    std::size_t j = i + 1;
    if (ident_(j) && (tok_(j).text == "class" || tok_(j).text == "struct")) {
      ++j;
    }
    while (ident_(j) || punct_(j, "::") || punct_(j, ":")) ++j;
    if (punct_(j, "{")) return skip_braces_(j);
    return skip_to_semicolon_(i);
  }

  std::size_t parse_guarded_field_(std::size_t i) {
    GuardedField field;
    field.class_name = innermost_class_();
    field.line = tok_(i).line;
    // Field name: nearest preceding identifier.
    for (std::size_t j = i; j-- > 0;) {
      if (tokens_[j].kind == Token::Kind::kIdent) {
        field.field = tokens_[j].text;
        break;
      }
    }
    // Mutex: last identifier inside the macro's parens.
    std::size_t j = i + 1;
    const std::size_t end = skip_parens_(j);
    for (std::size_t k = end; k-- > j;) {
      if (tokens_[k].kind == Token::Kind::kIdent) {
        field.mutex = tokens_[k].text;
        break;
      }
    }
    if (!field.field.empty() && !field.mutex.empty()) {
      out_.guarded_fields.push_back(std::move(field));
    }
    return end;
  }

  /// Splits the (...) group starting at `open` into top-level comma
  /// arguments and returns the last identifier of each (skipping lock
  /// tags). Used for guard constructors and REDUND_* annotation args.
  std::vector<std::string> paren_arg_names_(std::size_t open,
                                            std::size_t* past) const {
    std::vector<std::string> names;
    std::size_t i = open;
    if (!punct_(i, "(")) {
      if (past != nullptr) *past = open;
      return names;
    }
    int depth = 0;
    std::string last_ident;
    const std::size_t n = tokens_.size();
    while (i < n) {
      if (punct_(i, "(")) {
        ++depth;
      } else if (punct_(i, ")")) {
        if (--depth == 0) {
          if (!last_ident.empty()) names.push_back(last_ident);
          ++i;
          break;
        }
      } else if (punct_(i, ",") && depth == 1) {
        if (!last_ident.empty()) names.push_back(last_ident);
        last_ident.clear();
      } else if (ident_(i) && !is_lock_tag(tok_(i).text)) {
        last_ident = tok_(i).text;
      }
      ++i;
    }
    if (past != nullptr) *past = i;
    return names;
  }

  /// Attempts to parse a function declaration or definition whose name
  /// starts at token `i`. On success, appends to out_.functions and sets
  /// `next` to the first token after it.
  bool try_function_(std::size_t i, std::size_t& next) {
    FunctionInfo fn;
    std::size_t j = i;
    bool dtor = false;
    std::vector<std::string> parts;
    if (punct_(j, "~")) {
      dtor = true;
      ++j;
    }
    // Qualified name: ident (::{~}ident)* or trailing operator<symbols>.
    while (true) {
      if (ident_(j) && tok_(j).text == "operator") {
        std::string op = "operator";
        ++j;
        if (ident_(j)) {  // Conversion operator: `operator bool`.
          op += " " + tok_(j).text;
          ++j;
        } else {
          while (j < tokens_.size() && tok_(j).kind == Token::Kind::kPunct &&
                 !punct_(j, "(")) {
            op += tok_(j).text;
            ++j;
          }
          if (punct_(j, "(") && punct_(j + 1, ")") && punct_(j + 2, "(")) {
            op += "()";  // operator()
            j += 2;
          }
        }
        parts.push_back(op);
        break;
      }
      if (!ident_(j) || is_noncall_keyword(tok_(j).text)) return false;
      std::string part = tok_(j).text;
      ++j;
      if (punct_(j, "<")) {
        const std::size_t after = skip_angles_(j);
        if (after == j) return false;
        j = after;
      }
      if (punct_(j, "::")) {
        parts.push_back(part);
        ++j;
        if (punct_(j, "~")) {
          dtor = true;
          ++j;
        }
        continue;
      }
      parts.push_back(part);
      break;
    }
    if (parts.empty() || !punct_(j, "(")) return false;
    fn.header_line = tok_(i).line;
    const std::size_t params_end = skip_parens_(j);
    if (params_end == j) return false;
    j = params_end;

    // Specifier region: scan until '{' (definition), ';' (declaration),
    // or something that disqualifies the candidate.
    bool has_body = false;
    const std::size_t n = tokens_.size();
    while (j < n) {
      if (punct_(j, "{")) {
        has_body = true;
        break;
      }
      if (punct_(j, ";")) break;
      if (punct_(j, "=")) {
        // = default / = delete / = 0, then ';'.
        j = skip_to_semicolon_(j);
        --j;  // Land on the ';' for the loop exit above.
        if (!punct_(j, ";")) return false;
        continue;
      }
      if (ident_(j)) {
        const std::string& word = tok_(j).text;
        if (word == "const" || word == "override" || word == "final" ||
            word == "mutable" || word == "volatile" || word == "try") {
          ++j;
          continue;
        }
        if (word == "noexcept" || word == "throw" || word == "requires") {
          ++j;
          j = skip_parens_(j);
          continue;
        }
        if (word == "REDUND_REQUIRES" || word == "REDUND_EXCLUDES") {
          std::size_t past = 0;
          auto names = paren_arg_names_(j + 1, &past);
          auto& dest =
              word == "REDUND_REQUIRES" ? fn.requires_locks : fn.excludes_locks;
          dest.insert(dest.end(), names.begin(), names.end());
          j = past;
          continue;
        }
        return false;  // An identifier here means "not a function header".
      }
      if (punct_(j, "&") || punct_(j, "&&")) {
        ++j;
        continue;
      }
      if (punct_(j, "->")) {
        // Trailing return type: skip to the body '{' or ';' at depth 0.
        ++j;
        int paren = 0;
        int angle = 0;
        while (j < n) {
          if (punct_(j, "(")) ++paren;
          else if (punct_(j, ")")) --paren;
          else if (punct_(j, "<")) ++angle;
          else if (punct_(j, ">")) --angle;
          else if ((punct_(j, "{") || punct_(j, ";")) && paren == 0 &&
                   angle <= 0) {
            break;
          }
          ++j;
        }
        continue;
      }
      if (punct_(j, ":")) {
        // Constructor init list: member(args) or member{args}, comma-
        // separated, then the body '{'.
        ++j;
        while (j < n) {
          while (ident_(j) || punct_(j, "::")) ++j;
          if (punct_(j, "<")) j = skip_angles_(j);
          if (punct_(j, "(")) {
            j = skip_parens_(j);
          } else if (punct_(j, "{")) {
            // Brace initializer — but a '{' NOT preceded by an
            // initializable name is the body itself.
            const Token& prev = tok_(j - 1);
            const bool initializer =
                prev.kind == Token::Kind::kIdent || prev.text == ">";
            if (!initializer) break;
            j = skip_braces_(j);
          }
          if (punct_(j, ",")) {
            ++j;
            continue;
          }
          break;
        }
        continue;
      }
      return false;
    }
    if (j >= n) return false;

    fn.name = parts.back();
    if (dtor) fn.name = "~" + fn.name;
    std::string explicit_qual;
    for (std::size_t p = 0; p + 1 < parts.size(); ++p) {
      explicit_qual += parts[p];
      explicit_qual += "::";
    }
    fn.class_name = parts.size() > 1 ? parts[parts.size() - 2]
                                     : innermost_class_();
    fn.qualified = scope_prefix_() + explicit_qual + fn.name;
    fn.is_dtor = dtor;
    fn.is_ctor = !dtor && !fn.class_name.empty() && fn.name == fn.class_name;

    if (has_body) {
      fn.has_body = true;
      fn.body_begin = tok_(j).line;
      next = scan_body_(j, fn);
    } else {
      next = j + 1;  // Past the ';'.
    }
    out_.functions.push_back(std::move(fn));
    return true;
  }

  /// Scans a function body starting at its '{' token: records call
  /// sites, RAII lock regions, and loop containment. Returns the index
  /// past the closing '}'.
  std::size_t scan_body_(std::size_t open, FunctionInfo& fn) {
    const std::size_t n = tokens_.size();
    int depth = 0;
    int paren = 0;
    bool pending_loop = false;
    std::vector<int> loop_depths;
    struct OpenRegion {
      std::string mutex;
      std::size_t first_line;
      int depth;
    };
    std::vector<OpenRegion> open_regions;
    std::size_t i = open;
    std::size_t last_line = tok_(open).line;
    while (i < n) {
      const Token& t = tokens_[i];
      last_line = t.line;
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "{") {
          ++depth;
          if (pending_loop) {
            loop_depths.push_back(depth);
            pending_loop = false;
          }
          ++i;
          continue;
        }
        if (t.text == "}") {
          if (!loop_depths.empty() && loop_depths.back() == depth) {
            loop_depths.pop_back();
          }
          // Close lock regions scoped to the block that just ended.
          for (std::size_t r = open_regions.size(); r-- > 0;) {
            if (open_regions[r].depth == depth) {
              fn.lock_regions.push_back(LockRegion{
                  open_regions[r].mutex, open_regions[r].first_line, t.line});
              open_regions.erase(open_regions.begin() +
                                 static_cast<std::ptrdiff_t>(r));
            }
          }
          --depth;
          ++i;
          if (depth == 0) {
            fn.body_end = t.line;
            return i;
          }
          continue;
        }
        if (t.text == "(") ++paren;
        if (t.text == ")" && paren > 0) --paren;
        if (t.text == ";" && paren == 0) pending_loop = false;
        ++i;
        continue;
      }
      if (t.kind != Token::Kind::kIdent) {
        ++i;
        continue;
      }
      const std::string& word = t.text;
      if (word == "for" || word == "while" || word == "do") {
        pending_loop = true;
        ++i;
        continue;
      }
      // Explicit m.lock(): held to the end of the enclosing block (the
      // tree uses RAII guards; this is a safety net, not unlock-aware).
      if (word == "lock" && punct_(i + 1, "(") &&
          (punct_(i - 1, ".") || punct_(i - 1, "->")) && i >= 2 &&
          ident_(i - 2)) {
        open_regions.push_back(
            OpenRegion{tokens_[i - 2].text, t.line, depth});
        i = skip_parens_(i + 1);
        continue;
      }
      // Call site: qualified-ident sequence followed by '('.
      if (!is_noncall_keyword(word)) {
        std::size_t j = i;
        std::string name = word;
        while (punct_(j + 1, "::") && ident_(j + 2)) {
          name += "::" + tok_(j + 2).text;
          j += 2;
        }
        // RAII guard: [std::]lock_guard/unique_lock/scoped_lock<T> v(m).
        // Detected on the full qualified name so the std:: spelling is
        // caught (the walk above has already swallowed the last ident).
        const std::size_t sep = name.rfind("::");
        const std::string last_part =
            sep == std::string::npos ? name : name.substr(sep + 2);
        if (last_part == "lock_guard" || last_part == "unique_lock" ||
            last_part == "scoped_lock") {
          std::size_t k = skip_angles_(j + 1);
          if (ident_(k)) ++k;  // Variable name.
          if (punct_(k, "(")) {
            std::size_t past = 0;
            for (const std::string& m : paren_arg_names_(k, &past)) {
              open_regions.push_back(OpenRegion{m, t.line, depth});
            }
            i = past;
            continue;
          }
          i = j + 1;
          continue;
        }
        std::size_t after_name = j + 1;
        if (punct_(after_name, "<")) {
          const std::size_t past = skip_angles_(after_name);
          // Only treat as template args if a '(' follows the '>'.
          if (past != after_name && punct_(past, "(")) after_name = past;
        }
        if (punct_(after_name, "(")) {
          const Token& prev = i > 0 ? tokens_[i - 1] : Token{};
          const bool member = prev.text == "." || prev.text == "->";
          bool declaration = false;
          if (!member && prev.kind == Token::Kind::kIdent &&
              !is_call_context_keyword(prev.text)) {
            declaration = true;  // `Type name(...)` pattern.
          }
          if (prev.kind == Token::Kind::kIdent && prev.text == "new") {
            declaration = true;  // Constructor call; `new` is the finding.
          }
          if (!declaration) {
            fn.calls.push_back(CallSite{t.line, name, member,
                                        pending_loop || !loop_depths.empty()});
          }
          i = after_name + 1;
          ++paren;
          continue;
        }
        i = j + 1;
        continue;
      }
      ++i;
    }
    fn.body_end = last_line;
    return i;
  }

  /// Maps `// redund: hot` / `// redund: deterministic` comment lines to
  /// the next function body, mirroring v1's forward scan: the annotation
  /// binds to the next '{' with no intervening top-level ';'.
  void attach_annotations_() {
    std::vector<std::pair<std::size_t, bool>> markers;  // line, is_hot
    for (std::size_t li = 0; li < out_.source.lines.size(); ++li) {
      const std::string& comment = out_.source.lines[li].comment;
      if (has_annotation(comment, "hot")) {
        markers.emplace_back(li, true);
      }
      if (has_annotation(comment, "deterministic")) {
        markers.emplace_back(li, false);
      }
    }
    if (markers.empty()) return;
    // Functions (declarations included — a header prototype may carry
    // the annotation, merged into the definition by CallGraph::build)
    // sorted by header line for the nearest-following lookup.
    std::vector<FunctionInfo*> defs;
    for (FunctionInfo& fn : out_.functions) defs.push_back(&fn);
    std::sort(defs.begin(), defs.end(),
              [](const FunctionInfo* a, const FunctionInfo* b) {
                return a->header_line < b->header_line;
              });
    for (const auto& [line, is_hot] : markers) {
      FunctionInfo* best = nullptr;
      for (FunctionInfo* fn : defs) {
        if (fn->header_line >= line) {
          best = fn;
          break;
        }
      }
      if (best == nullptr) continue;
      // The annotation must not cross a top-level ';' (a declaration
      // between it and the body), mirroring v1's bail-out.
      bool crossed = false;
      for (std::size_t li = line; li < best->header_line && !crossed; ++li) {
        crossed = out_.source.lines[li].code.find(';') != std::string::npos;
      }
      if (crossed) continue;
      if (is_hot) best->hot = true;
      else best->deterministic = true;
    }
  }

  ParsedFile& out_;
  std::vector<Token> tokens_;
  std::vector<Scope> scopes_;
};

}  // namespace

bool FunctionInfo::holds_at(const std::string& m, std::size_t line) const {
  for (const std::string& held : requires_locks) {
    if (held == m) return true;
  }
  for (const LockRegion& region : lock_regions) {
    if (region.mutex == m && region.first_line <= line &&
        line <= region.last_line) {
      return true;
    }
  }
  return false;
}

ParsedFile parse_file(std::string path, const std::string& text) {
  ParsedFile parsed;
  parsed.source = SourceFile::parse(std::move(path), text);
  Parser parser(parsed);
  parser.run();
  return parsed;
}

}  // namespace redund::analysis
