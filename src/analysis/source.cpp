#include "analysis/source.hpp"

#include <cctype>
#include <regex>
#include <sstream>

namespace redund::analysis {

std::vector<ScrubbedLine> scrub_source(const std::string& text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  std::vector<ScrubbedLine> lines(1);
  State state = State::kCode;
  std::string raw_delimiter;  // For kRaw: the ")delim\"" terminator.
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary string/char at EOL: ill-formed anyway; reset
      // so one bad line cannot blank the rest of the file.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      lines.emplace_back();
      continue;
    }
    ScrubbedLine& line = lines.back();
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          state = State::kLineComment;
          ++i;
          break;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          state = State::kBlockComment;
          line.code += "  ";
          ++i;
          break;
        }
        if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
          // Raw string: R"delim( ... )delim". Collect the delimiter.
          std::size_t j = i + 2;
          std::string delimiter;
          while (j < n && text[j] != '(' && text[j] != '\n' &&
                 delimiter.size() <= 16) {
            delimiter += text[j++];
          }
          if (j < n && text[j] == '(') {
            raw_delimiter = ")" + delimiter + "\"";
            state = State::kRaw;
            line.code.append(j - i + 1, ' ');
            i = j;
            break;
          }
          line.code += c;  // Not actually a raw string; fall through.
          break;
        }
        if (c == '"') {
          state = State::kString;
          line.code += ' ';
          break;
        }
        if (c == '\'') {
          state = State::kChar;
          line.code += ' ';
          break;
        }
        line.code += c;
        break;
      }
      case State::kLineComment:
        line.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          line.comment += c;
        }
        break;
      case State::kString:
      case State::kChar: {
        if (c == '\\' && i + 1 < n) {
          ++i;
          line.code += "  ";
          break;
        }
        if ((state == State::kString && c == '"') ||
            (state == State::kChar && c == '\'')) {
          state = State::kCode;
        }
        line.code += ' ';
        break;
      }
      case State::kRaw: {
        if (c == ')' &&
            text.compare(i, raw_delimiter.size(), raw_delimiter) == 0) {
          i += raw_delimiter.size() - 1;
          line.code.append(raw_delimiter.size(), ' ');
          state = State::kCode;
        } else {
          line.code += ' ';
        }
        break;
      }
    }
  }
  return lines;
}

std::vector<std::string> allowed_rules(const std::string& comment) {
  std::vector<std::string> rules;
  static const std::regex kAllow(R"(redund-lint:\s*allow\(([^)]*)\))");
  auto begin = std::sregex_iterator(comment.begin(), comment.end(), kAllow);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::stringstream list((*it)[1].str());
    std::string rule;
    while (std::getline(list, rule, ',')) {
      const auto first = rule.find_first_not_of(" \t");
      const auto last = rule.find_last_not_of(" \t");
      if (first != std::string::npos) {
        rules.push_back(rule.substr(first, last - first + 1));
      }
    }
  }
  return rules;
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool has_annotation(const std::string& comment, const char* kind) {
  const std::size_t start = comment.find_first_not_of(" \t/*-!");
  if (start == std::string::npos) return false;
  static constexpr const char kPrefix[] = "redund:";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (comment.compare(start, kPrefixLen, kPrefix) != 0) return false;
  std::size_t p = start + kPrefixLen;
  while (p < comment.size() &&
         (comment[p] == ' ' || comment[p] == '\t')) {
    ++p;
  }
  const std::size_t kind_len = std::string(kind).size();
  if (comment.compare(p, kind_len, kind) != 0) return false;
  const std::size_t end = p + kind_len;
  return end >= comment.size() || !is_identifier_char(comment[end]);
}

bool contains_token(const std::string& text, const std::string& token) {
  const bool want_call = !token.empty() && token.back() == '(';
  const std::string word =
      want_call ? token.substr(0, token.size() - 1) : token;
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || !is_identifier_char(text[pos - 1]);
    std::size_t end = pos + word.size();
    const bool end_ok = end >= text.size() || !is_identifier_char(text[end]);
    if (start_ok && end_ok) {
      if (!want_call) return true;
      while (end < text.size() &&
             std::isspace(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      if (end < text.size() && text[end] == '(') return true;
    }
    pos += word.size();
  }
  return false;
}

SourceFile SourceFile::parse(std::string path, const std::string& text) {
  SourceFile file;
  file.path = std::move(path);
  file.lines = scrub_source(text);
  file.allow.reserve(file.lines.size());
  for (const ScrubbedLine& line : file.lines) {
    file.allow.push_back(allowed_rules(line.comment));
  }
  const std::size_t dot = file.path.rfind('.');
  if (dot != std::string::npos) {
    const std::string ext = file.path.substr(dot);
    file.is_header = ext == ".hpp" || ext == ".h";
  }
  return file;
}

bool SourceFile::allows(std::size_t line, const std::string& rule) const {
  if (line >= allow.size()) return false;
  for (std::size_t j = line == 0 ? line : line - 1; j <= line; ++j) {
    for (const std::string& allowed : allow[j]) {
      if (allowed == rule || allowed == "all") return true;
    }
  }
  return false;
}

std::vector<Token> tokenize(const std::vector<ScrubbedLine>& lines) {
  std::vector<Token> tokens;
  bool continuation = false;  // Previous line was a directive ending in '\'.
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    // Preprocessor directive lines (and their backslash continuations)
    // produce no tokens: macro bodies and #include angle brackets would
    // otherwise leak unbalanced junk into the declaration parser.
    const std::size_t first = code.find_first_not_of(" \t");
    const bool directive =
        continuation || (first != std::string::npos && code[first] == '#');
    if (directive) {
      const std::size_t last = code.find_last_not_of(" \t");
      continuation = last != std::string::npos && code[last] == '\\';
      continue;
    }
    continuation = false;
    std::size_t i = 0;
    const std::size_t n = code.size();
    while (i < n) {
      const char c = code[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        std::size_t j = i + 1;
        while (j < n && is_identifier_char(code[j])) ++j;
        tokens.push_back(Token{Token::Kind::kIdent, code.substr(i, j - i), li});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        // pp-number: digits, identifier chars, '.', and exponent signs.
        std::size_t j = i + 1;
        while (j < n) {
          const char d = code[j];
          if (is_identifier_char(d) || d == '.') {
            ++j;
            continue;
          }
          if ((d == '+' || d == '-') && j > i) {
            const char prev = code[j - 1];
            if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
              ++j;
              continue;
            }
          }
          break;
        }
        tokens.push_back(
            Token{Token::Kind::kNumber, code.substr(i, j - i), li});
        i = j;
        continue;
      }
      // Punctuation; fuse '::' and '->' (name/member glue for the parser).
      if (c == ':' && i + 1 < n && code[i + 1] == ':') {
        tokens.push_back(Token{Token::Kind::kPunct, "::", li});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < n && code[i + 1] == '>') {
        tokens.push_back(Token{Token::Kind::kPunct, "->", li});
        i += 2;
        continue;
      }
      tokens.push_back(Token{Token::Kind::kPunct, std::string(1, c), li});
      ++i;
    }
  }
  return tokens;
}

}  // namespace redund::analysis
