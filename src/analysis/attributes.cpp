#include "analysis/attributes.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>

namespace redund::analysis {

namespace {

struct LineHit {
  std::size_t line = 0;
  std::uint32_t attr = 0;
  std::string detail;
};

/// The allow() rules that suppress an attribute at its source line: the
/// matching v1 rule plus the v2 rule that consumes the attribute. A
/// deliberate, allow()-annotated allocation (e.g. a pre-sized push_back
/// in a hot function) must not re-fire transitively at every caller.
std::vector<const char*> suppressors(std::uint32_t attr) {
  switch (attr) {
    case kAllocates:
      return {"hot-alloc", "transitive-hot-alloc"};
    case kBlocksIo:
      return {"blocking-io-in-hot", "transitive-blocking-io-in-hot"};
    case kDrawsRng:
      return {"nondeterministic-rng", "determinism-taint"};
    case kReadsClock:
      return {"nondeterministic-rng", "determinism-taint"};
    case kUnorderedIterates:
      return {"unordered-iteration", "determinism-taint"};
    case kAddressAsValue:
      return {"determinism-taint"};
    default:
      return {};
  }
}

bool attr_allowed(const SourceFile& src, std::size_t line,
                  std::uint32_t attr) {
  for (const char* rule : suppressors(attr)) {
    if (src.allows(line, rule)) return true;
  }
  return false;
}

void detect_direct_hits(const SourceFile& src, std::vector<LineHit>& hits) {
  static const char* kAllocating[] = {
      "malloc(",    "calloc(",       "realloc(",     "free(",
      "push_back(", "emplace_back(", "emplace(",     "insert(",
      "resize(",    "reserve(",      "make_unique(", "make_shared(",
      "to_string(", "std::string(",
  };
  static const char* kBlocking[] = {
      "fsync(", "fdatasync(", "fwrite(", "fflush(", "fopen(",
  };
  static const char* kEntropy[] = {"rand(", "srand(", "std::rand(",
                                   "std::srand("};
  static const char* kClocks[] = {"steady_clock", "system_clock",
                                  "high_resolution_clock", "clock_gettime(",
                                  "gettimeofday("};
  static const std::regex kNew(R"((^|[^:\w])new\s*[\w(<])");
  static const std::regex kTimeCall(
      R"((^|[^:\w])(std::)?time\s*\(\s*(nullptr|NULL|0)?\s*\))");
  static const std::regex kRangeFor(R"(for\s*\([^;)]*:\s*([^)]+)\))");
  static const std::regex kUnorderedDecl(
      R"(std::unordered_\w+\s*<[^;{]*?>\s*[&*]{0,2}\s*(\w+))");

  // File-wide unordered container names (v1's approach: the declaration
  // and the iteration may be far apart).
  std::vector<std::string> unordered_names;
  for (const ScrubbedLine& line : src.lines) {
    auto begin = std::sregex_iterator(line.code.begin(), line.code.end(),
                                      kUnorderedDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_names.push_back((*it)[1].str());
    }
  }

  for (std::size_t i = 0; i < src.lines.size(); ++i) {
    const std::string& code = src.lines[i].code;
    if (code.empty()) continue;

    if (!attr_allowed(src, i, kAllocates)) {
      if (std::regex_search(code, kNew)) {
        hits.push_back(LineHit{i, kAllocates, "operator new"});
      } else {
        for (const char* call : kAllocating) {
          if (contains_token(code, call)) {
            hits.push_back(LineHit{i, kAllocates, call});
            break;
          }
        }
      }
    }

    if (!attr_allowed(src, i, kBlocksIo)) {
      bool hit = false;
      for (const char* call : kBlocking) {
        if (contains_token(code, call)) {
          hits.push_back(LineHit{i, kBlocksIo, call});
          hit = true;
          break;
        }
      }
      if (!hit && (code.find("std::ofstream") != std::string::npos ||
                   code.find(".flush(") != std::string::npos)) {
        hits.push_back(LineHit{i, kBlocksIo, "stream write/flush"});
      }
    }

    if (!attr_allowed(src, i, kDrawsRng)) {
      for (const char* call : kEntropy) {
        if (contains_token(code, call)) {
          hits.push_back(LineHit{i, kDrawsRng, call});
          break;
        }
      }
      const std::size_t pos = code.find("std::random_device");
      if (pos != std::string::npos) {
        // Token-seeded random_device("...") is explicitly configured;
        // default construction draws OS entropy.
        std::size_t end = pos + std::string("std::random_device").size();
        while (end < code.size() &&
               std::isspace(static_cast<unsigned char>(code[end]))) {
          ++end;
        }
        bool seeded = false;
        if (end < code.size() && code[end] == '(') {
          std::size_t inside = end + 1;
          while (inside < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[inside]))) {
            ++inside;
          }
          seeded = inside < code.size() && code[inside] != ')';
        }
        if (!seeded) {
          hits.push_back(LineHit{i, kDrawsRng, "std::random_device"});
        }
      }
    }

    if (!attr_allowed(src, i, kReadsClock)) {
      if (std::regex_search(code, kTimeCall)) {
        hits.push_back(LineHit{i, kReadsClock, "time()"});
      } else {
        for (const char* token : kClocks) {
          if (contains_token(code, token)) {
            hits.push_back(LineHit{i, kReadsClock, token});
            break;
          }
        }
      }
    }

    if (!attr_allowed(src, i, kUnorderedIterates)) {
      bool hit = false;
      std::smatch match;
      if (std::regex_search(code, match, kRangeFor)) {
        const std::string range = match[1].str();
        if (range.find("unordered") != std::string::npos) {
          hits.push_back(
              LineHit{i, kUnorderedIterates, "range-for over unordered"});
          hit = true;
        } else {
          for (const std::string& name : unordered_names) {
            if (contains_token(range, name)) {
              hits.push_back(LineHit{i, kUnorderedIterates,
                                     "range-for over '" + name + "'"});
              hit = true;
              break;
            }
          }
        }
      }
      if (!hit) {
        for (const std::string& name : unordered_names) {
          for (const char* method :
               {".begin(", ".end(", ".cbegin(", ".cend("}) {
            if (code.find(name + method) != std::string::npos) {
              hits.push_back(LineHit{i, kUnorderedIterates,
                                     "iterator over '" + name + "'"});
              hit = true;
              break;
            }
          }
          if (hit) break;
        }
      }
    }

    if (!attr_allowed(src, i, kAddressAsValue)) {
      if ((contains_token(code, "uintptr_t") ||
           contains_token(code, "intptr_t")) &&
          code.find("cast") != std::string::npos) {
        hits.push_back(
            LineHit{i, kAddressAsValue, "pointer-to-integer cast"});
      }
    }
  }
}

}  // namespace

const char* attribute_name(std::uint32_t attr) {
  switch (attr) {
    case kAllocates:
      return "allocates";
    case kBlocksIo:
      return "blocks";
    case kDrawsRng:
      return "draws-rng";
    case kReadsClock:
      return "reads-clock";
    case kUnorderedIterates:
      return "unordered-iterates";
    case kAddressAsValue:
      return "address-as-value";
    default:
      return "?";
  }
}

std::size_t AttributeMap::bit_index_(std::uint32_t attr) {
  std::size_t index = 0;
  while ((attr >>= 1U) != 0U) ++index;
  return index;
}

void AttributeMap::build(const CallGraph& graph,
                         const std::vector<ParsedFile>& files) {
  const std::vector<Node>& nodes = graph.nodes();
  const std::size_t n = nodes.size();
  direct_.assign(n, 0);
  effective_.assign(n, 0);
  witnesses_.assign(n, {});
  excludes_.assign(n, {});
  excl_witness_.assign(n, {});
  sweeps_ = 0;

  // Direct attribute hits, detected per file and bucketed into the
  // innermost function whose body range contains the line.
  std::vector<std::vector<LineHit>> file_hits(files.size());
  for (std::size_t f = 0; f < files.size(); ++f) {
    detect_direct_hits(files[f].source, file_hits[f]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionInfo& fn = graph.fn(i);
    const std::size_t file = nodes[i].file;
    for (const LineHit& hit : file_hits[file]) {
      if (hit.line < fn.body_begin || hit.line > fn.body_end) continue;
      if ((direct_[i] & hit.attr) != 0U) continue;
      direct_[i] |= hit.attr;
      witnesses_[i][bit_index_(hit.attr)] =
          Witness{true, hit.line, hit.detail, 0};
    }
    effective_[i] = direct_[i];

    // Seed the exclusion sets: annotated excludes plus every mutex the
    // function acquires itself (std::mutex is non-recursive — calling
    // into a self-locking function while holding its mutex deadlocks).
    std::set<std::string> own(fn.excludes_locks.begin(),
                              fn.excludes_locks.end());
    for (const LockRegion& region : fn.lock_regions) {
      own.insert(region.mutex);
    }
    excludes_[i].assign(own.begin(), own.end());
  }

  // Propagate to fixpoint (monotone over a finite lattice; terminates).
  bool changed = true;
  while (changed) {
    changed = false;
    ++sweeps_;
    for (std::size_t i = 0; i < n; ++i) {
      for (const Edge& edge : nodes[i].edges) {
        const std::uint32_t fresh = effective_[edge.callee] & ~effective_[i];
        if (fresh != 0U) {
          effective_[i] |= fresh;
          for (std::uint32_t bit = 1; bit <= kAddressAsValue; bit <<= 1U) {
            if ((fresh & bit) != 0U) {
              witnesses_[i][bit_index_(bit)] =
                  Witness{false, edge.line, "", edge.callee};
            }
          }
          changed = true;
        }
        for (const std::string& m : excludes_[edge.callee]) {
          if (!std::binary_search(excludes_[i].begin(), excludes_[i].end(),
                                  m)) {
            excludes_[i].insert(
                std::upper_bound(excludes_[i].begin(), excludes_[i].end(), m),
                m);
            excl_witness_[i].emplace(m, Witness{false, edge.line, "",
                                                edge.callee});
            changed = true;
          }
        }
      }
    }
  }
}

const Witness* AttributeMap::witness(std::size_t node,
                                     std::uint32_t attr) const {
  if ((effective_[node] & attr) == 0U) return nullptr;
  return &witnesses_[node][bit_index_(attr)];
}

std::string AttributeMap::chain(std::size_t node, std::uint32_t attr,
                                const CallGraph& graph) const {
  std::string out = graph.fn(node).qualified;
  std::size_t cur = node;
  std::set<std::size_t> visited;
  while (visited.insert(cur).second) {
    const Witness* w = witness(cur, attr);
    if (w == nullptr) break;
    if (w->direct) {
      out += " -> " + w->detail + " at " + graph.file_of(cur).source.path +
             ":" + std::to_string(w->line + 1);
      break;
    }
    out += " -> " + graph.fn(w->via).qualified + " (call at " +
           graph.file_of(cur).source.path + ":" +
           std::to_string(w->line + 1) + ")";
    cur = w->via;
  }
  return out;
}

std::string AttributeMap::exclude_chain(std::size_t node,
                                        const std::string& mutex,
                                        const CallGraph& graph) const {
  std::string out = graph.fn(node).qualified;
  std::size_t cur = node;
  std::set<std::size_t> visited;
  while (visited.insert(cur).second) {
    const auto it = excl_witness_[cur].find(mutex);
    if (it == excl_witness_[cur].end()) {
      out += " (acquires " + mutex + ")";
      break;
    }
    out += " -> " + graph.fn(it->second.via).qualified + " (call at " +
           graph.file_of(cur).source.path + ":" +
           std::to_string(it->second.line + 1) + ")";
    cur = it->second.via;
  }
  return out;
}

}  // namespace redund::analysis
