// Project: the top-level driver of the analysis library. Feed it files,
// call analyze(), read findings. redund_lint v2 is a thin CLI over this
// class; tests/test_analysis.cpp drives it directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/attributes.hpp"
#include "analysis/callgraph.hpp"
#include "analysis/rules.hpp"

namespace redund::analysis {

class Project {
 public:
  /// Parses one file and queues it for analysis. `path` decides the
  /// path-scoped rule set (v1 contract).
  void add_file(const std::string& path, const std::string& text);

  /// Runs the full pass: per-file v1 rules, then call graph, attribute
  /// fixpoint, and the interprocedural rules. Idempotent per add_file set.
  void analyze();

  [[nodiscard]] const std::vector<Finding>& findings() const {
    return findings_;
  }
  [[nodiscard]] const CallGraph& graph() const { return graph_; }
  [[nodiscard]] const AttributeMap& attributes() const { return attrs_; }
  [[nodiscard]] const std::vector<ParsedFile>& files() const {
    return files_;
  }

  /// GraphViz DOT of the call graph (the CLI's --dump-callgraph).
  void dump_callgraph(std::ostream& out) const;

 private:
  std::vector<ParsedFile> files_;
  CallGraph graph_;
  AttributeMap attrs_;
  std::vector<Finding> findings_;
};

}  // namespace redund::analysis
