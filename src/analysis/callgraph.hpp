// Project-wide symbol table and call graph.
//
// Nodes are function *definitions* (declarations only contribute their
// annotations, merged by qualified name). Edges are resolved call sites;
// resolution is deliberately conservative — an ambiguous name produces
// no edge rather than a guessed one, so the interprocedural rules
// under-approximate instead of crying wolf (docs/analysis.md spells out
// the resolution order and its blind spots).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/parse.hpp"

namespace redund::analysis {

/// One resolved call edge.
struct Edge {
  std::size_t callee = 0;  ///< Node index.
  std::size_t line = 0;    ///< 0-based call-site line in the caller's file.
  bool in_loop = false;
};

/// One call-graph node: a function definition in a parsed file.
struct Node {
  std::size_t file = 0;      ///< Index into the ParsedFile vector.
  std::size_t function = 0;  ///< Index into that file's functions.
  std::vector<Edge> edges;
};

class CallGraph {
 public:
  /// Builds nodes and edges over `files` (kept by pointer; must outlive
  /// the graph). Merges declaration annotations into definitions first.
  void build(std::vector<ParsedFile>& files);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const FunctionInfo& fn(std::size_t node) const;
  [[nodiscard]] const ParsedFile& file_of(std::size_t node) const;

  /// Node index of the definition with this qualified-name suffix, or
  /// npos. Exposed for tests.
  [[nodiscard]] std::size_t find(const std::string& qualified_suffix) const;

  /// Calls that matched no unique definition (counted for --dump stats).
  [[nodiscard]] std::size_t unresolved_calls() const {
    return unresolved_;
  }

  /// Emits the graph as GraphViz DOT, one node per definition (labelled
  /// with annotations) and one edge per resolved call.
  void dump_dot(std::ostream& out) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  [[nodiscard]] std::size_t resolve_(const CallSite& call,
                                     const Node& caller) const;
  [[nodiscard]] const FunctionInfo& fn_of_(const Node& node) const;

  std::vector<ParsedFile>* files_ = nullptr;
  std::vector<Node> nodes_;
  std::size_t unresolved_ = 0;
};

/// True when the components of `name` (split on ::) are a suffix of the
/// components of `qualified`.
[[nodiscard]] bool qualified_suffix_match(const std::string& qualified,
                                          const std::string& name);

}  // namespace redund::analysis
