#include "analysis/project.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

namespace redund::analysis {

void Project::add_file(const std::string& path, const std::string& text) {
  files_.push_back(parse_file(path, text));
}

void Project::analyze() {
  findings_.clear();

  for (const ParsedFile& file : files_) {
    const std::vector<Finding> file_findings =
        run_file_rules(file.source, options_for(file.source.path));
    findings_.insert(findings_.end(), file_findings.begin(),
                     file_findings.end());
  }

  graph_.build(files_);
  attrs_.build(graph_, files_);

  std::vector<Finding> project_findings;
  run_project_rules(graph_, attrs_, files_, project_findings);
  findings_.insert(findings_.end(), project_findings.begin(),
                   project_findings.end());

  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
}

void Project::dump_callgraph(std::ostream& out) const {
  graph_.dump_dot(out);
}

}  // namespace redund::analysis
