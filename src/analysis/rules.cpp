#include "analysis/rules.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <tuple>

namespace redund::analysis {

namespace {

// ---------------------------------------------------------------------
// File rules: the v1 redund_lint rule set, ported onto SourceFile.
// ---------------------------------------------------------------------

class FileLinter {
 public:
  FileLinter(const SourceFile& src, LintOptions options)
      : src_(src), options_(options) {}

  std::vector<Finding> run() {
    collect_unordered_names_();
    for (std::size_t i = 0; i < src_.lines.size(); ++i) {
      check_rng_(i);
      check_includes_(i);
      check_using_namespace_(i);
      if (options_.runtime_rules) check_unordered_iteration_(i);
    }
    check_hot_functions_();
    if (options_.wave_rules) check_wave_draws_();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return a.line < b.line;
              });
    return std::move(findings_);
  }

 private:
  void report_(std::size_t i, const std::string& rule,
               const std::string& message) {
    if (src_.allows(i, rule)) return;
    findings_.push_back(Finding{src_.path, i + 1, rule, message});
  }

  // ---------------------------------------------------- nondeterministic
  void check_rng_(std::size_t i) {
    const std::string& code = src_.lines[i].code;
    static const char* kBanned[] = {"rand(", "srand(", "std::rand(",
                                    "std::srand("};
    for (const char* call : kBanned) {
      if (contains_token(code, call)) {
        report_(i, "nondeterministic-rng",
                std::string("call to ") + call +
                    ") — derive draws from the campaign seed via rng:: "
                    "streams");
        return;
      }
    }
    static const std::regex kTimeCall(
        R"((^|[^:\w])(std::)?time\s*\(\s*(nullptr|NULL|0)?\s*\))");
    if (std::regex_search(code, kTimeCall)) {
      report_(i, "nondeterministic-rng",
              "wall-clock time() call — campaign behaviour must depend on "
              "the config seed only");
      return;
    }
    const std::size_t pos = code.find("std::random_device");
    if (pos != std::string::npos) {
      // A token-seeded random_device("...") is explicitly configured;
      // anything else (default construction) draws entropy.
      std::size_t end = pos + std::string("std::random_device").size();
      while (end < code.size() &&
             std::isspace(static_cast<unsigned char>(code[end]))) {
        ++end;
      }
      bool seeded = false;
      if (end < code.size() && code[end] == '(') {
        std::size_t inside = end + 1;
        while (inside < code.size() &&
               std::isspace(static_cast<unsigned char>(code[inside]))) {
          ++inside;
        }
        seeded = inside < code.size() && code[inside] != ')';
      }
      if (!seeded) {
        report_(i, "nondeterministic-rng",
                "default-constructed std::random_device draws OS entropy — "
                "seed from the campaign config instead");
      }
    }
  }

  // ------------------------------------------------ unordered iteration
  void collect_unordered_names_() {
    if (!options_.runtime_rules) return;
    static const std::regex kDecl(
        R"(std::unordered_\w+\s*<[^;{]*?>\s*[&*]{0,2}\s*(\w+))");
    for (const ScrubbedLine& line : src_.lines) {
      auto begin =
          std::sregex_iterator(line.code.begin(), line.code.end(), kDecl);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        unordered_names_.push_back((*it)[1].str());
      }
    }
  }

  void check_unordered_iteration_(std::size_t i) {
    const std::string& code = src_.lines[i].code;
    static const std::regex kRangeFor(R"(for\s*\([^;)]*:\s*([^)]+)\))");
    std::smatch match;
    if (std::regex_search(code, match, kRangeFor)) {
      const std::string range = match[1].str();
      if (range.find("unordered") != std::string::npos) {
        report_(i, "unordered-iteration",
                "range-for over a std::unordered_* container — hash order "
                "leaks into journals/reports; use a sorted or indexed "
                "container");
        return;
      }
      for (const std::string& name : unordered_names_) {
        if (contains_token(range, name)) {
          report_(i, "unordered-iteration",
                  "range-for over unordered container '" + name +
                      "' — hash order leaks into journals/reports");
          return;
        }
      }
    }
    for (const std::string& name : unordered_names_) {
      for (const char* method : {".begin(", ".end(", ".cbegin(", ".cend("}) {
        if (code.find(name + method) != std::string::npos) {
          report_(i, "unordered-iteration",
                  "iterator over unordered container '" + name +
                      "' — hash order leaks into journals/reports");
          return;
        }
      }
    }
  }

  // ----------------------------------------------------------- includes
  void check_includes_(std::size_t i) {
    const std::string& code = src_.lines[i].code;
    static const std::regex kInclude(R"(^\s*#\s*include\s*<([^>]+)>)");
    std::smatch match;
    if (!std::regex_search(code, match, kInclude)) return;
    const std::string header = match[1].str();
    static const std::pair<const char*, const char*> kCHeaders[] = {
        {"assert.h", "cassert"}, {"ctype.h", "cctype"},
        {"errno.h", "cerrno"},   {"float.h", "cfloat"},
        {"limits.h", "climits"}, {"math.h", "cmath"},
        {"signal.h", "csignal"}, {"stddef.h", "cstddef"},
        {"stdint.h", "cstdint"}, {"stdio.h", "cstdio"},
        {"stdlib.h", "cstdlib"}, {"string.h", "cstring"},
        {"time.h", "ctime"},
    };
    for (const auto& [c_name, cpp_name] : kCHeaders) {
      if (header == c_name) {
        report_(i, "include-c-header",
                std::string("#include <") + c_name + "> — use <" + cpp_name +
                    "> (C++ spelling, std:: namespace)");
        return;
      }
    }
    if (options_.header && header == "iostream") {
      report_(i, "include-iostream",
              "<iostream> in a header drags static stream initializers into "
              "every includer — use <ostream>/<iosfwd> in headers");
    }
  }

  // ---------------------------------------------------- using namespace
  void check_using_namespace_(std::size_t i) {
    if (!options_.header) return;
    static const std::regex kUsing(R"(^\s*using\s+namespace\s+\w)");
    if (std::regex_search(src_.lines[i].code, kUsing)) {
      report_(i, "using-namespace",
              "'using namespace' at header scope pollutes every includer");
    }
  }

  // ------------------------------------------------ scalar draw in wave
  void check_wave_draws_() {
    int depth = 0;
    int paren_depth = 0;
    bool pending_loop = false;
    std::vector<int> loop_depths;
    for (std::size_t i = 0; i < src_.lines.size(); ++i) {
      const std::string& code = src_.lines[i].code;
      const bool line_opens_loop = contains_token(code, "for") ||
                                   contains_token(code, "while") ||
                                   contains_token(code, "do");
      if ((!loop_depths.empty() || line_opens_loop || pending_loop) &&
          contains_token(code, "make_stream(")) {
        report_(i, "scalar-draw-in-wave",
                "make_stream() per loop iteration — a wave of independent "
                "keyed draws belongs in an rng::bulk_* kernel (four streams "
                "per instruction), not a scalar loop");
      }
      if (line_opens_loop) pending_loop = true;
      for (const char c : code) {
        if (c == '(') {
          ++paren_depth;
        } else if (c == ')') {
          if (paren_depth > 0) --paren_depth;
        } else if (c == '{') {
          ++depth;
          if (pending_loop) {
            loop_depths.push_back(depth);
            pending_loop = false;
          }
        } else if (c == '}') {
          if (!loop_depths.empty() && loop_depths.back() == depth) {
            loop_depths.pop_back();
          }
          if (depth > 0) --depth;
        } else if (c == ';') {
          if (paren_depth == 0) pending_loop = false;
        }
      }
    }
  }

  // ---------------------------------------------------------- hot-alloc
  void check_hot_functions_() {
    for (std::size_t i = 0; i < src_.lines.size(); ++i) {
      if (!has_annotation(src_.lines[i].comment, "hot")) continue;
      scan_hot_body_(i);
    }
  }

  void scan_hot_body_(std::size_t annotation) {
    static const char* kAllocating[] = {
        "malloc(",       "calloc(",      "realloc(",  "free(",
        "push_back(",    "emplace_back(", "emplace(",  "insert(",
        "resize(",       "reserve(",     "make_unique(", "make_shared(",
        "to_string(",    "std::string(",
    };
    static const char* kPerElementGrowth[] = {
        "push_back(", "emplace_back(", "insert(", "emplace(", "try_emplace(",
    };
    static const char* kBlockingIo[] = {
        "fsync(", "fdatasync(", "fwrite(", "fflush(", "fopen(",
    };
    int depth = 0;
    int paren_depth = 0;
    bool in_body = false;
    bool pending_loop = false;
    std::vector<int> loop_depths;
    for (std::size_t i = annotation; i < src_.lines.size(); ++i) {
      const std::string& code = src_.lines[i].code;
      const bool line_opens_loop =
          in_body && (contains_token(code, "for") ||
                      contains_token(code, "while") ||
                      contains_token(code, "do"));
      if (in_body) {
        static const std::regex kNew(R"((^|[^:\w])new\s*[\w(<])");
        if (std::regex_search(code, kNew)) {
          report_(i, "hot-alloc",
                  "operator new inside a `redund: hot` function — hot paths "
                  "are contractually allocation-free");
        } else {
          for (const char* call : kAllocating) {
            if (contains_token(code, call)) {
              report_(i, "hot-alloc",
                      std::string("allocation-prone call ") + call +
                          ") inside a `redund: hot` function");
              break;
            }
          }
        }
        bool io_reported = false;
        for (const char* call : kBlockingIo) {
          if (contains_token(code, call)) {
            report_(i, "blocking-io-in-hot",
                    std::string("blocking I/O call ") + call +
                        ") inside a `redund: hot` function — hand bytes to "
                        "the async journal writer instead");
            io_reported = true;
            break;
          }
        }
        if (!io_reported && (code.find("std::ofstream") != std::string::npos ||
                             code.find(".flush(") != std::string::npos)) {
          report_(i, "blocking-io-in-hot",
                  "stream write/flush inside a `redund: hot` function — "
                  "hand bytes to the async journal writer instead");
        }
        if (!loop_depths.empty() || line_opens_loop) {
          for (const char* call : kPerElementGrowth) {
            if (contains_token(code, call)) {
              report_(i, "hot-per-element-insert",
                      std::string("per-element ") + call +
                          ") inside a loop in a `redund: hot` function — "
                          "batch the growth (resize + index writes or bulk "
                          "insert) outside the per-element loop");
              break;
            }
          }
        }
      }
      if (line_opens_loop) pending_loop = true;
      for (const char c : code) {
        if (c == '(') {
          ++paren_depth;
        } else if (c == ')') {
          if (paren_depth > 0) --paren_depth;
        } else if (c == '{') {
          ++depth;
          in_body = true;
          if (pending_loop) {
            loop_depths.push_back(depth);
            pending_loop = false;
          }
        } else if (c == '}') {
          if (!loop_depths.empty() && loop_depths.back() == depth) {
            loop_depths.pop_back();
          }
          if (--depth == 0 && in_body) return;
        } else if (c == ';') {
          if (!in_body && i > annotation) {
            return;  // Declaration without a body: nothing to scan.
          }
          if (paren_depth == 0) pending_loop = false;
        }
      }
    }
  }

  const SourceFile& src_;
  LintOptions options_;
  std::vector<std::string> unordered_names_;
  std::vector<Finding> findings_;
};

// ---------------------------------------------------------------------
// Project rules.
// ---------------------------------------------------------------------

std::string last_component(const std::string& expr) {
  std::size_t pos = expr.rfind("->");
  std::size_t start = pos == std::string::npos ? 0 : pos + 2;
  pos = expr.rfind('.');
  if (pos != std::string::npos && pos + 1 > start) start = pos + 1;
  return expr.substr(start);
}

/// True when mutex `wanted` is held by `fn` at `line`, with member-path
/// leniency (a region holding "own.mutex" satisfies a guard on "mutex").
bool holds_lenient(const FunctionInfo& fn, const std::string& wanted,
                   std::size_t line) {
  for (const std::string& m : fn.requires_locks) {
    if (mutex_matches(m, wanted)) return true;
  }
  for (const LockRegion& region : fn.lock_regions) {
    if (region.first_line <= line && line <= region.last_line &&
        mutex_matches(region.mutex, wanted)) {
      return true;
    }
  }
  return false;
}

void report_project_(const CallGraph& graph, std::size_t node,
                     std::size_t line, const std::string& rule,
                     const std::string& message,
                     std::vector<Finding>& out) {
  const SourceFile& src = graph.file_of(node).source;
  if (src.allows(line, rule)) return;
  out.push_back(Finding{src.path, line + 1, rule, message});
}

void check_transitive_hot_(const CallGraph& graph, const AttributeMap& attrs,
                           std::vector<Finding>& out) {
  for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
    const FunctionInfo& caller = graph.fn(i);
    if (!caller.hot) continue;
    for (const Edge& edge : graph.nodes()[i].edges) {
      if (edge.callee == i) continue;  // Direct hits are v1's job.
      if ((attrs.effective(edge.callee) & kAllocates) != 0U) {
        report_project_(
            graph, i, edge.line, "transitive-hot-alloc",
            "`redund: hot` function calls into allocating code: " +
                caller.qualified + " -> " +
                attrs.chain(edge.callee, kAllocates, graph),
            out);
      }
      if ((attrs.effective(edge.callee) & kBlocksIo) != 0U) {
        report_project_(
            graph, i, edge.line, "transitive-blocking-io-in-hot",
            "`redund: hot` function calls into blocking I/O: " +
                caller.qualified + " -> " +
                attrs.chain(edge.callee, kBlocksIo, graph),
            out);
      }
    }
  }
}

void check_determinism_taint_(const CallGraph& graph,
                              const AttributeMap& attrs,
                              std::vector<Finding>& out) {
  for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
    const FunctionInfo& fn = graph.fn(i);
    if (!fn.deterministic) continue;
    const std::uint32_t tainted =
        attrs.effective(i) & kNondeterminismSources;
    for (std::uint32_t bit = 1; bit <= kAddressAsValue; bit <<= 1U) {
      if ((tainted & bit) == 0U) continue;
      const Witness* w = attrs.witness(i, bit);
      report_project_(
          graph, i, w->line, "determinism-taint",
          std::string("nondeterminism source (") + attribute_name(bit) +
              ") reaches `redund: deterministic` serialization code: " +
              attrs.chain(i, bit, graph),
          out);
    }
  }
}

/// Filename without directory or extension: "src/parallel/thread_pool.hpp"
/// -> "thread_pool". Used to pair a header with its implementation file.
std::string file_stem_(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  const std::size_t begin = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find('.', begin);
  return path.substr(begin, dot == std::string::npos ? std::string::npos
                                                     : dot - begin);
}

void check_guarded_by_(const std::vector<ParsedFile>& files,
                       std::vector<Finding>& out) {
  struct Decl {
    const GuardedField* field;
    std::string stem;  ///< Stem of the declaring file.
  };
  // Project-wide guarded-field map, keyed by field name.
  std::map<std::string, std::vector<Decl>> by_name;
  for (const ParsedFile& file : files) {
    for (const GuardedField& field : file.guarded_fields) {
      by_name[field.field].push_back(
          Decl{&field, file_stem_(file.source.path)});
    }
  }
  if (by_name.empty()) return;

  for (const ParsedFile& file : files) {
    const std::string stem = file_stem_(file.source.path);
    const std::vector<Token> tokens = tokenize(file.source.lines);
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      const Token& token = tokens[t];
      if (token.kind != Token::Kind::kIdent) continue;
      const auto it = by_name.find(token.text);
      if (it == by_name.end()) continue;
      // Skip the annotated declaration line itself.
      if (file.source.lines[token.line].code.find("REDUND_GUARDED_BY") !=
          std::string::npos) {
        continue;
      }
      const bool member =
          t > 0 && (tokens[t - 1].text == "." || tokens[t - 1].text == "->");
      // Skip qualified names (Type::field) — declarations, not accesses.
      if (t > 0 && tokens[t - 1].text == "::") continue;

      // Innermost enclosing function body.
      const FunctionInfo* fn = nullptr;
      for (const FunctionInfo& cand : file.functions) {
        if (!cand.has_body || token.line < cand.body_begin ||
            token.line > cand.body_end) {
          continue;
        }
        if (fn == nullptr || cand.body_begin > fn->body_begin) fn = &cand;
      }
      if (fn == nullptr) continue;  // Class scope (declaration).
      if (fn->is_ctor || fn->is_dtor) continue;  // Exclusive access.

      for (const Decl& decl : it->second) {
        const GuardedField* field = decl.field;
        // Bare access must come from the field's own class. `x.field`
        // matches by name across classes, but only within the component
        // that declared the field (same file stem, pairing a header with
        // its .cpp) — guarded fields are implementation details, and the
        // name-only match would otherwise snag unrelated fields that
        // happen to share the name (e.g. RuntimeConfig::queue vs.
        // ThreadPool's Worker::queue).
        if (!member && field->class_name != fn->class_name) continue;
        if (member && field->class_name != fn->class_name && decl.stem != stem)
          continue;
        if (holds_lenient(*fn, field->mutex, token.line)) continue;
        if (file.source.allows(token.line, "guarded-by")) continue;
        out.push_back(Finding{
            file.source.path, token.line + 1, "guarded-by",
            "field '" + field->field + "' is REDUND_GUARDED_BY(" +
                field->mutex + ") but accessed in " + fn->qualified +
                " without holding '" + field->mutex + "'"});
        break;  // One finding per access site.
      }
    }
  }
}

void check_lock_rules_(const CallGraph& graph, const AttributeMap& attrs,
                       std::vector<Finding>& out) {
  for (std::size_t i = 0; i < graph.nodes().size(); ++i) {
    const FunctionInfo& caller = graph.fn(i);
    for (const Edge& edge : graph.nodes()[i].edges) {
      if (edge.callee == i) continue;
      const FunctionInfo& callee = graph.fn(edge.callee);

      for (const std::string& m : callee.requires_locks) {
        if (holds_lenient(caller, m, edge.line)) continue;
        report_project_(
            graph, i, edge.line, "lock-requires",
            "call to " + callee.qualified + " which REDUND_REQUIRES(" + m +
                ") without holding '" + m + "'",
            out);
      }

      for (const std::string& m : attrs.effective_excludes(edge.callee)) {
        if (!holds_lenient(caller, m, edge.line)) continue;
        report_project_(
            graph, i, edge.line, "lock-excludes",
            "call while holding '" + m +
                "' into code that must not run under it "
                "(self-deadlock on a non-recursive mutex): " +
                attrs.exclude_chain(edge.callee, m, graph),
            out);
      }
    }
  }
}

}  // namespace

bool mutex_matches(const std::string& held, const std::string& wanted) {
  if (held == wanted) return true;
  if (last_component(held) == wanted) return true;
  if (last_component(wanted) == held) return true;
  return false;
}

LintOptions options_for(const std::string& path) {
  LintOptions options;
  const auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::string(suffix).size();
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  options.header = ends_with(".hpp") || ends_with(".h");
  options.runtime_rules = path.find("/runtime/") != std::string::npos ||
                          path.find("/sim/") != std::string::npos ||
                          path.find("/control/") != std::string::npos;
  options.wave_rules = path.find("/sim/") != std::string::npos;
  return options;
}

std::vector<Finding> run_file_rules(const SourceFile& src,
                                    const LintOptions& options) {
  return FileLinter(src, options).run();
}

void run_project_rules(const CallGraph& graph, const AttributeMap& attrs,
                       const std::vector<ParsedFile>& files,
                       std::vector<Finding>& out) {
  check_transitive_hot_(graph, attrs, out);
  check_determinism_taint_(graph, attrs, out);
  check_guarded_by_(files, out);
  check_lock_rules_(graph, attrs, out);

  // Dedupe (two calls on one line can produce identical findings).
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.rule, a.message) <
           std::tie(b.path, b.line, b.rule, b.message);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.path == b.path && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
}

}  // namespace redund::analysis
