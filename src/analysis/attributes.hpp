// Transitive attribute inference over the call graph.
//
// Each function gets a bitmask of behavioural attributes detected
// directly in its body (token-level, allow()-aware), then the mask is
// propagated caller-ward to a fixpoint: a function that calls an
// allocating function allocates. Every propagated bit keeps a witness
// (the call edge that introduced it), so a finding can print the full
// chain `hot fn -> helper -> operator new (file:line)` instead of just
// the first hop.
//
// The lattice is a powerset of six independent bits, so the fixpoint is
// monotone and converges in at most |attrs| * |nodes| rounds; in
// practice two or three sweeps settle the whole tree.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/callgraph.hpp"

namespace redund::analysis {

enum Attribute : std::uint32_t {
  kAllocates = 1U << 0,       ///< Heap growth: new/malloc/push_back/...
  kBlocksIo = 1U << 1,        ///< fsync/fwrite/ofstream/.flush().
  kDrawsRng = 1U << 2,        ///< rand()/std::random_device entropy.
  kReadsClock = 1U << 3,      ///< time()/chrono clock now().
  kUnorderedIterates = 1U << 4,  ///< Iterates a std::unordered_* container.
  kAddressAsValue = 1U << 5,  ///< Pointer value cast to an integer.
};

/// The nondeterminism-source subset (the determinism-taint rule's
/// forbidden mask for serialization code).
inline constexpr std::uint32_t kNondeterminismSources =
    kDrawsRng | kReadsClock | kUnorderedIterates | kAddressAsValue;

[[nodiscard]] const char* attribute_name(std::uint32_t attr);

/// Why a function carries an attribute.
struct Witness {
  bool direct = false;
  std::size_t line = 0;    ///< 0-based: offending line (direct) or call site.
  std::string detail;      ///< Token that fired (direct only).
  std::size_t via = 0;     ///< Callee node index (propagated only).
};

class AttributeMap {
 public:
  /// Detects direct attributes and runs the propagation fixpoint.
  void build(const CallGraph& graph, const std::vector<ParsedFile>& files);

  /// Direct ∪ propagated attribute mask of a node.
  [[nodiscard]] std::uint32_t effective(std::size_t node) const {
    return effective_[node];
  }
  [[nodiscard]] std::uint32_t direct(std::size_t node) const {
    return direct_[node];
  }

  /// Witness for one attribute bit (nullptr when the bit is clear).
  [[nodiscard]] const Witness* witness(std::size_t node,
                                       std::uint32_t attr) const;

  /// Human-readable chain "helper_a (file:12) -> helper_b (file:30) ->
  /// push_back (file:31)" for a node's attribute, 1-based lines.
  [[nodiscard]] std::string chain(std::size_t node, std::uint32_t attr,
                                  const CallGraph& graph) const;

  /// Effective (transitively propagated) excluded-mutex set: the node's
  /// own REDUND_EXCLUDES plus every mutex it (or a callee) acquires.
  [[nodiscard]] const std::vector<std::string>& effective_excludes(
      std::size_t node) const {
    return excludes_[node];
  }

  /// Chain explaining why a node excludes a mutex ("run -> parallel_for
  /// (call at pool.cpp:80) -> ... (acquires sleep_mutex_)").
  [[nodiscard]] std::string exclude_chain(std::size_t node,
                                          const std::string& mutex,
                                          const CallGraph& graph) const;

  /// Fixpoint sweeps the attribute propagation needed (for tests).
  [[nodiscard]] std::size_t sweeps() const { return sweeps_; }

 private:
  static constexpr std::size_t kAttrCount = 6;
  [[nodiscard]] static std::size_t bit_index_(std::uint32_t attr);

  std::vector<std::uint32_t> direct_;
  std::vector<std::uint32_t> effective_;
  std::vector<std::array<Witness, kAttrCount>> witnesses_;
  std::vector<std::vector<std::string>> excludes_;
  std::vector<std::map<std::string, Witness>> excl_witness_;
  std::size_t sweeps_ = 0;
};

}  // namespace redund::analysis
