// Function/body extraction over the token stream: a C++-subset parser
// good enough to recover, per file, the set of function definitions and
// declarations (with qualified names and body line ranges), the call
// sites inside each body, the lock-hold regions implied by RAII guards
// and REDUND_REQUIRES annotations, and the REDUND_GUARDED_BY field map.
//
// This is deliberately not a real C++ front end. It tracks namespace and
// class scope by brace matching, recognizes a function header as
// `name(params) specifiers... {` at namespace/class scope, and treats
// everything between the body braces as that function's lines. Template
// headers, operator overloads, constructors with init lists, trailing
// return types, and nested lambdas are handled; exotic shapes (function-
// try-blocks, preprocessor conditionals that unbalance braces) are not —
// the tree doesn't use them, and the self-test pins the shapes it does.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/source.hpp"

namespace redund::analysis {

/// One call site inside a function body.
struct CallSite {
  std::size_t line = 0;  ///< 0-based line of the callee name.
  std::string name;      ///< As written, possibly qualified ("A::f").
  bool member_access = false;  ///< Written as `obj.f(...)` / `ptr->f(...)`.
  bool in_loop = false;        ///< Inside a loop body in this function.
};

/// A contiguous range of lines during which a mutex is held (an RAII
/// guard's scope, approximated at line granularity).
struct LockRegion {
  std::string mutex;           ///< Last identifier of the guard argument.
  std::size_t first_line = 0;  ///< 0-based, inclusive.
  std::size_t last_line = 0;   ///< 0-based, inclusive.
};

struct FunctionInfo {
  std::string name;        ///< Last name component ("enqueue_", "operator()").
  std::string qualified;   ///< Fully scope-qualified ("ns::Class::name").
  std::string class_name;  ///< Innermost enclosing class ("" if free).
  std::size_t header_line = 0;  ///< 0-based line of the name token.
  std::size_t body_begin = 0;   ///< 0-based line of the opening '{'.
  std::size_t body_end = 0;     ///< 0-based line of the closing '}'.
  bool has_body = false;
  bool is_ctor = false;
  bool is_dtor = false;
  bool hot = false;            ///< `// redund: hot` annotation.
  bool deterministic = false;  ///< `// redund: deterministic` annotation.
  std::vector<std::string> requires_locks;  ///< REDUND_REQUIRES(m) args.
  std::vector<std::string> excludes_locks;  ///< REDUND_EXCLUDES(m) args.
  std::vector<LockRegion> lock_regions;     ///< RAII-guard hold regions.
  std::vector<CallSite> calls;

  /// True when mutex `m` is held at `line`: inside a guard region or
  /// declared held by REDUND_REQUIRES.
  [[nodiscard]] bool holds_at(const std::string& m, std::size_t line) const;
};

/// A field declaration carrying REDUND_GUARDED_BY(m).
struct GuardedField {
  std::string class_name;
  std::string field;
  std::string mutex;
  std::size_t line = 0;  ///< 0-based declaration line.
};

struct ParsedFile {
  SourceFile source;
  std::vector<FunctionInfo> functions;
  std::vector<GuardedField> guarded_fields;
};

/// Parses one file: scrub, tokenize, extract functions/annotations.
[[nodiscard]] ParsedFile parse_file(std::string path, const std::string& text);

}  // namespace redund::analysis
