#include "analysis/callgraph.hpp"

#include <algorithm>
#include <map>
#include <ostream>

namespace redund::analysis {

namespace {

std::vector<std::string> split_components(const std::string& name) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t sep = name.find("::", start);
    if (sep == std::string::npos) {
      parts.push_back(name.substr(start));
      return parts;
    }
    parts.push_back(name.substr(start, sep - start));
    start = sep + 2;
  }
}

/// Method names too generic to resolve through an object expression:
/// `x.flush()` on a stream must not link to CheckpointWriter::flush just
/// because that happens to be the only project method named flush.
bool is_generic_method_name(const std::string& name) {
  static const char* kNames[] = {
      "flush",  "push_back", "pop_back", "insert", "erase",  "clear",
      "size",   "empty",     "begin",    "end",    "find",   "count",
      "resize", "reserve",   "swap",     "merge",  "lock",   "unlock",
      "get",    "reset",     "front",    "back",   "at",     "data",
      "push",   "pop",       "top",      "wait",   "close",  "open",
      "load",   "store",     "str",      "c_str",  "first",  "second",
  };
  return std::any_of(std::begin(kNames), std::end(kNames),
                     [&](const char* w) { return name == w; });
}

}  // namespace

bool qualified_suffix_match(const std::string& qualified,
                            const std::string& name) {
  const std::vector<std::string> q = split_components(qualified);
  const std::vector<std::string> n = split_components(name);
  if (n.size() > q.size()) return false;
  return std::equal(n.rbegin(), n.rend(), q.rbegin());
}

void CallGraph::build(std::vector<ParsedFile>& files) {
  files_ = &files;
  nodes_.clear();
  unresolved_ = 0;

  // Merge declaration-only annotations (REQUIRES/EXCLUDES on header
  // prototypes) into the matching definitions, keyed by (class, name).
  std::map<std::pair<std::string, std::string>, std::vector<FunctionInfo*>>
      by_key;
  for (ParsedFile& file : files) {
    for (FunctionInfo& fn : file.functions) {
      by_key[{fn.class_name, fn.name}].push_back(&fn);
    }
  }
  for (auto& [key, fns] : by_key) {
    std::vector<std::string> req;
    std::vector<std::string> excl;
    bool hot = false;
    bool det = false;
    for (const FunctionInfo* fn : fns) {
      req.insert(req.end(), fn->requires_locks.begin(),
                 fn->requires_locks.end());
      excl.insert(excl.end(), fn->excludes_locks.begin(),
                  fn->excludes_locks.end());
      hot = hot || fn->hot;
      det = det || fn->deterministic;
    }
    std::sort(req.begin(), req.end());
    req.erase(std::unique(req.begin(), req.end()), req.end());
    std::sort(excl.begin(), excl.end());
    excl.erase(std::unique(excl.begin(), excl.end()), excl.end());
    for (FunctionInfo* fn : fns) {
      if (!fn->has_body) continue;
      fn->requires_locks = req;
      fn->excludes_locks = excl;
      fn->hot = fn->hot || hot;
      fn->deterministic = fn->deterministic || det;
    }
  }

  // One node per definition.
  for (std::size_t f = 0; f < files.size(); ++f) {
    for (std::size_t k = 0; k < files[f].functions.size(); ++k) {
      if (files[f].functions[k].has_body) {
        nodes_.push_back(Node{f, k, {}});
      }
    }
  }

  // Edges.
  for (Node& node : nodes_) {
    const FunctionInfo& caller = fn_of_(node);
    for (const CallSite& call : caller.calls) {
      const std::size_t callee = resolve_(call, node);
      if (callee == npos) {
        ++unresolved_;
        continue;
      }
      node.edges.push_back(Edge{callee, call.line, call.in_loop});
    }
  }
}

const FunctionInfo& CallGraph::fn(std::size_t node) const {
  return fn_of_(nodes_[node]);
}

const ParsedFile& CallGraph::file_of(std::size_t node) const {
  return (*files_)[nodes_[node].file];
}

std::size_t CallGraph::find(const std::string& qualified_suffix) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (qualified_suffix_match(fn(i).qualified, qualified_suffix)) return i;
  }
  return npos;
}

std::size_t CallGraph::resolve_(const CallSite& call,
                                const Node& caller) const {
  const std::vector<std::string> parts = split_components(call.name);
  const std::string& last = parts.back();
  if (parts.size() > 1 && parts.front() == "std") return npos;  // External.

  const FunctionInfo& from = fn_of_(caller);

  if (parts.size() > 1) {
    // Qualified call: unique suffix match wins.
    std::size_t found = npos;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (qualified_suffix_match(fn(i).qualified, call.name)) {
        if (found != npos) return npos;  // Ambiguous.
        found = i;
      }
    }
    return found;
  }

  // Unqualified same-class method call (implicit this->f()).
  if (!call.member_access && !from.class_name.empty()) {
    std::size_t found = npos;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const FunctionInfo& cand = fn(i);
      if (cand.name == last && cand.class_name == from.class_name) {
        if (found != npos) return npos;
        found = i;
      }
    }
    if (found != npos) return found;
  }

  if (call.member_access && is_generic_method_name(last)) return npos;

  // Any unique project-wide match; same-file tie-break on ambiguity.
  std::size_t unique = npos;
  std::size_t same_file = npos;
  bool ambiguous = false;
  bool same_file_ambiguous = false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const FunctionInfo& cand = fn(i);
    if (cand.name != last) continue;
    if (call.member_access && cand.class_name.empty()) continue;
    if (unique != npos) ambiguous = true;
    unique = i;
    if (nodes_[i].file == caller.file) {
      if (same_file != npos) same_file_ambiguous = true;
      same_file = i;
    }
  }
  if (!ambiguous) return unique;
  if (!same_file_ambiguous && same_file != npos) return same_file;
  return npos;
}

void CallGraph::dump_dot(std::ostream& out) const {
  out << "digraph redund_callgraph {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const FunctionInfo& f = fn(i);
    out << "  n" << i << " [label=\"" << f.qualified;
    if (f.hot) out << "\\n[hot]";
    if (f.deterministic) out << "\\n[deterministic]";
    for (const std::string& m : f.requires_locks) {
      out << "\\n[requires " << m << "]";
    }
    for (const std::string& m : f.excludes_locks) {
      out << "\\n[excludes " << m << "]";
    }
    out << "\"";
    if (f.hot) out << ", style=filled, fillcolor=\"#ffdddd\"";
    else if (f.deterministic) out << ", style=filled, fillcolor=\"#ddddff\"";
    out << "];\n";
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const Edge& e : nodes_[i].edges) {
      out << "  n" << i << " -> n" << e.callee;
      if (e.in_loop) out << " [label=\"loop\"]";
      out << ";\n";
    }
  }
  out << "}\n";
}

const FunctionInfo& CallGraph::fn_of_(const Node& node) const {
  return (*files_)[node.file].functions[node.function];
}

}  // namespace redund::analysis
