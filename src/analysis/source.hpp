// Source-text layer of the static-analysis library: comment/string/raw-
// literal scrubbing, `redund-lint: allow(...)` suppression parsing, and a
// light identifier tokenizer.
//
// This is the foundation the rest of src/analysis/ builds on. The scrubber
// is the proven one from redund_lint v1 (it handled every comment/string
// corner the tree ever threw at it); v2 moves it into a library so the
// function parser, the call graph, and the lint rules all see the same
// scrubbed view of a file.
//
// Scrubbing contract: `code` keeps the original column positions (string
// and comment bodies are blanked with spaces) so line/column diagnostics
// point at real source, and `comment` concatenates the comment text of the
// line, which is where `redund:` annotations and `redund-lint:` allow()
// suppressions live.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace redund::analysis {

/// One source line after comment/string stripping.
struct ScrubbedLine {
  std::string code;     ///< Comments/strings blanked, columns preserved.
  std::string comment;  ///< Concatenated comment text of the line.
};

/// Comment/string scanner. Handles //, /* */, "..." with escapes, '...'
/// with escapes, and raw strings R"delim(...)delim". Operates on the whole
/// file so block comments and raw strings may span lines.
[[nodiscard]] std::vector<ScrubbedLine> scrub_source(const std::string& text);

/// Parses `redund-lint: allow(a, b)` out of a comment; returns the allowed
/// rule names (or {"all"}).
[[nodiscard]] std::vector<std::string> allowed_rules(
    const std::string& comment);

[[nodiscard]] bool is_identifier_char(char c);

/// True when `comment` IS a `redund: <kind>` annotation (possibly with
/// trailing prose), as opposed to a comment that merely mentions one.
/// Leading doc-comment decoration (`/`, `*`, `-`, whitespace) is skipped;
/// anything else before `redund:` disqualifies the line, so
/// "Maps `// redund: hot` comments..." in the linter's own docs does not
/// annotate the next function.
[[nodiscard]] bool has_annotation(const std::string& comment,
                                  const char* kind);

/// True when `text` contains `token` as a whole identifier (not a substring
/// of a longer identifier). `token` may end in '(' to require a call.
[[nodiscard]] bool contains_token(const std::string& text,
                                  const std::string& token);

/// A file loaded, scrubbed, and annotated with per-line allow() sets.
struct SourceFile {
  std::string path;
  std::vector<ScrubbedLine> lines;
  std::vector<std::vector<std::string>> allow;  ///< Per line, parallel.
  bool is_header = false;

  [[nodiscard]] static SourceFile parse(std::string path,
                                        const std::string& text);

  /// True when `rule` (or `all`) is allowed on `line` or the line directly
  /// above it — the v1 suppression contract, unchanged in v2.
  [[nodiscard]] bool allows(std::size_t line, const std::string& rule) const;
};

/// One lexical token of scrubbed code. The tokenizer recognizes
/// identifiers, pp-numbers, and punctuation; `::` and `->` are fused into
/// single tokens because the parser treats them as name/member glue.
struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 0-based line index.
};

/// Tokenizes scrubbed code lines. Blanked string/comment regions produce
/// no tokens, so every token is real code.
[[nodiscard]] std::vector<Token> tokenize(
    const std::vector<ScrubbedLine>& lines);

}  // namespace redund::analysis
