// Plan serialization: a small versioned text format so a supervisor can
// export a realized deployment plan from the planning tool and load it in
// the distribution pipeline (and so campaigns are reproducible artifacts).
//
// Format (line-oriented, '#' comments allowed, whitespace-tolerant):
//
//   redundancy-plan v1
//   tasks <N>
//   counts <x_1> <x_2> ... <x_M>
//   tail <multiplicity> <tasks>        # omitted when no tail partition
//   ringers <count> <multiplicity>     # omitted when no ringers
//   end
//
// Totals (work/ringer assignments) are recomputed on load and cross-checked
// against the counts, so a hand-edited file cannot smuggle inconsistency.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "core/realize.hpp"

namespace redund::core {

/// Serializes `plan` in the v1 text format.
[[nodiscard]] std::string to_text(const RealizedPlan& plan);

/// Writes the v1 text format to a stream.
void write_plan(std::ostream& out, const RealizedPlan& plan);

/// Parses a v1 plan. Throws std::invalid_argument with a line-numbered
/// message on malformed input or internal inconsistency (e.g. counts not
/// summing to `tasks`, tail/ringer bands outside the counts vector).
[[nodiscard]] RealizedPlan parse_plan(std::string_view text);

/// Reads and parses a plan from a stream.
[[nodiscard]] RealizedPlan read_plan(std::istream& in);

}  // namespace redund::core
