#include "core/realize.hpp"

#include <cmath>
#include <stdexcept>

namespace redund::core {

std::int64_t RealizedPlan::tasks_at(std::int64_t multiplicity) const noexcept {
  if (multiplicity < 1 ||
      multiplicity > static_cast<std::int64_t>(counts.size())) {
    return 0;
  }
  return counts[static_cast<std::size_t>(multiplicity - 1)];
}

Distribution RealizedPlan::as_distribution(bool include_ringers) const {
  std::size_t size = counts.size();
  if (include_ringers && ringer_count > 0) {
    size = std::max(size, static_cast<std::size_t>(ringer_multiplicity));
  }
  std::vector<double> components(size, 0.0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    components[i] = static_cast<double>(counts[i]);
  }
  if (include_ringers && ringer_count > 0) {
    components[static_cast<std::size_t>(ringer_multiplicity - 1)] +=
        static_cast<double>(ringer_count);
  }
  return Distribution(std::move(components), "realized");
}

std::int64_t ringer_requirement(double x_top, std::int64_t top, double epsilon) {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    throw std::invalid_argument(
        "ringer_requirement: epsilon must lie in (0, 1)");
  }
  if (top < 1 || !(x_top >= 0.0)) {
    throw std::invalid_argument("ringer_requirement: bad top multiplicity");
  }
  if (x_top == 0.0) return 0;
  const double threshold =
      epsilon * x_top /
      ((1.0 - epsilon) * static_cast<double>(top + 1));
  // Strictly greater than the threshold, per the paper's inequality.
  const auto floor_value = static_cast<std::int64_t>(std::floor(threshold));
  const std::int64_t candidate = floor_value + 1;
  // If threshold is itself integral, floor + 1 is still strictly greater; if
  // equality suffices (it does: the constraint is >=), accept floor when it
  // already meets the closed-form check.
  const auto meets = [&](std::int64_t r) {
    const double protection = static_cast<double>(top + 1) * static_cast<double>(r);
    return protection / (x_top + protection) >= epsilon;
  };
  if (floor_value >= 1 && meets(floor_value)) return floor_value;
  return candidate;
}

RealizedPlan realize(const Distribution& theoretical, std::int64_t task_count,
                     double epsilon, const RealizeOptions& options) {
  if (task_count < 1) {
    throw std::invalid_argument("realize: task_count must be >= 1");
  }
  if (theoretical.dimension() == 0) {
    throw std::invalid_argument("realize: empty theoretical distribution");
  }
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    throw std::invalid_argument("realize: epsilon must lie in (0, 1)");
  }
  const double n_real = static_cast<double>(task_count);
  if (std::abs(theoretical.task_count() - n_real) > 0.01 * n_real + 2.0) {
    throw std::invalid_argument(
        "realize: theoretical distribution does not cover ~task_count tasks");
  }

  RealizedPlan plan;
  plan.task_count = task_count;
  plan.counts.assign(static_cast<std::size_t>(theoretical.dimension()), 0);

  // Step 1: floor every component; find i_f = first 0 < a_i < 1.
  std::int64_t assigned = 0;
  std::int64_t i_f = 0;
  for (std::int64_t i = 1; i <= theoretical.dimension(); ++i) {
    const double a_i = theoretical.tasks_at(i);
    const auto floored = static_cast<std::int64_t>(std::floor(a_i));
    plan.counts[static_cast<std::size_t>(i - 1)] = floored;
    assigned += floored;
    if (i_f == 0 && a_i > 0.0 && a_i < 1.0) i_f = i;
  }

  // Step 2: tail partition. Whatever flooring and truncation left uncovered
  // is assigned at multiplicity i_f (or at the distribution's top when every
  // component was integral down to the end).
  const std::int64_t remainder = task_count - assigned;
  if (remainder < 0) {
    throw std::invalid_argument(
        "realize: theoretical distribution over-covers task_count");
  }
  if (remainder > 0) {
    if (i_f == 0) i_f = theoretical.dimension();
    if (static_cast<std::size_t>(i_f) > plan.counts.size()) {
      plan.counts.resize(static_cast<std::size_t>(i_f), 0);
    }
    plan.counts[static_cast<std::size_t>(i_f - 1)] += remainder;
    plan.tail_multiplicity = i_f;
    plan.tail_tasks = remainder;
  }

  // Trim unoccupied top multiplicities so M is the true top.
  while (!plan.counts.empty() && plan.counts.back() == 0) plan.counts.pop_back();
  if (plan.counts.empty()) {
    throw std::invalid_argument("realize: realization produced no tasks");
  }

  for (std::size_t i = 0; i < plan.counts.size(); ++i) {
    plan.work_assignments +=
        static_cast<std::int64_t>(i + 1) * plan.counts[i];
  }

  // Step 3: ringers above the top occupied multiplicity M.
  if (options.add_ringers) {
    const auto top = static_cast<std::int64_t>(plan.counts.size());
    const auto x_top = static_cast<double>(plan.counts.back());
    plan.ringer_count = ringer_requirement(x_top, top, epsilon);
    if (plan.ringer_count > 0) {
      plan.ringer_multiplicity = top + 1;
      plan.ringer_assignments = plan.ringer_count * plan.ringer_multiplicity;
    }
  }
  return plan;
}

}  // namespace redund::core
