// Deployment realization of a theoretical distribution (paper Section 6).
//
// Theoretical distributions have real-valued components and (conceptually)
// infinite dimension; a deployment needs integer task counts and a bounded
// top multiplicity. The paper's adaptation, implemented here:
//
//   1. Round each a_i down to an integer.
//   2. Let i_f be the first multiplicity where a_i drops below one task.
//      Everything not yet covered — the sub-unit tail plus what flooring
//      shaved off — forms the *tail partition*, assigned with multiplicity
//      i_f. The tail holds at most i_f + 1/(1-eps) tasks (Lagrange remainder
//      bound), a negligible sliver of the computation.
//   3. The top occupied multiplicity M is structurally unprotected (an
//      adversary holding all M copies of such a task is undetectable), so
//      distribute r precomputed *ringer* tasks with multiplicity M + 1,
//      where r is the least integer with
//          (M+1) r / (x_M + (M+1) r) >= eps,
//      i.e. r > eps * x_M / ((1-eps)(M+1)).
//      Ringers only ever raise detection probabilities for the other k too.
//
// Anchor values from the paper: N = 10^7, eps = 0.99 gives i_f = 20, a tail
// of 12 tasks (240 assignments of ~46.5M total) and 57 ringers; the typical
// N = 10^6, eps = 0.75 gives i_f = 11, a 5-task tail and 2 ringers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/distribution.hpp"

namespace redund::core {

/// Controls for realize().
struct RealizeOptions {
  bool add_ringers = true;  ///< Guard the top multiplicity with ringers.
};

/// An integer deployment plan produced by realize().
struct RealizedPlan {
  /// tasks_at[i-1] = integer number of real tasks assigned with multiplicity
  /// i (tail partition included; ringers excluded).
  std::vector<std::int64_t> counts;

  std::int64_t task_count = 0;          ///< N — always covered exactly.
  std::int64_t tail_multiplicity = 0;   ///< i_f (0 when no tail was needed).
  std::int64_t tail_tasks = 0;          ///< Tasks placed in the tail partition.
  std::int64_t ringer_count = 0;        ///< r precomputed ringer tasks.
  std::int64_t ringer_multiplicity = 0; ///< M + 1 (0 when no ringers).
  std::int64_t work_assignments = 0;    ///< sum_i i * counts[i-1].
  std::int64_t ringer_assignments = 0;  ///< r * (M + 1).

  /// Everything workers will execute: real work plus ringer copies.
  [[nodiscard]] std::int64_t total_assignments() const noexcept {
    return work_assignments + ringer_assignments;
  }

  /// Achieved integer redundancy factor, ringers included.
  [[nodiscard]] double redundancy_factor() const noexcept {
    return task_count > 0 ? static_cast<double>(total_assignments()) /
                                static_cast<double>(task_count)
                          : 0.0;
  }

  /// Integer number of real tasks at `multiplicity`, 0 out of range.
  [[nodiscard]] std::int64_t tasks_at(std::int64_t multiplicity) const noexcept;

  /// View as a Distribution for the detection engine / validity checker.
  /// With include_ringers, the r ringer tasks appear at multiplicity M+1
  /// (the supervisor knows their results, so they count as protection mass).
  [[nodiscard]] Distribution as_distribution(bool include_ringers = true) const;
};

/// Realizes `theoretical` for an integer N-task computation at level
/// `epsilon` (used only for ringer sizing; pass the level the theoretical
/// distribution was built for). Requires task_count >= 1 and a non-empty
/// theoretical distribution whose task mass is within rounding of N.
[[nodiscard]] RealizedPlan realize(const Distribution& theoretical,
                                   std::int64_t task_count, double epsilon,
                                   const RealizeOptions& options = {});

/// The least integer r with (M+1) r / (x_M + (M+1) r) >= eps — the ringer
/// count guarding x_top tasks of multiplicity `top` at level eps.
[[nodiscard]] std::int64_t ringer_requirement(double x_top, std::int64_t top,
                                              double epsilon);

}  // namespace redund::core
