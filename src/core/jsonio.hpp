// Shared subset-JSON reader/writer helpers.
//
// Every JSON surface in the repo (perf bench reports, fault schedules,
// plan files) speaks the same deliberately small dialect: objects,
// arrays, strings, numbers, bools, null — no comments, no NaN/Inf
// literals. jsonio gives them one recursive-descent cursor and one set
// of writer primitives so the dialect cannot drift between modules and
// the tools stay dependency-free.
//
// The cursor throws std::runtime_error on malformed input rather than
// guessing; callers prepend their own context via the `context` tag
// passed at construction ("perf report JSON: ...", "fault plan JSON:
// ...").
#pragma once

#include <string>

namespace redund::core {

/// Appends `text` to `out` as a quoted, escaped JSON string literal.
void json_append_escaped(std::string& out, const std::string& text);

/// Formats a double as the shortest round-trippable decimal ("%.17g").
[[nodiscard]] std::string json_format_double(double value);

/// Minimal recursive-descent reader for the repo's JSON subset.
///
/// The cursor does not own the text; the string passed to the
/// constructor must outlive it. Typical loop over an object:
///
///   JsonCursor c(text, "fault plan JSON");
///   c.expect('{');
///   if (!c.consume_if('}')) {
///     do {
///       const std::string key = c.parse_string();
///       c.expect(':');
///       if (key == "...") { ... } else c.skip_value();
///     } while (c.consume_if(','));
///     c.expect('}');
///   }
class JsonCursor {
 public:
  /// `context` prefixes every error message ("<context>: <what>").
  JsonCursor(const std::string& text, std::string context);

  /// Skips whitespace.
  void skip_ws();

  /// True when only whitespace remains.
  [[nodiscard]] bool at_end();

  /// Next non-whitespace character without consuming it.
  [[nodiscard]] char peek();

  /// Consumes `c` or fails.
  void expect(char c);

  /// Consumes `c` if it is next; returns whether it did.
  [[nodiscard]] bool consume_if(char c);

  /// Parses a quoted string with the standard escapes (incl. \uXXXX,
  /// BMP-only, encoded as UTF-8).
  [[nodiscard]] std::string parse_string();

  /// Parses a number.
  [[nodiscard]] double parse_number();

  /// Parses and discards any value (for unknown keys).
  void skip_value();

  /// Throws std::runtime_error("<context>: <what>").
  [[noreturn]] void fail(const std::string& what) const;

 private:
  /// Deepest container nesting skip_value() will follow before failing
  /// (stack-exhaustion guard; real files in the repo nest 3-4 levels).
  static constexpr int kMaxSkipDepth = 256;

  void skip_value_(int depth);

  const char* p_;
  const char* end_;
  std::string context_;
};

}  // namespace redund::core
