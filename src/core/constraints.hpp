// Validity checking for redundancy distributions (paper Section 2.2).
//
// A distribution is a *valid m-dimensional distribution* at level epsilon if
//   (C_0)  sum_i x_i >= N,
//   (x>=0) every component is non-negative (enforced by Distribution), and
//   (C_k)  P_k >= epsilon for k = 1 .. m-1.
// C_m cannot be met by any m-dimensional distribution (an adversary holding
// all m copies of a top-multiplicity task is undetectable), which is the
// paper's argument that real deployments need precomputation or ringers —
// quantified by precompute_requirement() below and realized in realize.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/distribution.hpp"

namespace redund::core {

/// One violated requirement.
struct ConstraintViolation {
  std::int64_t k = 0;       ///< 0 for C_0 (coverage), otherwise the tuple size.
  double required = 0.0;    ///< Required value (N for C_0, epsilon for C_k).
  double actual = 0.0;      ///< Achieved value.
  std::string description;  ///< Human-readable explanation.
};

/// Report from check_validity().
struct ValidityReport {
  bool valid = true;
  std::vector<ConstraintViolation> violations;
};

/// Checks that `distribution` is a valid dimension()-dimensional distribution
/// for an N-task computation at detection level `epsilon`: C_0 plus C_k for
/// k = 1 .. dimension()-1. `tolerance` absorbs floating-point noise
/// (relative on C_0, absolute on probabilities).
[[nodiscard]] ValidityReport check_validity(const Distribution& distribution,
                                            double task_count, double epsilon,
                                            double tolerance = 1e-9);

/// As check_validity but also requires the top constraint C_dim to hold —
/// satisfiable only by distributions augmented with verification mass (e.g.
/// ringers above the top multiplicity). Used to validate realized plans.
[[nodiscard]] ValidityReport check_validity_all(const Distribution& distribution,
                                                double task_count, double epsilon,
                                                double tolerance = 1e-9);

/// The number of tasks the supervisor must itself verify for all constraints
/// to hold: the mass at the top multiplicity, x_m, which C_m cannot protect.
/// (Paper Figure 2, "Precomputing Required" column.)
[[nodiscard]] double precompute_requirement(const Distribution& distribution) noexcept;

}  // namespace redund::core
