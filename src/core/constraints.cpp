#include "core/constraints.hpp"

#include <cmath>

#include "core/detection.hpp"

namespace redund::core {

namespace {

ValidityReport check_impl(const Distribution& distribution, double task_count,
                          double epsilon, double tolerance,
                          std::int64_t top_constraint) {
  ValidityReport report;

  const double covered = distribution.task_count();
  if (covered < task_count * (1.0 - tolerance) - tolerance) {
    report.valid = false;
    report.violations.push_back(
        {0, task_count, covered,
         "C_0: distribution covers " + std::to_string(covered) + " of " +
             std::to_string(task_count) + " tasks"});
  }

  for (std::int64_t k = 1; k <= top_constraint; ++k) {
    const double p_k = asymptotic_detection(distribution, k);
    if (p_k < epsilon - tolerance) {
      report.valid = false;
      report.violations.push_back(
          {k, epsilon, p_k,
           "C_" + std::to_string(k) + ": P_" + std::to_string(k) + " = " +
               std::to_string(p_k) + " < epsilon = " + std::to_string(epsilon)});
    }
  }
  return report;
}

}  // namespace

ValidityReport check_validity(const Distribution& distribution, double task_count,
                              double epsilon, double tolerance) {
  return check_impl(distribution, task_count, epsilon, tolerance,
                    distribution.dimension() - 1);
}

ValidityReport check_validity_all(const Distribution& distribution,
                                  double task_count, double epsilon,
                                  double tolerance) {
  return check_impl(distribution, task_count, epsilon, tolerance,
                    distribution.dimension());
}

double precompute_requirement(const Distribution& distribution) noexcept {
  return distribution.tasks_at(distribution.dimension());
}

}  // namespace redund::core
