#include "core/jsonio.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace redund::core {

void json_append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_format_double(double value) {
  // Max precision round-trippable decimal; trims to keep files readable.
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

JsonCursor::JsonCursor(const std::string& text, std::string context)
    : p_(text.data()),
      end_(text.data() + text.size()),
      context_(std::move(context)) {}

void JsonCursor::skip_ws() {
  while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
}

bool JsonCursor::at_end() {
  skip_ws();
  return p_ == end_;
}

char JsonCursor::peek() {
  skip_ws();
  if (p_ == end_) fail("unexpected end of input");
  return *p_;
}

void JsonCursor::expect(char c) {
  if (peek() != c) fail(std::string("expected '") + c + "'");
  ++p_;
}

bool JsonCursor::consume_if(char c) {
  if (p_ != end_ && peek() == c) {
    ++p_;
    return true;
  }
  return false;
}

std::string JsonCursor::parse_string() {
  expect('"');
  std::string out;
  while (true) {
    if (p_ == end_) fail("unterminated string");
    const char c = *p_++;
    if (c == '"') return out;
    if (c == '\\') {
      if (p_ == end_) fail("unterminated escape");
      const char e = *p_++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (end_ - p_ < 4) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The repo's files only ever contain ASCII; encode BMP as
          // UTF-8 anyway.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    } else {
      out += c;
    }
  }
}

double JsonCursor::parse_number() {
  skip_ws();
  const char* start = p_;
  if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
  bool digits = false;
  while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                        *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                        *p_ == '+' || *p_ == '-')) {
    digits = digits || std::isdigit(static_cast<unsigned char>(*p_));
    ++p_;
  }
  if (!digits) fail("expected number");
  const std::string token(start, p_);
  // stod stops at the first character it cannot use and throws on
  // overflow; both must reject loudly — "1.2.3" silently read as 1.2 or
  // 1e999 collapsing to inf would corrupt downstream configs.
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::out_of_range&) {
    fail("number out of range: " + token);
  } catch (const std::invalid_argument&) {
    fail("malformed number: " + token);
  }
  if (consumed != token.size()) fail("malformed number: " + token);
  return value;
}

void JsonCursor::skip_value() { skip_value_(0); }

void JsonCursor::skip_value_(int depth) {
  // Bounds the recursion: a hand-crafted "[[[[..." must fail cleanly,
  // not exhaust the stack. Real files in the repo nest 3-4 deep.
  if (depth > kMaxSkipDepth) fail("value nesting too deep");
  const char c = peek();
  if (c == '"') {
    (void)parse_string();
  } else if (c == '{') {
    ++p_;
    if (!consume_if('}')) {
      do {
        (void)parse_string();
        expect(':');
        skip_value_(depth + 1);
      } while (consume_if(','));
      expect('}');
    }
  } else if (c == '[') {
    ++p_;
    if (!consume_if(']')) {
      do {
        skip_value_(depth + 1);
      } while (consume_if(','));
      expect(']');
    }
  } else if (c == 't' || c == 'f' || c == 'n') {
    const char* start = p_;
    while (p_ != end_ && std::isalpha(static_cast<unsigned char>(*p_))) ++p_;
    const std::string word(start, p_);
    if (word != "true" && word != "false" && word != "null") {
      fail("unknown literal: " + word);
    }
  } else {
    (void)parse_number();
  }
}

void JsonCursor::fail(const std::string& what) const {
  throw std::runtime_error(context_ + ": " + what);
}

}  // namespace redund::core
