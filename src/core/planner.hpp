// High-level planning facade — the one-call public API most users want.
//
// Given a computation size N, a target cheat-detection level epsilon, and a
// scheme choice, make_plan() builds the theoretical distribution, realizes
// it into integer task counts with tail partition and ringers (Section 6),
// and reports the cost/protection summary. See examples/quickstart.cpp.
#pragma once

#include <cstdint>
#include <string>

#include "core/distribution.hpp"
#include "core/realize.hpp"

namespace redund::core {

/// Scheme selector for make_plan().
enum class Scheme {
  kSimple,            ///< All tasks assigned `simple_multiplicity` times.
  kGolleStubblebine,  ///< Geometric baseline (Section 3.1).
  kBalanced,          ///< The paper's Balanced distribution (Section 4).
  kMinAssignment,     ///< LP-optimal S_m (Section 3.2) — cheapest, fragile.
  kMinMultiplicity,   ///< Balanced with a multiplicity floor (Section 7).
};

[[nodiscard]] std::string to_string(Scheme scheme);

/// Parameters for make_plan().
struct PlanRequest {
  std::int64_t task_count = 0;   ///< N, number of distinct tasks (>= 1).
  double epsilon = 0.5;          ///< Target detection level in (0, 1).
  Scheme scheme = Scheme::kBalanced;
  std::int64_t simple_multiplicity = 2;  ///< For kSimple.
  std::int64_t minimum_multiplicity = 2; ///< For kMinMultiplicity.
  std::int64_t lp_dimension = 12;        ///< For kMinAssignment (>= 2).
  bool add_ringers = true;               ///< Guard the top multiplicity.
};

/// A complete deployment plan.
struct Plan {
  Distribution theoretical;  ///< Real-valued scheme output.
  RealizedPlan realized;     ///< Integer counts + tail + ringers.
  double epsilon = 0.0;      ///< The level planned for.

  /// Guaranteed asymptotic detection level of the realized plan (min over
  /// tuple sizes, ringers included). ~epsilon for Balanced/GS/min-mult.
  double achieved_level = 0.0;
  /// Detection level against an adversary controlling 10% of assignments.
  double achieved_level_p10 = 0.0;
};

/// Builds a plan; throws std::invalid_argument for out-of-range parameters.
/// Note: kSimple cannot reach any positive level against colluders holding a
/// full tuple — its achieved_level is honest (near 0 without ringers).
[[nodiscard]] Plan make_plan(const PlanRequest& request);

}  // namespace redund::core
