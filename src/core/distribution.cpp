#include "core/distribution.hpp"

#include <stdexcept>

#include "math/summation.hpp"

namespace redund::core {

Distribution::Distribution(std::vector<double> tasks_by_multiplicity,
                           std::string label)
    : components_(std::move(tasks_by_multiplicity)), label_(std::move(label)) {
  for (const double x : components_) {
    if (!(x >= 0.0)) {  // Also rejects NaN.
      throw std::invalid_argument(
          "Distribution: components must be non-negative finite values");
    }
  }
  while (!components_.empty() && components_.back() == 0.0) {
    components_.pop_back();
  }
  recompute_totals_();
}

void Distribution::recompute_totals_() noexcept {
  math::NeumaierSum tasks;
  math::NeumaierSum assignments;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    tasks.add(components_[i]);
    assignments.add(static_cast<double>(i + 1) * components_[i]);
  }
  task_count_ = tasks.value();
  total_assignments_ = assignments.value();
}

double Distribution::tasks_at(std::int64_t multiplicity) const noexcept {
  if (multiplicity < 1 || multiplicity > dimension()) return 0.0;
  return components_[static_cast<std::size_t>(multiplicity - 1)];
}

double Distribution::redundancy_factor() const noexcept {
  return task_count_ > 0.0 ? total_assignments_ / task_count_ : 0.0;
}

double Distribution::proportion_at(std::int64_t multiplicity) const noexcept {
  return task_count_ > 0.0 ? tasks_at(multiplicity) / task_count_ : 0.0;
}

Distribution Distribution::scaled(double factor) const {
  if (!(factor >= 0.0)) {
    throw std::invalid_argument("Distribution::scaled: factor must be >= 0");
  }
  std::vector<double> scaled_components(components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    scaled_components[i] = components_[i] * factor;
  }
  return Distribution(std::move(scaled_components), label_);
}

Distribution make_simple_redundancy(double task_count, std::int64_t multiplicity) {
  if (multiplicity < 1) {
    throw std::invalid_argument(
        "make_simple_redundancy: multiplicity must be >= 1");
  }
  if (!(task_count >= 0.0)) {
    throw std::invalid_argument(
        "make_simple_redundancy: task_count must be >= 0");
  }
  std::vector<double> components(static_cast<std::size_t>(multiplicity), 0.0);
  components.back() = task_count;
  return Distribution(std::move(components),
                      "simple(m=" + std::to_string(multiplicity) + ")");
}

}  // namespace redund::core
