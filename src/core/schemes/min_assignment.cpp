#include "core/schemes/min_assignment.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "math/binomial.hpp"

namespace redund::core {

namespace {

void require_args(double task_count, double epsilon, std::int64_t dimension) {
  if (!(task_count > 0.0)) {
    throw std::invalid_argument("min_assignment: task_count must be > 0");
  }
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    throw std::invalid_argument("min_assignment: epsilon must lie in (0, 1)");
  }
  if (dimension < 2) {
    throw std::invalid_argument("min_assignment: dimension must be >= 2");
  }
}

lp::Model build_model(double task_count, double epsilon, std::int64_t dimension,
                      lp::Relation probability_relation) {
  lp::Model model;
  model.set_sense(lp::Sense::kMinimize);
  const auto m = static_cast<std::size_t>(dimension);
  for (std::size_t i = 1; i <= m; ++i) {
    model.add_variable(static_cast<double>(i), "x_" + std::to_string(i));
  }

  // C_0: coverage.
  {
    lp::Constraint c0;
    c0.name = "C_0";
    c0.relation = lp::Relation::kGreaterEqual;
    c0.rhs = task_count;
    for (std::size_t i = 0; i < m; ++i) {
      c0.variables.push_back(i);
      c0.coefficients.push_back(1.0);
    }
    model.add_constraint(std::move(c0));
  }

  // C_k, k = 1..m-1: sum_{i>k} C(i,k) x_i - (eps/(1-eps)) x_k REL 0.
  const double ratio = epsilon / (1.0 - epsilon);
  for (std::int64_t k = 1; k < dimension; ++k) {
    lp::Constraint ck;
    ck.name = "C_" + std::to_string(k);
    ck.relation = probability_relation;
    ck.rhs = 0.0;
    ck.variables.push_back(static_cast<std::size_t>(k - 1));
    ck.coefficients.push_back(-ratio);
    for (std::int64_t i = k + 1; i <= dimension; ++i) {
      ck.variables.push_back(static_cast<std::size_t>(i - 1));
      ck.coefficients.push_back(math::binomial(i, k));
    }
    model.add_constraint(std::move(ck));
  }
  return model;
}

MinAssignmentResult solve_model(const lp::Model& model, double epsilon,
                                std::int64_t dimension) {
  MinAssignmentResult result;
  const lp::SimplexSolver solver;
  const lp::Solution solution = solver.solve(model);
  result.status = solution.status;
  if (solution.status != lp::SolveStatus::kOptimal) return result;

  result.distribution = Distribution(
      solution.x, "min-assign(S_" + std::to_string(dimension) +
                      ",eps=" + std::to_string(epsilon) + ")");
  result.total_assignments = result.distribution.total_assignments();
  result.precompute_required =
      result.distribution.tasks_at(result.distribution.dimension());
  return result;
}

}  // namespace

lp::Model build_min_assignment_model(double task_count, double epsilon,
                                     std::int64_t dimension) {
  require_args(task_count, epsilon, dimension);
  return build_model(task_count, epsilon, dimension,
                     lp::Relation::kGreaterEqual);
}

MinAssignmentResult solve_min_assignment(double task_count, double epsilon,
                                         std::int64_t dimension) {
  require_args(task_count, epsilon, dimension);
  const lp::Model model =
      build_model(task_count, epsilon, dimension, lp::Relation::kGreaterEqual);
  return solve_model(model, epsilon, dimension);
}

MinAssignmentResult solve_min_assignment_equality(double task_count,
                                                  double epsilon,
                                                  std::int64_t dimension) {
  require_args(task_count, epsilon, dimension);
  const lp::Model model =
      build_model(task_count, epsilon, dimension, lp::Relation::kEqual);
  return solve_model(model, epsilon, dimension);
}

Distribution min_assignment_closed_form_half(double task_count,
                                             std::int64_t dimension) {
  if (dimension < 6) {
    throw std::invalid_argument(
        "min_assignment_closed_form_half: Fact 1 requires dimension >= 6");
  }
  if (!(task_count > 0.0)) {
    throw std::invalid_argument(
        "min_assignment_closed_form_half: task_count must be > 0");
  }
  const auto m = static_cast<double>(dimension);
  const double d = 3.0 * m * m - m + 2.0;
  std::vector<double> components(static_cast<std::size_t>(dimension), 0.0);
  components[0] = 2.0 * task_count * m * m / d;
  components[1] = task_count * m * (m - 1.0) / d;
  components[static_cast<std::size_t>(dimension - 1)] = 2.0 * task_count / d;
  return Distribution(std::move(components),
                      "fact1(S_" + std::to_string(dimension) + ",eps=0.5)");
}

double min_assignment_rf_half(std::int64_t dimension) {
  if (dimension < 6) {
    throw std::invalid_argument(
        "min_assignment_rf_half: Fact 1 requires dimension >= 6");
  }
  const auto m = static_cast<double>(dimension);
  return 4.0 * m * m / (3.0 * m * m - m + 2.0);
}

}  // namespace redund::core
