// The minimum-multiplicity extension of the Balanced distribution
// (paper Section 7).
//
// A supervisor may want every task assigned at least m times (e.g. m = 2 to
// retain simple redundancy's majority-voting fault tolerance for *benign*
// errors) while still guaranteeing detection level epsilon against colluders.
// The extension assigns, for i >= m,
//
//     a_i = N * beta * gamma^i / i!,
//     beta = 1 / ( e^gamma - sum_{j=0}^{m-1} gamma^j / j! ),
//
// i.e. N times the Poisson(gamma) distribution truncated below m. As in
// Theorem 1, the asymptotic detection probability is epsilon for every
// tuple size k >= m (and 1 for k < m: no task has fewer than m copies). The
// redundancy factor is beta * (gamma e^gamma - sum_{j=1}^{m-1} j gamma^j/j!)
// — the truncated-Poisson mean. Anchors from the paper (epsilon = 1/2):
// m = 2, 3, 4, 5 give RF ~ 2.259, 3.192, 4.152, 5.152; on N = 100,000
// tasks, m = 2 costs 25,900 assignments (~13%) over simple redundancy in
// exchange for a detection guarantee simple redundancy entirely lacks.
#pragma once

#include <cstdint>

#include "core/distribution.hpp"
#include "core/schemes/balanced.hpp"

namespace redund::core {

/// Closed-form redundancy factor of the minimum-multiplicity-m Balanced
/// distribution: the mean of Poisson(gamma(epsilon)) truncated below m.
/// m >= 1; m == 1 reduces to balanced_redundancy_factor.
[[nodiscard]] double min_multiplicity_redundancy_factor(double epsilon,
                                                        std::int64_t m);

/// The i-th component a_i (zero for i < m).
[[nodiscard]] double min_multiplicity_component(double task_count, double epsilon,
                                                std::int64_t m, std::int64_t i);

/// Builds the (truncated) minimum-multiplicity-m Balanced distribution.
/// m == 1 is exactly make_balanced. Throws for m < 1, epsilon outside (0,1),
/// or task_count < 0.
[[nodiscard]] Distribution make_min_multiplicity(double task_count, double epsilon,
                                                 std::int64_t m,
                                                 const BalancedOptions& options = {});

}  // namespace redund::core
