// Proposition 1 — the theoretical floor on redundancy (paper Appendix B).
//
// Relaxing S to keep only C_0 and C_1 yields a two-variable LP whose unique
// optimum is
//     x_1 = 2N(1-eps)/(2-eps),   x_2 = N eps/(2-eps),
// with total assignments 2N/(2-eps). That point is infeasible for the full
// system (it violates C_2), so every solution of S or S_m needs strictly
// more than 2N/(2-eps) assignments: the optimal redundancy factor is
// strictly greater than 2/(2-eps) (4/3 at eps = 1/2). This header provides
// the bound and the relaxed optimum, which the tests use to verify both the
// proposition's algebra and the simplex solver against an exact answer.
#pragma once

#include "core/distribution.hpp"

namespace redund::core {

/// The Prop.-1 redundancy-factor lower bound 2/(2-epsilon);
/// every valid scheme must exceed it strictly. epsilon in (0,1).
[[nodiscard]] double redundancy_lower_bound(double epsilon);

/// Lower bound on total assignments for an N-task computation: 2N/(2-eps).
[[nodiscard]] double assignment_lower_bound(double task_count, double epsilon);

/// The relaxed system's exact optimum (x_1, x_2) from the Appendix-B proof.
/// Feasible for {C_0, C_1} only; deliberately violates C_2.
[[nodiscard]] Distribution relaxed_optimum(double task_count, double epsilon);

}  // namespace redund::core
