#include "core/schemes/balanced.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "math/roots.hpp"

namespace redund::core {

namespace {

void require_level(double epsilon) {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    throw std::invalid_argument(
        "balanced: detection level epsilon must lie in (0, 1)");
  }
}

}  // namespace

double balanced_gamma(double epsilon) {
  require_level(epsilon);
  // ln(1/(1-eps)) = -ln(1-eps), computed via log1p for accuracy at small eps.
  return -std::log1p(-epsilon);
}

double balanced_component(double task_count, double epsilon, std::int64_t i) {
  require_level(epsilon);
  if (i < 1) return 0.0;
  const double gamma = balanced_gamma(epsilon);
  // a_i = N ((1-eps)/eps) gamma^i / i!, built by the stable term recurrence
  // (gamma < ln(100) for any epsilon <= 0.99, so no overflow is possible).
  double term = gamma;
  for (std::int64_t j = 2; j <= i; ++j) {
    term *= gamma / static_cast<double>(j);
  }
  return task_count * ((1.0 - epsilon) / epsilon) * term;
}

double balanced_redundancy_factor(double epsilon) {
  require_level(epsilon);
  return balanced_gamma(epsilon) / epsilon;
}

double balanced_detection(double epsilon, double p) {
  require_level(epsilon);
  if (!(p >= 0.0) || p >= 1.0) {
    throw std::invalid_argument("balanced_detection: p must lie in [0, 1)");
  }
  // 1 - (1-eps)^{1-p} = -expm1((1-p) * ln(1-eps)).
  return -std::expm1((1.0 - p) * std::log1p(-epsilon));
}

Distribution make_balanced(double task_count, double epsilon,
                           const BalancedOptions& options) {
  require_level(epsilon);
  if (!(task_count >= 0.0)) {
    throw std::invalid_argument("make_balanced: task_count must be >= 0");
  }
  const double gamma = balanced_gamma(epsilon);
  const double scale = task_count * (1.0 - epsilon) / epsilon;

  std::vector<double> components;
  double term = gamma;  // gamma^i / i! for i = 1.
  for (std::int64_t i = 1; i <= options.max_dimension; ++i) {
    const double a_i = scale * term;
    // Keep generating through the mode; stop once the (eventually strictly
    // decreasing) components drop below the cutoff.
    if (a_i < options.truncate_below && static_cast<double>(i) > gamma) break;
    components.push_back(a_i);
    term *= gamma / static_cast<double>(i + 1);
  }
  Distribution distribution(std::move(components));
  distribution.set_label("balanced(eps=" + std::to_string(epsilon) + ")");
  return distribution;
}

double balanced_level_for_robustness(double target_level, double p) {
  require_level(target_level);
  if (!(p >= 0.0) || p >= 1.0) {
    throw std::invalid_argument(
        "balanced_level_for_robustness: p must lie in [0, 1)");
  }
  // eps' = 1 - (1-target)^{1/(1-p)}, via expm1/log1p for accuracy.
  const double eps_prime = -std::expm1(std::log1p(-target_level) / (1.0 - p));
  if (!(eps_prime < 1.0)) {
    throw std::invalid_argument(
        "balanced_level_for_robustness: required design level reaches 1");
  }
  return eps_prime;
}

double balanced_level_for_budget(double task_count, double max_assignments) {
  if (!(task_count > 0.0)) {
    throw std::invalid_argument(
        "balanced_level_for_budget: task_count must be > 0");
  }
  const double budget_factor = max_assignments / task_count;
  if (budget_factor <= 1.0) return 0.0;  // Cheaper than assigning once: no-go.

  // RF(eps) = gamma(eps)/eps increases from 1 (eps->0) to infinity (eps->1).
  const auto residual = [budget_factor](double eps) {
    return balanced_redundancy_factor(eps) - budget_factor;
  };
  constexpr double kLo = 1e-9;
  constexpr double kHi = 1.0 - 1e-12;
  if (residual(kHi) < 0.0) return kHi;  // Budget exceeds any practical need.
  const auto root = math::brent(residual, kLo, kHi);
  return root && root->converged ? root->x : 0.0;
}

}  // namespace redund::core
