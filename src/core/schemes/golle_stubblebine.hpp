// The Golle-Stubblebine geometric distribution (paper Section 3.1; original
// in Golle & Stubblebine, Financial Crypto 2001) — the prior state of the
// art this paper improves on, implemented here as the headline baseline.
//
// For a parameter c in (0,1),
//     g_i = (1-c) c^{i-1} N,
// so multiplicities are geometric. Then sum_i g_i = N, the redundancy factor
// is 1/(1-c), and
//     P_k     = 1 - (1-c)^{k+1}               (asymptotic),
//     P_{k,p} = 1 - (1 - c(1-p))^{k+1}        (adversary holds proportion p).
// Detection probabilities *increase* with k, so an intelligent adversary
// always attacks singletons (k = 1); guaranteeing level epsilon therefore
// requires only P_1 >= epsilon, i.e. c >= 1 - sqrt(1-epsilon), giving
// RF = 1/sqrt(1-epsilon) — cheaper than simple redundancy iff epsilon < 0.75,
// but strictly costlier than Balanced for every epsilon (the mass spent
// raising P_k above epsilon for k > 1 is wasted; Section 3.1).
#pragma once

#include <cstdint>

#include "core/distribution.hpp"

namespace redund::core {

/// Truncation controls (same semantics as BalancedOptions).
struct GolleStubblebineOptions {
  double truncate_below = 1e-9;
  std::int64_t max_dimension = 512;
};

/// Smallest parameter c guaranteeing asymptotic level epsilon:
/// c = 1 - sqrt(1 - epsilon). Requires epsilon in (0,1).
[[nodiscard]] double gs_parameter_for_level(double epsilon);

/// Smallest c guaranteeing level epsilon against an adversary controlling
/// proportion p of assignments: c = (1 - sqrt(1-epsilon)) / (1-p). Throws if
/// the requirement is unsatisfiable with c < 1 (i.e. p >= sqrt(1-epsilon)).
[[nodiscard]] double gs_parameter_for_level_at(double epsilon, double p);

/// Closed-form redundancy factor 1/(1-c).
[[nodiscard]] double gs_redundancy_factor(double c);

/// Closed-form asymptotic detection probability 1 - (1-c)^{k+1}.
[[nodiscard]] double gs_detection(double c, std::int64_t k);

/// Closed-form non-asymptotic detection probability 1 - (1-c(1-p))^{k+1}.
[[nodiscard]] double gs_detection(double c, std::int64_t k, double p);

/// Builds the (truncated) geometric distribution with parameter c for an
/// N-task computation. Throws for c outside (0,1) or task_count < 0.
[[nodiscard]] Distribution make_golle_stubblebine(double task_count, double c,
                                                  const GolleStubblebineOptions&
                                                      options = {});

/// Convenience: the GS distribution tuned for asymptotic level epsilon.
[[nodiscard]] Distribution make_golle_stubblebine_for_level(
    double task_count, double epsilon,
    const GolleStubblebineOptions& options = {});

}  // namespace redund::core
