#include "core/schemes/min_multiplicity.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "math/poisson.hpp"

namespace redund::core {

namespace {

void require_args(double task_count, double epsilon, std::int64_t m) {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    throw std::invalid_argument(
        "min_multiplicity: epsilon must lie in (0, 1)");
  }
  if (m < 1) {
    throw std::invalid_argument(
        "min_multiplicity: minimum multiplicity m must be >= 1");
  }
  if (!(task_count >= 0.0)) {
    throw std::invalid_argument("min_multiplicity: task_count must be >= 0");
  }
}

}  // namespace

double min_multiplicity_redundancy_factor(double epsilon, std::int64_t m) {
  require_args(0.0, epsilon, m);
  const double gamma = balanced_gamma(epsilon);
  return math::truncated_poisson_mean(gamma, m);
}

double min_multiplicity_component(double task_count, double epsilon,
                                  std::int64_t m, std::int64_t i) {
  require_args(task_count, epsilon, m);
  if (i < m) return 0.0;
  const double gamma = balanced_gamma(epsilon);
  return task_count * math::truncated_poisson_pmf(gamma, m, i);
}

Distribution make_min_multiplicity(double task_count, double epsilon,
                                   std::int64_t m,
                                   const BalancedOptions& options) {
  require_args(task_count, epsilon, m);
  const double gamma = balanced_gamma(epsilon);
  const double tail = math::poisson_upper_tail(gamma, m);
  if (tail <= 0.0) {
    throw std::invalid_argument(
        "make_min_multiplicity: truncation mass underflows for these "
        "parameters");
  }
  std::vector<double> components(static_cast<std::size_t>(m - 1), 0.0);
  // a_i = N * pmf(i)/tail; build pmf by the stable term recurrence.
  double pmf = math::poisson_pmf(gamma, m);
  for (std::int64_t i = m; i <= options.max_dimension; ++i) {
    const double a_i = task_count * pmf / tail;
    if (a_i < options.truncate_below && static_cast<double>(i) > gamma) break;
    components.push_back(a_i);
    pmf *= gamma / static_cast<double>(i + 1);
  }
  Distribution distribution(std::move(components));
  distribution.set_label("min-mult(m=" + std::to_string(m) +
                         ",eps=" + std::to_string(epsilon) + ")");
  return distribution;
}

}  // namespace redund::core
