// The Balanced distribution — the paper's primary contribution (Section 4).
//
// For detection level epsilon in (0,1), let gamma = ln(1/(1-epsilon)). The
// Balanced distribution assigns
//
//     a_i = N * ((1-epsilon)/epsilon) * gamma^i / i!        (Eq. 2)
//
// tasks with multiplicity i — i.e. N times the zero-truncated Poisson(gamma)
// distribution (Theorem 1's proof). Properties (Theorem 1, Prop. 3):
//   1. sum_i a_i = N                       (covers the computation);
//   2. P_k = epsilon for every k >= 1      (all constraints met with equality,
//      which Prop. 2 shows any assignment-efficient, collusion-robust
//      distribution must do);
//   3. total assignments = (N/epsilon) * ln(1/(1-epsilon)), i.e.
//      RF = ln(1/(1-epsilon))/epsilon — below Golle-Stubblebine's
//      1/sqrt(1-epsilon) for all epsilon and below simple redundancy's 2
//      for epsilon < ~0.7968;
//   4. non-asymptotically, P_{k,p} = 1 - (1-epsilon)^{1-p}, independent of k.
#pragma once

#include <cstdint>

#include "core/distribution.hpp"

namespace redund::core {

/// Parameters for constructing a Balanced distribution.
struct BalancedOptions {
  /// Components are generated until a_i falls below this many tasks; the
  /// theoretical analyses want a long tail (the default keeps everything
  /// down to a billionth of a task), while Section 6 realization cuts at
  /// a_i < 1 itself.
  double truncate_below = 1e-9;
  /// Hard cap on the dimension, as a safety net for extreme epsilon.
  std::int64_t max_dimension = 512;
};

/// gamma(epsilon) = ln(1/(1-epsilon)). Requires 0 < epsilon < 1.
[[nodiscard]] double balanced_gamma(double epsilon);

/// The i-th component a_i of Eq. (2) for an N-task computation (i >= 1).
[[nodiscard]] double balanced_component(double task_count, double epsilon,
                                        std::int64_t i);

/// Closed-form redundancy factor ln(1/(1-epsilon))/epsilon (Theorem 1.3).
[[nodiscard]] double balanced_redundancy_factor(double epsilon);

/// Closed-form non-asymptotic detection probability (Proposition 3):
/// P_{k,p} = 1 - (1-epsilon)^{1-p} for every tuple size k; p in [0,1).
[[nodiscard]] double balanced_detection(double epsilon, double p);

/// Builds the (truncated) theoretical Balanced distribution for an N-task
/// computation at level epsilon. Throws std::invalid_argument for
/// epsilon outside (0,1) or task_count < 0.
[[nodiscard]] Distribution make_balanced(double task_count, double epsilon,
                                         const BalancedOptions& options = {});

/// Robust-level planning: the design level epsilon' such that the Balanced
/// distribution built for epsilon' still guarantees detection level
/// `target_level` against an adversary controlling proportion `p` of the
/// assignments. Inverts Proposition 3:
///     1 - (1-eps')^{1-p} >= target  <=>  eps' = 1 - (1-target)^{1/(1-p)}.
/// Throws for target_level or p outside their ranges, or when the required
/// epsilon' would reach 1 (unattainable).
[[nodiscard]] double balanced_level_for_robustness(double target_level,
                                                   double p);

/// Inverse planning: the largest epsilon whose Balanced distribution fits in
/// `max_assignments` total assignments for `task_count` tasks, found by
/// bracketed root search on the (strictly increasing) cost curve. Returns 0
/// if even epsilon -> 0 does not fit (budget < N).
[[nodiscard]] double balanced_level_for_budget(double task_count,
                                               double max_assignments);

}  // namespace redund::core
