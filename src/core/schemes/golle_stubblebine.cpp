#include "core/schemes/golle_stubblebine.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace redund::core {

namespace {

void require_parameter(double c) {
  if (!(c > 0.0) || !(c < 1.0)) {
    throw std::invalid_argument("golle-stubblebine: c must lie in (0, 1)");
  }
}

void require_level(double epsilon) {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    throw std::invalid_argument(
        "golle-stubblebine: epsilon must lie in (0, 1)");
  }
}

}  // namespace

double gs_parameter_for_level(double epsilon) {
  require_level(epsilon);
  return 1.0 - std::sqrt(1.0 - epsilon);
}

double gs_parameter_for_level_at(double epsilon, double p) {
  require_level(epsilon);
  if (!(p >= 0.0) || p >= 1.0) {
    throw std::invalid_argument(
        "gs_parameter_for_level_at: p must lie in [0, 1)");
  }
  const double c = (1.0 - std::sqrt(1.0 - epsilon)) / (1.0 - p);
  if (c >= 1.0) {
    throw std::invalid_argument(
        "gs_parameter_for_level_at: level unreachable at this p (requires "
        "c >= 1)");
  }
  return c;
}

double gs_redundancy_factor(double c) {
  require_parameter(c);
  return 1.0 / (1.0 - c);
}

double gs_detection(double c, std::int64_t k) { return gs_detection(c, k, 0.0); }

double gs_detection(double c, std::int64_t k, double p) {
  require_parameter(c);
  if (k < 1) return 0.0;
  if (!(p >= 0.0) || p >= 1.0) {
    throw std::invalid_argument("gs_detection: p must lie in [0, 1)");
  }
  // 1 - (1 - c(1-p))^{k+1}, via expm1/log1p for accuracy near 0 and 1.
  const double base = 1.0 - c * (1.0 - p);
  return -std::expm1(static_cast<double>(k + 1) * std::log(base));
}

Distribution make_golle_stubblebine(double task_count, double c,
                                    const GolleStubblebineOptions& options) {
  require_parameter(c);
  if (!(task_count >= 0.0)) {
    throw std::invalid_argument(
        "make_golle_stubblebine: task_count must be >= 0");
  }
  std::vector<double> components;
  double g_i = (1.0 - c) * task_count;  // g_1.
  for (std::int64_t i = 1; i <= options.max_dimension; ++i) {
    if (g_i < options.truncate_below) break;  // Strictly decreasing from i=1.
    components.push_back(g_i);
    g_i *= c;
  }
  Distribution distribution(std::move(components));
  distribution.set_label("golle-stubblebine(c=" + std::to_string(c) + ")");
  return distribution;
}

Distribution make_golle_stubblebine_for_level(
    double task_count, double epsilon, const GolleStubblebineOptions& options) {
  return make_golle_stubblebine(task_count, gs_parameter_for_level(epsilon),
                                options);
}

}  // namespace redund::core
