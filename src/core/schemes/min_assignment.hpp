// Assignment-minimizing distributions — the linear programs S and S_m of
// paper Section 3.2, and Fact 1's closed-form solution.
//
// System S_m (dimension m, level epsilon, N tasks):
//
//   minimize    sum_{i=1}^{m} i * x_i
//   subject to  sum_i x_i >= N                                     (C_0)
//               sum_{i=k+1}^{m} C(i,k) x_i >= (eps/(1-eps)) x_k    (C_k, k<m)
//               x_i >= 0.
//
// The top constraint C_m is *not* imposed (it is unsatisfiable in dimension
// m), so the optimal solutions leave the x_m tasks unprotected — the
// supervisor must verify ("precompute") them. These optima are what Figures
// 1 and 2 evaluate: as m grows the cost and the precompute load fall toward
// the Prop.-1 lower bound 2/(2-eps), but the non-asymptotic detection
// probabilities collapse, which is the paper's case for Balanced.
//
// Fact 1 (recovered closed form, epsilon = 1/2, m >= 6): with
// D = 3m^2 - m + 2,
//   x_1 = 2Nm^2/D,  x_2 = Nm(m-1)/D,  x_m = 2N/D,  all other x_i = 0,
// and RF = 4m^2/D  (-> 4/3 = 2/(2 - 1/2), the Prop.-1 bound, as m -> inf).
#pragma once

#include <cstdint>

#include "core/distribution.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace redund::core {

/// Builds the LP model for system S_m. Exposed separately so tests and
/// ablations can inspect or modify the model (e.g. add equality constraints).
/// dimension >= 2, epsilon in (0,1), task_count > 0.
[[nodiscard]] lp::Model build_min_assignment_model(double task_count,
                                                   double epsilon,
                                                   std::int64_t dimension);

/// Result of solving S_m.
struct MinAssignmentResult {
  Distribution distribution;     ///< The optimal x (empty if not optimal).
  lp::SolveStatus status = lp::SolveStatus::kIterationLimit;
  double total_assignments = 0.0;
  /// Tasks at the top multiplicity, which C_m cannot protect and the
  /// supervisor must verify (Figure 2's "Precomputing Required").
  double precompute_required = 0.0;
};

/// Solves S_m with the in-repo simplex. The returned distribution is a valid
/// m-dimensional distribution (check_validity passes) whenever status is
/// kOptimal.
[[nodiscard]] MinAssignmentResult solve_min_assignment(double task_count,
                                                       double epsilon,
                                                       std::int64_t dimension);

/// Variant where every constraint C_1..C_{m-1} is imposed with *equality*
/// (P_k = epsilon exactly) — the augmentation discussed after Prop. 2, whose
/// optimum is "virtually indistinguishable from the Balanced distribution".
[[nodiscard]] MinAssignmentResult solve_min_assignment_equality(
    double task_count, double epsilon, std::int64_t dimension);

/// Fact 1's closed-form optimum of S_m for epsilon = 1/2, m >= 6.
[[nodiscard]] Distribution min_assignment_closed_form_half(double task_count,
                                                           std::int64_t dimension);

/// Fact 1's closed-form redundancy factor 4m^2/(3m^2 - m + 2) (eps = 1/2).
[[nodiscard]] double min_assignment_rf_half(std::int64_t dimension);

}  // namespace redund::core
