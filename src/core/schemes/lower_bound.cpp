#include "core/schemes/lower_bound.hpp"

#include <stdexcept>
#include <vector>

namespace redund::core {

namespace {

void require_level(double epsilon) {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    throw std::invalid_argument("lower_bound: epsilon must lie in (0, 1)");
  }
}

}  // namespace

double redundancy_lower_bound(double epsilon) {
  require_level(epsilon);
  return 2.0 / (2.0 - epsilon);
}

double assignment_lower_bound(double task_count, double epsilon) {
  require_level(epsilon);
  if (!(task_count >= 0.0)) {
    throw std::invalid_argument("assignment_lower_bound: task_count >= 0");
  }
  return 2.0 * task_count / (2.0 - epsilon);
}

Distribution relaxed_optimum(double task_count, double epsilon) {
  require_level(epsilon);
  if (!(task_count >= 0.0)) {
    throw std::invalid_argument("relaxed_optimum: task_count >= 0");
  }
  std::vector<double> components = {
      2.0 * task_count * (1.0 - epsilon) / (2.0 - epsilon),
      task_count * epsilon / (2.0 - epsilon)};
  return Distribution(std::move(components), "prop1-relaxed-optimum");
}

}  // namespace redund::core
