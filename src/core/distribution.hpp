// The redundancy-distribution abstraction of Section 2.1 of the paper.
//
// A distribution x = (x_1, x_2, ...) assigns x_i of the computation's N tasks
// with multiplicity i (i.e. i identical copies enter the assignment pool).
// Components are real-valued and non-negative; Section 6's realization step
// (core/realize.hpp) converts a theoretical distribution into integer task
// counts for deployment. Index convention throughout the library is
// 1-based multiplicity, matching the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace redund::core {

/// A (finite-dimensional representation of a) redundancy distribution.
///
/// Invariants: every component is non-negative and the last stored component
/// is non-zero (trailing zeros are trimmed), so dimension() == size of the
/// underlying vector.
class Distribution {
 public:
  Distribution() = default;

  /// `tasks_by_multiplicity[i]` is x_{i+1}, i.e. element 0 is the number of
  /// tasks assigned once. Negative components throw std::invalid_argument.
  explicit Distribution(std::vector<double> tasks_by_multiplicity,
                        std::string label = {});

  /// Number of tasks assigned with multiplicity `multiplicity` (1-based).
  /// Zero for multiplicities beyond the stored dimension.
  [[nodiscard]] double tasks_at(std::int64_t multiplicity) const noexcept;

  /// Largest multiplicity with a non-zero component; 0 for the empty
  /// distribution. (The paper's "dimension".)
  [[nodiscard]] std::int64_t dimension() const noexcept {
    return static_cast<std::int64_t>(components_.size());
  }

  /// sum_i x_i — the number of tasks covered.
  [[nodiscard]] double task_count() const noexcept { return task_count_; }

  /// sum_i i * x_i — the number of assignments the distribution costs.
  [[nodiscard]] double total_assignments() const noexcept {
    return total_assignments_;
  }

  /// total_assignments() / task_count() — the paper's redundancy factor.
  /// Returns 0 for the empty distribution.
  [[nodiscard]] double redundancy_factor() const noexcept;

  /// Proportion of tasks with multiplicity `multiplicity`.
  [[nodiscard]] double proportion_at(std::int64_t multiplicity) const noexcept;

  /// Human-readable label (e.g. "balanced(eps=0.5)").
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Read-only view of the components (index 0 = multiplicity 1).
  [[nodiscard]] const std::vector<double>& components() const noexcept {
    return components_;
  }

  /// Returns a copy scaled by `factor` >= 0 (scales tasks and assignments
  /// alike; redundancy factor is invariant).
  [[nodiscard]] Distribution scaled(double factor) const;

 private:
  void recompute_totals_() noexcept;

  std::vector<double> components_;
  std::string label_;
  double task_count_ = 0.0;
  double total_assignments_ = 0.0;
};

/// Simple redundancy with multiplicity m (paper Section 1): all N tasks
/// assigned exactly m times; x = (0, ..., 0, N). m >= 1.
[[nodiscard]] Distribution make_simple_redundancy(double task_count,
                                                  std::int64_t multiplicity = 2);

}  // namespace redund::core
