#include "core/planner.hpp"

#include <stdexcept>

#include "core/detection.hpp"
#include "core/schemes/balanced.hpp"
#include "core/schemes/golle_stubblebine.hpp"
#include "core/schemes/min_assignment.hpp"
#include "core/schemes/min_multiplicity.hpp"

namespace redund::core {

std::string to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSimple: return "simple";
    case Scheme::kGolleStubblebine: return "golle-stubblebine";
    case Scheme::kBalanced: return "balanced";
    case Scheme::kMinAssignment: return "min-assignment";
    case Scheme::kMinMultiplicity: return "min-multiplicity";
  }
  return "unknown";
}

Plan make_plan(const PlanRequest& request) {
  if (request.task_count < 1) {
    throw std::invalid_argument("make_plan: task_count must be >= 1");
  }
  const auto n = static_cast<double>(request.task_count);

  Plan plan;
  plan.epsilon = request.epsilon;
  switch (request.scheme) {
    case Scheme::kSimple:
      plan.theoretical =
          make_simple_redundancy(n, request.simple_multiplicity);
      break;
    case Scheme::kGolleStubblebine:
      plan.theoretical =
          make_golle_stubblebine_for_level(n, request.epsilon);
      break;
    case Scheme::kBalanced:
      plan.theoretical = make_balanced(n, request.epsilon);
      break;
    case Scheme::kMinAssignment: {
      const MinAssignmentResult result =
          solve_min_assignment(n, request.epsilon, request.lp_dimension);
      if (result.status != lp::SolveStatus::kOptimal) {
        throw std::runtime_error("make_plan: S_" +
                                 std::to_string(request.lp_dimension) +
                                 " solve was " + lp::to_string(result.status));
      }
      plan.theoretical = result.distribution;
      break;
    }
    case Scheme::kMinMultiplicity:
      plan.theoretical = make_min_multiplicity(n, request.epsilon,
                                               request.minimum_multiplicity);
      break;
  }

  plan.realized = realize(plan.theoretical, request.task_count, request.epsilon,
                          {.add_ringers = request.add_ringers});
  // With ringers, the deployed distribution's top multiplicity is the ringer
  // band — precomputed by the supervisor, so it is excluded from the attack
  // scan (include_top = false) while the real top multiplicity, sitting just
  // below it, is covered. Without ringers the real top is genuinely
  // unprotected and must be scanned (include_top = true), honestly yielding
  // zero protection.
  const bool has_ringers = plan.realized.ringer_count > 0;
  const Distribution deployed = plan.realized.as_distribution(has_ringers);
  plan.achieved_level = min_detection(deployed, 0.0, !has_ringers);
  plan.achieved_level_p10 = min_detection(deployed, 0.10, !has_ringers);
  return plan;
}

}  // namespace redund::core
