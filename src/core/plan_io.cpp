#include "core/plan_io.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace redund::core {

std::string to_text(const RealizedPlan& plan) {
  std::ostringstream out;
  write_plan(out, plan);
  return out.str();
}

void write_plan(std::ostream& out, const RealizedPlan& plan) {
  out << "redundancy-plan v1\n";
  out << "tasks " << plan.task_count << "\n";
  out << "counts";
  for (const std::int64_t count : plan.counts) out << ' ' << count;
  out << "\n";
  if (plan.tail_tasks > 0) {
    out << "tail " << plan.tail_multiplicity << ' ' << plan.tail_tasks << "\n";
  }
  if (plan.ringer_count > 0) {
    out << "ringers " << plan.ringer_count << ' ' << plan.ringer_multiplicity
        << "\n";
  }
  out << "end\n";
}

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("plan parse error at line " +
                              std::to_string(line) + ": " + message);
}

}  // namespace

RealizedPlan parse_plan(std::string_view text) {
  std::istringstream in{std::string(text)};
  return read_plan(in);
}

RealizedPlan read_plan(std::istream& in) {
  RealizedPlan plan;
  bool saw_header = false;
  bool saw_tasks = false;
  bool saw_counts = false;
  bool saw_end = false;

  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;

    if (!saw_header) {
      std::string version;
      if (keyword != "redundancy-plan" || !(line >> version) ||
          version != "v1") {
        fail(line_number, "expected header 'redundancy-plan v1'");
      }
      saw_header = true;
      continue;
    }
    if (saw_end) fail(line_number, "content after 'end'");

    if (keyword == "tasks") {
      if (!(line >> plan.task_count) || plan.task_count < 1) {
        fail(line_number, "'tasks' needs a positive integer");
      }
      saw_tasks = true;
    } else if (keyword == "counts") {
      std::int64_t count = 0;
      while (line >> count) {
        if (count < 0) fail(line_number, "negative count");
        plan.counts.push_back(count);
      }
      if (plan.counts.empty()) fail(line_number, "'counts' needs values");
      if (!line.eof()) fail(line_number, "non-numeric count");
      saw_counts = true;
    } else if (keyword == "tail") {
      if (!(line >> plan.tail_multiplicity >> plan.tail_tasks) ||
          plan.tail_multiplicity < 1 || plan.tail_tasks < 1) {
        fail(line_number, "'tail' needs <multiplicity> <tasks>, both >= 1");
      }
    } else if (keyword == "ringers") {
      if (!(line >> plan.ringer_count >> plan.ringer_multiplicity) ||
          plan.ringer_count < 1 || plan.ringer_multiplicity < 1) {
        fail(line_number, "'ringers' needs <count> <multiplicity>, both >= 1");
      }
    } else if (keyword == "end") {
      saw_end = true;
    } else {
      fail(line_number, "unknown keyword '" + keyword + "'");
    }
  }

  if (!saw_header) fail(line_number, "missing header");
  if (!saw_end) fail(line_number, "missing 'end'");
  if (!saw_tasks) fail(line_number, "missing 'tasks'");
  if (!saw_counts) fail(line_number, "missing 'counts'");

  // Cross-checks and recomputed totals.
  std::int64_t covered = 0;
  for (std::size_t i = 0; i < plan.counts.size(); ++i) {
    covered += plan.counts[i];
    plan.work_assignments +=
        static_cast<std::int64_t>(i + 1) * plan.counts[i];
  }
  if (covered != plan.task_count) {
    fail(line_number, "counts sum to " + std::to_string(covered) +
                          " but tasks says " +
                          std::to_string(plan.task_count));
  }
  if (!plan.counts.empty() && plan.counts.back() == 0) {
    fail(line_number, "trailing zero count (top multiplicity must be "
                      "occupied)");
  }
  if (plan.tail_tasks > 0) {
    const auto band = static_cast<std::size_t>(plan.tail_multiplicity);
    if (band > plan.counts.size() ||
        plan.counts[band - 1] < plan.tail_tasks) {
      fail(line_number, "tail band exceeds the counts at its multiplicity");
    }
  }
  if (plan.ringer_count > 0) {
    if (plan.ringer_multiplicity !=
        static_cast<std::int64_t>(plan.counts.size()) + 1) {
      fail(line_number,
           "ringer multiplicity must sit one above the top count band");
    }
    plan.ringer_assignments = plan.ringer_count * plan.ringer_multiplicity;
  }
  return plan;
}

}  // namespace redund::core
