#include "core/detection.hpp"

#include <cmath>
#include <limits>

#include "math/binomial.hpp"
#include "math/summation.hpp"

namespace redund::core {

namespace {

/// sum_{i > k} C(i,k) * w^{i-k} * x_i with compensated summation.
/// w = 1 gives the asymptotic numerator; w = 1-p the non-asymptotic one.
///
/// The coefficient c_i = C(i,k) w^{i-k} advances by the recurrence
/// c_{i+1} = c_i * w * (i+1)/(i+1-k) — one multiply per term instead of a
/// log_binomial + two transcendentals. If the coefficient ever nears the
/// overflow edge (huge i at w ~ 1), the remaining terms fall back to the
/// log domain, where C(i,k) is damped by w^{i-k} or a tiny x_i before
/// exponentiation.
double weighted_mass_above(const Distribution& distribution, std::int64_t k,
                           double w) noexcept {
  if (w <= 0.0) return 0.0;  // w^(i-k) kills every term (i > k).
  math::NeumaierSum sum;
  double c = static_cast<double>(k + 1) * w;  // C(k+1,k) * w^1.
  double log_c = 0.0;
  bool log_mode = false;
  const double log_w = std::log(w);
  for (std::int64_t i = k + 1; i <= distribution.dimension(); ++i) {
    if (!log_mode && c > 1e280) {
      log_mode = true;
      log_c = math::log_binomial(i, k) + static_cast<double>(i - k) * log_w;
    }
    const double x_i = distribution.tasks_at(i);
    if (x_i > 0.0) {
      sum.add(log_mode ? std::exp(log_c + std::log(x_i)) : c * x_i);
    }
    const double ratio =
        static_cast<double>(i + 1) / static_cast<double>(i + 1 - k);
    if (log_mode) {
      log_c += log_w + std::log(ratio);
    } else {
      c *= w * ratio;
    }
  }
  return sum.value();
}

}  // namespace

double asymptotic_detection(const Distribution& distribution,
                            std::int64_t k) noexcept {
  return detection_probability(distribution, k, 0.0);
}

double detection_probability(const Distribution& distribution, std::int64_t k,
                             double p) noexcept {
  if (k < 1 || !(p >= 0.0) || p >= 1.0) return 0.0;
  const double x_k = distribution.tasks_at(k);
  const double above = weighted_mass_above(distribution, k, 1.0 - p);
  const double denominator = x_k + above;
  if (denominator <= 0.0) return 0.0;  // No k-tuple can exist.
  return above / denominator;
}

double min_detection(const Distribution& distribution, double p,
                     bool include_top) noexcept {
  const std::int64_t top =
      include_top ? distribution.dimension() : distribution.dimension() - 1;
  double minimum = 1.0;
  for (std::int64_t k = 1; k <= top; ++k) {
    // A k-tuple exists iff some mass lies at or above k; since the stored
    // dimension's component is non-zero, all k in range qualify.
    const double p_k = detection_probability(distribution, k, p);
    if (p_k < minimum) minimum = p_k;
  }
  return top >= 1 ? minimum : 0.0;
}

std::int64_t weakest_tuple(const Distribution& distribution, double p,
                           bool include_top) noexcept {
  const std::int64_t top =
      include_top ? distribution.dimension() : distribution.dimension() - 1;
  double minimum = std::numeric_limits<double>::infinity();
  std::int64_t argmin = 0;
  for (std::int64_t k = 1; k <= top; ++k) {
    const double p_k = detection_probability(distribution, k, p);
    if (p_k < minimum) {
      minimum = p_k;
      argmin = k;
    }
  }
  return argmin;
}

}  // namespace redund::core
