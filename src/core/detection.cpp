#include "core/detection.hpp"

#include <cmath>
#include <limits>

#include "math/binomial.hpp"
#include "math/summation.hpp"

namespace redund::core {

namespace {

/// sum_{i > k} C(i,k) * w^{i-k} * x_i with compensated summation.
/// w = 1 gives the asymptotic numerator; w = 1-p the non-asymptotic one.
/// Terms are built in the log domain so C(i,k) for large i never overflows
/// before being damped by w^{i-k} or a tiny x_i.
double weighted_mass_above(const Distribution& distribution, std::int64_t k,
                           double w) noexcept {
  math::NeumaierSum sum;
  const double log_w = w > 0.0 ? std::log(w) : -std::numeric_limits<double>::infinity();
  for (std::int64_t i = k + 1; i <= distribution.dimension(); ++i) {
    const double x_i = distribution.tasks_at(i);
    if (x_i <= 0.0) continue;
    const double log_term = math::log_binomial(i, k) +
                            static_cast<double>(i - k) * log_w + std::log(x_i);
    sum.add(std::exp(log_term));
  }
  return sum.value();
}

}  // namespace

double asymptotic_detection(const Distribution& distribution,
                            std::int64_t k) noexcept {
  return detection_probability(distribution, k, 0.0);
}

double detection_probability(const Distribution& distribution, std::int64_t k,
                             double p) noexcept {
  if (k < 1 || !(p >= 0.0) || p >= 1.0) return 0.0;
  const double x_k = distribution.tasks_at(k);
  const double above = weighted_mass_above(distribution, k, 1.0 - p);
  const double denominator = x_k + above;
  if (denominator <= 0.0) return 0.0;  // No k-tuple can exist.
  return above / denominator;
}

double min_detection(const Distribution& distribution, double p,
                     bool include_top) noexcept {
  const std::int64_t top =
      include_top ? distribution.dimension() : distribution.dimension() - 1;
  double minimum = 1.0;
  bool any = false;
  for (std::int64_t k = 1; k <= top; ++k) {
    // A k-tuple exists iff some mass lies at or above k; since the stored
    // dimension's component is non-zero, all k in range qualify.
    const double p_k = detection_probability(distribution, k, p);
    any = true;
    if (p_k < minimum) minimum = p_k;
  }
  return any ? minimum : 0.0;
}

std::int64_t weakest_tuple(const Distribution& distribution, double p,
                           bool include_top) noexcept {
  const std::int64_t top =
      include_top ? distribution.dimension() : distribution.dimension() - 1;
  double minimum = std::numeric_limits<double>::infinity();
  std::int64_t argmin = 0;
  for (std::int64_t k = 1; k <= top; ++k) {
    const double p_k = detection_probability(distribution, k, p);
    if (p_k < minimum) {
      minimum = p_k;
      argmin = k;
    }
  }
  return argmin;
}

}  // namespace redund::core
