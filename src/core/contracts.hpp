// Contract/invariant layer: executable documentation of the conservation
// and ordering properties the simulator's bit-reproducibility rests on.
//
// Three tiers, all compiled to nothing unless REDUND_ENABLE_INVARIANTS is
// defined non-zero (the ENABLE_INVARIANTS CMake option — default ON in
// Debug and sanitizer builds, OFF in Release so hot paths carry no checks):
//
//   * REDUND_PRECONDITION — caller obligations at an API or function
//     boundary ("queue is not empty", "index within the slot run");
//   * REDUND_INVARIANT    — internal state consistency that must hold
//     between operations ("class counts sum to N", "pop order is
//     monotone in (time, seq)");
//   * REDUND_CHECK        — any other assertion (intermediate results,
//     postconditions).
//
// A failed contract calls the failure handler with the tier, the
// stringized expression, the source location, and a message. The default
// handler prints all of that — plus the active campaign context (seed,
// simulated time, event index), when a supervisor has registered one — to
// stderr and aborts. Tests install a throwing handler instead via
// install_failure_handler().
//
// Everything here is header-only (inline functions and variables) so the
// macros are usable from every layer, including src/lp which sits *below*
// redund_core in the link graph.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#ifndef REDUND_ENABLE_INVARIANTS
#define REDUND_ENABLE_INVARIANTS 0
#endif

namespace redund::contracts {

/// Where a contract failure happened, in campaign terms. The asynchronous
/// supervisor registers one per thread while its event loop runs, so a
/// failure deep in a kernel still names the campaign seed, the simulated
/// time, and the event ordinal needed to reproduce it deterministically.
struct CampaignContext {
  std::uint64_t seed = 0;
  double sim_time = 0.0;
  std::int64_t event_index = 0;
};

namespace detail {
inline thread_local CampaignContext context{};
inline thread_local bool context_set = false;
}  // namespace detail

inline void set_campaign_context(const CampaignContext& context) noexcept {
  detail::context = context;
  detail::context_set = true;
}

inline void clear_campaign_context() noexcept { detail::context_set = false; }

/// The registered context, or nullptr when no campaign is running on this
/// thread.
[[nodiscard]] inline const CampaignContext* campaign_context() noexcept {
  return detail::context_set ? &detail::context : nullptr;
}

/// Registers a context for the current scope and restores the previous
/// one on exit (campaigns never nest today, but the guard costs nothing).
class ScopedCampaignContext {
 public:
  explicit ScopedCampaignContext(const CampaignContext& context) noexcept
      : previous_(detail::context), was_set_(detail::context_set) {
    set_campaign_context(context);
  }
  ~ScopedCampaignContext() {
    detail::context = previous_;
    detail::context_set = was_set_;
  }
  ScopedCampaignContext(const ScopedCampaignContext&) = delete;
  ScopedCampaignContext& operator=(const ScopedCampaignContext&) = delete;

 private:
  CampaignContext previous_;
  bool was_set_;
};

/// Receives a failed contract. Handlers that return pass control back to
/// contract_failed(), which then aborts; handlers may instead throw (the
/// test suite's handler does).
using FailureHandler = void (*)(const char* tier, const char* expression,
                                const char* file, int line,
                                const char* message);

namespace detail {
inline FailureHandler handler = nullptr;
}  // namespace detail

/// Installs `handler` (nullptr restores the default print-and-abort
/// behaviour) and returns the previously installed one.
inline FailureHandler install_failure_handler(FailureHandler handler) noexcept {
  const FailureHandler previous = detail::handler;
  detail::handler = handler;
  return previous;
}

/// The diagnostic the default handler prints: one line of what failed and
/// where, plus the campaign context when one is registered.
[[nodiscard]] inline std::string format_failure(const char* tier,
                                                const char* expression,
                                                const char* file, int line,
                                                const char* message) {
  std::string out = "redund contract violation [";
  out += tier;
  out += "] at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  out += ": (";
  out += expression;
  out += ") — ";
  out += message;
  if (const CampaignContext* context = campaign_context()) {
    char detail[128];
    std::snprintf(detail, sizeof detail,
                  "\n  campaign: seed=0x%llx sim_time=%.17g event_index=%lld",
                  static_cast<unsigned long long>(context->seed),
                  context->sim_time,
                  static_cast<long long>(context->event_index));
    out += detail;
  }
  return out;
}

/// Dispatches a failed contract to the installed handler; aborts when the
/// handler declines to throw (or none is installed).
[[noreturn]] inline void contract_failed(const char* tier,
                                         const char* expression,
                                         const char* file, int line,
                                         const char* message) {
  if (detail::handler != nullptr) {
    detail::handler(tier, expression, file, line, message);
  } else {
    const std::string text =
        format_failure(tier, expression, file, line, message);
    std::fprintf(stderr, "%s\n", text.c_str());
  }
  std::abort();
}

}  // namespace redund::contracts

#if REDUND_ENABLE_INVARIANTS
#define REDUND_CONTRACT_IMPL_(tier, condition, message)                       \
  (static_cast<bool>(condition)                                               \
       ? static_cast<void>(0)                                                 \
       : ::redund::contracts::contract_failed(tier, #condition, __FILE__,     \
                                              __LINE__, message))
#define REDUND_PRECONDITION(condition, message) \
  REDUND_CONTRACT_IMPL_("precondition", condition, message)
#define REDUND_INVARIANT(condition, message) \
  REDUND_CONTRACT_IMPL_("invariant", condition, message)
#define REDUND_CHECK(condition, message) \
  REDUND_CONTRACT_IMPL_("check", condition, message)
#else
#define REDUND_PRECONDITION(condition, message) static_cast<void>(0)
#define REDUND_INVARIANT(condition, message) static_cast<void>(0)
#define REDUND_CHECK(condition, message) static_cast<void>(0)
#endif
