// Thread-safety annotations, checked statically by redund_lint v2.
//
// The macros expand to nothing at compile time — they exist so the
// locking contract of a class is written next to the data it protects,
// and so the linter's call-graph pass can verify it:
//
//   REDUND_GUARDED_BY(m)   on a field: every access outside the owning
//                          class's constructor/destructor must hold m
//                          (an RAII guard region or a REDUND_REQUIRES
//                          annotation on the accessing function).
//   REDUND_REQUIRES(m)     on a function: callers must hold m at the
//                          call site. The function body may touch
//                          m-guarded fields without re-locking.
//   REDUND_EXCLUDES(m)     on a function: callers must NOT hold m at
//                          the call site (the function acquires m
//                          itself, or blocks on work that does —
//                          calling it under m deadlocks a
//                          non-recursive std::mutex).
//
// Usage:
//
//   std::mutex mutex_;
//   std::deque<Task> queue_ REDUND_GUARDED_BY(mutex_);
//   void drain_locked_() REDUND_REQUIRES(mutex_);
//   void flush() REDUND_EXCLUDES(mutex_);
//
// Violations surface as `guarded-by`, `lock-requires`, and
// `lock-excludes` findings (see docs/analysis.md), suppressible with
// `// redund-lint: allow(rule)` like every other rule.
#pragma once

#define REDUND_GUARDED_BY(m)
#define REDUND_REQUIRES(m)
#define REDUND_EXCLUDES(m)
