// The detection-probability engine (paper Sections 2.2 and 5).
//
// An adversary holding all k copies of one task ("a k-tuple") cheats
// undetected iff the task's true multiplicity is exactly k. Two regimes:
//
// * Asymptotic (adversary controls a vanishing proportion of assignments):
//     P_k = sum_{i>k} C(i,k) x_i / ( x_k + sum_{i>k} C(i,k) x_i ).
//
// * Non-asymptotic (adversary controls proportion p of assignments; every
//   k-subset of a task's copies is equally likely to be hers, with the
//   number of her copies of a multiplicity-i task ~ Binomial(i, p)):
//     Pbar_{k,p} = x_k / sum_{i>=k} C(i,k) (1-p)^{i-k} x_i,
//     P_{k,p}    = 1 - Pbar_{k,p}.
//   (Derivation: Bayes over the task's multiplicity; the p^k factor cancels.)
//
// These generic evaluators work for any distribution; the scheme headers
// additionally expose the paper's closed forms, and the test suite
// cross-checks closed forms against this engine and against Monte Carlo.
#pragma once

#include <cstdint>

#include "core/distribution.hpp"

namespace redund::core {

/// Asymptotic probability P_k of catching an adversary cheating on a k-tuple
/// (k >= 1). Conventions: 1.0 when x_k == 0 and some mass lies above k (any
/// k-tuple must come from a larger task, so it is always caught); 0.0 when
/// no k-tuple can exist at all (no mass at or above k) or when all mass at
/// or above k sits exactly at k.
[[nodiscard]] double asymptotic_detection(const Distribution& distribution,
                                          std::int64_t k) noexcept;

/// Non-asymptotic detection probability P_{k,p} for an adversary controlling
/// proportion p in [0, 1) of assignments. Reduces to asymptotic_detection as
/// p -> 0. Same edge-case conventions.
[[nodiscard]] double detection_probability(const Distribution& distribution,
                                           std::int64_t k, double p) noexcept;

/// The "effective detection level" of Section 5: the minimum of P_{k,p} over
/// tuple sizes k. An intelligent adversary attacks the weakest k, so this is
/// the protection the distribution actually provides.
///
/// By default the scan covers k = 1..dimension-1, mirroring the paper's
/// "valid m-dimensional distribution": the top constraint C_m is
/// structurally unsatisfiable, so deployments verify top-multiplicity tasks
/// (precompute/ringers, Section 6) and the top tuple is not an attack
/// surface. Pass include_top = true to scan k = dimension as well — for a
/// bare distribution with an unverified top this honestly returns 0.
[[nodiscard]] double min_detection(const Distribution& distribution, double p,
                                   bool include_top = false) noexcept;

/// The k attaining min_detection (smallest such k); 0 if no k-tuple exists.
[[nodiscard]] std::int64_t weakest_tuple(const Distribution& distribution,
                                         double p,
                                         bool include_top = false) noexcept;

}  // namespace redund::core
