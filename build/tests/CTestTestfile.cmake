# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_math[1]_include.cmake")
include("/root/repo/build/tests/test_rational[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_distribution[1]_include.cmake")
include("/root/repo/build/tests/test_detection[1]_include.cmake")
include("/root/repo/build/tests/test_balanced[1]_include.cmake")
include("/root/repo/build/tests/test_golle_stubblebine[1]_include.cmake")
include("/root/repo/build/tests/test_min_assignment[1]_include.cmake")
include("/root/repo/build/tests/test_min_multiplicity[1]_include.cmake")
include("/root/repo/build/tests/test_realize[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_plan_io[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_two_phase[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_des[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
