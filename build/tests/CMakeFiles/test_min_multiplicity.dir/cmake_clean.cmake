file(REMOVE_RECURSE
  "CMakeFiles/test_min_multiplicity.dir/test_min_multiplicity.cpp.o"
  "CMakeFiles/test_min_multiplicity.dir/test_min_multiplicity.cpp.o.d"
  "test_min_multiplicity"
  "test_min_multiplicity.pdb"
  "test_min_multiplicity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_min_multiplicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
