# Empty compiler generated dependencies file for test_min_multiplicity.
# This may be replaced when dependencies are built.
