file(REMOVE_RECURSE
  "CMakeFiles/test_balanced.dir/test_balanced.cpp.o"
  "CMakeFiles/test_balanced.dir/test_balanced.cpp.o.d"
  "test_balanced"
  "test_balanced.pdb"
  "test_balanced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_balanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
