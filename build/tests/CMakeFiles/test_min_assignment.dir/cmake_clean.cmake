file(REMOVE_RECURSE
  "CMakeFiles/test_min_assignment.dir/test_min_assignment.cpp.o"
  "CMakeFiles/test_min_assignment.dir/test_min_assignment.cpp.o.d"
  "test_min_assignment"
  "test_min_assignment.pdb"
  "test_min_assignment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_min_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
