# Empty dependencies file for test_min_assignment.
# This may be replaced when dependencies are built.
