# Empty compiler generated dependencies file for test_two_phase.
# This may be replaced when dependencies are built.
