file(REMOVE_RECURSE
  "CMakeFiles/test_two_phase.dir/test_two_phase.cpp.o"
  "CMakeFiles/test_two_phase.dir/test_two_phase.cpp.o.d"
  "test_two_phase"
  "test_two_phase.pdb"
  "test_two_phase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
