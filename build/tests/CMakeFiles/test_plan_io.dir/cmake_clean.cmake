file(REMOVE_RECURSE
  "CMakeFiles/test_plan_io.dir/test_plan_io.cpp.o"
  "CMakeFiles/test_plan_io.dir/test_plan_io.cpp.o.d"
  "test_plan_io"
  "test_plan_io.pdb"
  "test_plan_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
