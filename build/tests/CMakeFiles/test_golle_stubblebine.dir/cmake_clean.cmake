file(REMOVE_RECURSE
  "CMakeFiles/test_golle_stubblebine.dir/test_golle_stubblebine.cpp.o"
  "CMakeFiles/test_golle_stubblebine.dir/test_golle_stubblebine.cpp.o.d"
  "test_golle_stubblebine"
  "test_golle_stubblebine.pdb"
  "test_golle_stubblebine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golle_stubblebine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
