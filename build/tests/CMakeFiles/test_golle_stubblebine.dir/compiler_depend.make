# Empty compiler generated dependencies file for test_golle_stubblebine.
# This may be replaced when dependencies are built.
