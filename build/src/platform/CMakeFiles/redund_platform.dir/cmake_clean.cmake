file(REMOVE_RECURSE
  "CMakeFiles/redund_platform.dir/campaign.cpp.o"
  "CMakeFiles/redund_platform.dir/campaign.cpp.o.d"
  "CMakeFiles/redund_platform.dir/registry.cpp.o"
  "CMakeFiles/redund_platform.dir/registry.cpp.o.d"
  "CMakeFiles/redund_platform.dir/scheduler.cpp.o"
  "CMakeFiles/redund_platform.dir/scheduler.cpp.o.d"
  "libredund_platform.a"
  "libredund_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redund_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
