file(REMOVE_RECURSE
  "libredund_platform.a"
)
