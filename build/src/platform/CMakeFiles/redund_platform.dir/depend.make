# Empty dependencies file for redund_platform.
# This may be replaced when dependencies are built.
