file(REMOVE_RECURSE
  "libredund_report.a"
)
