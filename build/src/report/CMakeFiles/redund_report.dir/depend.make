# Empty dependencies file for redund_report.
# This may be replaced when dependencies are built.
