file(REMOVE_RECURSE
  "CMakeFiles/redund_report.dir/csv_export.cpp.o"
  "CMakeFiles/redund_report.dir/csv_export.cpp.o.d"
  "CMakeFiles/redund_report.dir/table.cpp.o"
  "CMakeFiles/redund_report.dir/table.cpp.o.d"
  "libredund_report.a"
  "libredund_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redund_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
