# Empty dependencies file for redund_math.
# This may be replaced when dependencies are built.
