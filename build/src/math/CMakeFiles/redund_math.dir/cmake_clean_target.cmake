file(REMOVE_RECURSE
  "libredund_math.a"
)
