file(REMOVE_RECURSE
  "CMakeFiles/redund_math.dir/binomial.cpp.o"
  "CMakeFiles/redund_math.dir/binomial.cpp.o.d"
  "CMakeFiles/redund_math.dir/poisson.cpp.o"
  "CMakeFiles/redund_math.dir/poisson.cpp.o.d"
  "CMakeFiles/redund_math.dir/roots.cpp.o"
  "CMakeFiles/redund_math.dir/roots.cpp.o.d"
  "libredund_math.a"
  "libredund_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redund_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
