# Empty dependencies file for redund_core.
# This may be replaced when dependencies are built.
