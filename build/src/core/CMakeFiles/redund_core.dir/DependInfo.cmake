
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/constraints.cpp" "src/core/CMakeFiles/redund_core.dir/constraints.cpp.o" "gcc" "src/core/CMakeFiles/redund_core.dir/constraints.cpp.o.d"
  "/root/repo/src/core/detection.cpp" "src/core/CMakeFiles/redund_core.dir/detection.cpp.o" "gcc" "src/core/CMakeFiles/redund_core.dir/detection.cpp.o.d"
  "/root/repo/src/core/distribution.cpp" "src/core/CMakeFiles/redund_core.dir/distribution.cpp.o" "gcc" "src/core/CMakeFiles/redund_core.dir/distribution.cpp.o.d"
  "/root/repo/src/core/plan_io.cpp" "src/core/CMakeFiles/redund_core.dir/plan_io.cpp.o" "gcc" "src/core/CMakeFiles/redund_core.dir/plan_io.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/redund_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/redund_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/realize.cpp" "src/core/CMakeFiles/redund_core.dir/realize.cpp.o" "gcc" "src/core/CMakeFiles/redund_core.dir/realize.cpp.o.d"
  "/root/repo/src/core/schemes/balanced.cpp" "src/core/CMakeFiles/redund_core.dir/schemes/balanced.cpp.o" "gcc" "src/core/CMakeFiles/redund_core.dir/schemes/balanced.cpp.o.d"
  "/root/repo/src/core/schemes/golle_stubblebine.cpp" "src/core/CMakeFiles/redund_core.dir/schemes/golle_stubblebine.cpp.o" "gcc" "src/core/CMakeFiles/redund_core.dir/schemes/golle_stubblebine.cpp.o.d"
  "/root/repo/src/core/schemes/lower_bound.cpp" "src/core/CMakeFiles/redund_core.dir/schemes/lower_bound.cpp.o" "gcc" "src/core/CMakeFiles/redund_core.dir/schemes/lower_bound.cpp.o.d"
  "/root/repo/src/core/schemes/min_assignment.cpp" "src/core/CMakeFiles/redund_core.dir/schemes/min_assignment.cpp.o" "gcc" "src/core/CMakeFiles/redund_core.dir/schemes/min_assignment.cpp.o.d"
  "/root/repo/src/core/schemes/min_multiplicity.cpp" "src/core/CMakeFiles/redund_core.dir/schemes/min_multiplicity.cpp.o" "gcc" "src/core/CMakeFiles/redund_core.dir/schemes/min_multiplicity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/redund_math.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/redund_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
