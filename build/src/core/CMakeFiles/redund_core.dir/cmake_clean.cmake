file(REMOVE_RECURSE
  "CMakeFiles/redund_core.dir/constraints.cpp.o"
  "CMakeFiles/redund_core.dir/constraints.cpp.o.d"
  "CMakeFiles/redund_core.dir/detection.cpp.o"
  "CMakeFiles/redund_core.dir/detection.cpp.o.d"
  "CMakeFiles/redund_core.dir/distribution.cpp.o"
  "CMakeFiles/redund_core.dir/distribution.cpp.o.d"
  "CMakeFiles/redund_core.dir/plan_io.cpp.o"
  "CMakeFiles/redund_core.dir/plan_io.cpp.o.d"
  "CMakeFiles/redund_core.dir/planner.cpp.o"
  "CMakeFiles/redund_core.dir/planner.cpp.o.d"
  "CMakeFiles/redund_core.dir/realize.cpp.o"
  "CMakeFiles/redund_core.dir/realize.cpp.o.d"
  "CMakeFiles/redund_core.dir/schemes/balanced.cpp.o"
  "CMakeFiles/redund_core.dir/schemes/balanced.cpp.o.d"
  "CMakeFiles/redund_core.dir/schemes/golle_stubblebine.cpp.o"
  "CMakeFiles/redund_core.dir/schemes/golle_stubblebine.cpp.o.d"
  "CMakeFiles/redund_core.dir/schemes/lower_bound.cpp.o"
  "CMakeFiles/redund_core.dir/schemes/lower_bound.cpp.o.d"
  "CMakeFiles/redund_core.dir/schemes/min_assignment.cpp.o"
  "CMakeFiles/redund_core.dir/schemes/min_assignment.cpp.o.d"
  "CMakeFiles/redund_core.dir/schemes/min_multiplicity.cpp.o"
  "CMakeFiles/redund_core.dir/schemes/min_multiplicity.cpp.o.d"
  "libredund_core.a"
  "libredund_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redund_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
