file(REMOVE_RECURSE
  "libredund_core.a"
)
