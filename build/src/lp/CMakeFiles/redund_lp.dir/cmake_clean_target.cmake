file(REMOVE_RECURSE
  "libredund_lp.a"
)
