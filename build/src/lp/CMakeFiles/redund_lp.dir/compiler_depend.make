# Empty compiler generated dependencies file for redund_lp.
# This may be replaced when dependencies are built.
