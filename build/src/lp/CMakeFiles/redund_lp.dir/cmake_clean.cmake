file(REMOVE_RECURSE
  "CMakeFiles/redund_lp.dir/model.cpp.o"
  "CMakeFiles/redund_lp.dir/model.cpp.o.d"
  "CMakeFiles/redund_lp.dir/simplex.cpp.o"
  "CMakeFiles/redund_lp.dir/simplex.cpp.o.d"
  "libredund_lp.a"
  "libredund_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redund_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
