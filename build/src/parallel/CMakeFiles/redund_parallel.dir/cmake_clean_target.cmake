file(REMOVE_RECURSE
  "libredund_parallel.a"
)
