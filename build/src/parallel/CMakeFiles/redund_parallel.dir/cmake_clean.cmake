file(REMOVE_RECURSE
  "CMakeFiles/redund_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/redund_parallel.dir/thread_pool.cpp.o.d"
  "libredund_parallel.a"
  "libredund_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redund_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
