# Empty dependencies file for redund_parallel.
# This may be replaced when dependencies are built.
