
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/adversary.cpp" "src/sim/CMakeFiles/redund_sim.dir/adversary.cpp.o" "gcc" "src/sim/CMakeFiles/redund_sim.dir/adversary.cpp.o.d"
  "/root/repo/src/sim/des.cpp" "src/sim/CMakeFiles/redund_sim.dir/des.cpp.o" "gcc" "src/sim/CMakeFiles/redund_sim.dir/des.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/redund_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/redund_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/monte_carlo.cpp" "src/sim/CMakeFiles/redund_sim.dir/monte_carlo.cpp.o" "gcc" "src/sim/CMakeFiles/redund_sim.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/sim/two_phase.cpp" "src/sim/CMakeFiles/redund_sim.dir/two_phase.cpp.o" "gcc" "src/sim/CMakeFiles/redund_sim.dir/two_phase.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/redund_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/redund_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/redund_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/redund_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/redund_math.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/redund_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
