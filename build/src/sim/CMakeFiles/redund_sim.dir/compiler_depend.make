# Empty compiler generated dependencies file for redund_sim.
# This may be replaced when dependencies are built.
