file(REMOVE_RECURSE
  "CMakeFiles/redund_sim.dir/adversary.cpp.o"
  "CMakeFiles/redund_sim.dir/adversary.cpp.o.d"
  "CMakeFiles/redund_sim.dir/des.cpp.o"
  "CMakeFiles/redund_sim.dir/des.cpp.o.d"
  "CMakeFiles/redund_sim.dir/engine.cpp.o"
  "CMakeFiles/redund_sim.dir/engine.cpp.o.d"
  "CMakeFiles/redund_sim.dir/monte_carlo.cpp.o"
  "CMakeFiles/redund_sim.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/redund_sim.dir/two_phase.cpp.o"
  "CMakeFiles/redund_sim.dir/two_phase.cpp.o.d"
  "CMakeFiles/redund_sim.dir/workload.cpp.o"
  "CMakeFiles/redund_sim.dir/workload.cpp.o.d"
  "libredund_sim.a"
  "libredund_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redund_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
