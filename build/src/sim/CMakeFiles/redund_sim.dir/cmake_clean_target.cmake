file(REMOVE_RECURSE
  "libredund_sim.a"
)
