file(REMOVE_RECURSE
  "CMakeFiles/fig4_distribution_table.dir/fig4_distribution_table.cpp.o"
  "CMakeFiles/fig4_distribution_table.dir/fig4_distribution_table.cpp.o.d"
  "fig4_distribution_table"
  "fig4_distribution_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_distribution_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
