# Empty dependencies file for fig4_distribution_table.
# This may be replaced when dependencies are built.
