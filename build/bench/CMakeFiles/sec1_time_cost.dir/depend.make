# Empty dependencies file for sec1_time_cost.
# This may be replaced when dependencies are built.
