file(REMOVE_RECURSE
  "CMakeFiles/sec1_time_cost.dir/sec1_time_cost.cpp.o"
  "CMakeFiles/sec1_time_cost.dir/sec1_time_cost.cpp.o.d"
  "sec1_time_cost"
  "sec1_time_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec1_time_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
