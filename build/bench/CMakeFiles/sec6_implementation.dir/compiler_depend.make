# Empty compiler generated dependencies file for sec6_implementation.
# This may be replaced when dependencies are built.
