file(REMOVE_RECURSE
  "CMakeFiles/sec6_implementation.dir/sec6_implementation.cpp.o"
  "CMakeFiles/sec6_implementation.dir/sec6_implementation.cpp.o.d"
  "sec6_implementation"
  "sec6_implementation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_implementation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
