file(REMOVE_RECURSE
  "CMakeFiles/sec5_nonasymptotic.dir/sec5_nonasymptotic.cpp.o"
  "CMakeFiles/sec5_nonasymptotic.dir/sec5_nonasymptotic.cpp.o.d"
  "sec5_nonasymptotic"
  "sec5_nonasymptotic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_nonasymptotic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
