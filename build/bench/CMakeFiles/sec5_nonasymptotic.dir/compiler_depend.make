# Empty compiler generated dependencies file for sec5_nonasymptotic.
# This may be replaced when dependencies are built.
