file(REMOVE_RECURSE
  "CMakeFiles/fig2_min_assign_table.dir/fig2_min_assign_table.cpp.o"
  "CMakeFiles/fig2_min_assign_table.dir/fig2_min_assign_table.cpp.o.d"
  "fig2_min_assign_table"
  "fig2_min_assign_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_min_assign_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
