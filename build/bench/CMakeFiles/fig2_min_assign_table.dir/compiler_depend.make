# Empty compiler generated dependencies file for fig2_min_assign_table.
# This may be replaced when dependencies are built.
