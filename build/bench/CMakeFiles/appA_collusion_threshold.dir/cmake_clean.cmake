file(REMOVE_RECURSE
  "CMakeFiles/appA_collusion_threshold.dir/appA_collusion_threshold.cpp.o"
  "CMakeFiles/appA_collusion_threshold.dir/appA_collusion_threshold.cpp.o.d"
  "appA_collusion_threshold"
  "appA_collusion_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appA_collusion_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
