# Empty dependencies file for appA_collusion_threshold.
# This may be replaced when dependencies are built.
