file(REMOVE_RECURSE
  "CMakeFiles/sec7_min_multiplicity.dir/sec7_min_multiplicity.cpp.o"
  "CMakeFiles/sec7_min_multiplicity.dir/sec7_min_multiplicity.cpp.o.d"
  "sec7_min_multiplicity"
  "sec7_min_multiplicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_min_multiplicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
