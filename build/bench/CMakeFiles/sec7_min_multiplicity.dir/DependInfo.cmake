
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sec7_min_multiplicity.cpp" "bench/CMakeFiles/sec7_min_multiplicity.dir/sec7_min_multiplicity.cpp.o" "gcc" "bench/CMakeFiles/sec7_min_multiplicity.dir/sec7_min_multiplicity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/redund_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/redund_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/redund_math.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/redund_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/redund_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/redund_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/redund_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
