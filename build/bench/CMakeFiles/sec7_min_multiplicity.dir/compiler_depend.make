# Empty compiler generated dependencies file for sec7_min_multiplicity.
# This may be replaced when dependencies are built.
