# Empty compiler generated dependencies file for fig3_redundancy_factors.
# This may be replaced when dependencies are built.
