file(REMOVE_RECURSE
  "CMakeFiles/fig3_redundancy_factors.dir/fig3_redundancy_factors.cpp.o"
  "CMakeFiles/fig3_redundancy_factors.dir/fig3_redundancy_factors.cpp.o.d"
  "fig3_redundancy_factors"
  "fig3_redundancy_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_redundancy_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
