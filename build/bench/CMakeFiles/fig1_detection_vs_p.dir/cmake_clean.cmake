file(REMOVE_RECURSE
  "CMakeFiles/fig1_detection_vs_p.dir/fig1_detection_vs_p.cpp.o"
  "CMakeFiles/fig1_detection_vs_p.dir/fig1_detection_vs_p.cpp.o.d"
  "fig1_detection_vs_p"
  "fig1_detection_vs_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_detection_vs_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
