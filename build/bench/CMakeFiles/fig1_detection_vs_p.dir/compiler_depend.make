# Empty compiler generated dependencies file for fig1_detection_vs_p.
# This may be replaced when dependencies are built.
