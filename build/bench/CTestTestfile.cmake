# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_sec1_time_cost "/root/repo/build/bench/sec1_time_cost")
set_tests_properties(bench_smoke_sec1_time_cost PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;17;redund_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig1_detection_vs_p "/root/repo/build/bench/fig1_detection_vs_p")
set_tests_properties(bench_smoke_fig1_detection_vs_p PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;18;redund_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig2_min_assign_table "/root/repo/build/bench/fig2_min_assign_table")
set_tests_properties(bench_smoke_fig2_min_assign_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;19;redund_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig3_redundancy_factors "/root/repo/build/bench/fig3_redundancy_factors")
set_tests_properties(bench_smoke_fig3_redundancy_factors PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;20;redund_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig4_distribution_table "/root/repo/build/bench/fig4_distribution_table")
set_tests_properties(bench_smoke_fig4_distribution_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;21;redund_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_sec5_nonasymptotic "/root/repo/build/bench/sec5_nonasymptotic")
set_tests_properties(bench_smoke_sec5_nonasymptotic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;22;redund_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_sec6_implementation "/root/repo/build/bench/sec6_implementation")
set_tests_properties(bench_smoke_sec6_implementation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;23;redund_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_sec7_min_multiplicity "/root/repo/build/bench/sec7_min_multiplicity")
set_tests_properties(bench_smoke_sec7_min_multiplicity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;24;redund_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_appA_collusion_threshold "/root/repo/build/bench/appA_collusion_threshold")
set_tests_properties(bench_smoke_appA_collusion_threshold PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;25;redund_add_bench;/root/repo/bench/CMakeLists.txt;0;")
