file(REMOVE_RECURSE
  "CMakeFiles/redundctl.dir/redundctl.cpp.o"
  "CMakeFiles/redundctl.dir/redundctl.cpp.o.d"
  "redundctl"
  "redundctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redundctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
