# Empty compiler generated dependencies file for redundctl.
# This may be replaced when dependencies are built.
