file(REMOVE_RECURSE
  "CMakeFiles/volunteer_campaign.dir/volunteer_campaign.cpp.o"
  "CMakeFiles/volunteer_campaign.dir/volunteer_campaign.cpp.o.d"
  "volunteer_campaign"
  "volunteer_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volunteer_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
