# Empty compiler generated dependencies file for volunteer_campaign.
# This may be replaced when dependencies are built.
