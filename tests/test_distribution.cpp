// Unit tests for the Distribution abstraction and validity checking.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/constraints.hpp"
#include "core/distribution.hpp"

using redund::core::Distribution;
using redund::core::check_validity;
using redund::core::check_validity_all;
using redund::core::make_simple_redundancy;
using redund::core::precompute_requirement;

namespace {

TEST(Distribution, EmptyDefaults) {
  Distribution d;
  EXPECT_EQ(d.dimension(), 0);
  EXPECT_EQ(d.task_count(), 0.0);
  EXPECT_EQ(d.total_assignments(), 0.0);
  EXPECT_EQ(d.redundancy_factor(), 0.0);
  EXPECT_EQ(d.tasks_at(1), 0.0);
}

TEST(Distribution, BasicAccounting) {
  // x_1 = 10, x_2 = 5, x_3 = 1: 16 tasks, 10 + 10 + 3 = 23 assignments.
  Distribution d({10.0, 5.0, 1.0});
  EXPECT_EQ(d.dimension(), 3);
  EXPECT_DOUBLE_EQ(d.task_count(), 16.0);
  EXPECT_DOUBLE_EQ(d.total_assignments(), 23.0);
  EXPECT_DOUBLE_EQ(d.redundancy_factor(), 23.0 / 16.0);
  EXPECT_DOUBLE_EQ(d.tasks_at(2), 5.0);
  EXPECT_DOUBLE_EQ(d.tasks_at(4), 0.0);
  EXPECT_DOUBLE_EQ(d.proportion_at(1), 10.0 / 16.0);
}

TEST(Distribution, TrailingZerosTrimmed) {
  Distribution d({1.0, 0.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(d.dimension(), 3);
}

TEST(Distribution, NegativeComponentThrows) {
  EXPECT_THROW(Distribution({1.0, -0.5}), std::invalid_argument);
}

TEST(Distribution, NanComponentThrows) {
  EXPECT_THROW(Distribution({std::nan("")}), std::invalid_argument);
}

TEST(Distribution, ScaledPreservesRedundancyFactor) {
  Distribution d({10.0, 5.0, 1.0});
  const Distribution half = d.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.task_count(), 8.0);
  EXPECT_DOUBLE_EQ(half.redundancy_factor(), d.redundancy_factor());
  EXPECT_THROW(d.scaled(-1.0), std::invalid_argument);
}

TEST(Distribution, OutOfRangeMultiplicityQueriesAreZero) {
  Distribution d({3.0});
  EXPECT_EQ(d.tasks_at(0), 0.0);
  EXPECT_EQ(d.tasks_at(-2), 0.0);
  EXPECT_EQ(d.tasks_at(100), 0.0);
}

// --------------------------------------------------------- simple redundancy

TEST(SimpleRedundancy, DefaultIsDouble) {
  const Distribution d = make_simple_redundancy(1000.0);
  EXPECT_EQ(d.dimension(), 2);
  EXPECT_DOUBLE_EQ(d.tasks_at(2), 1000.0);
  EXPECT_DOUBLE_EQ(d.redundancy_factor(), 2.0);
}

TEST(SimpleRedundancy, ArbitraryMultiplicity) {
  const Distribution d = make_simple_redundancy(100.0, 5);
  EXPECT_EQ(d.dimension(), 5);
  EXPECT_DOUBLE_EQ(d.total_assignments(), 500.0);
}

TEST(SimpleRedundancy, RejectsBadArguments) {
  EXPECT_THROW(make_simple_redundancy(10.0, 0), std::invalid_argument);
  EXPECT_THROW(make_simple_redundancy(-1.0, 2), std::invalid_argument);
}

// ------------------------------------------------------------------ validity

TEST(Validity, SimpleRedundancyIsVacuouslyValidButTopUnprotected) {
  // Simple redundancy (m = 2) satisfies C_0 and C_1 (P_1 = 1: any single
  // copy has a partner) but not C_2: the whole point of the paper.
  const Distribution d = make_simple_redundancy(1000.0, 2);
  EXPECT_TRUE(check_validity(d, 1000.0, 0.5).valid);
  const auto all = check_validity_all(d, 1000.0, 0.5);
  EXPECT_FALSE(all.valid);
  ASSERT_EQ(all.violations.size(), 1u);
  EXPECT_EQ(all.violations[0].k, 2);
  EXPECT_EQ(all.violations[0].actual, 0.0);
}

TEST(Validity, CoverageViolationReported) {
  const Distribution d({10.0});
  const auto report = check_validity(d, 100.0, 0.5);
  EXPECT_FALSE(report.valid);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations[0].k, 0);
}

TEST(Validity, DetectsLowDetectionProbability) {
  // x_1 = 99, x_2 = 1: P_1 = 2/(99+2) << 0.5.
  const Distribution d({99.0, 1.0});
  const auto report = check_validity(d, 100.0, 0.5);
  EXPECT_FALSE(report.valid);
  bool found_c1 = false;
  for (const auto& violation : report.violations) {
    if (violation.k == 1) {
      found_c1 = true;
      EXPECT_LT(violation.actual, 0.1);
    }
  }
  EXPECT_TRUE(found_c1);
}

TEST(Validity, PrecomputeRequirementIsTopMass) {
  const Distribution d({10.0, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(precompute_requirement(d), 2.0);
  EXPECT_DOUBLE_EQ(precompute_requirement(Distribution{}), 0.0);
}

}  // namespace
