// Tests for the asynchronous supervisor runtime: deterministic replay,
// the timeout -> backoff -> re-issue -> success path, quorum validation
// with INCONCLUSIVE extra replicas, adaptive replication, the supervisor
// recompute fallback, and config validation.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/realize.hpp"
#include "core/schemes/balanced.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/fault.hpp"
#include "runtime/supervisor.hpp"
#include "runtime/task_state.hpp"

namespace core = redund::core;
namespace runtime = redund::runtime;
namespace sim = redund::sim;

namespace {

core::RealizedPlan balanced_plan(std::int64_t n, double eps) {
  return core::realize(
      core::make_balanced(static_cast<double>(n), eps,
                          {.truncate_below = 1e-9}),
      n, eps);
}

// A plan with every task at the given multiplicity and no ringers, for
// tests that want full control over quorum sizes.
core::RealizedPlan flat_plan(std::int64_t tasks, std::int64_t multiplicity) {
  core::RealizedPlan plan;
  plan.counts.assign(static_cast<std::size_t>(multiplicity), 0);
  plan.counts.back() = tasks;
  plan.task_count = tasks;
  plan.work_assignments = tasks * multiplicity;
  return plan;
}

std::string rendered(const runtime::RuntimeReport& report) {
  std::ostringstream out;
  runtime::print(out, report);
  return out.str();
}

// ------------------------------------------------------------- event queue

TEST(EventQueue, OrdersByTimeThenScheduleOrder) {
  runtime::EventQueue queue;
  queue.schedule(2.0, runtime::EventKind::kDeadline, 7);
  queue.schedule(1.0, runtime::EventKind::kCompletion, 1);
  queue.schedule(1.0, runtime::EventKind::kCompletion, 2);  // Same time.
  ASSERT_FALSE(queue.empty());

  const auto first = queue.pop();
  const auto second = queue.pop();
  const auto third = queue.pop();
  EXPECT_EQ(first.subject, 1);
  EXPECT_EQ(second.subject, 2);  // FIFO within a timestamp.
  EXPECT_EQ(third.subject, 7);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ReservePreventsReallocationAndPreservesOrder) {
  runtime::EventQueue queue;
  queue.reserve(64);
  const std::size_t reserved = queue.capacity();
  EXPECT_GE(reserved, 64u);

  // Fill below the reservation in scrambled time order; capacity must not
  // move and events must still drain in (time, seq) order.
  for (int i = 0; i < 60; ++i) {
    queue.schedule(static_cast<double>((i * 37) % 50),
                   runtime::EventKind::kCompletion, i);
  }
  EXPECT_EQ(queue.capacity(), reserved);
  EXPECT_EQ(queue.size(), 60u);

  double last_time = -1.0;
  std::uint64_t last_seq = 0;
  bool first = true;
  while (!queue.empty()) {
    const auto event = queue.pop();
    if (!first && event.time == last_time) {
      EXPECT_GT(event.seq, last_seq);  // FIFO within a timestamp.
    } else if (!first) {
      EXPECT_GT(event.time, last_time);
    }
    last_time = event.time;
    last_seq = event.seq;
    first = false;
  }
}

TEST(TaskStateNames, RoundTrip) {
  EXPECT_STREQ(runtime::to_string(runtime::TaskState::kUnsent), "UNSENT");
  EXPECT_STREQ(runtime::to_string(runtime::TaskState::kValid), "VALID");
  EXPECT_STREQ(runtime::to_string(runtime::UnitState::kTimedOut),
               "TIMED_OUT");
}

// ------------------------------------------------------------- determinism

TEST(AsyncRuntime, DeterministicReplayIsByteIdentical) {
  runtime::RuntimeConfig config;
  config.plan = balanced_plan(400, 0.5);
  config.honest_participants = 40;
  config.sybil_identities = 10;
  config.latency.straggler_fraction = 0.2;
  config.latency.dropout_probability = 0.05;
  config.sample_interval = 5.0;
  config.seed = 1234;

  const auto a = runtime::run_async_campaign(config);
  const auto b = runtime::run_async_campaign(config);
  EXPECT_EQ(rendered(a), rendered(b));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_processed, b.events_processed);

  config.seed = 1235;
  const auto c = runtime::run_async_campaign(config);
  EXPECT_NE(rendered(a), rendered(c));
}

// ---------------------------------------------- timeout -> retry -> success

TEST(AsyncRuntime, TimeoutsAreRetriedAndEveryTaskValidates) {
  runtime::RuntimeConfig config;
  config.plan = balanced_plan(300, 0.5);
  config.honest_participants = 30;
  config.latency.dropout_probability = 0.3;  // Plenty of no-reply faults.
  config.retry.max_retries = 5;
  config.seed = 99;

  const auto report = runtime::run_async_campaign(config);
  EXPECT_GT(report.units_dropped, 0);
  EXPECT_GT(report.units_timed_out, 0);
  EXPECT_GT(report.units_reissued, 0);
  // Re-issues are retries of timed-out units, never more than one per
  // timeout.
  EXPECT_LE(report.units_reissued, report.units_timed_out);
  // All-honest fleet: every task must end VALID and correct, no alarms.
  EXPECT_EQ(report.tasks_valid, report.tasks);
  EXPECT_EQ(report.final_correct_tasks, report.tasks);
  EXPECT_EQ(report.final_corrupt_tasks, 0);
  EXPECT_EQ(report.detections, 0);
  EXPECT_EQ(report.blacklisted_identities, 0);
  EXPECT_GT(report.makespan, 0.0);
}

TEST(AsyncRuntime, ExhaustedRetriesFallBackToSupervisorRecompute) {
  runtime::RuntimeConfig config;
  config.plan = flat_plan(40, 2);
  config.honest_participants = 6;
  config.latency.dropout_probability = 0.4;
  config.retry.max_retries = 0;  // Any timeout goes straight to recompute.
  config.adaptive.enabled = false;
  config.seed = 17;

  const auto report = runtime::run_async_campaign(config);
  EXPECT_GT(report.units_timed_out, 0);
  EXPECT_EQ(report.units_reissued, 0);
  EXPECT_GT(report.supervisor_recomputes, 0);
  EXPECT_EQ(report.tasks_valid, report.tasks);
  EXPECT_EQ(report.final_corrupt_tasks, 0);
}

// ----------------------------------------------------- quorum + replication

TEST(AsyncRuntime, QuorumDisagreementSpawnsExtraReplicas) {
  runtime::RuntimeConfig config;
  config.plan = balanced_plan(600, 0.5);
  config.honest_participants = 60;
  config.sybil_identities = 40;  // Heavy collusion pressure.
  config.strategy = sim::CheatStrategy::kAlwaysCheat;
  config.reactive = false;  // Keep cheaters enrolled: more mismatches.
  config.seed = 7;

  const auto report = runtime::run_async_campaign(config);
  EXPECT_GT(report.adversary_cheat_attempts, 0);
  EXPECT_GT(report.mismatches_detected, 0);
  EXPECT_GT(report.tasks_inconclusive, 0);
  EXPECT_GT(report.quorum_replicas, 0);
  EXPECT_TRUE(report.alarm_fired());
  EXPECT_GT(report.first_detection_time, 0.0);
  EXPECT_GE(report.mean_detection_latency, report.first_detection_time);
  // The state machine must still drive everything to VALID, and ground
  // truth must account for every task.
  EXPECT_EQ(report.tasks_valid, report.tasks);
  EXPECT_EQ(report.final_correct_tasks + report.final_corrupt_tasks,
            report.tasks);
}

TEST(AsyncRuntime, ReactiveSupervisionBlacklistsCaughtIdentities) {
  runtime::RuntimeConfig config;
  config.plan = balanced_plan(600, 0.5);
  config.honest_participants = 60;
  config.sybil_identities = 40;
  config.strategy = sim::CheatStrategy::kAlwaysCheat;
  config.reactive = true;
  config.seed = 7;

  const auto report = runtime::run_async_campaign(config);
  EXPECT_GT(report.blacklisted_identities, 0);
  EXPECT_LE(report.blacklisted_identities, 40);
  EXPECT_EQ(report.false_accusations, 0);  // No benign errors configured.
  EXPECT_EQ(report.tasks_valid, report.tasks);
}

TEST(AsyncRuntime, AdaptiveReplicationTriggersOnUnreliableHolders) {
  runtime::RuntimeConfig config;
  config.plan = flat_plan(60, 2);
  config.honest_participants = 10;
  config.latency.straggler_fraction = 0.5;
  config.latency.straggler_slowdown = 30.0;  // Deep straggler tail.
  config.adaptive.enabled = true;
  config.adaptive.reliability_floor = 0.99;  // Above score_init: any
                                             // straggling task qualifies.
  config.seed = 3;

  const auto with_adaptive = runtime::run_async_campaign(config);
  EXPECT_GT(with_adaptive.adaptive_replicas, 0);
  // The per-task cap bounds the extra copies.
  EXPECT_LE(with_adaptive.adaptive_replicas + with_adaptive.quorum_replicas,
            config.adaptive.max_extra_replicas * with_adaptive.tasks);
  EXPECT_EQ(with_adaptive.tasks_valid, with_adaptive.tasks);

  config.adaptive.enabled = false;
  const auto without = runtime::run_async_campaign(config);
  EXPECT_EQ(without.adaptive_replicas, 0);
}

// ----------------------------------------------------------------- sampling

TEST(AsyncRuntime, SeriesSamplesAreCumulativeAndOrdered) {
  runtime::RuntimeConfig config;
  config.plan = balanced_plan(300, 0.5);
  config.honest_participants = 30;
  config.latency.dropout_probability = 0.1;
  config.sample_interval = 2.0;
  config.seed = 11;

  const auto report = runtime::run_async_campaign(config);
  ASSERT_GE(report.series.size(), 2u);
  for (std::size_t i = 1; i < report.series.size(); ++i) {
    const auto& prev = report.series[i - 1];
    const auto& cur = report.series[i];
    EXPECT_GT(cur.time, prev.time);
    EXPECT_GE(cur.units_issued, prev.units_issued);
    EXPECT_GE(cur.units_completed, prev.units_completed);
    EXPECT_GE(cur.tasks_valid, prev.tasks_valid);
  }
  // The final sample sits at the makespan with the campaign fully valid.
  EXPECT_DOUBLE_EQ(report.series.back().time, report.makespan);
  EXPECT_EQ(report.series.back().tasks_valid, report.tasks);

  config.sample_interval = 0.0;
  EXPECT_TRUE(runtime::run_async_campaign(config).series.empty());
}

// ----------------------------------------------------- graceful degradation

TEST(AsyncRuntime, TotalDropoutStallsInsteadOfLivelocking) {
  // Regression: with every issue dropping and the recompute fallback
  // budgeted away, the old loop had no terminal state — retries exhausted,
  // units parked, and the queue kept draining re-issue timers forever.
  // The health monitor must end this as kStalled in bounded simulated
  // time with a partial report.
  runtime::RuntimeConfig config;
  config.plan = flat_plan(30, 2);
  config.honest_participants = 5;
  config.latency.dropout_probability = 1.0;  // Nothing ever reports.
  config.retry.max_retries = 3;
  config.health.recompute_budget = 0;
  config.seed = 41;

  const auto report = runtime::run_async_campaign(config);
  EXPECT_EQ(report.outcome, runtime::CampaignOutcome::kStalled);
  EXPECT_EQ(report.tasks_valid, 0);
  EXPECT_EQ(report.tasks_unfinished, report.tasks);
  EXPECT_LT(report.end_time, 1e6);  // Bounded, not livelocked.

  // With the recompute fallback unbudgeted the same fleet still finishes:
  // every unit falls through retry exhaustion to a supervisor recompute.
  config.health.recompute_budget = -1;
  const auto recovered = runtime::run_async_campaign(config);
  EXPECT_EQ(recovered.outcome, runtime::CampaignOutcome::kCompleted);
  EXPECT_GT(recovered.supervisor_recomputes, 0);
  EXPECT_EQ(recovered.tasks_valid, recovered.tasks);
}

TEST(AsyncRuntime, ZeroBackoffBaseIsClampedToTheMinimumReissueDelay) {
  runtime::RuntimeConfig config;
  config.plan = balanced_plan(200, 0.5);
  config.honest_participants = 20;
  config.latency.dropout_probability = 0.3;
  config.retry.max_retries = 5;
  config.retry.backoff_base = 0.0;  // Would re-issue at the timeout instant.
  config.seed = 23;

  const auto clamped = runtime::run_async_campaign(config);
  EXPECT_GT(clamped.units_reissued, 0);
  EXPECT_EQ(clamped.tasks_valid, clamped.tasks);

  // The clamp makes base 0 equivalent to a flat backoff at the minimum
  // delay: max(0 * f^k, min) == max(min * 1^k, min) for every retry k.
  config.retry.backoff_base = runtime::RetryPolicy::kMinReissueDelay;
  config.retry.backoff_factor = 1.0;
  const auto flat = runtime::run_async_campaign(config);
  EXPECT_EQ(rendered(clamped), rendered(flat));
}

TEST(AsyncRuntime, RecomputeBudgetCapsSupervisorRecomputes) {
  runtime::RuntimeConfig config;
  config.plan = flat_plan(40, 2);
  config.honest_participants = 6;
  config.latency.dropout_probability = 0.4;
  config.retry.max_retries = 0;  // Every timeout asks for a recompute.
  config.adaptive.enabled = false;
  config.health.recompute_budget = 5;
  config.seed = 17;

  const auto report = runtime::run_async_campaign(config);
  EXPECT_LE(report.supervisor_recomputes, 5);
  EXPECT_EQ(report.tasks_valid + report.tasks_unfinished, report.tasks);
  if (report.outcome == runtime::CampaignOutcome::kCompleted) {
    EXPECT_EQ(report.tasks_unfinished, 0);
  } else {
    EXPECT_GT(report.tasks_unfinished, 0);
  }
}

TEST(AsyncRuntime, ReliabilityScoresDecayUnderHeavyDropout) {
  // No stragglers: the only way a holder's score can fall below the floor
  // is the multiplicative decay on timeouts, so adaptive replicas firing
  // proves the decay path.
  runtime::RuntimeConfig config;
  config.plan = flat_plan(60, 2);
  config.honest_participants = 10;
  config.latency.dropout_probability = 0.5;
  config.retry.max_retries = 6;
  config.adaptive.enabled = true;
  config.adaptive.reliability_floor = 0.65;  // Below score_init (0.7): only
                                             // decayed holders qualify.
  config.seed = 29;

  const auto report = runtime::run_async_campaign(config);
  EXPECT_GT(report.units_timed_out, 0);
  EXPECT_GT(report.adaptive_replicas, 0);
  EXPECT_EQ(report.blacklisted_identities, 0);  // Honest-only fleet.
  EXPECT_EQ(report.tasks_valid, report.tasks);
}

// --------------------------------------------------------------- validation

TEST(AsyncRuntime, RejectsBadConfig) {
  runtime::RuntimeConfig good;
  good.plan = flat_plan(10, 2);
  good.honest_participants = 5;

  auto bad = good;
  bad.honest_participants = 0;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);

  bad = good;
  bad.benign_error_rate = 1.0;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);

  bad = good;
  bad.retry.max_retries = -1;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);

  bad = good;
  bad.retry.backoff_factor = 0.5;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);

  bad = good;
  bad.adaptive.reliability_floor = 1.5;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);

  bad = good;
  bad.sample_interval = -1.0;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);

  bad = good;
  bad.latency.dropout_probability = 1.5;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);

  bad = good;
  bad.latency.mean_service = 0.0;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);
}

TEST(AsyncRuntime, RejectsBadHealthJournalAndFaultConfig) {
  runtime::RuntimeConfig good;
  good.plan = flat_plan(10, 2);
  good.honest_participants = 5;

  auto bad = good;
  bad.health.stall_checks = 0;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);

  bad = good;
  bad.health.ewma_alpha = 0.0;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);

  bad = good;
  bad.health.ewma_alpha = 1.5;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);

  bad = good;  // A journal needs a sane checkpoint cadence.
  bad.journal.path = testing::TempDir() + "redund_badcfg.wal";
  bad.journal.checkpoint_interval = 0;
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);

  bad = good;  // Fault targets are validated against the enrolled fleet.
  bad.faults.events.push_back({.time = 1.0,
                               .kind = runtime::FaultKind::kLeave,
                               .participant = 5});
  EXPECT_THROW((void)runtime::run_async_campaign(bad), std::invalid_argument);
}

}  // namespace
