// SIMD lane primitives (platform/simd.hpp): the scalar fallback is the
// definition, so every vector body must match it byte-for-byte on every
// input — exercised here on each lane-boundary size (1, 15, 16, 17, 63,
// 64, 65: below/at/above one 16-lane block and one cache line) and on
// all-match / no-match / mixed patterns, with a whole-campaign fingerprint
// comparison on top. A single binary proves the equivalence via
// set_force_scalar(), which routes the public entry points onto the
// scalar bodies at runtime.
#include "platform/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/realize.hpp"
#include "core/schemes/balanced.hpp"
#include "runtime/audit.hpp"
#include "runtime/supervisor.hpp"

namespace redund::platform::simd {
namespace {

/// Restores the global force_scalar flag on scope exit so a failing
/// assertion cannot leak scalar mode into later tests.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force) : saved_(force_scalar()) {
    set_force_scalar(force);
  }
  ~ScopedForceScalar() { set_force_scalar(saved_); }

 private:
  bool saved_;
};

// The lane-boundary sizes: one element, one short of a block, one block,
// one into the second block, and the same pattern around the 64-lane line.
const std::size_t kSizes[] = {1, 15, 16, 17, 63, 64, 65};

/// Deterministic pattern bytes (SplitMix64-ish; seeds the mixed fixtures).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

enum class Pattern { kAll, kNone, kMixed };

const Pattern kPatterns[] = {Pattern::kAll, Pattern::kNone, Pattern::kMixed};

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kAll: return "all";
    case Pattern::kNone: return "none";
    case Pattern::kMixed: return "mixed";
  }
  return "?";
}

TEST(SimdPrimitives, LanesLiveMatchesScalarOnEveryBoundarySize) {
  constexpr std::uint8_t kWantState = 1;
  for (const std::size_t n : kSizes) {
    for (const Pattern pattern : kPatterns) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " pattern="
                                      << pattern_name(pattern));
      std::vector<std::uint8_t> state(n);
      std::vector<std::uint32_t> epoch(n);
      std::vector<std::uint32_t> want_epoch(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t r = mix(i * 3 + 1);
        switch (pattern) {
          case Pattern::kAll:
            state[i] = kWantState;
            epoch[i] = want_epoch[i] = static_cast<std::uint32_t>(r);
            break;
          case Pattern::kNone:
            // Half fail the state compare, half fail the epoch compare.
            state[i] = (r & 1) ? kWantState : 0;
            epoch[i] = static_cast<std::uint32_t>(r >> 8);
            want_epoch[i] = (r & 1) ? epoch[i] + 1 : epoch[i];
            break;
          case Pattern::kMixed:
            state[i] = (r >> 1) & 1 ? kWantState : 2;
            epoch[i] = static_cast<std::uint32_t>(r >> 8);
            want_epoch[i] = epoch[i] + ((r >> 2) & 1);
            break;
        }
      }
      std::vector<std::uint8_t> vec(n, 0xCD), sca(n, 0xEE);
      {
        ScopedForceScalar scalar(false);
        lanes_live(state.data(), kWantState, epoch.data(), want_epoch.data(),
                   n, vec.data());
      }
      {
        ScopedForceScalar scalar(true);
        lanes_live(state.data(), kWantState, epoch.data(), want_epoch.data(),
                   n, sca.data());
      }
      EXPECT_EQ(vec, sca);
      // And against a naive reference, so the scalar body itself is pinned.
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t want =
            (state[i] == kWantState && epoch[i] == want_epoch[i]) ? 1 : 0;
        ASSERT_EQ(sca[i], want) << "i=" << i;
      }
    }
  }
}

TEST(SimdPrimitives, CountEqU8MatchesScalarOnEveryBoundarySize) {
  constexpr std::uint8_t kWant = 3;
  for (const std::size_t n : kSizes) {
    for (const Pattern pattern : kPatterns) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " pattern="
                                      << pattern_name(pattern));
      std::vector<std::uint8_t> bytes(n);
      std::size_t expected = 0;
      for (std::size_t i = 0; i < n; ++i) {
        switch (pattern) {
          case Pattern::kAll: bytes[i] = kWant; break;
          case Pattern::kNone: bytes[i] = kWant + 1; break;
          case Pattern::kMixed:
            bytes[i] = static_cast<std::uint8_t>(mix(i) & 7);
            break;
        }
        expected += bytes[i] == kWant ? 1 : 0;
      }
      std::size_t vec, sca;
      {
        ScopedForceScalar scalar(false);
        vec = count_eq_u8(bytes.data(), n, kWant);
      }
      {
        ScopedForceScalar scalar(true);
        sca = count_eq_u8(bytes.data(), n, kWant);
      }
      EXPECT_EQ(vec, sca);
      EXPECT_EQ(sca, expected);
    }
  }
}

TEST(SimdPrimitives, CountFlagBitsMatchesScalarOnEveryBoundarySize) {
  constexpr std::uint8_t kMask = 0b1100'0000;  // The two vote latches.
  for (const std::size_t n : kSizes) {
    for (const Pattern pattern : kPatterns) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " pattern="
                                      << pattern_name(pattern));
      std::vector<std::uint8_t> flags(n);
      std::size_t expected = 0;
      for (std::size_t i = 0; i < n; ++i) {
        switch (pattern) {
          case Pattern::kAll: flags[i] = 0xFF; break;
          case Pattern::kNone:
            flags[i] = static_cast<std::uint8_t>(mix(i)) & ~kMask;
            break;
          case Pattern::kMixed:
            flags[i] = static_cast<std::uint8_t>(mix(i * 7 + 5));
            break;
        }
        expected += (flags[i] & kMask) == kMask ? 1 : 0;
      }
      std::size_t vec, sca;
      {
        ScopedForceScalar scalar(false);
        vec = count_flag_bits(flags.data(), n, kMask);
      }
      {
        ScopedForceScalar scalar(true);
        sca = count_flag_bits(flags.data(), n, kMask);
      }
      EXPECT_EQ(vec, sca);
      EXPECT_EQ(sca, expected);
    }
  }
}

TEST(SimdPrimitives, CollectMatchesMatchesScalarOnEveryBoundarySize) {
  constexpr std::uint32_t kKey = 17;
  constexpr std::uint8_t kWant = 1;
  for (const std::size_t n : kSizes) {
    for (const Pattern pattern : kPatterns) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " pattern="
                                      << pattern_name(pattern));
      std::vector<std::uint32_t> keys(n);
      std::vector<std::uint8_t> state(n);
      std::vector<std::uint32_t> expected;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t r = mix(i * 11 + 3);
        switch (pattern) {
          case Pattern::kAll:
            keys[i] = kKey;
            state[i] = kWant;
            break;
          case Pattern::kNone:
            keys[i] = (r & 1) ? kKey : kKey + 1;
            state[i] = (r & 1) ? kWant + 1 : kWant;
            break;
          case Pattern::kMixed:
            keys[i] = (r & 3) == 0 ? kKey : static_cast<std::uint32_t>(r);
            state[i] = static_cast<std::uint8_t>((r >> 2) & 1);
            break;
        }
        if (keys[i] == kKey && state[i] == kWant) {
          expected.push_back(static_cast<std::uint32_t>(i));
        }
      }
      std::vector<std::uint32_t> vec(n + 1, 0xFFFF), sca(n + 1, 0xAAAA);
      std::size_t vec_n, sca_n;
      {
        ScopedForceScalar scalar(false);
        vec_n = collect_matches(keys.data(), kKey, state.data(), kWant, n,
                                vec.data());
      }
      {
        ScopedForceScalar scalar(true);
        sca_n = collect_matches(keys.data(), kKey, state.data(), kWant, n,
                                sca.data());
      }
      ASSERT_EQ(vec_n, sca_n);
      ASSERT_EQ(sca_n, expected.size());
      vec.resize(vec_n);
      sca.resize(sca_n);
      EXPECT_EQ(vec, sca);
      EXPECT_EQ(sca, expected);
    }
  }
}

// Regression: the vector body sweeps full 16-lane blocks and hands the
// remainder to the scalar loop, which indexes from the tail start. An
// early version forgot to rebase those indices — a match at absolute
// index 64 came back as 0, and the churn sweep then timed out the wrong
// (possibly already-completed) unit, corrupting the event stream. Pin
// matches that live ONLY past the last full block.
TEST(SimdPrimitives, CollectMatchesRebasesTailIndices) {
  constexpr std::uint32_t kKey = 9;
  constexpr std::uint8_t kWant = 1;
  struct Case {
    std::size_t n;
    std::vector<std::uint32_t> match_at;  // All strictly past n/16*16.
  };
  const Case cases[] = {
      {17, {16}},
      {63, {48, 60, 62}},
      {65, {64}},
      {33, {32}},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(testing::Message() << "n=" << c.n);
    std::vector<std::uint32_t> keys(c.n, kKey + 1);
    std::vector<std::uint8_t> state(c.n, kWant);
    for (const std::uint32_t at : c.match_at) {
      ASSERT_GE(at, c.n / 16 * 16) << "fixture must target the tail";
      keys[at] = kKey;
    }
    std::vector<std::uint32_t> out(c.n, 0);
    const std::size_t count =
        collect_matches(keys.data(), kKey, state.data(), kWant, c.n,
                        out.data());
    out.resize(count);
    EXPECT_EQ(out, c.match_at);
  }
}

TEST(SimdPrimitives, ActiveImplReflectsForceScalar) {
  {
    ScopedForceScalar scalar(true);
    EXPECT_STREQ(active_impl(), "scalar");
  }
  ScopedForceScalar vector(false);
  if (kCompiledVector) {
    EXPECT_STREQ(active_impl(), "vector");
  } else {
    EXPECT_STREQ(active_impl(), "scalar");
  }
}

// Whole-campaign equivalence: the same faulted campaign — churn (leave /
// rejoin) drives the collect_matches participant sweep, stragglers and
// dropouts drive the batch-drain liveness lanes — must fingerprint
// byte-identically with the vector bodies and with every call forced onto
// the scalar fallback.
TEST(SimdCampaign, FingerprintIdenticalUnderForcedScalar) {
  namespace runtime = redund::runtime;
  runtime::RuntimeConfig config;
  config.plan = core::realize(
      core::make_balanced(300.0, 0.5, {.truncate_below = 1e-9}), 300, 0.5);
  config.honest_participants = 40;
  config.sybil_identities = 8;
  config.latency.straggler_fraction = 0.1;
  config.latency.dropout_probability = 0.05;
  config.seed = 0x51D0CAFEULL;
  for (std::uint32_t p = 0; p < 12; ++p) {
    config.faults.events.push_back({.time = 20.0 + 10.0 * p,
                                    .kind = runtime::FaultKind::kLeave,
                                    .participant = p});
    config.faults.events.push_back({.time = 45.0 + 10.0 * p,
                                    .kind = runtime::FaultKind::kRejoin,
                                    .participant = p});
  }
  std::uint64_t vec, sca;
  {
    ScopedForceScalar scalar(false);
    vec = runtime::report_fingerprint(runtime::run_async_campaign(config));
  }
  {
    ScopedForceScalar scalar(true);
    sca = runtime::report_fingerprint(runtime::run_async_campaign(config));
  }
  EXPECT_EQ(vec, sca);
}

}  // namespace
}  // namespace redund::platform::simd
