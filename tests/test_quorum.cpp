// Exhaustive equivalence of the branchless packed quorum kernels
// (src/runtime/quorum.hpp) against the scalar tally they replaced.
//
// The scalar reference below reproduces the supervisor's pre-refactor
// vote loop exactly: distinct values tallied in first-seen order, the
// winner is the first class to reach the running maximum, and a later
// class matching the maximum raises the tie flag. The packed kernels
// must agree on (all_equal, winner, best_count, tie) for every vote
// pattern — enumerated exhaustively over all value assignments and all
// presence masks up to the max quorum size any realized plan produces,
// plus randomized spot checks at the full 64-lane width.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rng/distributions.hpp"
#include "runtime/quorum.hpp"

namespace redund::runtime {
namespace {

struct ScalarVerdict {
  bool all_equal = true;
  std::uint64_t winner = 0;
  int best_count = 0;
  bool tie = false;
};

/// The supervisor's pre-refactor scalar tally, verbatim semantics.
ScalarVerdict scalar_tally(const std::uint64_t* values, std::uint64_t present,
                           int lanes) {
  ScalarVerdict verdict;
  std::uint64_t first_value = 0;
  bool have_first = false;
  std::vector<std::pair<std::uint64_t, int>> scratch;
  for (int i = 0; i < lanes; ++i) {
    if ((present & (1ULL << i)) == 0) continue;
    if (!have_first) {
      first_value = values[i];
      have_first = true;
    } else if (values[i] != first_value) {
      verdict.all_equal = false;
    }
    bool counted = false;
    for (auto& [value, count] : scratch) {
      if (value == values[i]) {
        ++count;
        counted = true;
        break;
      }
    }
    if (!counted) scratch.emplace_back(values[i], 1);
  }
  for (const auto& [value, count] : scratch) {
    if (count > verdict.best_count) {
      verdict.best_count = count;
      verdict.winner = value;
      verdict.tie = false;
    } else if (count == verdict.best_count) {
      verdict.tie = true;
    }
  }
  return verdict;
}

void expect_equivalent(const std::uint64_t* values, std::uint64_t present,
                       int lanes) {
  const ScalarVerdict scalar = scalar_tally(values, present, lanes);
  const QuorumTally packed = tally_packed(values, present, lanes);
  ASSERT_EQ(all_equal_packed(values, present, lanes), scalar.all_equal)
      << "present=" << present;
  ASSERT_EQ(packed.best_count, scalar.best_count) << "present=" << present;
  ASSERT_EQ(packed.tie, scalar.tie) << "present=" << present;
  if (!scalar.tie && scalar.best_count > 0) {
    ASSERT_EQ(packed.winner, scalar.winner) << "present=" << present;
  }
}

TEST(Quorum, EmptyMaskIsVacuouslyEqualWithNoWinner) {
  const std::uint64_t values[1] = {42};
  EXPECT_TRUE(all_equal_packed(values, 0, 1));
  const QuorumTally tally = tally_packed(values, 0, 1);
  EXPECT_EQ(tally.best_count, 0);
  EXPECT_FALSE(tally.tie);
}

// All value assignments from a 3-symbol alphabet x all presence masks,
// for every quorum size up to 6 (beyond any multiplicity + replica
// budget the project's planners realize). 3 symbols are exhaustive in
// the relevant sense: the tally only compares values for equality, so
// any vote pattern over n copies is isomorphic to one over at most n
// symbols, and 3 symbols already produce every partition shape that
// majority/plurality/tie logic can distinguish at these sizes.
TEST(Quorum, ExhaustiveEquivalenceThreeSymbolsUpToSixLanes) {
  constexpr std::uint64_t kSymbols[3] = {0xAAAAAAAAAAAAAAAAULL,
                                         0x5555555555555555ULL, 0x1ULL};
  for (int lanes = 1; lanes <= 6; ++lanes) {
    std::uint64_t assignments = 1;
    for (int i = 0; i < lanes; ++i) assignments *= 3;
    for (std::uint64_t a = 0; a < assignments; ++a) {
      std::uint64_t values[6];
      std::uint64_t code = a;
      for (int i = 0; i < lanes; ++i) {
        values[i] = kSymbols[code % 3];
        code /= 3;
      }
      for (std::uint64_t present = 0; present < (1ULL << lanes); ++present) {
        expect_equivalent(values, present, lanes);
        if (HasFatalFailure()) return;
      }
    }
  }
}

// Wider words, binary alphabet: every 8-lane vote pattern x every mask.
TEST(Quorum, ExhaustiveEquivalenceTwoSymbolsEightLanes) {
  constexpr int kLanes = 8;
  for (std::uint64_t a = 0; a < (1ULL << kLanes); ++a) {
    std::uint64_t values[kLanes];
    for (int i = 0; i < kLanes; ++i) {
      values[i] = ((a >> i) & 1ULL) ? 0xDEADBEEFULL : 0xFEEDFACEULL;
    }
    for (std::uint64_t present = 0; present < (1ULL << kLanes); ++present) {
      expect_equivalent(values, present, kLanes);
      if (HasFatalFailure()) return;
    }
  }
}

// Full 64-lane width: randomized values over small alphabets (heavy
// collision mass) and random presence masks.
TEST(Quorum, RandomizedEquivalenceAtFullWidth) {
  auto engine = rng::make_stream(0x90A11EDULL, 7);
  for (int round = 0; round < 20000; ++round) {
    const int lanes = 1 + static_cast<int>(rng::uniform_below(64, engine));
    const int alphabet = 1 + static_cast<int>(rng::uniform_below(5, engine));
    std::uint64_t values[kMaxPackedQuorum];
    for (int i = 0; i < lanes; ++i) {
      values[i] = 0x1000 + rng::uniform_below(
                               static_cast<std::uint64_t>(alphabet), engine);
    }
    std::uint64_t present = engine();
    if (lanes < 64) present &= (1ULL << lanes) - 1;
    expect_equivalent(values, present, lanes);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace redund::runtime
