// Exact-arithmetic tests: the Rational type itself, then the paper's
// algebraic identities re-verified with zero floating-point involvement.
#include <gtest/gtest.h>

#include "math/rational.hpp"

using redund::math::Rational;
using redund::math::rational_binomial;

namespace {

// ----------------------------------------------------------------- basics

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.numerator(), 3);
  EXPECT_EQ(r.denominator(), 4);

  const Rational negative(3, -9);
  EXPECT_EQ(negative.numerator(), -1);
  EXPECT_EQ(negative.denominator(), 3);

  const Rational zero(0, 7);
  EXPECT_EQ(zero.numerator(), 0);
  EXPECT_EQ(zero.denominator(), 1);

  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  const Rational half(1, 2);
  const Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_THROW(half / Rational(0), std::invalid_argument);
}

TEST(Rational, CompoundOperatorsAndComparisons) {
  Rational r(1, 4);
  r += Rational(1, 4);
  r *= 2;
  EXPECT_EQ(r, Rational(1));
  EXPECT_TRUE(r.is_integer());
  EXPECT_LT(Rational(2, 3), Rational(3, 4));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(10, 5), Rational(2));
}

TEST(Rational, ToStringAndDouble) {
  EXPECT_EQ(Rational(3, 4).to_string(), "3/4");
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
}

TEST(Rational, OverflowIsAnErrorNotWraparound) {
  const Rational huge(std::numeric_limits<std::int64_t>::max() / 2, 1);
  EXPECT_THROW(huge * huge, std::overflow_error);
  EXPECT_THROW(huge + huge + huge, std::overflow_error);
}

TEST(Rational, CrossReductionDelaysOverflow) {
  // (2^40 / 3) * (3 / 2^40) = 1 — must succeed despite large intermediates.
  const Rational a(std::int64_t{1} << 40, 3);
  const Rational b(3, std::int64_t{1} << 40);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(RationalBinomial, MatchesSmallTable) {
  EXPECT_EQ(rational_binomial(0, 0), Rational(1));
  EXPECT_EQ(rational_binomial(5, 2), Rational(10));
  EXPECT_EQ(rational_binomial(26, 13), Rational(10400600));
  EXPECT_EQ(rational_binomial(4, 7), Rational(0));
  EXPECT_TRUE(rational_binomial(30, 15).is_integer());
}

// ------------------------------------ paper identities, exact arithmetic

TEST(ExactPaper, Proposition1RelaxedOptimumIdentities) {
  // For rational eps and N: x_1 = 2N(1-eps)/(2-eps), x_2 = N eps/(2-eps).
  // Exactly: x_1 + x_2 = N; C_1 holds with equality (2 x_2 = r x_1 with
  // r = eps/(1-eps)); total = x_1 + 2 x_2 = 2N/(2-eps).
  const Rational n(100000);
  for (const Rational eps : {Rational(1, 2), Rational(3, 4), Rational(2, 3),
                             Rational(99, 100), Rational(1, 10)}) {
    const Rational one(1);
    const Rational two(2);
    const Rational x1 = two * n * (one - eps) / (two - eps);
    const Rational x2 = n * eps / (two - eps);
    const Rational ratio = eps / (one - eps);

    EXPECT_EQ(x1 + x2, n) << eps.to_string();
    EXPECT_EQ(two * x2, ratio * x1) << eps.to_string();
    EXPECT_EQ(x1 + two * x2, two * n / (two - eps)) << eps.to_string();
  }
}

TEST(ExactPaper, Fact1VertexSatisfiesConstraintsWithEquality) {
  // eps = 1/2 (ratio = 1), m >= 6, D = 3m^2 - m + 2:
  //   x_1 = 2Nm^2/D, x_2 = Nm(m-1)/D, x_m = 2N/D.
  // Exactly: C_0 equality (x_1 + x_2 + x_m = N);
  //          C_1 equality (2 x_2 + m x_m = x_1);
  //          C_2 equality (C(m,2) x_m = x_2);
  //          C_k strict for 3 <= k < m (x_k = 0, mass above positive);
  //          total = x_1 + 2 x_2 + m x_m = 4 m^2 N / D.
  const Rational n(100000);
  for (const std::int64_t m : {std::int64_t{6}, std::int64_t{10},
                               std::int64_t{20}, std::int64_t{26}}) {
    const Rational rm(m);
    const Rational d = Rational(3) * rm * rm - rm + Rational(2);
    const Rational x1 = Rational(2) * n * rm * rm / d;
    const Rational x2 = n * rm * (rm - Rational(1)) / d;
    const Rational xm = Rational(2) * n / d;

    EXPECT_EQ(x1 + x2 + xm, n) << m;
    EXPECT_EQ(Rational(2) * x2 + rm * xm, x1) << m;
    EXPECT_EQ(rational_binomial(m, 2) * xm, x2) << m;
    for (std::int64_t k = 3; k < m; ++k) {
      // Mass above k (only x_m) strictly positive; x_k = 0 => C_k strict.
      EXPECT_GT(rational_binomial(m, k) * xm, Rational(0)) << m << " " << k;
    }
    EXPECT_EQ(x1 + Rational(2) * x2 + rm * xm,
              Rational(4) * rm * rm * n / d)
        << m;
  }
}

TEST(ExactPaper, RingerInequalityBoundary) {
  // The paper's typical example, exactly: x = 5 tasks at multiplicity 11,
  // eps = 3/4. One ringer gives 12/(5+12) = 12/17 < 3/4; two give
  // 24/(5+24) = 24/29 >= 3/4. Hence r = 2 — matching ringer_requirement().
  const Rational eps(3, 4);
  const Rational one_ringer = Rational(12) / Rational(17);
  const Rational two_ringers = Rational(24) / Rational(29);
  EXPECT_LT(one_ringer, eps);
  EXPECT_GE(two_ringers, eps);

  // And the extreme example: 12 tasks at multiplicity 20, eps = 99/100.
  // 56 ringers: 21*56/(12 + 21*56) < 99/100; 57 suffice.
  const Rational eps99(99, 100);
  const Rational r56 = Rational(21 * 56) / Rational(12 + 21 * 56);
  const Rational r57 = Rational(21 * 57) / Rational(12 + 21 * 57);
  EXPECT_LT(r56, eps99);
  EXPECT_GE(r57, eps99);
}

TEST(ExactPaper, GsCrossoverAtThreeQuartersIsExact) {
  // RF_GS(eps)^2 = 1/(1-eps): at eps = 3/4 that is exactly 4 = 2^2, i.e.
  // the GS/simple crossover is exact, not approximate.
  const Rational eps(3, 4);
  EXPECT_EQ(Rational(1) / (Rational(1) - eps), Rational(4));
}

TEST(ExactPaper, DetectionFormulaOnSmallDistribution) {
  // P_1 for x = (60, 40): exactly 80/140 = 4/7; and the C_1 boundary: with
  // eps = 4/7 the constraint holds with equality.
  const Rational x1(60);
  const Rational x2(40);
  const Rational p1 = Rational(2) * x2 / (x1 + Rational(2) * x2);
  EXPECT_EQ(p1, Rational(4, 7));
  const Rational eps = p1;
  const Rational ratio = eps / (Rational(1) - eps);
  EXPECT_EQ(Rational(2) * x2, ratio * x1);
}

}  // namespace
